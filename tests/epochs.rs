//! Differential validation of the **adaptive epoch scheduler**: under
//! `EpochMode::Adaptive` the sharded cycle engine grants extended (and
//! trims over-long) synchronization windows wherever the quiescence
//! predicate allows, and the quiescent-stretch fast path elides per-uop
//! bookkeeping inside them — all of which must be *invisible* in results.
//!
//! Every guest here runs under both cadences and is pinned bit-identical
//! to the fixed-cadence full-scan reference (`run_naive`): per-core
//! `CycleStats`, makespan, deadlock flag, parked set, memory contents and
//! trap state — across the event engine and `run_parallel` at 1/2/4/8
//! host threads, with fresh and pooled cluster memory, on 2-group (512
//! cores) and 4-group (1024 cores) topologies.

use std::sync::Arc;

use terasim_iss::{EpochMode, RunConfig, Trap};
use terasim_riscv::{csr, Assembler, Image, Inst, Reg, Segment};
use terasim_terapool::{CycleResult, CycleSim, MemPool, SimArtifacts, Topology};

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

fn arts_for(topo: Topology, image: &Image, epochs: EpochMode) -> Arc<SimArtifacts> {
    let rc = RunConfig { epochs, ..RunConfig::default() };
    SimArtifacts::build_with(topo, image, rc).unwrap()
}

/// Pure-integer countdown: `addi`/`bnez` only — local by construction,
/// so the reachability pass marks the loop eligible for extended grants.
fn emit_spin(a: &mut Assembler, reg: Reg, iters: Reg) {
    let top = a.new_label();
    a.add(reg, iters, Reg::Zero);
    a.bind(top);
    a.addi(reg, reg, -1);
    a.bnez(reg, top);
}

/// Amoadd-counting barrier on an interleaved (group-0) counter word; the
/// last arrival wakes the parked cores.
fn emit_barrier(a: &mut Assembler, counter_addr: i32, cores: u32) {
    a.li(Reg::A1, counter_addr);
    a.li(Reg::A2, 1);
    a.amoadd_w(Reg::A3, Reg::A2, Reg::A1);
    a.li(Reg::A4, (cores - 1) as i32);
    let last = a.new_label();
    let done = a.new_label();
    a.beq(Reg::A3, Reg::A4, last);
    a.wfi();
    a.j(done);
    a.bind(last);
    a.li(Reg::A5, Topology::CTRL_WAKE_ALL as i32);
    a.sw(Reg::A2, 0, Reg::A5);
    a.bind(done);
}

/// One engine invocation over a prepared artifact set. Returns the run
/// outcome plus a memory sample taken *before* the sim drops (a pooled
/// job's arena goes back to the pool on drop).
fn run_one(
    arts: &Arc<SimArtifacts>,
    topo: Topology,
    cores: u32,
    mode: &str,
    pooled: bool,
    seed: &dyn Fn(&CycleSim),
) -> (Result<CycleResult, Trap>, Vec<u32>) {
    let mut sim = if pooled {
        CycleSim::from_pool(&MemPool::new(Arc::clone(arts)))
    } else {
        CycleSim::from_artifacts(Arc::clone(arts))
    };
    seed(&sim);
    let result = match mode {
        "event" => sim.run(cores),
        "naive" => sim.run_naive(cores),
        par => sim.run_parallel(cores, par.strip_prefix("par").unwrap().parse().unwrap()),
    };
    // Low interleaved words plus a sequential-view sample per tile (the
    // same coverage the sharding differential suite uses).
    let mut words = Vec::with_capacity(0x1000 + 16 * topo.num_tiles() as usize);
    for addr in (0..0x4000u32).step_by(4) {
        words.push(sim.memory().read_u32(addr));
    }
    for tile in 0..topo.num_tiles() {
        for w in 0..16 {
            words.push(sim.memory().read_u32(Topology::SEQ_BASE + tile * Topology::SEQ_STRIDE + w * 4));
        }
    }
    (result, words)
}

fn assert_same(
    label: &str,
    got: &(Result<CycleResult, Trap>, Vec<u32>),
    want: &(Result<CycleResult, Trap>, Vec<u32>),
) {
    match (&got.0, &want.0) {
        (Ok(g), Ok(w)) => {
            assert_eq!(g.cycles, w.cycles, "{label}: makespan differs");
            assert_eq!(g.deadlocked, w.deadlocked, "{label}: deadlock flag differs");
            assert_eq!(g.parked, w.parked, "{label}: parked set differs");
            assert_eq!(g.budgeted, w.budgeted, "{label}: budgeted set differs");
            for (core, (a, b)) in g.per_core.iter().zip(&w.per_core).enumerate() {
                assert_eq!(a, b, "{label}: per-core stats differ on core {core}");
            }
        }
        (Err(g), Err(w)) => assert_eq!(g, w, "{label}: trap differs"),
        (g, w) => panic!("{label}: outcome class differs: {g:?} vs {w:?}"),
    }
    if let Some(i) = got.1.iter().zip(&want.1).position(|(a, b)| a != b) {
        panic!("{label}: memory sample differs at word {i}");
    }
}

/// Runs the guest under both cadences — event engine, sharded engine at
/// 1/2/4/8 host threads, pooled event + pooled 4-thread legs — and pins
/// every outcome against the fixed-cadence `run_naive` reference.
fn assert_cadence_invisible(cores: u32, image: &Image, seed: impl Fn(&CycleSim)) {
    let topo = Topology::scaled(cores);
    assert!(topo.num_domains() > 1, "topology must shard");
    let fixed = arts_for(topo, image, EpochMode::Fixed);
    let adaptive = arts_for(topo, image, EpochMode::Adaptive);
    let reference = run_one(&fixed, topo, cores, "naive", false, &seed);
    for (arts, cadence) in [(&fixed, "fixed"), (&adaptive, "adaptive")] {
        for mode in ["event", "par1", "par2", "par4", "par8"] {
            let got = run_one(arts, topo, cores, mode, false, &seed);
            assert_same(&format!("{cadence}/{mode}"), &got, &reference);
        }
        for mode in ["event", "par4"] {
            let got = run_one(arts, topo, cores, mode, true, &seed);
            assert_same(&format!("{cadence}/{mode}/pooled"), &got, &reference);
        }
    }
}

/// Barrier episodes with a hartid-dependent pure-int spin in front: the
/// skewed arrivals park most of the cluster, which is exactly where the
/// sole-active grant rule fires, and the spin bodies are elision-eligible.
#[test]
fn barrier_guest_cadence_invisible() {
    for cores in [512u32, 1024] {
        let image = image_of(|a| {
            a.csrr(Reg::T0, csr::MHARTID);
            for phase in 0..2 {
                a.andi(Reg::T1, Reg::T0, 63);
                a.addi(Reg::T1, Reg::T1, 16);
                emit_spin(a, Reg::T2, Reg::T1);
                emit_barrier(a, 0x40 + 4 * phase, cores);
            }
        });
        assert_cadence_invisible(cores, &image, |_| {});
    }
}

/// Contended cross-group AMOs: every core bumps four shared interleaved
/// counters (bank 0 lives in group 0 — remote for most of the cluster)
/// and publishes a per-core result word the memory sample covers.
#[test]
fn amo_guest_cadence_invisible() {
    for cores in [512u32, 1024] {
        let image = image_of(|a| {
            a.csrr(Reg::T0, csr::MHARTID);
            a.li(Reg::T2, 1);
            for i in 0..4 {
                a.li(Reg::T1, 0x100 + 4 * i);
                a.amoadd_w(Reg::A2, Reg::T2, Reg::T1);
            }
            a.slli(Reg::A0, Reg::T0, 2);
            a.add(Reg::A3, Reg::T0, Reg::A2);
            a.li(Reg::A4, 0x1000);
            a.add(Reg::A4, Reg::A4, Reg::A0);
            a.sw(Reg::A3, 0, Reg::A4);
        });
        assert_cadence_invisible(cores, &image, |_| {});
    }
}

/// `lr/sc` pairs and sub-word stores against remote-group banks — the
/// operand-capture paths of the deferral logic, now also crossed with
/// the hazard-window invalidation of the quiescent fast path.
#[test]
fn lrsc_subword_guest_cadence_invisible() {
    for cores in [512u32, 1024] {
        let image = image_of(|a| {
            a.csrr(Reg::T0, csr::MHARTID);
            a.slli(Reg::A0, Reg::T0, 2);
            a.li(Reg::A1, 0x2000);
            a.add(Reg::A1, Reg::A1, Reg::A0);
            a.inst(Inst::LrW { rd: Reg::T1, rs1: Reg::A1 });
            a.addi(Reg::T1, Reg::T1, 7);
            a.inst(Inst::ScW { rd: Reg::T2, rs1: Reg::A1, rs2: Reg::T1 });
            a.li(Reg::A2, 0x3800);
            a.add(Reg::A2, Reg::A2, Reg::A0);
            a.li(Reg::T3, 0xbeef);
            a.sh(Reg::T3, 0, Reg::A2);
            a.li(Reg::T4, 0x77);
            a.sb(Reg::T4, 3, Reg::A2);
        });
        assert_cadence_invisible(cores, &image, |sim| {
            for i in 0..0x600u32 {
                sim.memory().write_u32(0x2000 + 4 * i, i * 11);
            }
        });
    }
}

/// Guest deadlock: one hart per ~quarter of the cluster parks forever.
/// Extended grants must not let the coordinator sail past the point
/// where the deadlock is detected, and the parked set must match.
#[test]
fn deadlock_guest_cadence_invisible() {
    for cores in [512u32, 1024] {
        let image = image_of(|a| {
            a.csrr(Reg::T0, csr::MHARTID);
            a.li(Reg::T1, 237);
            let skip = a.new_label();
            a.inst(Inst::MulDiv {
                op: terasim_riscv::MulDivOp::Rem,
                rd: Reg::T2,
                rs1: Reg::T0,
                rs2: Reg::T1,
            });
            a.bnez(Reg::T2, skip);
            a.wfi();
            a.bind(skip);
        });
        assert_cadence_invisible(cores, &image, |_| {});
    }
}

/// Forced cross-traffic **mid-grant**: long elision-eligible spins earn
/// extended windows, then every core breaks quiescence with a remote AMO
/// and a remote store — the defer-triggered trim path, interleaved with
/// a barrier so parked/woken cores land inside other domains' grants.
#[test]
fn cross_traffic_mid_grant_cadence_invisible() {
    for cores in [512u32, 1024] {
        let image = image_of(|a| {
            a.csrr(Reg::T0, csr::MHARTID);
            a.slli(Reg::A0, Reg::T0, 2);
            a.li(Reg::T2, 1);
            for phase in 0..2i32 {
                // Hartid-skewed quiescent stretch (pure-int, local).
                a.andi(Reg::T1, Reg::T0, 127);
                a.addi(Reg::T1, Reg::T1, 64);
                emit_spin(a, Reg::T3, Reg::T1);
                // Cross-group AMO into a group-0 bank, mid-stretch…
                a.li(Reg::A1, 0x180 + 4 * phase);
                a.amoadd_w(Reg::A2, Reg::T2, Reg::A1);
                // …another quiescent stretch…
                a.li(Reg::T1, 48);
                emit_spin(a, Reg::T3, Reg::T1);
                // …then a remote result store and a barrier.
                a.add(Reg::A3, Reg::T0, Reg::A2);
                a.li(Reg::A4, 0x1000 + 0x800 * phase);
                a.add(Reg::A4, Reg::A4, Reg::A0);
                a.sw(Reg::A3, 0, Reg::A4);
                emit_barrier(a, 0x40 + 4 * phase, cores);
            }
        });
        assert_cadence_invisible(cores, &image, |_| {});
    }
}

/// A trapping guest (hart 0 hits `ebreak` mid-run while the rest spin):
/// the cadence must be invisible even on aborted runs — same trap, same
/// PC, same partial stats and memory, per engine mode.
#[test]
fn trap_state_identical_across_cadences() {
    let cores = 512u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, csr::MHARTID);
        let others = a.new_label();
        a.bnez(Reg::T0, others);
        a.li(Reg::T1, 40);
        emit_spin(a, Reg::T2, Reg::T1);
        a.inst(Inst::Ebreak);
        a.bind(others);
        a.li(Reg::T1, 8);
        emit_spin(a, Reg::T2, Reg::T1);
    });
    let fixed = arts_for(topo, &image, EpochMode::Fixed);
    let adaptive = arts_for(topo, &image, EpochMode::Adaptive);
    for mode in ["event", "par1", "par4"] {
        let f = run_one(&fixed, topo, cores, mode, false, &|_| {});
        let a_ = run_one(&adaptive, topo, cores, mode, false, &|_| {});
        assert!(a_.0.is_err(), "{mode}: guest must trap");
        assert_same(&format!("trap/{mode}"), &a_, &f);
    }
}
