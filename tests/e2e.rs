//! End-to-end integration: PHY → kernel codegen → cluster simulation →
//! detection quality, across backends.

use terasim::experiments::{self, BatchConfig, ParallelConfig};
use terasim::DetectorKind;
use terasim_kernels::{data, MmseKernel, Precision};
use terasim_phy::{ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_terapool::{CycleSim, FastSim, Topology};

/// The two simulation backends must produce byte-identical detected
/// symbols for the same operands (the paper's determinism requirement).
#[test]
fn fast_and_cycle_backends_bit_identical() {
    for precision in [Precision::Half16, Precision::CDotp16, Precision::WDotp8] {
        let topo = Topology::scaled(16);
        let kernel = MmseKernel::new(4, precision).with_active_cores(16);
        let layout = kernel.layout(&topo).unwrap();
        let image = kernel.build(&topo).unwrap();

        let mut fast = FastSim::new(topo, &image).unwrap();
        let mut cycle = CycleSim::new(topo, &image).unwrap();
        let scenario =
            Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
        let mut generator = TxGenerator::new(scenario, 10.0, 77);
        for p in 0..layout.problems {
            let t = generator.next_transmission();
            let h: Vec<(f64, f64)> = t.h.iter().map(|z| (*z).into()).collect();
            let y: Vec<(f64, f64)> = t.y.iter().map(|z| (*z).into()).collect();
            data::write_problem(fast.memory(), &layout, p, &h, &y, t.sigma);
            data::write_problem(cycle.memory(), &layout, p, &h, &y, t.sigma);
        }
        fast.run_all(2).unwrap();
        cycle.run(16).unwrap();
        for p in 0..layout.problems {
            let a = data::read_xhat(fast.memory(), &layout, p);
            let b = data::read_xhat(cycle.memory(), &layout, p);
            for i in 0..4 {
                assert_eq!(a[i][0].to_bits(), b[i][0].to_bits(), "{precision} p{p} x[{i}].re");
                assert_eq!(a[i][1].to_bits(), b[i][1].to_bits(), "{precision} p{p} x[{i}].im");
            }
        }
    }
}

/// The fast backend's cycle estimate should land in the right ballpark of
/// the cycle-accurate reference (the paper reports ~30% average error;
/// we accept a generous band to stay robust).
#[test]
fn timing_estimate_within_band() {
    for (n, precision) in [(4, Precision::CDotp16), (8, Precision::Half16)] {
        let config = ParallelConfig { cores: 16, n, precision, seed: 5, unroll: 2 };
        let fast = experiments::parallel_fast(&config, 2).unwrap();
        let cycle = experiments::parallel_cycle(&config).unwrap();
        let ratio = fast.cluster_cycles as f64 / cycle.cycles as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "{precision} {n}x{n}: estimate {} vs reference {} (ratio {ratio:.2})",
            fast.cluster_cycles,
            cycle.cycles
        );
    }
}

/// Detection through the ISS improves with SNR and the 16-bit kernels
/// essentially match the reference at moderate SNR (Figure 9's headline).
#[test]
fn e2e_ber_sanity() {
    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
    let gold = experiments::ber_curve(scenario, &[8.0, 16.0], DetectorKind::Reference64, 150, 3_000, 13);
    let dut = experiments::ber_curve(
        scenario,
        &[8.0, 16.0],
        DetectorKind::Native(Precision::CDotp16),
        150,
        3_000,
        13,
    );
    assert!(gold[0].ber() > gold[1].ber());
    assert!(dut[0].ber() > dut[1].ber());
    // Same seed, same channel draws: the DUT should be within 2x of gold.
    let rel = dut[0].ber() / gold[0].ber().max(1e-9);
    assert!((0.5..2.0).contains(&rel), "DUT BER {} vs gold {}", dut[0].ber(), gold[0].ber());
}

/// ISS-in-the-loop BER equals native-model BER bit for bit (they are the
/// same arithmetic; this closes the loop at the system level).
#[test]
fn iss_and_native_detectors_equal_ber() {
    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
    let native =
        experiments::ber_curve(scenario, &[10.0], DetectorKind::Native(Precision::WDotp16), 40, 150, 21);
    let iss = experiments::ber_curve(scenario, &[10.0], DetectorKind::Iss(Precision::WDotp16), 40, 150, 21);
    assert_eq!(native[0].errors, iss[0].errors);
    assert_eq!(native[0].bits, iss[0].bits);
}

/// The Monte-Carlo batch on one core retires roughly `nsc` times one
/// problem's instructions and its cycle estimate scales linearly.
#[test]
fn batching_scales_linearly() {
    let one = experiments::mc_symbol_single(&BatchConfig {
        n: 4,
        precision: Precision::WDotp16,
        nsc: 2,
        seed: 1,
        unroll: 2,
    })
    .unwrap();
    let four = experiments::mc_symbol_single(&BatchConfig {
        n: 4,
        precision: Precision::WDotp16,
        nsc: 8,
        seed: 1,
        unroll: 2,
    })
    .unwrap();
    let ratio = four.instructions as f64 / one.instructions as f64;
    assert!((3.5..4.5).contains(&ratio), "instructions ratio {ratio}");
    assert!(one.verified && four.verified);
}

/// Bigger MIMO means superlinearly more cycles (O(N^3) Cholesky), and the
/// SIMD precisions beat 16bHalf — the Figure 7 ordering.
#[test]
fn cycle_count_orderings() {
    let cores = 8;
    let run = |n, precision| {
        experiments::parallel_cycle(&ParallelConfig { cores, n, precision, seed: 2, unroll: 2 })
            .unwrap()
            .cycles
    };
    let half_4 = run(4, Precision::Half16);
    let half_8 = run(8, Precision::Half16);
    assert!(half_8 as f64 > 3.0 * half_4 as f64, "expected superlinear growth: {half_4} -> {half_8}");

    let cdotp_8 = run(8, Precision::CDotp16);
    assert!(cdotp_8 < half_8, "16bCDotp ({cdotp_8}) must beat 16bHalf ({half_8})");
}
