//! Serving-daemon differentials: the persistent tier (artifact cache +
//! warm pools + bounded admission queue) must change *nothing* about
//! results — pooled-across-requests outcomes are bit-identical to fresh
//! serial rebuilds at every worker count — while its caching, eviction,
//! backpressure, drain and fault-accounting behaviours hold exactly.

use terasim::daemon::{
    open_loop, standard_mix, ArtifactCache, CachedScenario, Daemon, DaemonConfig, Rejected, ServeError,
    ServeRequest, ServeResponse,
};
use terasim::experiments::{self, BatchConfig};
use terasim::faults;
use terasim::serve::{BatchRunner, JobError, RunPolicy};
use terasim_kernels::Precision;

fn symbol_req(config: BatchConfig) -> ServeRequest {
    ServeRequest::Symbol { config }
}

fn scenario(n: u32, nsc: u32, seed: u64) -> BatchConfig {
    BatchConfig { n, precision: Precision::CDotp16, nsc, seed, unroll: 2 }
}

/// Per-job fingerprint of a fast-mode symbol run.
fn symbol_key(o: &experiments::BatchOutcome) -> (u64, u64, bool) {
    (o.cycles, o.instructions, o.verified)
}

/// The tentpole acceptance check: a daemon-served stream of requests for
/// one scenario — second request onward riding the warm cache and pool —
/// is bit-identical to fresh serial rebuilds, at every worker count
/// (hence every interleaving of cache lookups and arena recycling).
#[test]
fn daemon_served_symbols_match_fresh_serial_at_every_worker_count() {
    let config = scenario(4, 4, 120);
    let jobs = 8u64;
    let serial: Vec<(u64, u64, bool)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(j);
            symbol_key(&experiments::mc_symbol_single(&c).unwrap())
        })
        .collect();
    assert!(serial.iter().all(|k| k.2), "fresh reference runs must verify");

    for workers in [1usize, 2, 4, 7] {
        let daemon = Daemon::start(DaemonConfig { workers, ..DaemonConfig::default() });
        let tickets: Vec<_> = (0..jobs)
            .map(|j| {
                let mut c = config;
                c.seed = config.seed.wrapping_add(j);
                daemon.submit(symbol_req(c)).expect("default queue depth fits the batch")
            })
            .collect();
        let served: Vec<(u64, u64, bool)> = tickets
            .into_iter()
            .map(|t| match t.wait().response.expect("healthy request") {
                ServeResponse::Symbol(o) => symbol_key(&o),
                other => panic!("symbol request returned {other:?}"),
            })
            .collect();
        assert_eq!(served, serial, "daemon-served batch diverged at {workers} workers");
        let stats = daemon.shutdown();
        assert_eq!(stats.cache.misses, 1, "one scenario, one build ({workers} workers)");
        assert_eq!(stats.cache.hits, jobs - 1, "second request onward must skip the rebuild");
        assert!(stats.pools.recycled > 0, "warm pool must recycle arenas across requests");
    }
}

/// Cache hit/miss/eviction accounting under concurrent mixed requests:
/// three scenarios through a two-entry cache must evict, keep serving
/// correct results, and still end with a nonzero hit rate.
#[test]
fn cache_evicts_least_recent_scenario_under_concurrent_requests() {
    let a = scenario(4, 4, 1);
    let b = scenario(4, 8, 1);
    let c = scenario(4, 16, 1);
    let daemon = Daemon::start(DaemonConfig { workers: 4, cache_capacity: 2, ..DaemonConfig::default() });
    // Two rounds of A/B interleaving (warming both), then C forces an
    // eviction, then A again — possibly rebuilt, never wrong.
    let mut tickets = Vec::new();
    for seed in 0..2u64 {
        for cfg in [a, b] {
            let mut cfg = cfg;
            cfg.seed = seed;
            tickets.push(daemon.submit(symbol_req(cfg)).expect("admitted"));
        }
    }
    for cfg in [c, a] {
        tickets.push(daemon.submit(symbol_req(cfg)).expect("admitted"));
    }
    for t in tickets {
        assert!(t.wait().response.expect("healthy request").verified());
    }
    let stats = daemon.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.failed, 0);
    assert!(stats.cache.hits > 0, "interleaved same-scenario requests must hit");
    assert!(stats.cache.evictions >= 1, "third scenario must evict from a two-entry cache");
    assert_eq!(stats.cache.entries, 2, "cache stays at capacity");
}

/// Concurrent cold-start on one key: many workers racing the same
/// scenario must share a single build (one cache entry, one artifact
/// set) and all complete correctly.
#[test]
fn concurrent_cold_requests_share_one_build() {
    let daemon = Daemon::start(DaemonConfig { workers: 4, ..DaemonConfig::default() });
    let tickets: Vec<_> =
        (0..4u64).map(|seed| daemon.submit(symbol_req(scenario(4, 4, seed))).expect("admitted")).collect();
    for t in tickets {
        assert!(t.wait().response.expect("healthy request").verified());
    }
    let stats = daemon.shutdown();
    assert_eq!(stats.cache.entries, 1, "one scenario key, one entry");
    assert_eq!(stats.completed, 4);
}

/// The ISSUE's direct acceptance assertion, at the cache layer: the
/// second lookup of a key must not invoke the builder at all.
#[test]
fn second_lookup_skips_the_artifact_build() {
    let cache = ArtifactCache::new(2);
    let req = symbol_req(scenario(4, 4, 5));
    let mut builds = 0u32;
    let (first, hit1) = cache.get_or_build(req.key(), || {
        builds += 1;
        CachedScenario::build(&req)
    });
    assert!(first.is_ok() && !hit1 && builds == 1);
    let (second, hit2) = cache.get_or_build(req.key(), || {
        builds += 1;
        CachedScenario::build(&req)
    });
    assert!(hit2, "second lookup must be a warm hit");
    assert_eq!(builds, 1, "the builder must not run again");
    // Same entry, same artifact set: later requests run over the
    // identical immutable artifacts (no rebuild happened anywhere).
    assert!(std::sync::Arc::ptr_eq(first.unwrap().artifacts(), second.unwrap().artifacts()));
}

/// Fault-quarantine accounting must survive cache eviction: a panicked
/// job quarantines its arena in the cached scenario's pool; evicting
/// that scenario folds the pool's counters into the cache's retired
/// total instead of dropping them.
#[test]
fn quarantine_accounting_survives_cache_eviction() {
    let cache = ArtifactCache::new(1);
    let req_a = symbol_req(scenario(4, 4, 9));
    let (entry, _) = cache.get_or_build(req_a.key(), || CachedScenario::build(&req_a));
    let cached = entry.expect("scenario builds");

    // A supervised batch over the cached pool: job 0 panics while
    // holding a pooled simulator (quarantining its arena on unwind),
    // job 1 runs healthy on a fresh arena.
    let config = scenario(4, 4, 9);
    let scenario_handle = experiments::SymbolScenario::prepare(&config).unwrap();
    let policy = RunPolicy::new();
    let out = BatchRunner::with_workers(1).try_run_pooled_in(&policy, cached.pool(), (0..2u32).collect(), {
        let pool = cached.pool();
        move |ctx, &j| {
            if j == 0 {
                let _sim = terasim_terapool::FastSim::from_pool(pool);
                faults::inject_panic(0);
            }
            // The cached pool's artifacts differ from this ad-hoc
            // scenario's (separate builds), so the job falls back to
            // fresh memory for the run itself — the quarantine above is
            // what this test is about.
            scenario_handle.try_run_symbol(ctx, config.seed.wrapping_add(u64::from(j)))
        }
    });
    assert!(
        matches!(&out[0], Err(JobError::Panicked { payload }) if *payload == faults::panic_payload(0)),
        "job 0 must fail as the injected panic, got {:?}",
        out[0]
    );
    assert!(out[1].as_ref().is_ok_and(|o| o.verified));
    assert_eq!(cached.pool().stats().quarantined, 1, "panicked job's arena is quarantined");
    drop(cached);

    // Evict scenario A by inserting B into the one-entry cache.
    let req_b = symbol_req(scenario(4, 8, 9));
    let (entry_b, _) = cache.get_or_build(req_b.key(), || CachedScenario::build(&req_b));
    assert!(entry_b.is_ok());
    assert_eq!(cache.stats().evictions, 1, "capacity-1 cache must evict A for B");
    assert_eq!(
        cache.pool_stats().quarantined,
        1,
        "the evicted pool's quarantine count must survive in the retired total"
    );
}

/// Backpressure: with one busy worker and a two-deep queue, a burst of
/// submissions must see `Overloaded` rejections, and everything admitted
/// must still complete and drain.
#[test]
fn overload_rejects_beyond_high_water_and_drain_finishes_the_rest() {
    let daemon = Daemon::start(DaemonConfig { workers: 1, queue_depth: 2, ..DaemonConfig::default() });
    let mut tickets = Vec::new();
    let mut overloaded = 0u32;
    // The first request pins the worker on a cold scenario build; the
    // queue (depth 2) then fills and the rest of the burst bounces.
    for seed in 0..20u64 {
        match daemon.submit(symbol_req(scenario(4, 16, seed))) {
            Ok(t) => tickets.push(t),
            Err(Rejected::Overloaded { depth }) => {
                assert!(depth >= 2, "rejection must report the saturated depth");
                overloaded += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(overloaded > 0, "a 20-request burst must overflow a depth-2 queue");
    daemon.begin_drain();
    assert_eq!(
        daemon.submit(symbol_req(scenario(4, 16, 99))).unwrap_err(),
        Rejected::ShuttingDown,
        "drain stops intake"
    );
    for t in tickets {
        assert!(t.wait().response.expect("admitted work drains").verified());
    }
    let stats = daemon.shutdown();
    assert_eq!(stats.completed, stats.submitted, "every admitted request completed");
    assert_eq!(u64::from(overloaded), stats.rejected_overload);
    assert_eq!(stats.rejected_draining, 1);
}

/// The per-request policy flows through the daemon: an instruction
/// budget too small for the workload surfaces as a structured
/// `BudgetExhausted` failure, counted but contained — later daemons and
/// requests are unaffected.
#[test]
fn budget_exhaustion_is_contained_per_request() {
    let tiny =
        Daemon::start(DaemonConfig { policy: RunPolicy::new().with_budget(64), ..DaemonConfig::default() });
    let done = tiny.submit(symbol_req(scenario(4, 4, 3))).expect("admitted").wait();
    assert!(
        matches!(done.response, Err(ServeError::Job(JobError::BudgetExhausted { budget: 64 }))),
        "the policy budget must reach the engine and classify the fault, got {:?}",
        done.response
    );
    let stats = tiny.shutdown();
    assert_eq!((stats.completed, stats.failed), (0, 1));

    // Same scenario under a permissive daemon: unaffected.
    let daemon = Daemon::start(DaemonConfig::default());
    assert!(daemon
        .submit(symbol_req(scenario(4, 4, 3)))
        .expect("admitted")
        .wait()
        .response
        .expect("healthy")
        .verified());
}

/// The load generator end to end (the CI serve-smoke shape): saturating
/// mixed traffic, zero failures, nonzero cross-request cache hits, and
/// graceful shutdown accounting that matches the report.
#[test]
fn saturating_mixed_load_completes_with_cache_hits() {
    let daemon = Daemon::start(DaemonConfig { queue_depth: 8, ..DaemonConfig::default() });
    let report = open_loop(&daemon, &standard_mix(), 0.0, 24, 11);
    let stats = daemon.shutdown();
    assert_eq!(report.failed, 0, "no request may fail under clean synthetic load");
    assert_eq!(report.completed, 24);
    assert!(report.cache_hits > 0, "mixed traffic repeats scenarios: the cache must hit");
    assert!(report.p99_ns >= report.p50_ns);
    assert_eq!(stats.completed, report.completed);
    assert!(stats.pools.recycled > 0, "pools must recycle across requests");
}
