//! Differential validation of the cycle-accurate schedulers: the
//! event-driven ready-queue engine (`CycleSim::run`) must be
//! **bit-identical** — per-core [`CycleStats`], makespan and memory
//! contents — to the retained naive full-scan engine
//! (`CycleSim::run_naive`) on every workload class we model.

use terasim_kernels::{data, MmseKernel, Precision};
use terasim_phy::{ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_riscv::{Assembler, Image, Reg, Segment};
use terasim_terapool::{CycleResult, CycleSim, Topology};

/// Runs both schedulers on identical operands and pins stats + memory.
fn assert_engines_identical(topo: Topology, image: &Image, cores: u32, seed_mem: impl Fn(&CycleSim)) {
    let mut event = CycleSim::new(topo, image).unwrap();
    let mut naive = CycleSim::new(topo, image).unwrap();
    seed_mem(&event);
    seed_mem(&naive);

    let re: CycleResult = event.run(cores).unwrap();
    let rn: CycleResult = naive.run_naive(cores).unwrap();

    assert_eq!(re.cycles, rn.cycles, "makespan differs");
    assert_eq!(re.deadlocked, rn.deadlocked);
    assert_eq!(re.parked, rn.parked);
    for (core, (e, n)) in re.per_core.iter().zip(&rn.per_core).enumerate() {
        assert_eq!(e, n, "per-core stats differ on core {core}");
    }

    // Full L1 sweep: every word of every bank must match.
    for addr in (0..topo.l1_bytes()).step_by(4) {
        assert_eq!(event.memory().read_u32(addr), naive.memory().read_u32(addr), "L1 word {addr:#x} differs");
    }
}

/// The MMSE kernel on a small topology (2 tiles × 8 cores), all
/// precisions the paper times.
#[test]
fn mmse_kernel_bit_identical_across_engines() {
    let topo = Topology::scaled(16);
    for precision in [Precision::Half16, Precision::CDotp16, Precision::WDotp8] {
        let kernel = MmseKernel::new(4, precision).with_active_cores(16);
        let layout = kernel.layout(&topo).unwrap();
        let image = kernel.build(&topo).unwrap();
        assert_engines_identical(topo, &image, 16, |sim| {
            let scenario =
                Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
            let mut generator = TxGenerator::new(scenario, 11.0, 4242);
            for p in 0..layout.problems {
                let t = generator.next_transmission();
                let h: Vec<(f64, f64)> = t.h.iter().map(|z| (*z).into()).collect();
                let y: Vec<(f64, f64)> = t.y.iter().map(|z| (*z).into()).collect();
                data::write_problem(sim.memory(), &layout, p, &h, &y, t.sigma);
            }
        });
    }
}

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

/// Emits an amoadd-counting barrier: the last arrival wakes the others.
fn emit_barrier(a: &mut Assembler, counter_addr: i32, cores: u32) {
    a.li(Reg::A1, counter_addr);
    a.li(Reg::A2, 1);
    a.amoadd_w(Reg::A3, Reg::A2, Reg::A1);
    a.li(Reg::A4, (cores - 1) as i32);
    let last = a.new_label();
    let done = a.new_label();
    a.beq(Reg::A3, Reg::A4, last);
    a.wfi();
    a.j(done);
    a.bind(last);
    a.li(Reg::A5, Topology::CTRL_WAKE_ALL as i32);
    a.sw(Reg::A2, 0, Reg::A5);
    a.bind(done);
}

/// Barrier-heavy program in the style of the arch suite: four barrier
/// episodes with contended AMO work and strided remote loads between
/// them — the workload class where parked-core handling and wake timing
/// are most visible.
#[test]
fn barrier_heavy_program_bit_identical_across_engines() {
    let cores = 16u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        for phase in 0..4 {
            // Contended work: every core bumps a shared counter...
            a.li(Reg::T1, 0x100 + 4 * phase);
            a.li(Reg::T2, 1);
            a.amoadd_w(Reg::Zero, Reg::T2, Reg::T1);
            // ...and does strided loads that cross tiles.
            a.slli(Reg::A0, Reg::T0, 4);
            for _ in 0..8 {
                a.lw(Reg::A2, 0x400, Reg::A0);
                a.addi(Reg::A0, Reg::A0, 64);
            }
            // Per-core result store (checked via the memory sweep).
            a.slli(Reg::A3, Reg::T0, 2);
            a.add(Reg::A4, Reg::T0, Reg::A2);
            a.li(Reg::A6, 0x700 + 0x80 * phase);
            a.add(Reg::A6, Reg::A6, Reg::A3);
            a.sw(Reg::A4, 0, Reg::A6);
            emit_barrier(a, 0x40 + 4 * phase, cores);
        }
    });
    assert_engines_identical(topo, &image, cores, |sim| {
        for i in 0..0x100u32 {
            sim.memory().write_u32(0x400 + 4 * i, 0x1000_0000 + i);
        }
    });
}

/// Single-core and partial-cluster runs (non-trivial because the I$ and
/// ports are shared per tile).
#[test]
fn partial_cluster_bit_identical_across_engines() {
    let topo = Topology::scaled(16);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::A0, Reg::T0, 2);
        a.li(Reg::T1, 0);
        for _ in 0..32 {
            a.lw(Reg::A1, 0, Reg::A0);
            a.add(Reg::T1, Reg::T1, Reg::A1);
        }
        a.sw(Reg::T1, 0x600, Reg::A0);
    });
    for cores in [1, 3, 8] {
        assert_engines_identical(topo, &image, cores, |sim| {
            for i in 0..64u32 {
                sim.memory().write_u32(4 * i, 7 * i + 1);
            }
        });
    }
}

/// Deadlock paths report identically (partial stats, parked list).
#[test]
fn deadlock_reported_identically() {
    let topo = Topology::scaled(8);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.li(Reg::T1, 3);
        let skip = a.new_label();
        a.bge(Reg::T0, Reg::T1, skip);
        a.wfi(); // harts 0..3 sleep forever
        a.bind(skip);
    });
    assert_engines_identical(topo, &image, 8, |_| {});
    let mut sim = CycleSim::new(topo, &image).unwrap();
    let result = sim.run(8).unwrap();
    assert!(result.deadlocked);
    assert_eq!(result.parked, vec![0, 1, 2]);
}
