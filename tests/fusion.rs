//! Superinstruction-fusion differentials: the fused fast engine
//! ([`FusionMode::On`] — macro-op pairs dispatched as one superinstruction
//! plus SPMD convergence groups across harts) must be **bit-identical** —
//! registers, memory, [`RunStats`], stop reason — to the unfused
//! per-instruction interpreter ([`FusionMode::Off`]) and to the retained
//! seed `Cpu::execute` loop ([`resume_core`]), on every workload class:
//! straight-line code, loops, budget boundaries landing mid-pair,
//! trapping and deadlocking fault guests, batches at every worker count
//! (pooled and unpooled), and SPMD groups that are forced to diverge by
//! per-hart branches on `mhartid`.

use std::sync::Arc;

use terasim::experiments::{self, BatchConfig, SymbolScenario};
use terasim::faults;
use terasim::serve::{BatchRunner, JobError};
use terasim_iss::{
    resume_core, resume_fused, resume_lowered, Cpu, DenseMemory, FusedProgram, FusionMode, Program,
    RunConfig, RunStats, Scoreboard, StopReason, Trap, UopProgram,
};
use terasim_kernels::Precision;
use terasim_riscv::{csr, Assembler, Image, Reg, Segment};
use terasim_terapool::{ClusterResult, FastSim, Topology};

// --- ISS level: seed interpreter vs unfused table vs fused table -------

fn program_of(build: impl FnOnce(&mut Assembler)) -> Program {
    let mut a = Assembler::new(0x8000_0000);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(0x8000_0000);
    image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
    Program::translate(&image).unwrap()
}

struct IssRun {
    stop: Result<StopReason, Trap>,
    stats: RunStats,
    pc: u32,
    regs: [u32; 32],
    mem: Vec<u8>,
}

/// One hart's full final state under the chosen engine.
fn iss_run(
    program: &Program,
    hartid: u32,
    budget: u64,
    engine: &str, // "seed" | "unfused" | "fused"
) -> IssRun {
    let config = RunConfig { max_instructions: budget, ..RunConfig::default() };
    let mut cpu = Cpu::new(hartid);
    let mut mem = DenseMemory::new(0, 0x1000);
    let mut sb = Scoreboard::new();
    let mut stats = RunStats::default();
    let stop = match engine {
        "seed" => resume_core(&mut cpu, program, &mut mem, &config, &mut sb, &mut stats),
        "unfused" => {
            let table: UopProgram<DenseMemory> = UopProgram::lower(program, &config.latency);
            resume_lowered(&mut cpu, &table, &mut mem, &config, &mut sb, &mut stats)
        }
        _ => {
            let table: UopProgram<DenseMemory> = UopProgram::lower(program, &config.latency);
            let fused = FusedProgram::build(program, &table);
            resume_fused(&mut cpu, &fused, &mut mem, &config, &mut sb, &mut stats)
        }
    };
    let mut regs = [0u32; 32];
    for (r, slot) in Reg::ALL.into_iter().zip(regs.iter_mut()) {
        *slot = cpu.reg(r);
    }
    IssRun { stop, stats, pc: cpu.pc(), regs, mem: mem.read_bytes(0, 0x1000).to_vec() }
}

/// Three-way full-state differential over a budget sweep (budgets chosen
/// to land both before and inside fused pairs) and several hart IDs.
fn differential3(build: impl Fn(&mut Assembler) + Copy) {
    let program = program_of(build);
    for hartid in [0u32, 1, 3] {
        for budget in [u64::MAX, 100, 9, 6, 5, 3, 2, 1] {
            let seed = iss_run(&program, hartid, budget, "seed");
            for engine in ["unfused", "fused"] {
                let got = iss_run(&program, hartid, budget, engine);
                let tag = format!("hart {hartid}, budget {budget}, {engine}");
                assert_eq!(seed.stop, got.stop, "stop/trap diverged ({tag})");
                assert_eq!(seed.stats, got.stats, "RunStats diverged ({tag})");
                assert_eq!(seed.pc, got.pc, "pc diverged ({tag})");
                assert_eq!(seed.regs, got.regs, "registers diverged ({tag})");
                assert_eq!(seed.mem, got.mem, "memory diverged ({tag})");
            }
        }
    }
}

/// Loops, address generation, loads/stores and compare-branches — the
/// shapes the peephole pass fuses most densely.
#[test]
fn alu_loop_guest_identical_across_all_three_engines() {
    differential3(|a| {
        a.li(Reg::A0, 0);
        a.li(Reg::T0, 12);
        let top = a.new_label();
        a.bind(top);
        a.slli(Reg::A2, Reg::T0, 2);
        a.add(Reg::A0, Reg::A0, Reg::A2);
        a.sw(Reg::A0, 0x80, Reg::A2);
        a.lw(Reg::A3, 0x80, Reg::A2);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
    });
}

/// Post-increment load + SIMD dot-product MAC chain (the PHY kernels'
/// inner loop) with a branch on `mhartid` so different harts take
/// different paths through the same fused table.
#[test]
fn mac_chain_with_hartid_divergence_identical_across_all_three_engines() {
    differential3(|a| {
        a.csrr(Reg::T2, csr::MHARTID);
        a.li(Reg::A0, 0x100);
        a.li(Reg::A1, 0x200);
        a.addi(Reg::A6, Reg::T2, 3); // per-hart trip count
        let top = a.new_label();
        a.bind(top);
        a.p_lw(Reg::A2, 4, Reg::A0);
        a.p_lw(Reg::A3, 4, Reg::A1);
        a.vfcdotpex_c_s_h(Reg::T0, Reg::A2, Reg::A3);
        a.addi(Reg::A6, Reg::A6, -1);
        a.bnez(Reg::A6, top);
        a.sw(Reg::T0, 0x300, Reg::Zero);
    });
}

/// A guest that traps mid-pair: the second load faults outside the
/// memory range. Partial state — including the committed pair head —
/// must be identical on all three engines.
#[test]
fn trapping_guest_partial_state_identical_across_all_three_engines() {
    differential3(|a| {
        a.li(Reg::A1, 0x100);
        a.lui(Reg::A2, 0x7000_0000u32 as i32);
        a.lw(Reg::A3, 0, Reg::A1); // pair head: fine
        a.lw(Reg::A4, 0, Reg::A2); // pair tail: faults
        a.addi(Reg::A5, Reg::A4, 1); // never reached
    });
}

// --- Cluster level: symbol batches at every worker count ---------------

/// Per-job fingerprint of a fast-mode symbol run.
fn symbol_key(o: &experiments::BatchOutcome) -> (u64, u64, bool) {
    (o.cycles, o.instructions, o.verified)
}

/// Fused and unfused symbol batches must be bit-identical to each other
/// and to fresh serial rebuilds, at workers 1/2/4/7, pooled and
/// unpooled — every work-stealing schedule, every arena-recycling path.
#[test]
fn symbol_batches_identical_fused_and_unfused_at_every_worker_count() {
    let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 77, unroll: 2 };
    let jobs = 8u32;
    let on = SymbolScenario::prepare_with_fusion(&config, FusionMode::On).unwrap();
    let off = SymbolScenario::prepare_with_fusion(&config, FusionMode::Off).unwrap();

    // Serial reference: the unfused interpreter, one fresh run per job.
    let serial: Vec<(u64, u64, bool)> = (0..jobs)
        .map(|j| symbol_key(&off.run_symbol(config.seed.wrapping_add(u64::from(j))).unwrap()))
        .collect();

    for workers in [1usize, 2, 4, 7] {
        for pooled in [false, true] {
            for (label, scenario) in [("fused", &on), ("unfused", &off)] {
                let runner = BatchRunner::with_workers(workers);
                let keys: Vec<(u64, u64, bool)> = if pooled {
                    runner.run_pooled(scenario.artifacts(), (0..jobs).collect(), |ctx, j| {
                        scenario
                            .run_symbol_pooled(
                                ctx.pool().expect("pooled batch"),
                                config.seed.wrapping_add(u64::from(j)),
                            )
                            .map(|o| symbol_key(&o))
                            .map_err(|e| e.to_string())
                    })
                } else {
                    runner.run((0..jobs).collect(), |_ctx, j| {
                        scenario
                            .run_symbol(config.seed.wrapping_add(u64::from(j)))
                            .map(|o| symbol_key(&o))
                            .map_err(|e| e.to_string())
                    })
                }
                .into_iter()
                .collect::<Result<_, String>>()
                .unwrap();
                assert_eq!(
                    keys, serial,
                    "{label} batch diverged from serial unfused runs ({workers} workers, pooled={pooled})"
                );
            }
        }
    }
}

// --- Cluster level: fault guests, fusion on vs off ---------------------

fn fast_sim_with_fusion(arts: &Arc<terasim_terapool::SimArtifacts>, fusion: FusionMode) -> FastSim {
    let mut sim = FastSim::from_artifacts(Arc::clone(arts));
    sim.set_config(RunConfig { fusion, ..arts.fast_config().clone() });
    sim
}

/// The trap and deadlock fault guests must produce the same [`JobError`]
/// — same trap PC, same parked-hart list — with fusion on and off.
#[test]
fn fault_guests_surface_identically_fused_and_unfused() {
    let topo = Topology::scaled(8);

    let trap_arts = faults::trap_artifacts(topo);
    for fusion in [FusionMode::On, FusionMode::Off] {
        let mut sim = fast_sim_with_fusion(&trap_arts, fusion);
        let err = match sim.run_cores(0..1, 1) {
            Err(trap) => JobError::Trap(trap),
            Ok(res) => JobError::check_fast(&res, None).expect_err("trap guest must not complete"),
        };
        assert_eq!(err, JobError::Trap(Trap::IllegalFetch { pc: 0 }), "{fusion:?}");
    }

    let deadlock_arts = faults::deadlock_artifacts(topo);
    let mut results: Vec<ClusterResult> = Vec::new();
    for fusion in [FusionMode::On, FusionMode::Off] {
        let mut sim = fast_sim_with_fusion(&deadlock_arts, fusion);
        let res = sim.run_cores(0..4, 1).expect("deadlock guest does not trap");
        assert!(res.deadlocked, "{fusion:?}");
        assert_eq!(res.parked, vec![0, 1, 2, 3], "{fusion:?}");
        results.push(res);
    }
    assert_eq!(results[0].per_core, results[1].per_core, "deadlock partial stats diverged");
    assert_eq!(results[0].cycles, results[1].cycles, "deadlock makespan diverged");
}

// --- Cluster level: SPMD convergence with forced divergence ------------

/// A guest built to stress convergence-group bookkeeping: every hart
/// starts on the same PC stream, then branches on `mhartid` parity into
/// different code paths with per-hart trip counts, so the initial
/// all-lanes group splits repeatedly before re-joining at the exit.
fn divergence_image() -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    a.csrr(Reg::T0, csr::MHARTID);
    // Shared prologue: everyone converged.
    a.slli(Reg::A0, Reg::T0, 2);
    a.addi(Reg::A1, Reg::A0, 64);
    let odd = a.new_label();
    let join = a.new_label();
    a.andi(Reg::T1, Reg::T0, 1);
    a.bnez(Reg::T1, odd);
    // Even harts: fixed-count ALU loop.
    a.li(Reg::A2, 0);
    a.li(Reg::T2, 6);
    let etop = a.new_label();
    a.bind(etop);
    a.add(Reg::A2, Reg::A2, Reg::T2);
    a.addi(Reg::T2, Reg::T2, -1);
    a.bnez(Reg::T2, etop);
    a.j(join);
    // Odd harts: per-hart trip count (hartid-dependent divergence depth).
    a.bind(odd);
    a.li(Reg::A2, 1);
    a.andi(Reg::T2, Reg::T0, 7);
    a.addi(Reg::T2, Reg::T2, 1);
    let otop = a.new_label();
    a.bind(otop);
    a.add(Reg::A2, Reg::A2, Reg::A2);
    a.addi(Reg::T2, Reg::T2, -1);
    a.bnez(Reg::T2, otop);
    a.bind(join);
    // Re-converged epilogue: per-hart result store.
    a.li(Reg::A3, 0x800);
    a.slli(Reg::A4, Reg::T0, 2);
    a.add(Reg::A3, Reg::A3, Reg::A4);
    a.sw(Reg::A2, 0, Reg::A3);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

/// SPMD convergence mode (fusion on, many harts per host chunk) vs the
/// per-lane unfused interpreter at 16 and 512 cores: identical per-hart
/// [`RunStats`], makespan and memory — including under budgets that cut
/// lanes off mid-divergence — for every guest schedule the group
/// split/re-queue logic produces.
#[test]
fn spmd_forced_divergence_identical_at_16_and_512_cores() {
    let image = divergence_image();
    for cores in [16u32, 512] {
        let topo = Topology::scaled(cores);
        let arts = terasim_terapool::SimArtifacts::build(topo, &image).unwrap();
        for budget in [u64::MAX, 1000, 37, 5] {
            let mut outs: Vec<ClusterResult> = Vec::new();
            let mut mems: Vec<Vec<u32>> = Vec::new();
            for fusion in [FusionMode::On, FusionMode::Off] {
                let mut sim = fast_sim_with_fusion(&arts, fusion);
                let mut config = RunConfig { fusion, ..arts.fast_config().clone() };
                config.max_instructions = budget;
                sim.set_config(config);
                let res = sim.run_cores(0..cores, 1).expect("divergence guest never traps");
                mems.push((0..cores).map(|h| sim.memory().read_u32(0x800 + 4 * h)).collect());
                outs.push(res);
            }
            let tag = format!("{cores} cores, budget {budget}");
            assert_eq!(outs[0].per_core, outs[1].per_core, "per-hart stats diverged ({tag})");
            assert_eq!(outs[0].cycles, outs[1].cycles, "makespan diverged ({tag})");
            assert_eq!(outs[0].deadlocked, outs[1].deadlocked, "deadlock flag diverged ({tag})");
            assert_eq!(mems[0], mems[1], "per-hart results diverged ({tag})");
        }
    }
}

/// The profiled engine (instrumented unfused order with the fused
/// table's dispatch decisions replayed) is also bit-identical, and its
/// pair histogram covers every retirement.
#[test]
fn profiled_engine_identical_and_histogram_covers_all_retirements() {
    let config = BatchConfig { n: 4, precision: Precision::Half16, nsc: 2, seed: 5, unroll: 2 };
    let on = SymbolScenario::prepare_with_fusion(&config, FusionMode::On).unwrap();
    let base = on.run_symbol(config.seed).unwrap();
    let (out, prof) = on.run_symbol_profiled(config.seed).unwrap();
    assert_eq!(symbol_key(&out), symbol_key(&base), "profiled run diverged");
    let paired: u64 = prof.pair_counts.iter().flatten().sum();
    assert_eq!(paired + 1, prof.total_retired, "every retirement after the first forms one pair");
    assert!(prof.fused_retired > 0 && prof.fused_retired <= prof.total_retired);
    assert!(prof.fused_pct() > 0.0);
}
