//! Epoch-sharded cycle engine, full-workload differential: the parallel
//! MMSE kernel on multi-group topologies must produce bit-identical
//! per-core `CycleStats`, makespans and memory contents across
//! `run` / `run_naive` / `run_parallel` at every thread count — and its
//! architectural results must still match the bit-true native model.

use terasim_kernels::{data, native, MmseKernel, Precision, C64};
use terasim_phy::{ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_terapool::{CycleResult, CycleSim, Topology};

/// One generated subcarrier problem: `(H, y, sigma)`.
type Problem = (Vec<C64>, Vec<C64>, f64);

/// Builds the MMSE workload, seeds identical operands into a fresh sim,
/// runs it with `run_with`, and returns the result + solved memory.
fn mmse_case(
    topo: Topology,
    cores: u32,
    precision: Precision,
    run_with: impl FnOnce(&mut CycleSim) -> CycleResult,
) -> (CycleResult, Vec<[u16; 2]>, Vec<Problem>) {
    let n = 4u32;
    let kernel = MmseKernel::new(n, precision).with_active_cores(cores);
    let layout = kernel.layout(&topo).unwrap();
    let image = kernel.build(&topo).unwrap();
    let mut sim = CycleSim::new(topo, &image).unwrap();
    let scenario = Mimo {
        n_tx: n as usize,
        n_rx: n as usize,
        modulation: Modulation::Qam16,
        channel: ChannelKind::Rayleigh,
    };
    let mut generator = TxGenerator::new(scenario, 10.0, 777);
    let mut problems = Vec::new();
    for p in 0..layout.problems {
        let t = generator.next_transmission();
        let h: Vec<C64> = t.h.iter().map(|z| (*z).into()).collect();
        let y: Vec<C64> = t.y.iter().map(|z| (*z).into()).collect();
        data::write_problem(sim.memory(), &layout, p, &h, &y, t.sigma);
        problems.push((h, y, t.sigma));
    }
    let result = run_with(&mut sim);
    let mut xhats = Vec::new();
    for p in 0..layout.problems {
        for x in data::read_xhat(sim.memory(), &layout, p) {
            xhats.push([x[0].to_bits(), x[1].to_bits()]);
        }
    }
    (result, xhats, problems)
}

#[test]
fn mmse_at_scale_three_way_and_thread_invariant() {
    for (cores, precision) in [(512u32, Precision::CDotp16), (1024, Precision::Half16)] {
        let topo = Topology::scaled(cores);
        assert!(topo.num_domains() > 1);

        let (reference, ref_xhat, problems) =
            mmse_case(topo, cores, precision, |sim| sim.run(cores).unwrap());

        // Architectural correctness survives the epoch-deferred model:
        // the guest's results still match the bit-true native model.
        let n = 4usize;
        for (p, (h, y, sigma)) in problems.iter().enumerate() {
            let want = native::detect(precision, n, h, y, *sigma);
            for (i, w) in want.iter().enumerate() {
                assert_eq!(
                    ref_xhat[p * n + i],
                    [w[0].to_bits(), w[1].to_bits()],
                    "cores={cores}: native mismatch at problem {p} element {i}"
                );
            }
        }

        let check = |label: &str, run_with: Box<dyn FnOnce(&mut CycleSim) -> CycleResult>| {
            let (result, xhat, _) = mmse_case(topo, cores, precision, run_with);
            assert_eq!(result.cycles, reference.cycles, "{label}: makespan differs");
            assert_eq!(result.per_core, reference.per_core, "{label}: per-core stats differ");
            assert_eq!(result.deadlocked, reference.deadlocked, "{label}");
            assert_eq!(xhat, ref_xhat, "{label}: solved outputs differ");
        };
        check("naive", Box::new(|sim| sim.run_naive(cores).unwrap()));
        for threads in [1usize, 2, 4] {
            check(
                &format!("parallel x{threads}"),
                Box::new(move |sim| sim.run_parallel(cores, threads).unwrap()),
            );
        }
    }
}
