//! Determinism guarantees: the paper's testbench requirement (§I) is
//! "deterministic behavior" — identical results regardless of host thread
//! count, run repetition, or backend.

use terasim::experiments::{self, ParallelConfig};
use terasim_kernels::{data, MmseKernel, Precision};
use terasim_phy::{ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_terapool::{FastSim, Topology};

fn run_with_threads(threads: usize) -> Vec<u16> {
    let topo = Topology::scaled(16);
    let kernel = MmseKernel::new(4, Precision::CDotp16).with_active_cores(16);
    let layout = kernel.layout(&topo).unwrap();
    let image = kernel.build(&topo).unwrap();
    let mut sim = FastSim::new(topo, &image).unwrap();
    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
    let mut generator = TxGenerator::new(scenario, 12.0, 1234);
    for p in 0..layout.problems {
        let t = generator.next_transmission();
        let h: Vec<(f64, f64)> = t.h.iter().map(|z| (*z).into()).collect();
        let y: Vec<(f64, f64)> = t.y.iter().map(|z| (*z).into()).collect();
        data::write_problem(sim.memory(), &layout, p, &h, &y, t.sigma);
    }
    sim.run_all(threads).unwrap();
    (0..layout.problems)
        .flat_map(|p| data::read_xhat(sim.memory(), &layout, p))
        .flat_map(|c| [c[0].to_bits(), c[1].to_bits()])
        .collect()
}

#[test]
fn thread_count_does_not_change_results() {
    let one = run_with_threads(1);
    let two = run_with_threads(2);
    let four = run_with_threads(4);
    assert_eq!(one, two);
    assert_eq!(one, four);
}

#[test]
fn repeated_runs_identical_cycles() {
    let config = ParallelConfig { cores: 8, n: 4, precision: Precision::WDotp16, seed: 55, unroll: 2 };
    let a = experiments::parallel_fast(&config, 2).unwrap();
    let b = experiments::parallel_fast(&config, 1).unwrap();
    assert_eq!(a.cluster_cycles, b.cluster_cycles, "cycle estimate must not depend on host threads");
    assert_eq!(a.instructions, b.instructions);
    let c1 = experiments::parallel_cycle(&config).unwrap();
    let c2 = experiments::parallel_cycle(&config).unwrap();
    assert_eq!(c1.cycles, c2.cycles);
    assert_eq!(c1.breakdown.stall_lsu, c2.breakdown.stall_lsu);
}

/// The parallel SNR sweep derives every point's seed from the point
/// *index*, never from the executing thread, so the curve must be
/// identical for any host thread count (including oversubscription).
#[test]
fn parallel_snr_sweep_is_thread_count_invariant() {
    use terasim::DetectorKind;
    use terasim_kernels::Precision as P;

    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
    let snrs = [6.0, 9.0, 12.0, 15.0, 18.0];
    let detector = DetectorKind::Native(P::CDotp16).instantiate(4);
    let run = |threads: usize| {
        terasim_phy::sweep_with_threads(scenario, &snrs, &*detector, 120, 2_000, 77, threads)
    };
    let serial = run(1);
    for threads in [2, 4, 9] {
        let parallel = run(threads);
        assert_eq!(serial, parallel, "sweep diverged at {threads} host threads");
    }
    // Sanity: the sweep did real work and the curve is monotone-ish.
    assert!(serial[0].ber() > serial[4].ber());
}

/// Same guarantee with the stateful ISS-in-the-loop detector shared
/// (behind its lock) across the sweep workers.
#[test]
fn parallel_snr_sweep_deterministic_with_iss_detector() {
    use terasim::DetectorKind;
    use terasim_kernels::Precision as P;

    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
    let snrs = [8.0, 12.0, 16.0];
    let detector = DetectorKind::Iss(P::WDotp16).instantiate(4);
    let a = terasim_phy::sweep_with_threads(scenario, &snrs, &*detector, 25, 60, 5, 1);
    let b = terasim_phy::sweep_with_threads(scenario, &snrs, &*detector, 25, 60, 5, 3);
    assert_eq!(a, b, "ISS-in-the-loop sweep must not depend on thread interleaving");
}

#[test]
fn seeds_change_data_but_not_instruction_count_much() {
    // Control flow is data-independent (no data-dependent branches in the
    // kernel), so the retired instruction count is identical across seeds.
    let mk = |seed| ParallelConfig { cores: 8, n: 4, precision: Precision::Half16, seed, unroll: 2 };
    let a = experiments::parallel_fast(&mk(1), 2).unwrap();
    let b = experiments::parallel_fast(&mk(2), 2).unwrap();
    assert_eq!(a.instructions, b.instructions, "kernel control flow is data-independent");
}
