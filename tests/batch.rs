//! Batch determinism: a batch of N jobs served over one shared artifact
//! set must be bit-identical to N serial runs that each rebuild their
//! artifacts from scratch — for every worker count (hence every
//! work-stealing schedule and completion order), on both backends,
//! including multi-group topologies where cycle jobs widen into idle
//! worker lanes through the epoch-sharded engine.

use terasim::experiments::{
    self, BatchConfig, CycleEngine, ParallelConfig, ParallelScenario, SymbolScenario,
};
use terasim::serve::BatchRunner;
use terasim_kernels::Precision;

/// Per-job fingerprint of a fast-mode symbol run.
fn symbol_key(o: &experiments::BatchOutcome) -> (u64, u64, bool) {
    (o.cycles, o.instructions, o.verified)
}

#[test]
fn fast_symbol_batch_is_bit_identical_to_serial_rebuilds() {
    let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 21, unroll: 2 };
    let jobs = 6u32;

    // Serial reference: each run rebuilds kernel, image, translation and
    // lowered tables from scratch (the pre-serve-layer path).
    let serial: Vec<(u64, u64, bool)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(u64::from(j));
            symbol_key(&experiments::mc_symbol_single(&c).unwrap())
        })
        .collect();
    assert!(serial.iter().all(|k| k.2), "serial reference runs must verify");

    // Batched: one shared artifact set, every worker count. Oversubscribed
    // counts (more workers than a 1-CPU host can run at once) shake the
    // completion order.
    let scenario = SymbolScenario::prepare(&config).unwrap();
    for workers in [1usize, 2, 4, 7] {
        let batch = BatchRunner::with_workers(workers).run((0..jobs).collect(), |_ctx, j| {
            symbol_key(&scenario.run_symbol(config.seed.wrapping_add(u64::from(j))).unwrap())
        });
        assert_eq!(batch, serial, "fast batch diverged at {workers} workers");
    }
}

#[test]
fn parallel_fast_batch_matches_serial_at_cluster_scale() {
    // Whole-cluster fast jobs (every hart active) batched over shared
    // artifacts, seeds per job.
    let config = ParallelConfig { cores: 16, n: 4, precision: Precision::Half16, seed: 40, unroll: 2 };
    let jobs = 4u64;
    let serial: Vec<(u64, u64)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(j);
            let out = experiments::parallel_fast(&c, 1).unwrap();
            assert!(out.verified);
            (out.cluster_cycles, out.instructions)
        })
        .collect();
    let scenario = ParallelScenario::prepare(&config).unwrap();
    for workers in [1usize, 3] {
        let batch = BatchRunner::with_workers(workers).run((0..jobs).collect(), |_ctx, j| {
            let out = scenario.run_fast_seeded(1, config.seed.wrapping_add(j)).unwrap();
            assert!(out.verified);
            (out.cluster_cycles, out.instructions)
        });
        assert_eq!(batch, serial, "parallel fast batch diverged at {workers} workers");
    }
}

/// Cycle-accurate batch on a multi-group topology (512 cores = 2 groups):
/// jobs run the epoch-sharded engine and claim idle worker lanes; per-job
/// stats, makespan and verification must match serial rebuilt runs for
/// every worker count.
#[test]
fn cycle_batch_is_bit_identical_on_multi_group_topology() {
    let config = ParallelConfig { cores: 512, n: 4, precision: Precision::WDotp8, seed: 31, unroll: 2 };
    let jobs = 2u64;

    let serial: Vec<(u64, terasim_terapool::CycleStats, u64)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(j);
            let out = experiments::parallel_cycle_with_engine(&c, CycleEngine::EventDriven).unwrap();
            assert!(out.verified);
            (out.cycles, out.breakdown, out.instructions)
        })
        .collect();

    let scenario = ParallelScenario::prepare(&config).unwrap();
    for workers in [1usize, 2] {
        let batch = BatchRunner::with_workers(workers).run((0..jobs).collect(), |ctx, j| {
            // The sharded engine is bit-identical at every thread count,
            // so claiming idle lanes is invisible in the results.
            let out = scenario
                .run_cycle_seeded(CycleEngine::Parallel(ctx.claimable_threads()), config.seed.wrapping_add(j))
                .unwrap();
            assert!(out.verified);
            (out.cycles, out.breakdown, out.instructions)
        });
        assert_eq!(batch, serial, "cycle batch diverged at {workers} workers");
    }
}

#[test]
fn ber_batch_matches_phy_sweep() {
    use terasim::DetectorKind;
    use terasim_phy::{ber_jobs, ChannelKind, Mimo, Modulation};

    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
    let snrs = [6.0, 10.0, 14.0];
    let detector = DetectorKind::Native(Precision::CDotp16).instantiate(4);
    let reference = terasim_phy::sweep_with_threads(scenario, &snrs, &*detector, 80, 1_500, 13, 1);
    for workers in [1usize, 2, 5] {
        let batch = BatchRunner::with_workers(workers)
            .run(ber_jobs(scenario, &snrs, 13), |_ctx, job| job.run(&*detector, 80, 1_500));
        assert_eq!(batch, reference, "BER batch diverged at {workers} workers");
    }
    // And the experiments-level entry point (detector instantiated inside).
    let curve =
        experiments::ber_curve(scenario, &snrs, DetectorKind::Native(Precision::CDotp16), 80, 1_500, 13);
    assert_eq!(curve, reference);
}

#[test]
fn mc_symbols_parallel_is_worker_count_invariant() {
    let config = BatchConfig { n: 4, precision: Precision::Half16, nsc: 4, seed: 11, unroll: 2 };
    let (_, one) = experiments::mc_symbols_parallel(&config, 5, 1).unwrap();
    let keys: Vec<_> = one.iter().map(symbol_key).collect();
    for threads in [2usize, 4] {
        let (_, many) = experiments::mc_symbols_parallel(&config, 5, threads).unwrap();
        assert_eq!(many.iter().map(symbol_key).collect::<Vec<_>>(), keys, "diverged at {threads} workers");
    }
    assert!(one.iter().all(|o| o.verified));
}
