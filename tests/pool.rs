//! Pooled-memory determinism: a batch whose jobs recycle cluster
//! memories through a `MemPool` must be bit-identical to fresh-memory
//! serial runs that each allocate from scratch — at every worker count
//! (hence every recycling order and dirty history), on both backends and
//! for ISS-in-the-loop BER batches.

use terasim::experiments::{
    self, BatchConfig, CycleEngine, ParallelConfig, ParallelScenario, SymbolScenario,
};
use terasim::serve::BatchRunner;
use terasim::DetectorKind;
use terasim_kernels::Precision;

/// Per-job fingerprint of a fast-mode symbol run.
fn symbol_key(o: &experiments::BatchOutcome) -> (u64, u64, bool) {
    (o.cycles, o.instructions, o.verified)
}

#[test]
fn pooled_fast_symbol_batch_matches_fresh_serial_rebuilds() {
    let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 77, unroll: 2 };
    let jobs = 6u32;

    // Fresh-memory serial reference: every run allocates its own arena
    // (and rebuilds its artifacts — the strictest baseline).
    let serial: Vec<(u64, u64, bool)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(u64::from(j));
            symbol_key(&experiments::mc_symbol_single(&c).unwrap())
        })
        .collect();
    assert!(serial.iter().all(|k| k.2), "fresh reference runs must verify");

    let scenario = SymbolScenario::prepare(&config).unwrap();
    for workers in [1usize, 2, 4, 7] {
        let batch = BatchRunner::with_workers(workers).run_pooled(
            scenario.artifacts(),
            (0..jobs).collect(),
            |ctx, j| {
                let pool = ctx.pool().expect("pooled batch");
                symbol_key(&scenario.run_symbol_pooled(pool, config.seed.wrapping_add(u64::from(j))).unwrap())
            },
        );
        assert_eq!(batch, serial, "pooled fast batch diverged at {workers} workers");
    }
}

/// Pooled cycle-accurate batch on a multi-group topology (512 cores =
/// 2 groups): jobs recycle arenas *and* widen into idle worker lanes via
/// the epoch-sharded engine; stats, makespan and verification must match
/// fresh-memory serial runs for every worker count.
#[test]
fn pooled_cycle_batch_matches_fresh_on_multi_group_topology() {
    let config = ParallelConfig { cores: 512, n: 4, precision: Precision::WDotp8, seed: 61, unroll: 2 };
    let jobs = 2u64;

    let serial: Vec<(u64, terasim_terapool::CycleStats, u64)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(j);
            let out = experiments::parallel_cycle_with_engine(&c, CycleEngine::EventDriven).unwrap();
            assert!(out.verified);
            (out.cycles, out.breakdown, out.instructions)
        })
        .collect();

    let scenario = ParallelScenario::prepare(&config).unwrap();
    for workers in [1usize, 2, 4, 7] {
        let batch = BatchRunner::with_workers(workers).run_pooled(
            scenario.artifacts(),
            (0..jobs).collect(),
            |ctx, j| {
                let pool = ctx.pool().expect("pooled batch");
                let out = scenario
                    .run_cycle_pooled(
                        pool,
                        CycleEngine::Parallel(ctx.claimable_threads()),
                        config.seed.wrapping_add(j),
                    )
                    .unwrap();
                assert!(out.verified);
                (out.cycles, out.breakdown, out.instructions)
            },
        );
        assert_eq!(batch, serial, "pooled cycle batch diverged at {workers} workers");
    }
}

/// Pooled fast-mode batch at cluster scale: every hart active, arenas
/// recycled between whole-cluster jobs.
#[test]
fn pooled_parallel_fast_batch_matches_fresh_serial() {
    let config = ParallelConfig { cores: 16, n: 4, precision: Precision::Half16, seed: 52, unroll: 2 };
    let jobs = 4u64;
    let serial: Vec<(u64, u64)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(j);
            let out = experiments::parallel_fast(&c, 1).unwrap();
            assert!(out.verified);
            (out.cluster_cycles, out.instructions)
        })
        .collect();
    let scenario = ParallelScenario::prepare(&config).unwrap();
    for workers in [1usize, 2, 4, 7] {
        let batch = BatchRunner::with_workers(workers).run_pooled(
            scenario.artifacts(),
            (0..jobs).collect(),
            |ctx, j| {
                let out = scenario
                    .run_fast_pooled(ctx.pool().expect("pooled batch"), 1, config.seed.wrapping_add(j))
                    .unwrap();
                assert!(out.verified);
                (out.cluster_cycles, out.instructions)
            },
        );
        assert_eq!(batch, serial, "pooled parallel fast batch diverged at {workers} workers");
    }
}

/// ISS-in-the-loop BER batch with one *pooled* detector per job: shared
/// kernel artifacts, recycled cluster memory. Must reproduce the curve
/// of per-job fresh detectors exactly, at every worker count.
#[test]
fn pooled_iss_ber_batch_matches_fresh_detectors() {
    use terasim_phy::{ber_jobs, ChannelKind, Mimo, Modulation};

    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
    let snrs = [8.0, 14.0];
    let kind = DetectorKind::Iss(Precision::CDotp16);
    let (errors, iters) = (6u64, 24u64);

    // Fresh reference: one brand-new detector (own artifacts, own
    // memory) per job, serially.
    let reference = BatchRunner::with_workers(1)
        .run(ber_jobs(scenario, &snrs, 19), |_ctx, job| job.run(&*kind.instantiate(4), errors, iters));

    let pool = kind.memory_pool(4).expect("ISS kinds own cluster memory");
    for workers in [1usize, 2, 4, 7] {
        let batch = BatchRunner::with_workers(workers).run(ber_jobs(scenario, &snrs, 19), |_ctx, job| {
            job.run(&*kind.instantiate_pooled(4, &pool), errors, iters)
        });
        assert_eq!(batch, reference, "pooled BER batch diverged at {workers} workers");
    }
    let stats = pool.stats();
    assert!(stats.recycled > 0, "the BER batches must actually recycle ({stats:?})");
    // Non-ISS kinds have no cluster memory to pool.
    assert!(DetectorKind::Native(Precision::CDotp16).memory_pool(4).is_none());
}

/// `mc_symbols_parallel` now recycles memory internally; its results must
/// stay invariant across worker counts and identical to the unpooled
/// per-symbol path.
#[test]
fn mc_symbols_parallel_recycles_invariantly() {
    let config = BatchConfig { n: 4, precision: Precision::Half16, nsc: 4, seed: 23, unroll: 2 };
    let scenario = SymbolScenario::prepare(&config).unwrap();
    let unpooled: Vec<_> = (0..5u32)
        .map(|s| symbol_key(&scenario.run_symbol(config.seed.wrapping_add(u64::from(s))).unwrap()))
        .collect();
    for threads in [1usize, 3] {
        let (_, outcomes) = experiments::mc_symbols_parallel(&config, 5, threads).unwrap();
        assert_eq!(
            outcomes.iter().map(symbol_key).collect::<Vec<_>>(),
            unpooled,
            "pooled mc_symbols_parallel diverged at {threads} workers"
        );
    }
}
