//! Fault-containment differentials: a supervised batch with injected
//! faults must report a structured [`JobError`] at *exactly* the injected
//! indices and stay bit-identical to fresh serial runs everywhere else —
//! for every worker count (hence every work-stealing schedule), pooled
//! and unpooled, on both backends. The injected guests are real programs
//! run through the real engines (see [`terasim::faults`]).

use terasim::experiments::{
    self, BatchConfig, CycleEngine, ParallelConfig, ParallelScenario, SymbolScenario,
};
use terasim::faults::{self, Fault, FaultPlan};
use terasim::serve::{BatchRunner, JobError, RunPolicy};
use terasim::CancelToken;
use terasim_iss::Trap;
use terasim_kernels::Precision;
use terasim_terapool::Topology;

/// Per-job fingerprint of a fast-mode symbol run.
fn symbol_key(o: &experiments::BatchOutcome) -> (u64, u64, bool) {
    (o.cycles, o.instructions, o.verified)
}

/// Fresh serial rebuilds of every symbol job (the pre-serve-layer path):
/// the healthy reference the supervised batches are pinned against.
fn serial_symbols(config: &BatchConfig, jobs: u32) -> Vec<(u64, u64, bool)> {
    (0..jobs)
        .map(|j| {
            let mut c = *config;
            c.seed = config.seed.wrapping_add(u64::from(j));
            symbol_key(&experiments::mc_symbol_single(&c).unwrap())
        })
        .collect()
}

/// The tentpole differential: panics, traps, budget exhaustion and a
/// deliberate straggler injected into one batch. Errors must land at
/// exactly the injected indices with their exact taxonomy entry, and
/// every healthy index must be bit-identical to a fresh serial rebuild —
/// at every worker count, pooled and unpooled.
#[test]
fn injected_faults_surface_at_their_indices_and_nowhere_else() {
    let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 21, unroll: 2 };
    let jobs = 10u32;
    let plan = FaultPlan::new()
        .inject(2, Fault::Panic)
        .inject(5, Fault::Trap)
        .inject(7, Fault::BudgetExhaust { budget: 50 })
        .inject(8, Fault::Slow { spins: 20_000 });

    let serial = serial_symbols(&config, jobs);
    let scenario = SymbolScenario::prepare(&config).unwrap();
    let trap_arts = faults::trap_artifacts(Topology::scaled(8));

    let job = |ctx: &terasim::JobCtx, j: u32| -> Result<(u64, u64, bool), JobError> {
        let seed = config.seed.wrapping_add(u64::from(j));
        match plan.fault(j as usize) {
            Some(Fault::Panic) => faults::inject_panic(j as usize),
            Some(Fault::Trap) => Err(faults::run_fault_guest_fast(&trap_arts, 1)),
            Some(Fault::BudgetExhaust { budget }) => {
                scenario.try_run_symbol_with(ctx, seed, Some(budget)).map(|o| symbol_key(&o))
            }
            Some(Fault::Slow { spins }) => {
                faults::spin(spins);
                scenario.try_run_symbol(ctx, seed).map(|o| symbol_key(&o))
            }
            Some(Fault::Deadlock) | None => scenario.try_run_symbol(ctx, seed).map(|o| symbol_key(&o)),
        }
    };

    for workers in [1usize, 2, 4, 7] {
        for pooled in [false, true] {
            let runner = BatchRunner::with_workers(workers);
            let out = if pooled {
                runner.try_run_pooled(scenario.artifacts(), (0..jobs).collect(), |ctx, &j| job(ctx, j))
            } else {
                runner.try_run((0..jobs).collect(), |ctx, &j| job(ctx, j))
            };
            let tag = format!("{workers} workers, pooled={pooled}");

            assert_eq!(
                out[2],
                Err(JobError::Panicked { payload: faults::panic_payload(2) }),
                "panic index ({tag})"
            );
            assert_eq!(out[5], Err(JobError::Trap(Trap::IllegalFetch { pc: 0 })), "trap index ({tag})");
            assert_eq!(out[7], Err(JobError::BudgetExhausted { budget: 50 }), "budget index ({tag})");
            for (i, (got, want)) in out.iter().zip(&serial).enumerate() {
                if plan.expects_error(i) {
                    continue;
                }
                assert_eq!(got.as_ref().ok(), Some(want), "healthy index {i} diverged ({tag})");
            }
        }
    }
}

/// Satellite: a batch containing a job whose guest deadlocks (every hart
/// parked in `wfi` with no waker) reports [`JobError::Deadlocked`] at
/// that index — naming the parked harts — while its neighbours complete
/// bit-identically, pooled and unpooled, with the deadlock detected by
/// either backend.
#[test]
fn deadlocked_guest_fails_its_own_index_with_correct_neighbours() {
    let config = BatchConfig { n: 4, precision: Precision::Half16, nsc: 4, seed: 33, unroll: 2 };
    let jobs = 5u32;
    let deadlock_at = 2usize;

    let serial = serial_symbols(&config, jobs);
    let scenario = SymbolScenario::prepare(&config).unwrap();
    let deadlock_arts = faults::deadlock_artifacts(Topology::scaled(8));

    for workers in [1usize, 2, 4] {
        for pooled in [false, true] {
            // Alternate the detecting backend so both engines' deadlock
            // reporting flows through the batch at least once.
            let cycle_backend = workers % 2 == 0;
            let job = |ctx: &terasim::JobCtx, j: u32| {
                if j as usize == deadlock_at {
                    return Err(if cycle_backend {
                        faults::run_fault_guest_cycle(&deadlock_arts, 4)
                    } else {
                        faults::run_fault_guest_fast(&deadlock_arts, 4)
                    });
                }
                scenario.try_run_symbol(ctx, config.seed.wrapping_add(u64::from(j))).map(|o| symbol_key(&o))
            };
            let runner = BatchRunner::with_workers(workers);
            let out = if pooled {
                runner.try_run_pooled(scenario.artifacts(), (0..jobs).collect(), |ctx, &j| job(ctx, j))
            } else {
                runner.try_run((0..jobs).collect(), |ctx, &j| job(ctx, j))
            };
            let tag = format!("{workers} workers, pooled={pooled}");
            assert_eq!(
                out[deadlock_at],
                Err(JobError::Deadlocked { parked: vec![0, 1, 2, 3] }),
                "deadlock index ({tag})"
            );
            for (i, (got, want)) in out.iter().zip(&serial).enumerate() {
                if i != deadlock_at {
                    assert_eq!(got.as_ref().ok(), Some(want), "neighbour {i} diverged ({tag})");
                }
            }
        }
    }
}

/// The cycle backend under injected faults: errors at exactly the
/// injected indices, bit-identical cycle counts and breakdowns elsewhere,
/// against serial rebuilds.
#[test]
fn cycle_batch_with_injected_faults_is_bit_identical_elsewhere() {
    let config = ParallelConfig { cores: 16, n: 4, precision: Precision::WDotp8, seed: 44, unroll: 2 };
    let jobs = 4u64;
    let plan = FaultPlan::new().inject(1, Fault::Trap).inject(2, Fault::BudgetExhaust { budget: 100 });

    let serial: Vec<(u64, u64, bool)> = (0..jobs)
        .map(|j| {
            let mut c = config;
            c.seed = config.seed.wrapping_add(j);
            let out = experiments::parallel_cycle_with_engine(&c, CycleEngine::EventDriven).unwrap();
            (out.cycles, out.instructions, out.verified)
        })
        .collect();

    let scenario = ParallelScenario::prepare(&config).unwrap();
    let trap_arts = faults::trap_artifacts(Topology::scaled(8));
    for workers in [1usize, 2] {
        let out = BatchRunner::with_workers(workers).try_run((0..jobs).collect(), |ctx, &j| {
            let seed = config.seed.wrapping_add(j);
            match plan.fault(j as usize) {
                Some(Fault::Trap) => Err(faults::run_fault_guest_cycle(&trap_arts, 1)),
                Some(Fault::BudgetExhaust { budget }) => scenario
                    .try_run_cycle_with(ctx, CycleEngine::EventDriven, seed, Some(budget))
                    .map(|o| (o.cycles, o.instructions, o.verified)),
                _ => scenario
                    .try_run_cycle(ctx, CycleEngine::EventDriven, seed)
                    .map(|o| (o.cycles, o.instructions, o.verified)),
            }
        });
        assert_eq!(out[1], Err(JobError::Trap(Trap::IllegalFetch { pc: 0 })), "{workers} workers");
        assert_eq!(out[2], Err(JobError::BudgetExhausted { budget: 100 }), "{workers} workers");
        for i in [0usize, 3] {
            assert_eq!(out[i].as_ref().ok(), Some(&serial[i]), "healthy index {i} at {workers} workers");
        }
    }
}

/// A too-small per-job instruction budget surfaces as the same
/// [`JobError::BudgetExhausted`] on the fast backend and on all three
/// cycle-engine schedulers — the safety net is part of the architectural
/// contract, not a scheduler accident.
#[test]
fn budget_exhaustion_is_backend_and_engine_invariant() {
    let config = ParallelConfig { cores: 8, n: 4, precision: Precision::Half16, seed: 7, unroll: 2 };
    let scenario = ParallelScenario::prepare(&config).unwrap();
    let budget = 200u64;
    let policy = RunPolicy::new().with_budget(budget);

    let out = BatchRunner::with_workers(2).try_run_with(&policy, (0..4u32).collect(), |ctx, &j| {
        match j {
            // The policy's budget reaches every engine through `JobCtx`.
            0 => scenario.try_run_fast(ctx, 1, config.seed).map(|o| o.instructions),
            1 => scenario.try_run_cycle(ctx, CycleEngine::EventDriven, config.seed).map(|o| o.instructions),
            2 => scenario.try_run_cycle(ctx, CycleEngine::NaiveScan, config.seed).map(|o| o.instructions),
            _ => scenario.try_run_cycle(ctx, CycleEngine::Parallel(2), config.seed).map(|o| o.instructions),
        }
    });
    for (i, r) in out.iter().enumerate() {
        assert_eq!(*r, Err(JobError::BudgetExhausted { budget }), "engine {i}");
    }

    // And with a per-job override lifting the budget, the same jobs pass.
    let ok = BatchRunner::with_workers(2).try_run_with(&policy, (0..2u32).collect(), |ctx, &j| match j {
        0 => scenario.try_run_fast_with(ctx, 1, config.seed, None).map(|o| o.instructions),
        _ => scenario
            .try_run_cycle_with(ctx, CycleEngine::EventDriven, config.seed, None)
            .map(|o| o.instructions),
    });
    let fast = ok[0].as_ref().expect("unbudgeted fast job completes");
    let cycle = ok[1].as_ref().expect("unbudgeted cycle job completes");
    assert_eq!(fast, cycle, "backends retire the same instruction count");
}

/// Cooperative cancellation: raising the batch token while a job is in
/// flight abandons that job at an engine safe point (reported as
/// [`JobError::Cancelled`]) and fails every not-yet-started job at the
/// dispatch boundary — on both backends, with completed jobs untouched.
#[test]
fn cancelling_mid_batch_abandons_running_and_pending_jobs() {
    let config = ParallelConfig { cores: 8, n: 4, precision: Precision::Half16, seed: 15, unroll: 2 };
    let scenario = ParallelScenario::prepare(&config).unwrap();

    for cycle_backend in [false, true] {
        let cancel = CancelToken::new();
        let policy = RunPolicy::new().with_cancel(cancel.clone());
        let trigger = cancel.clone();
        let out = BatchRunner::with_workers(1).try_run_with(&policy, (0..4u32).collect(), |ctx, &j| {
            if j == 1 {
                // Raised while job 1 is already past the dispatch check:
                // the engine itself must notice at its next safe point.
                trigger.cancel();
            }
            let seed = config.seed.wrapping_add(u64::from(j));
            if cycle_backend {
                scenario.try_run_cycle(ctx, CycleEngine::EventDriven, seed).map(|o| o.instructions)
            } else {
                scenario.try_run_fast(ctx, 1, seed).map(|o| o.instructions)
            }
        });
        assert!(out[0].is_ok(), "job 0 completed before the cancel (cycle={cycle_backend})");
        for (i, r) in out.iter().enumerate().skip(1) {
            assert_eq!(*r, Err(JobError::Cancelled), "job {i} (cycle={cycle_backend})");
        }
    }
}

/// Pool hygiene under faults: the arena of a panicked job is quarantined
/// — counted in [`PoolStats::quarantined`](terasim_terapool::PoolStats)
/// and never handed to a later job — while healthy jobs keep recycling.
#[test]
fn panicked_jobs_quarantine_their_arena() {
    let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 9, unroll: 2 };
    let scenario = SymbolScenario::prepare(&config).unwrap();
    let serial = serial_symbols(&config, 3);

    // One lane: jobs run strictly in submission order, so job 2 observes
    // the pool exactly one panic and one healthy run later.
    let out =
        BatchRunner::with_workers(1).try_run_pooled(scenario.artifacts(), (0..3u32).collect(), |ctx, &j| {
            let pool = ctx.pool().expect("pooled batch");
            if j == 0 {
                // Panic while holding a pooled simulator: the unwind runs
                // its drop, which must quarantine — not recycle — the arena.
                let _sim = terasim_terapool::FastSim::from_pool(pool);
                faults::inject_panic(0);
            }
            let key = scenario
                .try_run_symbol(ctx, config.seed.wrapping_add(u64::from(j)))
                .map(|o| symbol_key(&o))?;
            Ok((key, pool.stats().quarantined))
        });

    assert_eq!(out[0], Err(JobError::Panicked { payload: faults::panic_payload(0) }));
    let (key1, quarantined1) = out[1].clone().expect("job 1 healthy");
    let (key2, quarantined2) = out[2].clone().expect("job 2 healthy");
    assert_eq!(key1, serial[1], "job 1 bit-identical on a fresh (post-quarantine) arena");
    assert_eq!(key2, serial[2], "job 2 bit-identical on the recycled arena");
    assert_eq!((quarantined1, quarantined2), (1, 1), "exactly the panicked job's arena was quarantined");
}
