//! The translation phase: image → pre-decoded instruction stream.

use core::fmt;

use terasim_riscv::{decode, Image, Inst};

/// Error produced by [`Program::translate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// The image entry point is not covered by any segment.
    EntryNotMapped {
        /// The entry address.
        entry: u32,
    },
    /// The text segment is not word-aligned.
    MisalignedText {
        /// Base address of the offending segment.
        base: u32,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::EntryNotMapped { entry } => {
                write!(f, "entry point {entry:#010x} is not inside any segment")
            }
            TranslateError::MisalignedText { base } => {
                write!(f, "text segment at {base:#010x} is not word aligned")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// A translated program: the pre-decoded text stream all harts share.
///
/// Words that do not decode (data islands inside text, padding) become
/// `None` and trap if reached, mirroring an illegal-instruction exception.
#[derive(Debug, Clone)]
pub struct Program {
    entry: u32,
    text_base: u32,
    insts: Vec<Option<Inst>>,
}

impl Program {
    /// Translates the segment containing the image entry point.
    ///
    /// This is the analogue of Banshee's SBT pass: decoding happens once,
    /// up front, so emulation never touches raw machine words again.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] if the entry point is unmapped or the
    /// text segment is misaligned.
    pub fn translate(image: &Image) -> Result<Self, TranslateError> {
        let entry = image.entry();
        let seg = image
            .segments()
            .iter()
            .find(|s| s.base <= entry && entry < s.end())
            .ok_or(TranslateError::EntryNotMapped { entry })?;
        if seg.base % 4 != 0 {
            return Err(TranslateError::MisalignedText { base: seg.base });
        }
        let insts = seg
            .bytes
            .chunks_exact(4)
            .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).ok())
            .collect();
        Ok(Self { entry, text_base: seg.base, insts })
    }

    /// The program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Base address of the translated text.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Number of translated instruction slots.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Fetches the instruction at `pc`, or `None` when `pc` leaves the text
    /// segment or hits an untranslatable word.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<Inst> {
        if !pc.is_multiple_of(4) {
            return None;
        }
        let idx = (pc.wrapping_sub(self.text_base) / 4) as usize;
        self.insts.get(idx).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Reg, Segment};

    use super::*;

    #[test]
    fn translate_and_fetch() {
        let mut a = Assembler::new(0x400);
        a.nop();
        a.addi(Reg::A0, Reg::Zero, 7);
        let mut image = Image::new(0x400);
        image.push_segment(Segment::from_words(0x400, &a.finish().unwrap()));
        let p = Program::translate(&image).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.fetch(0x400).is_some());
        assert!(p.fetch(0x404).is_some());
        assert_eq!(p.fetch(0x408), None, "past the end");
        assert_eq!(p.fetch(0x402), None, "misaligned");
        assert_eq!(p.fetch(0x3fc), None, "before the base");
    }

    #[test]
    fn unmapped_entry_is_an_error() {
        let image = Image::new(0x1000);
        assert_eq!(Program::translate(&image).unwrap_err(), TranslateError::EntryNotMapped { entry: 0x1000 });
    }

    #[test]
    fn data_islands_become_traps() {
        let mut image = Image::new(0x0);
        image.push_segment(Segment::from_words(0x0, &[0x0000_0013, 0xffff_ffff]));
        let p = Program::translate(&image).unwrap();
        assert!(p.fetch(0x0).is_some());
        assert_eq!(p.fetch(0x4), None);
    }
}
