//! The pre-lowered micro-op layer shared by the fast ISS driver and the
//! cycle-accurate cluster engine.
//!
//! [`Program::translate`] already decodes the text once; this module goes
//! one step further and *lowers* every decoded [`Inst`] into a
//! [`LoweredUop`]: a dense operand record ([`Uop`]: register indices and
//! immediate), static timing metadata ([`UopMeta`]), and a direct
//! function-pointer execution kernel ([`Kernel`]) selected once at program
//! load. The hot loop then does **no field extraction and no nested
//! matching** — one indexed load fetches everything, one indirect call
//! executes the instruction.
//!
//! Every kernel replicates the corresponding arm of the retained seed
//! interpreter [`Cpu::execute`] exactly (they share the operand-level
//! helpers in `cpu.rs`, so there is a single semantic body per operation).
//! The `uop_differential` integration test pins the lowered path
//! bit-identical — registers, memory, retired counts, traps — to the seed
//! interpreter across every instruction family.
//!
//! Kernels are generic over the driver's [`Memory`] view and monomorphized
//! at lowering time, which is what lets the fast mode (its per-core view),
//! the event-driven cycle engine (its relaxed single-threaded view) and
//! plain [`DenseMemory`](crate::DenseMemory) users all dispatch through
//! plain function pointers with no dynamic dispatch on the memory side.

use terasim_riscv::{
    AluOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpFmt, FpOp, FpUnOp, Inst, LoadOp, MulDivOp, PvOp,
    Reg, StoreOp, VfOp,
};

use crate::cpu::{alu, fp_arith, fp_cmp, fp_fma, fp_un, muldiv, pv, vf, Cpu, Outcome, Trap};
use crate::mem::Memory;
use crate::program::Program;
use crate::timing::{InstClass, LatencyModel};

/// Sentinel register index meaning "no register".
pub const NO_REG: u8 = 32;

/// Compact memory-operation descriptor of one lowered instruction.
///
/// Timing drivers that split *request* timing from *architectural*
/// execution (the epoch-sharded cycle engine defers cross-domain accesses
/// to epoch boundaries) need to perform the memory side effect and the
/// destination writeback outside the kernel; this record carries exactly
/// the facts required to do that bit-identically to the kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Not a data-memory instruction.
    None,
    /// A load; `size` in bytes, `signed` selects sign extension.
    Load {
        /// Access width in bytes (1, 2 or 4).
        size: u8,
        /// Sign-extend narrower-than-word results.
        signed: bool,
    },
    /// A store; `size` in bytes.
    Store {
        /// Access width in bytes (1, 2 or 4).
        size: u8,
    },
    /// `lr.w`: a word load that also sets the reservation.
    LoadReserved,
    /// `sc.w`: a conditional word store (success is decided against the
    /// hart-local reservation at issue).
    StoreConditional,
    /// A read-modify-write atomic.
    Amo(AmoOp),
}

impl MemOp {
    /// Classifies a decoded instruction.
    pub fn of(inst: &Inst) -> Self {
        match *inst {
            Inst::Load { op, .. } => {
                MemOp::Load { size: op.size() as u8, signed: matches!(op, LoadOp::Lb | LoadOp::Lh) }
            }
            Inst::Store { op, .. } => MemOp::Store { size: op.size() as u8 },
            Inst::LrW { .. } => MemOp::LoadReserved,
            Inst::ScW { .. } => MemOp::StoreConditional,
            Inst::Amo { op, .. } => MemOp::Amo(op),
            _ => MemOp::None,
        }
    }
}

/// Dense operand record of one lowered instruction.
///
/// The interpretation of each field is fixed by the kernel selected at
/// lowering time (e.g. `imm` is a branch offset for branch kernels, the
/// CSR address for CSR kernels, the ALU immediate for `OpImm` kernels).
#[derive(Debug, Clone, Copy)]
pub struct Uop {
    /// Destination register index (0 = `x0`, writes discarded).
    pub rd: u8,
    /// First source register index, or the CSR 5-bit immediate.
    pub rs1: u8,
    /// Second source register index.
    pub rs2: u8,
    /// Third source register index (FMA addend).
    pub rs3: u8,
    /// Immediate operand (offset, ALU immediate, or CSR address).
    pub imm: i32,
}

impl Uop {
    const fn new() -> Self {
        Self { rd: 0, rs1: 0, rs2: 0, rs3: 0, imm: 0 }
    }
}

/// A micro-op execution kernel: architectural execution of one lowered
/// instruction, monomorphized for the driver's memory view.
pub type Kernel<M> = fn(&mut Cpu, Uop, &mut M) -> Result<Outcome, Trap>;

/// Static per-instruction facts for timing drivers (scoreboard sources,
/// destination, effective-address recipe, latency class), computed once at
/// lowering so issue loops never re-classify or re-scan operands.
#[derive(Debug, Clone, Copy)]
pub struct UopMeta {
    /// Source register indices (`nsrcs` valid entries, `x0` omitted).
    pub srcs: [u8; 3],
    /// Number of valid `srcs` entries.
    pub nsrcs: u8,
    /// Destination register index, or [`NO_REG`] (writes to `x0` hidden).
    pub dst: u8,
    /// Post-increment base register index, or [`NO_REG`].
    pub post_inc: u8,
    /// Effective-address base register, or [`NO_REG`] for non-memory ops.
    pub ea_base: u8,
    /// `true` when the effective address ignores the offset (post-inc and
    /// atomics).
    pub ea_no_offset: bool,
    /// Effective-address immediate offset.
    pub ea_offset: i32,
    /// Static result latency of the class (before memory refinement).
    pub result_lat: u64,
    /// Latency/breakdown class.
    pub class: InstClass,
    /// Occupies the FPU (structural hazard with div/sqrt drain).
    pub uses_fpu: bool,
    /// Accesses data memory (load/store/atomic).
    pub is_mem: bool,
    /// Memory-operation descriptor (for drivers that defer the access).
    pub mem: MemOp,
    /// Is a data load (per-address latency refinement applies).
    pub is_load: bool,
    /// Is an atomic (extra bank-busy cycle in the cycle engine).
    pub is_amo: bool,
    /// Occupies the non-pipelined divide/sqrt unit.
    pub is_div_sqrt: bool,
    /// May redirect the PC (taken-branch penalty applies).
    pub is_control_flow: bool,
    /// Never touches data memory, so it can never target a remote group,
    /// the L2, or the control region. The static reachability pass of the
    /// sharded cycle engine builds on this bit: an instruction stream is
    /// *local-only* while every reachable uop has `local_only` set.
    pub local_only: bool,
    /// Eligible for the quiescent-stretch slim issue path: local-only,
    /// no FPU/divider structural hazard, and a single-cycle result, so
    /// issuing it can neither stall nor leave a latency shadow that later
    /// full-path bookkeeping would have to see.
    pub elide_ok: bool,
}

impl UopMeta {
    /// Computes the static metadata of one decoded instruction under the
    /// given latency model.
    pub fn of(inst: &Inst, latency: &LatencyModel) -> Self {
        let class = InstClass::of(inst);
        let mut srcs = [0u8; 3];
        let mut nsrcs = 0u8;
        for src in inst.srcs() {
            srcs[nsrcs as usize] = src.index() as u8;
            nsrcs += 1;
        }
        let (ea_base, ea_no_offset, ea_offset) = match *inst {
            Inst::Load { rs1, offset, post_inc, .. } | Inst::Store { rs1, offset, post_inc, .. } => {
                (rs1.index() as u8, post_inc, offset)
            }
            Inst::LrW { rs1, .. } | Inst::ScW { rs1, .. } | Inst::Amo { rs1, .. } => {
                (rs1.index() as u8, true, 0)
            }
            _ => (NO_REG, true, 0),
        };
        let is_mem = inst.is_mem();
        let uses_fpu =
            matches!(class, InstClass::Fp | InstClass::FpDivSqrt | InstClass::Simd | InstClass::Dotp);
        let result_lat = u64::from(latency.result_latency(class));
        Self {
            srcs,
            nsrcs,
            dst: inst.dst().map_or(NO_REG, |r| r.index() as u8),
            post_inc: inst.post_inc_dst().map_or(NO_REG, |r| r.index() as u8),
            ea_base,
            ea_no_offset,
            ea_offset,
            result_lat,
            class,
            uses_fpu,
            is_mem,
            mem: MemOp::of(inst),
            is_load: matches!(inst, Inst::Load { .. }),
            is_amo: matches!(class, InstClass::Amo),
            is_div_sqrt: matches!(class, InstClass::FpDivSqrt),
            is_control_flow: inst.is_control_flow(),
            local_only: !is_mem,
            elide_ok: !is_mem && !uses_fpu && result_lat <= 1,
        }
    }
}

/// One fully lowered instruction: kernel pointer + operands + metadata.
pub struct LoweredUop<M> {
    /// The execution kernel, resolved once at lowering.
    pub exec: Kernel<M>,
    /// Dense operand record passed to the kernel.
    pub uop: Uop,
    /// Static timing metadata for issue loops.
    pub meta: UopMeta,
}

impl<M> Clone for LoweredUop<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for LoweredUop<M> {}

impl<M> std::fmt::Debug for LoweredUop<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoweredUop").field("uop", &self.uop).field("meta", &self.meta).finish()
    }
}

/// A fully lowered program: the micro-op table all harts of one driver
/// share. Slots that did not decode stay `None` and trap when reached,
/// exactly like [`Program::fetch`].
pub struct UopProgram<M> {
    entry: u32,
    text_base: u32,
    /// The latency model the table was lowered under (timing metadata is
    /// baked into every [`UopMeta`]). Drivers that share one table across
    /// many runs compare against this to decide whether a re-lower is
    /// needed — see [`UopProgram::latency_model`].
    latency: LatencyModel,
    code: Vec<Option<LoweredUop<M>>>,
}

impl<M> std::fmt::Debug for UopProgram<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UopProgram")
            .field("entry", &self.entry)
            .field("text_base", &self.text_base)
            .field("len", &self.code.len())
            .finish()
    }
}

impl<M: Memory> UopProgram<M> {
    /// Lowers every translated instruction of `program` under the given
    /// latency model. Linear in the text size; done once per driver.
    pub fn lower(program: &Program, latency: &LatencyModel) -> Self {
        let code = (0..program.len())
            .map(|i| {
                let pc = program.text_base().wrapping_add(4 * i as u32);
                program.fetch(pc).map(|inst| {
                    let (exec, uop) = lower::<M>(&inst);
                    LoweredUop { exec, uop, meta: UopMeta::of(&inst, latency) }
                })
            })
            .collect();
        Self { entry: program.entry(), text_base: program.text_base(), latency: latency.clone(), code }
    }

    /// The program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The latency model the table was lowered under.
    ///
    /// A lowered table is an immutable artifact; a driver holding a shared
    /// table (e.g. one `Arc`'d across a batch of jobs) reuses it iff its
    /// run configuration's latency model equals this one, and re-lowers
    /// privately otherwise.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Fetches the lowered instruction at `pc` (`None` = illegal fetch).
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&LoweredUop<M>> {
        if pc & 3 != 0 {
            return None;
        }
        let idx = (pc.wrapping_sub(self.text_base) / 4) as usize;
        self.code.get(idx).and_then(Option::as_ref)
    }
}

// The lowered table is immutable after construction and holds only plain
// function pointers and POD operand/metadata records, so one table can be
// shared by simulation domains running on different host threads (the
// epoch-sharded cycle engine relies on this). The assertion below turns
// any future introduction of shared mutable state into a compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<UopProgram<crate::mem::DenseMemory>>();
};

// --- Kernels -----------------------------------------------------------
//
// One function per operation variant; each replicates the corresponding
// `Cpu::execute` arm through the shared operand-level helpers. The
// constant op/format arguments constant-fold after inlining, leaving
// straight-line code behind every pointer.

fn k_lui<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    cpu.set_reg_raw(u.rd, u.imm as u32);
    cpu.retire_next();
    Ok(Outcome::Continue)
}

fn k_auipc<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    cpu.set_reg_raw(u.rd, cpu.pc().wrapping_add(u.imm as u32));
    cpu.retire_next();
    Ok(Outcome::Continue)
}

fn k_jal<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    let pc = cpu.pc();
    cpu.set_reg_raw(u.rd, pc.wrapping_add(4));
    cpu.retire_jump(pc.wrapping_add(u.imm as u32));
    Ok(Outcome::Continue)
}

fn k_jalr<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    let target = cpu.reg_raw(u.rs1).wrapping_add(u.imm as u32) & !1;
    cpu.set_reg_raw(u.rd, cpu.pc().wrapping_add(4));
    cpu.retire_jump(target);
    Ok(Outcome::Continue)
}

macro_rules! branch_kernels {
    ($($name:ident: |$a:ident, $b:ident| $taken:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let ($a, $b) = (cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            if $taken {
                cpu.retire_jump(cpu.pc().wrapping_add(u.imm as u32));
            } else {
                cpu.retire_next();
            }
            Ok(Outcome::Continue)
        }
    )+};
}

branch_kernels! {
    k_beq: |a, b| a == b;
    k_bne: |a, b| a != b;
    k_blt: |a, b| (a as i32) < (b as i32);
    k_bge: |a, b| (a as i32) >= (b as i32);
    k_bltu: |a, b| a < b;
    k_bgeu: |a, b| a >= b;
}

macro_rules! load_kernels {
    ($($plain:ident / $post:ident: $size:expr, |$raw:ident| $cvt:expr;)+) => {$(
        pub(crate) fn $plain<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
            let addr = cpu.reg_raw(u.rs1).wrapping_add(u.imm as u32);
            let $raw = mem.load(addr, $size).map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
            cpu.set_reg_raw(u.rd, $cvt);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
        pub(crate) fn $post<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
            let base = cpu.reg_raw(u.rs1);
            let $raw = mem.load(base, $size).map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
            cpu.set_reg_raw(u.rd, $cvt);
            cpu.set_reg_raw(u.rs1, base.wrapping_add(u.imm as u32));
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

load_kernels! {
    k_lb / k_lb_post: 1, |raw| raw as u8 as i8 as i32 as u32;
    k_lh / k_lh_post: 2, |raw| raw as u16 as i16 as i32 as u32;
    k_lw / k_lw_post: 4, |raw| raw;
    k_lbu / k_lbu_post: 1, |raw| raw;
    k_lhu / k_lhu_post: 2, |raw| raw;
}

macro_rules! store_kernels {
    ($($plain:ident / $post:ident: $size:expr;)+) => {$(
        pub(crate) fn $plain<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
            let addr = cpu.reg_raw(u.rs1).wrapping_add(u.imm as u32);
            mem.store(addr, $size, cpu.reg_raw(u.rs2)).map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
        pub(crate) fn $post<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
            let base = cpu.reg_raw(u.rs1);
            mem.store(base, $size, cpu.reg_raw(u.rs2)).map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
            cpu.set_reg_raw(u.rs1, base.wrapping_add(u.imm as u32));
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

store_kernels! {
    k_sb / k_sb_post: 1;
    k_sh / k_sh_post: 2;
    k_sw / k_sw_post: 4;
}

macro_rules! alu_kernels {
    ($($imm:ident / $reg:ident: $op:expr;)+) => {$(
        pub(crate) fn $imm<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = alu($op, cpu.reg_raw(u.rs1), u.imm as u32);
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
        pub(crate) fn $reg<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = alu($op, cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

alu_kernels! {
    k_addi / k_add: AluOp::Add;
    k_subi / k_sub: AluOp::Sub;
    k_slli / k_sll: AluOp::Sll;
    k_slti / k_slt: AluOp::Slt;
    k_sltiu / k_sltu: AluOp::Sltu;
    k_xori / k_xor: AluOp::Xor;
    k_srli / k_srl: AluOp::Srl;
    k_srai / k_sra: AluOp::Sra;
    k_ori / k_or: AluOp::Or;
    k_andi / k_and: AluOp::And;
}

macro_rules! muldiv_kernels {
    ($($name:ident: $op:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = muldiv($op, cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

muldiv_kernels! {
    k_mul: MulDivOp::Mul;
    k_mulh: MulDivOp::Mulh;
    k_mulhsu: MulDivOp::Mulhsu;
    k_mulhu: MulDivOp::Mulhu;
    k_div: MulDivOp::Div;
    k_divu: MulDivOp::Divu;
    k_rem: MulDivOp::Rem;
    k_remu: MulDivOp::Remu;
}

fn k_lr_w<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
    let addr = cpu.reg_raw(u.rs1);
    let value = mem.load(addr, 4).map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
    cpu.reservation = Some(addr);
    cpu.set_reg_raw(u.rd, value);
    cpu.retire_next();
    Ok(Outcome::Continue)
}

fn k_sc_w<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
    let addr = cpu.reg_raw(u.rs1);
    if cpu.reservation == Some(addr) {
        mem.store(addr, 4, cpu.reg_raw(u.rs2)).map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
        cpu.set_reg_raw(u.rd, 0);
    } else {
        cpu.set_reg_raw(u.rd, 1);
    }
    cpu.reservation = None;
    cpu.retire_next();
    Ok(Outcome::Continue)
}

macro_rules! amo_kernels {
    ($($name:ident: $op:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, mem: &mut M) -> Result<Outcome, Trap> {
            let old = mem
                .amo($op, cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2))
                .map_err(|err| Trap::Mem { pc: cpu.pc(), err })?;
            cpu.set_reg_raw(u.rd, old);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

amo_kernels! {
    k_amoswap: AmoOp::Swap;
    k_amoadd: AmoOp::Add;
    k_amoxor: AmoOp::Xor;
    k_amoand: AmoOp::And;
    k_amoor: AmoOp::Or;
    k_amomin: AmoOp::Min;
    k_amomax: AmoOp::Max;
    k_amominu: AmoOp::Minu;
    k_amomaxu: AmoOp::Maxu;
}

macro_rules! csr_kernels {
    ($($name:ident: $op:expr, $imm_form:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let addr = u.imm as u16;
            let old = cpu.read_csr(addr);
            cpu.set_reg_raw(u.rd, old);
            // Operand read *after* the rd write, matching the seed order.
            let operand = if $imm_form { u32::from(u.rs1) } else { cpu.reg_raw(u.rs1) };
            let write_needed = match $op {
                CsrOp::Rw => true,
                _ => u.rs1 != 0,
            };
            if write_needed {
                let new = match $op {
                    CsrOp::Rw => operand,
                    CsrOp::Rs => old | operand,
                    CsrOp::Rc => old & !operand,
                };
                cpu.write_csr(addr, new);
            }
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

csr_kernels! {
    k_csrrw: CsrOp::Rw, false;
    k_csrrs: CsrOp::Rs, false;
    k_csrrc: CsrOp::Rc, false;
    k_csrrwi: CsrOp::Rw, true;
    k_csrrsi: CsrOp::Rs, true;
    k_csrrci: CsrOp::Rc, true;
}

macro_rules! fp_arith_kernels {
    ($($name:ident: $op:expr, $fmt:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = fp_arith($op, $fmt, cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

fp_arith_kernels! {
    k_fadd_h: FpOp::Add, FpFmt::H;
    k_fsub_h: FpOp::Sub, FpFmt::H;
    k_fmul_h: FpOp::Mul, FpFmt::H;
    k_fdiv_h: FpOp::Div, FpFmt::H;
    k_fmin_h: FpOp::Min, FpFmt::H;
    k_fmax_h: FpOp::Max, FpFmt::H;
    k_fsgnj_h: FpOp::SgnJ, FpFmt::H;
    k_fsgnjn_h: FpOp::SgnJN, FpFmt::H;
    k_fsgnjx_h: FpOp::SgnJX, FpFmt::H;
    k_fadd_s: FpOp::Add, FpFmt::S;
    k_fsub_s: FpOp::Sub, FpFmt::S;
    k_fmul_s: FpOp::Mul, FpFmt::S;
    k_fdiv_s: FpOp::Div, FpFmt::S;
    k_fmin_s: FpOp::Min, FpFmt::S;
    k_fmax_s: FpOp::Max, FpFmt::S;
    k_fsgnj_s: FpOp::SgnJ, FpFmt::S;
    k_fsgnjn_s: FpOp::SgnJN, FpFmt::S;
    k_fsgnjx_s: FpOp::SgnJX, FpFmt::S;
}

macro_rules! fp_un_kernels {
    ($($name:ident: $op:expr, $fmt:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = fp_un($op, $fmt, cpu.reg_raw(u.rs1));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

fp_un_kernels! {
    k_fsqrt_h: FpUnOp::Sqrt, FpFmt::H;
    k_fsqrt_s: FpUnOp::Sqrt, FpFmt::S;
    k_fcvt_w_h: FpUnOp::CvtWFromFp, FpFmt::H;
    k_fcvt_w_s: FpUnOp::CvtWFromFp, FpFmt::S;
    k_fcvt_h_w: FpUnOp::CvtFpFromW, FpFmt::H;
    k_fcvt_s_w: FpUnOp::CvtFpFromW, FpFmt::S;
    k_fcvt_s_h: FpUnOp::CvtSFromH, FpFmt::H;
    k_fcvt_h_s: FpUnOp::CvtHFromS, FpFmt::H;
}

macro_rules! fp_fma_kernels {
    ($($name:ident: $op:expr, $fmt:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = fp_fma($op, $fmt, cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2), cpu.reg_raw(u.rs3));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

fp_fma_kernels! {
    k_fmadd_h: FmaOp::Madd, FpFmt::H;
    k_fmsub_h: FmaOp::Msub, FpFmt::H;
    k_fnmadd_h: FmaOp::Nmadd, FpFmt::H;
    k_fnmsub_h: FmaOp::Nmsub, FpFmt::H;
    k_fmadd_s: FmaOp::Madd, FpFmt::S;
    k_fmsub_s: FmaOp::Msub, FpFmt::S;
    k_fnmadd_s: FmaOp::Nmadd, FpFmt::S;
    k_fnmsub_s: FmaOp::Nmsub, FpFmt::S;
}

macro_rules! fp_cmp_kernels {
    ($($name:ident: $op:expr, $fmt:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = fp_cmp($op, $fmt, cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

fp_cmp_kernels! {
    k_feq_h: FpCmpOp::Eq, FpFmt::H;
    k_flt_h: FpCmpOp::Lt, FpFmt::H;
    k_fle_h: FpCmpOp::Le, FpFmt::H;
    k_feq_s: FpCmpOp::Eq, FpFmt::S;
    k_flt_s: FpCmpOp::Lt, FpFmt::S;
    k_fle_s: FpCmpOp::Le, FpFmt::S;
}

macro_rules! vf_kernels {
    ($($name:ident: $op:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = vf($op, cpu.reg_raw(u.rd), cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

vf_kernels! {
    k_vfadd_h: VfOp::AddH;
    k_vfsub_h: VfOp::SubH;
    k_vfmul_h: VfOp::MulH;
    k_vfmac_h: VfOp::MacH;
    k_vfdotpex_s_h: VfOp::DotpExSH;
    k_vfndotpex_s_h: VfOp::NDotpExSH;
    k_vfcdotpex_s_h: VfOp::CdotpExSH;
    k_vfcdotpex_c_s_h: VfOp::CdotpExCSH;
    k_vfdotpex_h_b: VfOp::DotpExHB;
    k_vfndotpex_h_b: VfOp::NDotpExHB;
    k_vfcpka_h_s: VfOp::CpkAHS;
    k_vfcvt_h_b_lo: VfOp::CvtHBLo;
    k_vfcvt_h_b_hi: VfOp::CvtHBHi;
    k_vfcvt_b_h: VfOp::CvtBH;
    k_pv_swap_h: VfOp::SwapH;
    k_pv_swap_b: VfOp::SwapB;
    k_pv_cmac_b: VfOp::CmacB;
    k_pv_cmac_c_b: VfOp::CmacConjB;
}

macro_rules! pv_kernels {
    ($($name:ident: $op:expr;)+) => {$(
        pub(crate) fn $name<M: Memory>(cpu: &mut Cpu, u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
            let v = pv($op, cpu.reg_raw(u.rd), cpu.reg_raw(u.rs1), cpu.reg_raw(u.rs2));
            cpu.set_reg_raw(u.rd, v);
            cpu.retire_next();
            Ok(Outcome::Continue)
        }
    )+};
}

pv_kernels! {
    k_pv_add_h: PvOp::AddH;
    k_pv_add_b: PvOp::AddB;
    k_pv_sub_h: PvOp::SubH;
    k_pv_sub_b: PvOp::SubB;
    k_p_mac: PvOp::Mac;
    k_p_msu: PvOp::Msu;
    k_pv_dotsp_h: PvOp::DotspH;
    k_pv_sdotsp_h: PvOp::SdotspH;
}

fn k_fence<M: Memory>(cpu: &mut Cpu, _u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    cpu.retire_next();
    Ok(Outcome::Continue)
}

fn k_ecall<M: Memory>(cpu: &mut Cpu, _u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    cpu.retire_next();
    Ok(Outcome::Exit { code: cpu.reg(Reg::A0) })
}

fn k_ebreak<M: Memory>(cpu: &mut Cpu, _u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    Err(Trap::Breakpoint { pc: cpu.pc() })
}

fn k_wfi<M: Memory>(cpu: &mut Cpu, _u: Uop, _mem: &mut M) -> Result<Outcome, Trap> {
    cpu.retire_next();
    Ok(Outcome::Wfi)
}

// --- Lowering ----------------------------------------------------------

/// Lowers one decoded instruction to its kernel and operand record.
///
/// The returned kernel, applied to the returned [`Uop`], is bit-identical
/// to `Cpu::execute(inst, ..)` in every observable effect (registers, PC,
/// retired count, memory, reservation, outcome, traps).
pub fn lower<M: Memory>(inst: &Inst) -> (Kernel<M>, Uop) {
    let mut u = Uop::new();
    let exec: Kernel<M> = match *inst {
        Inst::Lui { rd, imm } => {
            u.rd = rd.index() as u8;
            u.imm = imm;
            k_lui::<M>
        }
        Inst::Auipc { rd, imm } => {
            u.rd = rd.index() as u8;
            u.imm = imm;
            k_auipc::<M>
        }
        Inst::Jal { rd, offset } => {
            u.rd = rd.index() as u8;
            u.imm = offset;
            k_jal::<M>
        }
        Inst::Jalr { rd, rs1, offset } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.imm = offset;
            k_jalr::<M>
        }
        Inst::Branch { op, rs1, rs2, offset } => {
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            u.imm = offset;
            match op {
                BranchOp::Eq => k_beq::<M>,
                BranchOp::Ne => k_bne::<M>,
                BranchOp::Lt => k_blt::<M>,
                BranchOp::Ge => k_bge::<M>,
                BranchOp::Ltu => k_bltu::<M>,
                BranchOp::Geu => k_bgeu::<M>,
            }
        }
        Inst::Load { op, rd, rs1, offset, post_inc } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.imm = offset;
            match (op, post_inc) {
                (LoadOp::Lb, false) => k_lb::<M>,
                (LoadOp::Lh, false) => k_lh::<M>,
                (LoadOp::Lw, false) => k_lw::<M>,
                (LoadOp::Lbu, false) => k_lbu::<M>,
                (LoadOp::Lhu, false) => k_lhu::<M>,
                (LoadOp::Lb, true) => k_lb_post::<M>,
                (LoadOp::Lh, true) => k_lh_post::<M>,
                (LoadOp::Lw, true) => k_lw_post::<M>,
                (LoadOp::Lbu, true) => k_lbu_post::<M>,
                (LoadOp::Lhu, true) => k_lhu_post::<M>,
            }
        }
        Inst::Store { op, rs1, rs2, offset, post_inc } => {
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            u.imm = offset;
            match (op, post_inc) {
                (StoreOp::Sb, false) => k_sb::<M>,
                (StoreOp::Sh, false) => k_sh::<M>,
                (StoreOp::Sw, false) => k_sw::<M>,
                (StoreOp::Sb, true) => k_sb_post::<M>,
                (StoreOp::Sh, true) => k_sh_post::<M>,
                (StoreOp::Sw, true) => k_sw_post::<M>,
            }
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.imm = imm;
            match op {
                AluOp::Add => k_addi::<M>,
                AluOp::Sub => k_subi::<M>, // unreachable from decode; kept total
                AluOp::Sll => k_slli::<M>,
                AluOp::Slt => k_slti::<M>,
                AluOp::Sltu => k_sltiu::<M>,
                AluOp::Xor => k_xori::<M>,
                AluOp::Srl => k_srli::<M>,
                AluOp::Sra => k_srai::<M>,
                AluOp::Or => k_ori::<M>,
                AluOp::And => k_andi::<M>,
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match op {
                AluOp::Add => k_add::<M>,
                AluOp::Sub => k_sub::<M>,
                AluOp::Sll => k_sll::<M>,
                AluOp::Slt => k_slt::<M>,
                AluOp::Sltu => k_sltu::<M>,
                AluOp::Xor => k_xor::<M>,
                AluOp::Srl => k_srl::<M>,
                AluOp::Sra => k_sra::<M>,
                AluOp::Or => k_or::<M>,
                AluOp::And => k_and::<M>,
            }
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match op {
                MulDivOp::Mul => k_mul::<M>,
                MulDivOp::Mulh => k_mulh::<M>,
                MulDivOp::Mulhsu => k_mulhsu::<M>,
                MulDivOp::Mulhu => k_mulhu::<M>,
                MulDivOp::Div => k_div::<M>,
                MulDivOp::Divu => k_divu::<M>,
                MulDivOp::Rem => k_rem::<M>,
                MulDivOp::Remu => k_remu::<M>,
            }
        }
        Inst::LrW { rd, rs1 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            k_lr_w::<M>
        }
        Inst::ScW { rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            k_sc_w::<M>
        }
        Inst::Amo { op, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match op {
                AmoOp::Swap => k_amoswap::<M>,
                AmoOp::Add => k_amoadd::<M>,
                AmoOp::Xor => k_amoxor::<M>,
                AmoOp::And => k_amoand::<M>,
                AmoOp::Or => k_amoor::<M>,
                AmoOp::Min => k_amomin::<M>,
                AmoOp::Max => k_amomax::<M>,
                AmoOp::Minu => k_amominu::<M>,
                AmoOp::Maxu => k_amomaxu::<M>,
            }
        }
        Inst::Csr { op, rd, src, csr } => {
            u.rd = rd.index() as u8;
            u.imm = i32::from(csr);
            match src {
                CsrSrc::Reg(r) => {
                    u.rs1 = r.index() as u8;
                    match op {
                        CsrOp::Rw => k_csrrw::<M>,
                        CsrOp::Rs => k_csrrs::<M>,
                        CsrOp::Rc => k_csrrc::<M>,
                    }
                }
                CsrSrc::Imm(i) => {
                    u.rs1 = i;
                    match op {
                        CsrOp::Rw => k_csrrwi::<M>,
                        CsrOp::Rs => k_csrrsi::<M>,
                        CsrOp::Rc => k_csrrci::<M>,
                    }
                }
            }
        }
        Inst::FpArith { op, fmt, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match (op, fmt) {
                (FpOp::Add, FpFmt::H) => k_fadd_h::<M>,
                (FpOp::Sub, FpFmt::H) => k_fsub_h::<M>,
                (FpOp::Mul, FpFmt::H) => k_fmul_h::<M>,
                (FpOp::Div, FpFmt::H) => k_fdiv_h::<M>,
                (FpOp::Min, FpFmt::H) => k_fmin_h::<M>,
                (FpOp::Max, FpFmt::H) => k_fmax_h::<M>,
                (FpOp::SgnJ, FpFmt::H) => k_fsgnj_h::<M>,
                (FpOp::SgnJN, FpFmt::H) => k_fsgnjn_h::<M>,
                (FpOp::SgnJX, FpFmt::H) => k_fsgnjx_h::<M>,
                (FpOp::Add, FpFmt::S) => k_fadd_s::<M>,
                (FpOp::Sub, FpFmt::S) => k_fsub_s::<M>,
                (FpOp::Mul, FpFmt::S) => k_fmul_s::<M>,
                (FpOp::Div, FpFmt::S) => k_fdiv_s::<M>,
                (FpOp::Min, FpFmt::S) => k_fmin_s::<M>,
                (FpOp::Max, FpFmt::S) => k_fmax_s::<M>,
                (FpOp::SgnJ, FpFmt::S) => k_fsgnj_s::<M>,
                (FpOp::SgnJN, FpFmt::S) => k_fsgnjn_s::<M>,
                (FpOp::SgnJX, FpFmt::S) => k_fsgnjx_s::<M>,
            }
        }
        Inst::FpUn { op, fmt, rd, rs1 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            match (op, fmt) {
                (FpUnOp::Sqrt, FpFmt::H) => k_fsqrt_h::<M>,
                (FpUnOp::Sqrt, FpFmt::S) => k_fsqrt_s::<M>,
                (FpUnOp::CvtWFromFp, FpFmt::H) => k_fcvt_w_h::<M>,
                (FpUnOp::CvtWFromFp, FpFmt::S) => k_fcvt_w_s::<M>,
                (FpUnOp::CvtFpFromW, FpFmt::H) => k_fcvt_h_w::<M>,
                (FpUnOp::CvtFpFromW, FpFmt::S) => k_fcvt_s_w::<M>,
                (FpUnOp::CvtSFromH, _) => k_fcvt_s_h::<M>,
                (FpUnOp::CvtHFromS, _) => k_fcvt_h_s::<M>,
            }
        }
        Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            u.rs3 = rs3.index() as u8;
            match (op, fmt) {
                (FmaOp::Madd, FpFmt::H) => k_fmadd_h::<M>,
                (FmaOp::Msub, FpFmt::H) => k_fmsub_h::<M>,
                (FmaOp::Nmadd, FpFmt::H) => k_fnmadd_h::<M>,
                (FmaOp::Nmsub, FpFmt::H) => k_fnmsub_h::<M>,
                (FmaOp::Madd, FpFmt::S) => k_fmadd_s::<M>,
                (FmaOp::Msub, FpFmt::S) => k_fmsub_s::<M>,
                (FmaOp::Nmadd, FpFmt::S) => k_fnmadd_s::<M>,
                (FmaOp::Nmsub, FpFmt::S) => k_fnmsub_s::<M>,
            }
        }
        Inst::FpCmp { op, fmt, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match (op, fmt) {
                (FpCmpOp::Eq, FpFmt::H) => k_feq_h::<M>,
                (FpCmpOp::Lt, FpFmt::H) => k_flt_h::<M>,
                (FpCmpOp::Le, FpFmt::H) => k_fle_h::<M>,
                (FpCmpOp::Eq, FpFmt::S) => k_feq_s::<M>,
                (FpCmpOp::Lt, FpFmt::S) => k_flt_s::<M>,
                (FpCmpOp::Le, FpFmt::S) => k_fle_s::<M>,
            }
        }
        Inst::Vf { op, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match op {
                VfOp::AddH => k_vfadd_h::<M>,
                VfOp::SubH => k_vfsub_h::<M>,
                VfOp::MulH => k_vfmul_h::<M>,
                VfOp::MacH => k_vfmac_h::<M>,
                VfOp::DotpExSH => k_vfdotpex_s_h::<M>,
                VfOp::NDotpExSH => k_vfndotpex_s_h::<M>,
                VfOp::CdotpExSH => k_vfcdotpex_s_h::<M>,
                VfOp::CdotpExCSH => k_vfcdotpex_c_s_h::<M>,
                VfOp::DotpExHB => k_vfdotpex_h_b::<M>,
                VfOp::NDotpExHB => k_vfndotpex_h_b::<M>,
                VfOp::CpkAHS => k_vfcpka_h_s::<M>,
                VfOp::CvtHBLo => k_vfcvt_h_b_lo::<M>,
                VfOp::CvtHBHi => k_vfcvt_h_b_hi::<M>,
                VfOp::CvtBH => k_vfcvt_b_h::<M>,
                VfOp::SwapH => k_pv_swap_h::<M>,
                VfOp::SwapB => k_pv_swap_b::<M>,
                VfOp::CmacB => k_pv_cmac_b::<M>,
                VfOp::CmacConjB => k_pv_cmac_c_b::<M>,
            }
        }
        Inst::Pv { op, rd, rs1, rs2 } => {
            u.rd = rd.index() as u8;
            u.rs1 = rs1.index() as u8;
            u.rs2 = rs2.index() as u8;
            match op {
                PvOp::AddH => k_pv_add_h::<M>,
                PvOp::AddB => k_pv_add_b::<M>,
                PvOp::SubH => k_pv_sub_h::<M>,
                PvOp::SubB => k_pv_sub_b::<M>,
                PvOp::Mac => k_p_mac::<M>,
                PvOp::Msu => k_p_msu::<M>,
                PvOp::DotspH => k_pv_dotsp_h::<M>,
                PvOp::SdotspH => k_pv_sdotsp_h::<M>,
            }
        }
        Inst::Fence => k_fence::<M>,
        Inst::Ecall => k_ecall::<M>,
        Inst::Ebreak => k_ebreak::<M>,
        Inst::Wfi => k_wfi::<M>,
    };
    (exec, u)
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Image, Segment};

    use super::*;
    use crate::mem::DenseMemory;

    /// Executes the same program through the seed interpreter and the
    /// lowered table, comparing full state after every instruction.
    fn lockstep(build: impl FnOnce(&mut Assembler)) {
        let mut a = Assembler::new(0x8000_0000);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(0x8000_0000);
        image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
        let program = Program::translate(&image).unwrap();
        let table: UopProgram<DenseMemory> = UopProgram::lower(&program, &LatencyModel::default());

        let mut seed_cpu = Cpu::new(0);
        let mut uop_cpu = Cpu::new(0);
        seed_cpu.set_pc(program.entry());
        uop_cpu.set_pc(program.entry());
        let mut seed_mem = DenseMemory::new(0, 0x1000);
        let mut uop_mem = DenseMemory::new(0, 0x1000);

        for step in 0..10_000 {
            let seed_out = seed_cpu.step(&program, &mut seed_mem);
            let lu = table.fetch(uop_cpu.pc()).copied();
            let uop_out = match lu {
                Some(lu) => (lu.exec)(&mut uop_cpu, lu.uop, &mut uop_mem),
                None => Err(Trap::IllegalFetch { pc: uop_cpu.pc() }),
            };
            assert_eq!(seed_out, uop_out, "outcome diverged at step {step}");
            assert_eq!(seed_cpu.pc(), uop_cpu.pc(), "pc diverged at step {step}");
            assert_eq!(seed_cpu.retired(), uop_cpu.retired(), "retired diverged at step {step}");
            for r in 0..32u8 {
                assert_eq!(seed_cpu.reg_raw(r), uop_cpu.reg_raw(r), "x{r} diverged at step {step}");
            }
            if matches!(seed_out, Ok(Outcome::Exit { .. }) | Err(_)) {
                assert_eq!(seed_mem.read_bytes(0, 0x1000), uop_mem.read_bytes(0, 0x1000));
                return;
            }
        }
        panic!("program did not exit");
    }

    #[test]
    fn integer_and_memory_lockstep() {
        lockstep(|a| {
            a.li(Reg::T0, 6);
            a.li(Reg::T1, -7);
            a.mul(Reg::A0, Reg::T0, Reg::T1);
            a.sw(Reg::A0, 0x40, Reg::Zero);
            a.lw(Reg::A1, 0x40, Reg::Zero);
            a.p_sw(Reg::T0, 4, Reg::A2);
            a.p_lw(Reg::A3, 4, Reg::A4);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.amoadd_w(Reg::A5, Reg::T1, Reg::A2);
            a.csrr(Reg::A6, terasim_riscv::csr::MHARTID);
        });
    }

    #[test]
    fn fp_and_simd_lockstep() {
        use terasim_softfloat::F16;
        lockstep(|a| {
            a.li(Reg::T0, F16::from_f32(1.5).to_bits() as i32);
            a.li(Reg::T1, F16::from_f32(-2.25).to_bits() as i32);
            a.li(Reg::T2, F16::from_f32(0.125).to_bits() as i32);
            a.fmadd_h(Reg::A0, Reg::T0, Reg::T1, Reg::T2);
            a.inst(Inst::FpArith { op: FpOp::Div, fmt: FpFmt::H, rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 });
            a.inst(Inst::FpUn { op: FpUnOp::Sqrt, fmt: FpFmt::H, rd: Reg::A2, rs1: Reg::T0 });
            a.vfcdotpex_s_h(Reg::A3, Reg::T0, Reg::T1);
            a.pv_swap_h(Reg::A4, Reg::T0);
            a.inst(Inst::Pv { op: PvOp::Mac, rd: Reg::A5, rs1: Reg::T0, rs2: Reg::T1 });
        });
    }
}
