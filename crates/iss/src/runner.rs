//! The fast per-hart driver: architectural execution + scoreboard timing.
//!
//! The hot loop runs over the pre-lowered micro-op table
//! ([`UopProgram`]): one indexed load per instruction fetches the kernel
//! pointer, operands and timing metadata, so no per-step decoding, field
//! extraction or class matching remains. [`trace_core`] keeps the seed
//! interpreter path (it needs the decoded [`Inst`] for its observer).

use terasim_riscv::Inst;

use crate::cpu::{Cpu, Outcome, Trap};
use crate::mem::Memory;
use crate::program::Program;
use crate::timing::{InstClass, LatencyModel, Scoreboard};
use crate::uop::UopProgram;

/// Whether the fast engine dispatches through the fused superinstruction
/// table ([`FusedProgram`](crate::fuse::FusedProgram)) or the plain
/// per-uop table.
///
/// Fusion is a pure dispatch optimization: both modes are bit-identical in
/// every observable effect (registers, memory, [`RunStats`], stop reason,
/// traps) — the differential suites pin this. The knob exists so every
/// binary can A/B the two paths and so CI exercises `Off` explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionMode {
    /// Plain per-uop dispatch ([`resume_lowered`]): one fetch and one
    /// indirect call per instruction. The retained reference path.
    Off,
    /// Superinstruction dispatch
    /// ([`resume_fused`](crate::fuse::resume_fused)) plus, in cluster
    /// drivers, SPMD convergence execution
    /// ([`resume_spmd`](crate::fuse::resume_spmd)).
    #[default]
    On,
}

/// Epoch cadence of the sharded cycle engine (multi-group topologies).
///
/// `Fixed` advances every arbitration domain in lockstep epochs of the
/// minimum cross-group latency — the retained reference cadence.
/// `Adaptive` lets the epoch coordinator grant *extended* epochs while
/// the cluster is provably quiescent (no in-flight or reachable
/// cross-group access), skipping barriers, replay and cross-checks that
/// would have been no-ops. Both modes are bit-identical in every
/// observable effect — per-core stats, makespan, memory, traps — which
/// the `epochs` differential suite pins; the knob exists so every binary
/// can A/B the two cadences and so CI exercises `Fixed` explicitly.
///
/// The knob lives in [`RunConfig`] next to [`FusionMode`] so scenario
/// descriptions (and artifact digests) carry it; the ISS itself never
/// reads it — only the cluster cycle engine does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpochMode {
    /// Lockstep base-cadence epochs. The retained reference path.
    Fixed,
    /// Quiescence-extended epochs (bit-identical, fewer boundaries).
    #[default]
    Adaptive,
}

/// Configuration of a fast-mode run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Latency model used by the scoreboard.
    pub latency: LatencyModel,
    /// Stop after this many retired instructions (safety net against
    /// runaway guests).
    pub max_instructions: u64,
    /// When `true`, loads ask the [`Memory`] for a per-address latency;
    /// when `false`, the uniform conservative `latency.load` is used
    /// (the paper's Banshee configuration). Ablation D2 toggles this.
    pub per_address_latency: bool,
    /// Dispatch mode: fused superinstruction table or the plain per-uop
    /// table. Bit-identical either way; `On` is the fast default.
    pub fusion: FusionMode,
    /// Epoch cadence of the sharded cycle engine. Ignored by the ISS;
    /// carried here so scenario descriptions and artifact digests agree
    /// on the full engine configuration. Bit-identical either way;
    /// `Adaptive` is the fast default.
    pub epochs: EpochMode,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            max_instructions: u64::MAX,
            per_address_latency: false,
            fusion: FusionMode::On,
            epochs: EpochMode::Adaptive,
        }
    }
}

/// Why [`run_core`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The guest executed `ecall`; the exit code is `a0`.
    Exit {
        /// Value of `a0` at exit.
        code: u32,
    },
    /// The guest executed `wfi` (cluster drivers park the hart).
    Wfi,
    /// The instruction budget ran out.
    #[default]
    Budget,
}

/// Statistics of one fast-mode run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Retired instructions.
    pub retired: u64,
    /// Estimated cycles (scoreboard, drained).
    pub est_cycles: u64,
    /// RAW stall cycles accumulated by the scoreboard.
    pub raw_stalls: u64,
    /// Taken-branch bubbles inserted.
    pub branch_bubbles: u64,
    /// Barrier idle cycles (`stall-wfi`), accounted by cluster drivers.
    pub wfi_stalls: u64,
    /// Retired-instruction histogram by [`InstClass`] (index with
    /// [`InstClass::index`]).
    pub class_counts: [u64; InstClass::COUNT],
}

impl RunStats {
    /// Retired count for one class.
    pub fn count(&self, class: InstClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Merges another run's statistics into this one (used when batching
    /// subcarrier problems on one hart).
    pub fn merge(&mut self, other: &RunStats) {
        self.retired += other.retired;
        self.est_cycles += other.est_cycles;
        self.raw_stalls += other.raw_stalls;
        self.branch_bubbles += other.branch_bubbles;
        self.wfi_stalls += other.wfi_stalls;
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts) {
            *a += b;
        }
    }
}

/// Runs one hart until exit, `wfi`, or budget exhaustion, estimating cycles
/// with the static-latency scoreboard.
///
/// The CPU's `mcycle` view is refreshed on return so guest reads of the
/// cycle CSR observe the estimate.
///
/// # Errors
///
/// Propagates any [`Trap`] raised by the guest (illegal fetch, memory
/// fault, breakpoint).
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn run_core(
    cpu: &mut Cpu,
    program: &Program,
    mem: &mut impl Memory,
    config: &RunConfig,
) -> Result<RunStats, Trap> {
    let mut sb = Scoreboard::new();
    let mut stats = RunStats::default();
    // One lowering pass per whole-program run: O(text), amortized over
    // execution, which visits every instruction at least once.
    let table = UopProgram::lower(program, &config.latency);
    match config.fusion {
        FusionMode::On => {
            let fused = crate::fuse::FusedProgram::build(program, &table);
            crate::fuse::resume_fused(cpu, &fused, mem, config, &mut sb, &mut stats)?;
        }
        FusionMode::Off => {
            resume_lowered(cpu, &table, mem, config, &mut sb, &mut stats)?;
        }
    }
    Ok(stats)
}

/// As [`resume_core`] over an already-lowered micro-op table — the form
/// cluster drivers use so the (one-time, linear) lowering cost is not
/// re-paid on every barrier resume.
///
/// The table must have been lowered with the same latency model as
/// `config.latency`, or static result latencies will disagree with the
/// scoreboard configuration.
///
/// # Errors
///
/// Propagates any [`Trap`] raised by the guest.
pub fn resume_lowered<M: Memory>(
    cpu: &mut Cpu,
    table: &UopProgram<M>,
    mem: &mut M,
    config: &RunConfig,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
) -> Result<StopReason, Trap> {
    if cpu.pc() == 0 {
        cpu.set_pc(table.entry());
    }

    loop {
        if stats.retired >= config.max_instructions {
            finalize(stats, sb, cpu, StopReason::Budget);
            return Ok(StopReason::Budget);
        }
        let pc = cpu.pc();
        let lu = table.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let meta = lu.meta;

        // Loads: latency comes from the memory map (or the pre-lowered
        // static class latency).
        let latency = if config.per_address_latency && meta.is_load {
            let base = cpu.reg_raw(meta.ea_base);
            let addr = if meta.ea_no_offset { base } else { base.wrapping_add(meta.ea_offset as u32) };
            mem.latency(addr)
        } else {
            meta.result_lat as u32
        };

        let outcome = (lu.exec)(cpu, lu.uop, mem)?;
        sb.issue_slots(meta.srcs, meta.nsrcs, meta.dst, meta.post_inc, latency);
        stats.retired += 1;
        stats.class_counts[meta.class.index()] += 1;

        if meta.is_control_flow && cpu.pc() != pc.wrapping_add(4) {
            sb.bubble(config.latency.taken_branch_penalty);
            stats.branch_bubbles += u64::from(config.latency.taken_branch_penalty);
        }
        cpu.set_mcycle(sb.cycles());

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { code } => {
                let stop = StopReason::Exit { code };
                finalize(stats, sb, cpu, stop);
                return Ok(stop);
            }
            Outcome::Wfi => {
                finalize(stats, sb, cpu, StopReason::Wfi);
                return Ok(StopReason::Wfi);
            }
        }
    }
}

/// One retired instruction, as seen by a [`trace_core`] observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue cycle of the instruction (scoreboard estimate).
    pub cycle: u64,
    /// Program counter.
    pub pc: u32,
    /// The decoded instruction (disassemble with `to_string()`).
    pub inst: Inst,
}

/// As [`run_core`] but invokes `observer` for every retired instruction —
/// the equivalent of Banshee's `--trace` stream. The observer receives
/// the issue cycle, the PC and the decoded instruction.
///
/// # Errors
///
/// Propagates any [`Trap`] raised by the guest.
///
/// # Examples
///
/// ```
/// use terasim_iss::{trace_core, Cpu, DenseMemory, Program, RunConfig};
/// use terasim_riscv::{Assembler, Image, Reg, Segment};
///
/// let mut a = Assembler::new(0x8000_0000);
/// a.li(Reg::A0, 3);
/// a.ecall();
/// let mut image = Image::new(0x8000_0000);
/// image.push_segment(Segment::from_words(0x8000_0000, &a.finish()?));
/// let program = Program::translate(&image)?;
///
/// let mut lines = Vec::new();
/// let mut cpu = Cpu::new(0);
/// let mut mem = DenseMemory::new(0, 0x100);
/// trace_core(&mut cpu, &program, &mut mem, &RunConfig::default(), &mut |e| {
///     lines.push(format!("{:>6}  {:#010x}  {}", e.cycle, e.pc, e.inst));
/// })?;
/// assert_eq!(lines.len(), 2);
/// assert!(lines[0].contains("addi a0, zero, 3"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trace_core(
    cpu: &mut Cpu,
    program: &Program,
    mem: &mut impl Memory,
    config: &RunConfig,
    observer: &mut impl FnMut(TraceEntry),
) -> Result<RunStats, Trap> {
    let mut sb = Scoreboard::new();
    let mut stats = RunStats::default();
    run_impl(cpu, program, mem, config, &mut sb, &mut stats, &mut Some(observer))?;
    Ok(stats)
}

/// Resumable form of [`run_core`]: the scoreboard and statistics live
/// outside, so a cluster driver can park the hart at `wfi` (barrier) and
/// continue it later with timing intact.
///
/// Runs the retained seed interpreter path — no per-call lowering cost,
/// matching a resume's "continue cheaply" contract. Drivers that resume
/// many harts over the same program should lower once
/// ([`UopProgram::lower`]) and use [`resume_lowered`] instead.
///
/// # Errors
///
/// Propagates any [`Trap`] raised by the guest.
pub fn resume_core(
    cpu: &mut Cpu,
    program: &Program,
    mem: &mut impl Memory,
    config: &RunConfig,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
) -> Result<StopReason, Trap> {
    run_impl(cpu, program, mem, config, sb, stats, &mut None::<&mut fn(TraceEntry)>)
}

/// The retained seed driver loop (decoded-`Inst` execution through
/// [`Cpu::execute`]); kept for [`trace_core`], whose observer needs the
/// decoded instruction, and as the reference the micro-op path is pinned
/// against.
fn run_impl<F: FnMut(TraceEntry)>(
    cpu: &mut Cpu,
    program: &Program,
    mem: &mut impl Memory,
    config: &RunConfig,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
    observer: &mut Option<&mut F>,
) -> Result<StopReason, Trap> {
    if cpu.pc() == 0 {
        cpu.set_pc(program.entry());
    }

    loop {
        if stats.retired >= config.max_instructions {
            finalize(stats, sb, cpu, StopReason::Budget);
            return Ok(StopReason::Budget);
        }
        let pc = cpu.pc();
        let inst = program.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let class = InstClass::of(&inst);

        // Loads: latency comes from the memory map (or the uniform
        // conservative value). The effective address is computable before
        // execution because Snitch is in-order.
        let latency = match inst {
            Inst::Load { rs1, offset, post_inc, .. } if config.per_address_latency => {
                let base = cpu.reg(rs1);
                let addr = if post_inc { base } else { base.wrapping_add(offset as u32) };
                mem.latency(addr)
            }
            _ => config.latency.result_latency(class),
        };

        let outcome = cpu.execute(inst, mem)?;
        let issue_cycle = sb.issue(&inst, latency);
        stats.retired += 1;
        stats.class_counts[class.index()] += 1;
        if let Some(obs) = observer.as_mut() {
            obs(TraceEntry { cycle: issue_cycle, pc, inst });
        }

        if inst.is_control_flow() && cpu.pc() != pc.wrapping_add(4) {
            sb.bubble(config.latency.taken_branch_penalty);
            stats.branch_bubbles += u64::from(config.latency.taken_branch_penalty);
        }
        cpu.set_mcycle(sb.cycles());

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { code } => {
                let stop = StopReason::Exit { code };
                finalize(stats, sb, cpu, stop);
                return Ok(stop);
            }
            Outcome::Wfi => {
                finalize(stats, sb, cpu, StopReason::Wfi);
                return Ok(StopReason::Wfi);
            }
        }
    }
}

pub(crate) fn finalize(stats: &mut RunStats, sb: &Scoreboard, cpu: &mut Cpu, stop: StopReason) {
    stats.stop = stop;
    stats.est_cycles = sb.drain_cycles();
    stats.raw_stalls = sb.raw_stalls();
    cpu.set_mcycle(stats.est_cycles);
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    use super::*;
    use crate::mem::DenseMemory;

    fn build(f: impl FnOnce(&mut Assembler)) -> Program {
        let mut a = Assembler::new(0x8000_0000);
        f(&mut a);
        a.ecall();
        let mut image = Image::new(0x8000_0000);
        image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
        Program::translate(&image).unwrap()
    }

    #[test]
    fn counts_and_cycles() {
        let program = build(|a| {
            a.li(Reg::A1, 0x100);
            a.lw(Reg::A0, 0, Reg::A1);
            a.addi(Reg::A0, Reg::A0, 1); // depends on the load: 9-cycle stall
        });
        let mut cpu = Cpu::new(0);
        let mut mem = DenseMemory::new(0, 0x1000);
        let stats = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap();
        assert_eq!(stats.retired, 4);
        assert_eq!(stats.count(InstClass::Load), 1);
        assert!(stats.raw_stalls >= 8, "load-use stall missing: {stats:?}");
        assert!(stats.est_cycles >= 11);
    }

    #[test]
    fn budget_stops_infinite_loops() {
        let program = build(|a| {
            let spin = a.new_label();
            a.bind(spin);
            a.j(spin);
        });
        let mut cpu = Cpu::new(0);
        let mut mem = DenseMemory::new(0, 0x10);
        let config = RunConfig { max_instructions: 100, ..RunConfig::default() };
        let stats = run_core(&mut cpu, &program, &mut mem, &config).unwrap();
        assert_eq!(stats.retired, 100);
    }

    #[test]
    fn taken_branches_add_bubbles() {
        let program = build(|a| {
            a.li(Reg::T0, 8);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        let mut cpu = Cpu::new(0);
        let mut mem = DenseMemory::new(0, 0x10);
        let stats = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap();
        // 7 taken branches x 2-cycle penalty.
        assert_eq!(stats.branch_bubbles, 14);
    }

    #[test]
    fn mcycle_visible_to_guest() {
        let program = build(|a| {
            a.nop().nop().nop();
            a.csrr(Reg::A0, terasim_riscv::csr::MCYCLE);
        });
        let mut cpu = Cpu::new(0);
        let mut mem = DenseMemory::new(0, 0x10);
        run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap();
        assert!(cpu.reg(Reg::A0) >= 3, "guest saw mcycle = {}", cpu.reg(Reg::A0));
    }
}
