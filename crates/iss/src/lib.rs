//! Instruction-accurate simulation of Snitch cores — the Banshee equivalent.
//!
//! The original Banshee translates RISC-V binaries to host code through
//! LLVM. This crate keeps Banshee's *architecture* — a two-phase
//! translate/emulate flow, deterministic instruction-accurate semantics, and
//! a fast approximate timing model — while replacing LLVM codegen with a
//! pre-decoding threaded interpreter (see `DESIGN.md` for the substitution
//! argument):
//!
//! 1. **Translation** ([`Program::translate`]): the flat binary image is
//!    decoded once into a dense array of [`Inst`](terasim_riscv::Inst) with
//!    branch targets resolvable by index — the moral equivalent of Banshee's
//!    LLVM-IR generation.
//! 2. **Emulation** ([`Cpu::step`] / [`run_core`]): each simulated hart
//!    executes the pre-decoded stream against a [`Memory`]; independent
//!    harts can run on independent host threads.
//!
//! Timing follows the paper (§III-B): every instruction carries a *static
//! latency* ([`LatencyModel`]) and a [`Scoreboard`] tracks read-after-write
//! dependencies, so long-latency loads and FPU ops stall dependent
//! instructions only — exactly Banshee's fast first-order estimate. Memory
//! latency defaults to the conservative 9-cycle worst-case non-contended
//! access of the TeraPool hierarchy and can be refined per address by the
//! [`Memory`] implementation.
//!
//! # Examples
//!
//! ```
//! use terasim_iss::{run_core, Cpu, DenseMemory, Program, RunConfig};
//! use terasim_riscv::{Assembler, Image, Reg, Segment};
//!
//! // A loop that sums 1..=10 into a0, then halts.
//! let mut a = Assembler::new(0x8000_0000);
//! a.li(Reg::A0, 0);
//! a.li(Reg::T0, 10);
//! let top = a.new_label();
//! a.bind(top);
//! a.add(Reg::A0, Reg::A0, Reg::T0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, top);
//! a.ecall();
//! let mut image = Image::new(0x8000_0000);
//! image.push_segment(Segment::from_words(0x8000_0000, &a.finish()?));
//!
//! let program = Program::translate(&image)?;
//! let mut cpu = Cpu::new(0);
//! let mut mem = DenseMemory::new(0x0, 0x1000);
//! let stats = run_core(&mut cpu, &program, &mut mem, &RunConfig::default())?;
//! assert_eq!(cpu.reg(Reg::A0), 55);
//! assert!(stats.retired > 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cpu;
pub mod fuse;
mod mem;
mod program;
mod runner;
mod timing;
pub mod uop;

pub use cpu::{Cpu, Outcome, Trap};
pub use fuse::{
    resume_fused, resume_profiled, resume_spmd, FusedProgram, FusionProfile, Lane, PairKernel, PairUop,
};
pub use mem::{DenseMemory, MemError, Memory};
pub use program::{Program, TranslateError};
pub use runner::{
    resume_core, resume_lowered, run_core, trace_core, EpochMode, FusionMode, RunConfig, RunStats,
    StopReason, TraceEntry,
};
pub use timing::{InstClass, LatencyModel, Scoreboard};
pub use uop::{Kernel, LoweredUop, MemOp, Uop, UopMeta, UopProgram, NO_REG};
