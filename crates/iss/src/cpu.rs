//! Architectural state and instruction semantics of one Snitch hart.

use core::fmt;

use terasim_riscv::{
    csr, AluOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpFmt, FpOp, FpUnOp, Inst, MulDivOp, PvOp, Reg, VfOp,
};
use terasim_softfloat::{ops, F16, F8};

use crate::mem::{MemError, Memory};
use crate::program::Program;

/// Why execution cannot continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Fetch left the text segment or hit an untranslated word.
    IllegalFetch {
        /// The faulting PC.
        pc: u32,
    },
    /// A data access failed.
    Mem {
        /// The faulting PC.
        pc: u32,
        /// The underlying memory error.
        err: MemError,
    },
    /// `ebreak` was executed.
    Breakpoint {
        /// The faulting PC.
        pc: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalFetch { pc } => write!(f, "illegal fetch at {pc:#010x}"),
            Trap::Mem { pc, err } => write!(f, "at {pc:#010x}: {err}"),
            Trap::Breakpoint { pc } => write!(f, "breakpoint at {pc:#010x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of architecturally executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Execution continues at the updated PC.
    Continue,
    /// `wfi` was executed: the hart parks until the cluster wakes it.
    Wfi,
    /// `ecall` was executed: the runtime convention is program exit with
    /// the code in `a0`.
    Exit {
        /// Value of `a0` at the `ecall`.
        code: u32,
    },
}

/// Architectural state of one hart: integer register file (which also holds
/// FP values under `zfinx`/`zhinx`), PC, hart id and counters.
///
/// # Examples
///
/// ```
/// use terasim_iss::Cpu;
/// use terasim_riscv::Reg;
///
/// let mut cpu = Cpu::new(3);
/// cpu.set_reg(Reg::A0, 42);
/// assert_eq!(cpu.reg(Reg::A0), 42);
/// assert_eq!(cpu.hart_id(), 3);
/// cpu.set_reg(Reg::Zero, 7); // writes to x0 are ignored
/// assert_eq!(cpu.reg(Reg::Zero), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) hart_id: u32,
    pub(crate) retired: u64,
    /// LR reservation address (single-hart granularity; see crate docs).
    pub(crate) reservation: Option<u32>,
    /// Cycle estimate exposed through `mcycle`, maintained by the driver.
    pub(crate) mcycle: u64,
}

impl Cpu {
    /// Creates a hart with the given id; all registers and the PC start at
    /// zero (drivers set the PC from the program entry).
    pub fn new(hart_id: u32) -> Self {
        Self { regs: [0; 32], pc: 0, hart_id, retired: 0, reservation: None, mcycle: 0 }
    }

    /// Reads a register (`x0` always reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `x0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::Zero {
            self.regs[r.index()] = value;
        }
    }

    /// Reads a register by pre-decoded index (micro-op hot path; the
    /// mask keeps the bounds check out of the generated code).
    #[inline]
    pub(crate) fn reg_raw(&self, i: u8) -> u32 {
        self.regs[(i & 31) as usize]
    }

    /// Writes a register by pre-decoded index (`x0` writes discarded).
    #[inline]
    pub(crate) fn set_reg_raw(&mut self, i: u8, value: u32) {
        if i != 0 {
            self.regs[(i & 31) as usize] = value;
        }
    }

    /// Retires the current instruction and falls through to `pc + 4`.
    #[inline]
    pub(crate) fn retire_next(&mut self) {
        self.retired += 1;
        self.pc = self.pc.wrapping_add(4);
    }

    /// Retires the current instruction and jumps to `target`.
    #[inline]
    pub(crate) fn retire_jump(&mut self, target: u32) {
        self.retired += 1;
        self.pc = target;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Hart id (returned by `csrr mhartid`).
    pub fn hart_id(&self) -> u32 {
        self.hart_id
    }

    /// Retired-instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Updates the cycle estimate visible through `mcycle`.
    pub fn set_mcycle(&mut self, cycles: u64) {
        self.mcycle = cycles;
    }

    /// The active `lr.w` reservation address, if any.
    ///
    /// Exposed for timing drivers that split memory-request timing from
    /// architectural execution (they must decide `sc.w` success at issue).
    pub fn reservation(&self) -> Option<u32> {
        self.reservation
    }

    /// Sets or clears the `lr.w` reservation (see [`Cpu::reservation`]).
    pub fn set_reservation(&mut self, addr: Option<u32>) {
        self.reservation = addr;
    }

    /// Retires one straight-line instruction: bumps the retired counter
    /// and falls through to `pc + 4`.
    ///
    /// For timing drivers that perform an instruction's effects outside
    /// the kernels (deferred memory operations); memory instructions
    /// never redirect the PC.
    pub fn retire_fallthrough(&mut self) {
        self.retire_next();
    }

    /// Executes the instruction at the current PC.
    ///
    /// On success the PC has advanced (or jumped) and counters are updated.
    /// This performs *architectural* execution only; timing is the driver's
    /// job ([`run_core`](crate::run_core) or the cycle-accurate cluster).
    ///
    /// # Errors
    ///
    /// Returns [`Trap`] on illegal fetch, memory faults, or `ebreak`.
    pub fn step(&mut self, program: &Program, mem: &mut impl Memory) -> Result<Outcome, Trap> {
        let pc = self.pc;
        let inst = program.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        self.execute(inst, mem)
    }

    /// Executes one already-fetched instruction (used by the cycle-accurate
    /// driver which fetches through its I$ model).
    ///
    /// # Errors
    ///
    /// Returns [`Trap`] on memory faults or `ebreak`.
    pub fn execute(&mut self, inst: Inst, mem: &mut impl Memory) -> Result<Outcome, Trap> {
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let merr = |err| Trap::Mem { pc, err };

        match inst {
            Inst::Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Inst::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            Inst::Branch { op, rs1, rs2, offset } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Inst::Load { op, rd, rs1, offset, post_inc } => {
                let base = self.reg(rs1);
                let addr = if post_inc { base } else { base.wrapping_add(offset as u32) };
                let size = op.size();
                let raw = mem.load(addr, size).map_err(merr)?;
                let value = match op {
                    terasim_riscv::LoadOp::Lb => raw as u8 as i8 as i32 as u32,
                    terasim_riscv::LoadOp::Lh => raw as u16 as i16 as i32 as u32,
                    _ => raw,
                };
                self.set_reg(rd, value);
                if post_inc {
                    self.set_reg(rs1, base.wrapping_add(offset as u32));
                }
            }
            Inst::Store { op, rs1, rs2, offset, post_inc } => {
                let base = self.reg(rs1);
                let addr = if post_inc { base } else { base.wrapping_add(offset as u32) };
                mem.store(addr, op.size(), self.reg(rs2)).map_err(merr)?;
                if post_inc {
                    self.set_reg(rs1, base.wrapping_add(offset as u32));
                }
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let value = alu(op, self.reg(rs1), imm as u32);
                self.set_reg(rd, value);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let value = alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, value);
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let value = muldiv(op, a, b);
                self.set_reg(rd, value);
            }
            Inst::LrW { rd, rs1 } => {
                let addr = self.reg(rs1);
                let value = mem.load(addr, 4).map_err(merr)?;
                self.reservation = Some(addr);
                self.set_reg(rd, value);
            }
            Inst::ScW { rd, rs1, rs2 } => {
                let addr = self.reg(rs1);
                if self.reservation == Some(addr) {
                    mem.store(addr, 4, self.reg(rs2)).map_err(merr)?;
                    self.set_reg(rd, 0);
                } else {
                    self.set_reg(rd, 1);
                }
                self.reservation = None;
            }
            Inst::Amo { op, rd, rs1, rs2 } => {
                let old = mem.amo(op, self.reg(rs1), self.reg(rs2)).map_err(merr)?;
                self.set_reg(rd, old);
            }
            Inst::Csr { op, rd, src, csr: addr } => {
                let old = self.read_csr(addr);
                self.set_reg(rd, old);
                let operand = match src {
                    CsrSrc::Reg(r) => self.reg(r),
                    CsrSrc::Imm(i) => u32::from(i),
                };
                let write_needed = match (op, src) {
                    (CsrOp::Rw, _) => true,
                    (_, CsrSrc::Reg(r)) => r != Reg::Zero,
                    (_, CsrSrc::Imm(i)) => i != 0,
                };
                if write_needed {
                    let new = match op {
                        CsrOp::Rw => operand,
                        CsrOp::Rs => old | operand,
                        CsrOp::Rc => old & !operand,
                    };
                    self.write_csr(addr, new);
                }
            }
            Inst::FpArith { op, fmt, rd, rs1, rs2 } => {
                let value = fp_arith(op, fmt, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, value);
            }
            Inst::FpUn { op, fmt, rd, rs1 } => {
                let value = fp_un(op, fmt, self.reg(rs1));
                self.set_reg(rd, value);
            }
            Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
                let value = fp_fma(op, fmt, self.reg(rs1), self.reg(rs2), self.reg(rs3));
                self.set_reg(rd, value);
            }
            Inst::FpCmp { op, fmt, rd, rs1, rs2 } => {
                let value = fp_cmp(op, fmt, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, value);
            }
            Inst::Vf { op, rd, rs1, rs2 } => {
                let value = vf(op, self.reg(rd), self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, value);
            }
            Inst::Pv { op, rd, rs1, rs2 } => {
                let value = pv(op, self.reg(rd), self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, value);
            }
            Inst::Fence => {}
            Inst::Ecall => {
                self.retired += 1;
                self.pc = next_pc;
                return Ok(Outcome::Exit { code: self.reg(Reg::A0) });
            }
            Inst::Ebreak => return Err(Trap::Breakpoint { pc }),
            Inst::Wfi => {
                self.retired += 1;
                self.pc = next_pc;
                return Ok(Outcome::Wfi);
            }
        }

        self.retired += 1;
        self.pc = next_pc;
        Ok(Outcome::Continue)
    }

    pub(crate) fn read_csr(&self, addr: u16) -> u32 {
        match addr {
            csr::MHARTID => self.hart_id,
            csr::MCYCLE => self.mcycle as u32,
            csr::MINSTRET => self.retired as u32,
            _ => 0,
        }
    }

    pub(crate) fn write_csr(&mut self, _addr: u16, _value: u32) {
        // All implemented CSRs are read-only counters; writes are ignored,
        // matching Snitch's minimal CSR file.
    }
}

// --- FP helpers (zfinx/zhinx: values live in the integer registers) ---
//
// These operate on raw register *values* so the seed interpreter
// (`Cpu::execute`) and the pre-lowered micro-op kernels (`crate::uop`)
// share one semantic body.

#[inline]
fn h(v: u32) -> F16 {
    F16::from_bits(v as u16)
}

#[inline]
fn s(v: u32) -> f32 {
    f32::from_bits(v)
}

/// binary16 results are sign-extended into the 32-bit register, as the
/// Zhinx spec requires for narrower-than-XLEN values.
#[inline]
fn box_h(value: F16) -> u32 {
    value.to_bits() as i16 as i32 as u32
}

pub(crate) fn fp_arith(op: FpOp, fmt: FpFmt, va: u32, vb: u32) -> u32 {
    match fmt {
        FpFmt::H => {
            let (a, b) = (h(va), h(vb));
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => fp_min_h(a, b),
                FpOp::Max => fp_max_h(a, b),
                FpOp::SgnJ => F16::from_bits((a.to_bits() & 0x7fff) | (b.to_bits() & 0x8000)),
                FpOp::SgnJN => F16::from_bits((a.to_bits() & 0x7fff) | (!b.to_bits() & 0x8000)),
                FpOp::SgnJX => F16::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000)),
            };
            box_h(r)
        }
        FpFmt::S => {
            let (a, b) = (s(va), s(vb));
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => {
                    if a.is_nan() {
                        b
                    } else if b.is_nan() {
                        a
                    } else {
                        a.min(b)
                    }
                }
                FpOp::Max => {
                    if a.is_nan() {
                        b
                    } else if b.is_nan() {
                        a
                    } else {
                        a.max(b)
                    }
                }
                FpOp::SgnJ => f32::from_bits((a.to_bits() & 0x7fff_ffff) | (b.to_bits() & 0x8000_0000)),
                FpOp::SgnJN => f32::from_bits((a.to_bits() & 0x7fff_ffff) | (!b.to_bits() & 0x8000_0000)),
                FpOp::SgnJX => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
            };
            r.to_bits()
        }
    }
}

pub(crate) fn fp_un(op: FpUnOp, fmt: FpFmt, va: u32) -> u32 {
    match op {
        FpUnOp::Sqrt => match fmt {
            FpFmt::H => box_h(h(va).sqrt()),
            FpFmt::S => s(va).sqrt().to_bits(),
        },
        FpUnOp::CvtWFromFp => {
            // RTZ with RISC-V saturation semantics.
            let x = match fmt {
                FpFmt::H => h(va).to_f32(),
                FpFmt::S => s(va),
            };
            if x.is_nan() {
                i32::MAX as u32
            } else {
                (x.trunc().clamp(i32::MIN as f32, i32::MAX as f32)) as i32 as u32
            }
        }
        FpUnOp::CvtFpFromW => {
            let x = va as i32;
            match fmt {
                FpFmt::H => box_h(F16::from_f64(f64::from(x))),
                FpFmt::S => (x as f32).to_bits(),
            }
        }
        FpUnOp::CvtSFromH => h(va).to_f32().to_bits(),
        FpUnOp::CvtHFromS => box_h(F16::from_f32(s(va))),
    }
}

pub(crate) fn fp_fma(op: FmaOp, fmt: FpFmt, va: u32, vb: u32, vc: u32) -> u32 {
    match fmt {
        FpFmt::H => {
            let (a, b, c) = (h(va).to_f64(), h(vb).to_f64(), h(vc).to_f64());
            let r = match op {
                FmaOp::Madd => a * b + c,
                FmaOp::Msub => a * b - c,
                FmaOp::Nmadd => -(a * b) - c,
                FmaOp::Nmsub => -(a * b) + c,
            };
            box_h(F16::from_f64(r))
        }
        FpFmt::S => {
            let (a, b, c) = (s(va), s(vb), s(vc));
            let r = match op {
                FmaOp::Madd => a.mul_add(b, c),
                FmaOp::Msub => a.mul_add(b, -c),
                FmaOp::Nmadd => (-a).mul_add(b, -c),
                FmaOp::Nmsub => (-a).mul_add(b, c),
            };
            r.to_bits()
        }
    }
}

pub(crate) fn fp_cmp(op: FpCmpOp, fmt: FpFmt, va: u32, vb: u32) -> u32 {
    let result = match fmt {
        FpFmt::H => {
            let (a, b) = (h(va).to_f32(), h(vb).to_f32());
            match op {
                FpCmpOp::Eq => a == b,
                FpCmpOp::Lt => a < b,
                FpCmpOp::Le => a <= b,
            }
        }
        FpFmt::S => {
            let (a, b) = (s(va), s(vb));
            match op {
                FpCmpOp::Eq => a == b,
                FpCmpOp::Lt => a < b,
                FpCmpOp::Le => a <= b,
            }
        }
    };
    u32::from(result)
}

// --- SIMD (SmallFloat / Xpulpimg) --------------------------------------

pub(crate) fn vf(op: VfOp, acc: u32, a: u32, b: u32) -> u32 {
    match op {
        VfOp::AddH => pack_h2(map2_h(a, b, |x, y| x + y)),
        VfOp::SubH => pack_h2(map2_h(a, b, |x, y| x - y)),
        VfOp::MulH => pack_h2(map2_h(a, b, |x, y| x * y)),
        VfOp::MacH => {
            let (av, bv, cv) = (unpack_h2(a), unpack_h2(b), unpack_h2(acc));
            pack_h2([av[0].mul_add(bv[0], cv[0]), av[1].mul_add(bv[1], cv[1])])
        }
        VfOp::DotpExSH => ops::vfdotpex_s_h(f32::from_bits(acc), unpack_h2(a), unpack_h2(b)).to_bits(),
        VfOp::NDotpExSH => ops::vfndotpex_s_h(f32::from_bits(acc), unpack_h2(a), unpack_h2(b)).to_bits(),
        VfOp::CdotpExSH => pack_h2(ops::vfcdotpex_s_h(unpack_h2(acc), unpack_h2(a), unpack_h2(b))),
        VfOp::CdotpExCSH => pack_h2(ops::vfcdotpex_conj_s_h(unpack_h2(acc), unpack_h2(a), unpack_h2(b))),
        VfOp::DotpExHB => pack_h2(ops::vfdotpex_h_b(unpack_h2(acc), unpack_b4(a), unpack_b4(b))),
        VfOp::NDotpExHB => pack_h2(ops::vfndotpex_h_b(unpack_h2(acc), unpack_b4(a), unpack_b4(b))),
        VfOp::CpkAHS => pack_h2([F16::from_f32(f32::from_bits(a)), F16::from_f32(f32::from_bits(b))]),
        VfOp::CvtHBLo => {
            let v = unpack_b4(a);
            pack_h2([F16::from(v[0]), F16::from(v[1])])
        }
        VfOp::CvtHBHi => {
            let v = unpack_b4(a);
            pack_h2([F16::from(v[2]), F16::from(v[3])])
        }
        VfOp::CvtBH => {
            let v = unpack_h2(a);
            u32::from(F8::from_f16(v[0]).to_bits()) | (u32::from(F8::from_f16(v[1]).to_bits()) << 8)
        }
        VfOp::SwapH => a.rotate_left(16),
        VfOp::SwapB => ((a & 0x00ff_00ff) << 8) | ((a & 0xff00_ff00) >> 8),
        VfOp::CmacB => {
            let (av, bv, cv) = (unpack_b4(a), unpack_b4(b), unpack_b4(acc));
            let r = ops::cmac_b([cv[0], cv[1]], [av[0], av[1]], [bv[0], bv[1]]);
            (acc & 0xffff_0000) | u32::from(r[0].to_bits()) | (u32::from(r[1].to_bits()) << 8)
        }
        VfOp::CmacConjB => {
            let (av, bv, cv) = (unpack_b4(a), unpack_b4(b), unpack_b4(acc));
            let r = ops::cmac_conj_b([cv[0], cv[1]], [av[0], av[1]], [bv[0], bv[1]]);
            (acc & 0xffff_0000) | u32::from(r[0].to_bits()) | (u32::from(r[1].to_bits()) << 8)
        }
    }
}

/// Xpulpimg integer MAC/SIMD semantics.
pub(crate) fn pv(op: PvOp, acc: u32, a: u32, b: u32) -> u32 {
    let lane_h = |x: u32, i: u32| (x >> (16 * i)) as i16;
    let lane_b = |x: u32, i: u32| (x >> (8 * i)) as i8;
    match op {
        PvOp::AddH => {
            let l0 = lane_h(a, 0).wrapping_add(lane_h(b, 0)) as u16;
            let l1 = lane_h(a, 1).wrapping_add(lane_h(b, 1)) as u16;
            u32::from(l0) | (u32::from(l1) << 16)
        }
        PvOp::SubH => {
            let l0 = lane_h(a, 0).wrapping_sub(lane_h(b, 0)) as u16;
            let l1 = lane_h(a, 1).wrapping_sub(lane_h(b, 1)) as u16;
            u32::from(l0) | (u32::from(l1) << 16)
        }
        PvOp::AddB => {
            let mut out = 0u32;
            for i in 0..4 {
                let l = lane_b(a, i).wrapping_add(lane_b(b, i)) as u8;
                out |= u32::from(l) << (8 * i);
            }
            out
        }
        PvOp::SubB => {
            let mut out = 0u32;
            for i in 0..4 {
                let l = lane_b(a, i).wrapping_sub(lane_b(b, i)) as u8;
                out |= u32::from(l) << (8 * i);
            }
            out
        }
        PvOp::Mac => acc.wrapping_add(a.wrapping_mul(b)),
        PvOp::Msu => acc.wrapping_sub(a.wrapping_mul(b)),
        PvOp::DotspH => {
            (i32::from(lane_h(a, 0)) * i32::from(lane_h(b, 0))
                + i32::from(lane_h(a, 1)) * i32::from(lane_h(b, 1))) as u32
        }
        PvOp::SdotspH => acc.wrapping_add(
            (i32::from(lane_h(a, 0)) * i32::from(lane_h(b, 0))
                + i32::from(lane_h(a, 1)) * i32::from(lane_h(b, 1))) as u32,
        ),
    }
}

pub(crate) fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1f),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1f),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

pub(crate) fn muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        MulDivOp::Mulhsu => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
        MulDivOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        MulDivOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: i32::MIN / -1
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulDivOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulDivOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

/// RISC-V fmin semantics: NaN operands yield the other operand.
fn fp_min_h(a: F16, b: F16) -> F16 {
    if a.is_nan() {
        b
    } else if b.is_nan() || a < b {
        a
    } else {
        b
    }
}

fn fp_max_h(a: F16, b: F16) -> F16 {
    if a.is_nan() {
        b
    } else if b.is_nan() || a > b {
        a
    } else {
        b
    }
}

#[inline]
fn unpack_h2(word: u32) -> [F16; 2] {
    [F16::from_bits(word as u16), F16::from_bits((word >> 16) as u16)]
}

#[inline]
fn pack_h2(v: [F16; 2]) -> u32 {
    u32::from(v[0].to_bits()) | (u32::from(v[1].to_bits()) << 16)
}

#[inline]
fn unpack_b4(word: u32) -> [F8; 4] {
    [
        F8::from_bits(word as u8),
        F8::from_bits((word >> 8) as u8),
        F8::from_bits((word >> 16) as u8),
        F8::from_bits((word >> 24) as u8),
    ]
}

#[inline]
fn map2_h(a: u32, b: u32, f: impl Fn(F16, F16) -> F16) -> [F16; 2] {
    let (av, bv) = (unpack_h2(a), unpack_h2(b));
    [f(av[0], bv[0]), f(av[1], bv[1])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DenseMemory;
    use terasim_riscv::{Assembler, Image, Segment};

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> (Cpu, DenseMemory) {
        let mut a = Assembler::new(0x8000_0000);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(0x8000_0000);
        image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
        let program = Program::translate(&image).unwrap();
        let mut cpu = Cpu::new(0);
        cpu.set_pc(program.entry());
        let mut mem = DenseMemory::new(0, 0x1000);
        for _ in 0..10_000 {
            match cpu.step(&program, &mut mem).unwrap() {
                Outcome::Exit { .. } => return (cpu, mem),
                Outcome::Continue => {}
                Outcome::Wfi => panic!("unexpected wfi"),
            }
        }
        panic!("program did not exit");
    }

    #[test]
    fn arithmetic_and_branches() {
        let (cpu, _) = run_asm(|a| {
            a.li(Reg::T0, 6);
            a.li(Reg::T1, 7);
            a.mul(Reg::A0, Reg::T0, Reg::T1);
            let skip = a.new_label();
            a.beq(Reg::A0, Reg::Zero, skip); // not taken
            a.addi(Reg::A0, Reg::A0, 1);
            a.bind(skip);
        });
        assert_eq!(cpu.reg(Reg::A0), 43);
    }

    #[test]
    fn memory_and_post_increment() {
        let (cpu, mem) = run_asm(|a| {
            a.li(Reg::A1, 0x100);
            a.li(Reg::T0, 0x1234);
            a.p_sw(Reg::T0, 4, Reg::A1); // store at 0x100, a1 -> 0x104
            a.p_sw(Reg::T0, 4, Reg::A1); // store at 0x104, a1 -> 0x108
            a.li(Reg::A2, 0x100);
            a.p_lw(Reg::A0, 8, Reg::A2); // load from 0x100, a2 -> 0x108
        });
        assert_eq!(cpu.reg(Reg::A0), 0x1234);
        assert_eq!(cpu.reg(Reg::A1), 0x108);
        assert_eq!(cpu.reg(Reg::A2), 0x108);
        assert_eq!(mem.read_bytes(0x104, 4), &0x1234u32.to_le_bytes());
    }

    #[test]
    fn sign_extension_on_lh() {
        let (cpu, _) = run_asm(|a| {
            a.li(Reg::T0, -5i32 & 0xffff); // 0xfffb
            a.sh(Reg::T0, 0x10, Reg::Zero);
            a.lh(Reg::A0, 0x10, Reg::Zero);
            a.lhu(Reg::A1, 0x10, Reg::Zero);
        });
        assert_eq!(cpu.reg(Reg::A0) as i32, -5);
        assert_eq!(cpu.reg(Reg::A1), 0xfffb);
    }

    #[test]
    fn half_precision_fma() {
        let (cpu, _) = run_asm(|a| {
            // a0 = 1.5 * 2.0 + 0.25 = 3.25 in binary16
            a.li(Reg::T0, F16::from_f32(1.5).to_bits() as i32);
            a.li(Reg::T1, F16::from_f32(2.0).to_bits() as i32);
            a.li(Reg::T2, F16::from_f32(0.25).to_bits() as i32);
            a.fmadd_h(Reg::A0, Reg::T0, Reg::T1, Reg::T2);
        });
        assert_eq!(F16::from_bits(cpu.reg(Reg::A0) as u16).to_f32(), 3.25);
    }

    #[test]
    fn simd_cdotp() {
        let (cpu, _) = run_asm(|a| {
            // acc = 0; a = 1+2j, b = 3+4j -> acc = -5+10j
            let pack = |re: f32, im: f32| {
                (u32::from(F16::from_f32(re).to_bits()) | (u32::from(F16::from_f32(im).to_bits()) << 16))
                    as i32
            };
            a.li(Reg::A0, 0);
            a.li(Reg::T0, pack(1.0, 2.0));
            a.li(Reg::T1, pack(3.0, 4.0));
            a.vfcdotpex_s_h(Reg::A0, Reg::T0, Reg::T1);
        });
        let v = cpu.reg(Reg::A0);
        assert_eq!(F16::from_bits(v as u16).to_f32(), -5.0);
        assert_eq!(F16::from_bits((v >> 16) as u16).to_f32(), 10.0);
    }

    #[test]
    fn amo_and_csr() {
        let (cpu, mem) = run_asm(|a| {
            a.li(Reg::T0, 0x40);
            a.li(Reg::T1, 3);
            a.amoadd_w(Reg::A0, Reg::T1, Reg::T0); // old = 0
            a.amoadd_w(Reg::A1, Reg::T1, Reg::T0); // old = 3
            a.csrr(Reg::A2, csr::MHARTID);
        });
        assert_eq!(cpu.reg(Reg::A0), 0);
        assert_eq!(cpu.reg(Reg::A1), 3);
        assert_eq!(cpu.reg(Reg::A2), 0);
        assert_eq!(mem.read_bytes(0x40, 4), &6u32.to_le_bytes());
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(muldiv(MulDivOp::Div, 7, 0), u32::MAX);
        assert_eq!(muldiv(MulDivOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(muldiv(MulDivOp::Rem, 7, 0), 7);
        assert_eq!(muldiv(MulDivOp::Rem, 0x8000_0000, u32::MAX), 0);
        assert_eq!(muldiv(MulDivOp::Mulh, 0x8000_0000, 0x8000_0000), 0x4000_0000);
    }

    #[test]
    fn swap_operations() {
        let cpu = {
            let (cpu, _) = run_asm(|a| {
                a.li(Reg::T0, 0x1122_3344u32 as i32);
                a.pv_swap_h(Reg::A0, Reg::T0);
                a.pv_swap_b(Reg::A1, Reg::T0);
            });
            cpu
        };
        assert_eq!(cpu.reg(Reg::A0), 0x3344_1122);
        assert_eq!(cpu.reg(Reg::A1), 0x2211_4433);
    }
}
