//! Macro-op fusion: superinstruction dispatch over the micro-op table.
//!
//! The pre-lowered [`UopProgram`] already removed per-step decoding; the
//! remaining fast-mode cost is *dispatch* — one table fetch, one indirect
//! call and one round of loop bookkeeping per instruction. This module
//! removes half of it for the dominant dynamic pairs: a lowering-time
//! peephole pass ([`FusedProgram::build`]) fuses adjacent instruction
//! pairs — compare+branch loop ends, address-generation+load/store, the
//! MAC chains of the unrolled dot-product kernels — into superinstruction
//! kernels executed with a **single dispatch and a single budget check**.
//!
//! Correctness contract (pinned by `tests/fusion.rs` and the in-module
//! lockstep tests):
//!
//! - **Stats attribution is per constituent.** A fused pair issues both
//!   instructions on the scoreboard individually, bumps `retired` and the
//!   class histogram twice, and applies the taken-branch bubble exactly as
//!   the unfused loop — [`RunStats`] is bit-identical to
//!   [`resume_lowered`](crate::resume_lowered).
//! - **Branch-into-the-middle falls back to the unfused table.** Fused
//!   pairs live only at their head PC; the tail PC keeps its plain
//!   single-uop slot, so any jump (including `jalr` with a runtime target)
//!   into the middle executes unfused at the same PC.
//! - **Traps fall out with per-constituent accounting.** A trap in the
//!   tail leaves the head committed and accounted, exactly as if the two
//!   had executed unfused.
//! - **The budget boundary is exact.** A pair is dispatched only with two
//!   instructions of headroom; at the boundary the head executes through
//!   the single-uop path, so `StopReason::Budget` fires at the identical
//!   retired count.
//!
//! CSR instructions never fuse (a `csrr mcycle`/`minstret` must observe
//! the cycle estimate the unfused loop would have published); `ecall`,
//! `ebreak` and `wfi` never *head* a pair (a pair head must be a plain
//! fall-through instruction) but may be fused as tails.
//!
//! [`resume_spmd`] stacks the second dispatch-amortization lever on top:
//! cluster drivers hand it a *group* of lanes (harts) converged on the
//! same PC and it executes one fetched (super)instruction across all of
//! them in a blocked inner loop — one dispatch amortized N ways, and N
//! consecutive calls to the same kernel pointer, which is exactly what a
//! branch-target predictor wants. Divergence (a branch that resolves
//! differently per lane, a trap, a budget boundary) splits the group and
//! the divergent lanes continue per-core.

use std::collections::VecDeque;

use terasim_riscv::{AluOp, BranchOp, Inst, LoadOp, VfOp};

use crate::cpu::{Cpu, Outcome, Trap};
use crate::mem::Memory;
use crate::program::Program;
use crate::runner::{finalize, RunConfig, RunStats, StopReason};
use crate::timing::InstClass;
use crate::timing::Scoreboard;
use crate::uop::{self, LoweredUop, UopMeta, UopProgram};

/// A superinstruction kernel: executes a fused pair — both constituents'
/// architectural effects *and* their per-constituent timing/statistics
/// bookkeeping — behind one dispatch.
pub type PairKernel<M> =
    fn(&mut Cpu, &PairUop<M>, &mut M, &mut Scoreboard, &mut RunStats, &RunConfig) -> Result<Outcome, Trap>;

/// A fused instruction pair: the superinstruction kernel plus copies of
/// both constituent lowered uops (the kernels replay their exact unfused
/// semantics and accounting).
pub struct PairUop<M> {
    /// The superinstruction kernel (specialized for dominant pairs,
    /// generic otherwise).
    pub exec: PairKernel<M>,
    /// The head constituent (never a control-flow, CSR or system
    /// instruction).
    pub a: LoweredUop<M>,
    /// The tail constituent (anything but a CSR instruction).
    pub b: LoweredUop<M>,
}

impl<M> Clone for PairUop<M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for PairUop<M> {}

impl<M> std::fmt::Debug for PairUop<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairUop").field("a", &self.a).field("b", &self.b).finish()
    }
}

/// One slot of a [`FusedProgram`]: what dispatch finds at a PC.
pub enum Slot<M> {
    /// No decodable instruction (illegal fetch when reached).
    Empty,
    /// A plain single micro-op (not fused at this PC — including the tail
    /// of a pair when jumped into directly).
    Single(LoweredUop<M>),
    /// A fused pair headed at this PC.
    Pair(PairUop<M>),
}

impl<M> std::fmt::Debug for Slot<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Empty => f.write_str("Empty"),
            Slot::Single(lu) => f.debug_tuple("Single").field(lu).finish(),
            Slot::Pair(p) => f.debug_tuple("Pair").field(p).finish(),
        }
    }
}

/// The fused superinstruction table: the unfused [`UopProgram`] slots with
/// eligible adjacent pairs overlaid as [`Slot::Pair`] at their head PC.
///
/// Built once per scenario (cluster drivers cache it in their shared
/// artifact set) by [`FusedProgram::build`]; immutable afterwards and
/// shareable across host threads like the table it derives from.
pub struct FusedProgram<M> {
    entry: u32,
    text_base: u32,
    slots: Vec<Slot<M>>,
    static_pairs: usize,
}

impl<M> std::fmt::Debug for FusedProgram<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedProgram")
            .field("entry", &self.entry)
            .field("len", &self.slots.len())
            .field("static_pairs", &self.static_pairs)
            .finish()
    }
}

// Same sharing contract as `UopProgram`: plain function pointers and POD
// records only, immutable after construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FusedProgram<crate::mem::DenseMemory>>();
};

/// A pair head must fall through unconditionally: no control flow (the
/// tail would execute speculatively), no `ecall`/`wfi` (their outcome ends
/// the dispatch before the tail), no `ebreak` (always traps; fusing it
/// buys nothing), no CSR (the cycle-counter CSRs must observe the unfused
/// publication points).
fn fusable_head(inst: &Inst) -> bool {
    !inst.is_control_flow() && !matches!(inst, Inst::Csr { .. } | Inst::Ecall | Inst::Ebreak | Inst::Wfi)
}

/// A pair tail may be anything whose observable effects do not depend on
/// the per-instruction `mcycle` publication — i.e. anything but a CSR
/// instruction. Control flow, `ecall` and `wfi` tails simply propagate
/// their outcome out of the superinstruction.
fn fusable_tail(inst: &Inst) -> bool {
    !matches!(inst, Inst::Csr { .. })
}

impl<M: Memory> FusedProgram<M> {
    /// Runs the peephole fusion pass over an already-lowered table.
    ///
    /// Pairs are formed greedily left-to-right inside basic blocks only:
    /// statically known branch/`jal` targets and fall-through successors
    /// of control flow are *leaders* and never fused into a preceding
    /// pair, which keeps loop back-edge targets pair-aligned. Runtime
    /// targets (`jalr`) need no special casing — a jump into a pair's
    /// middle fetches the tail's own single-uop slot.
    pub fn build(program: &Program, table: &UopProgram<M>) -> Self {
        let len = program.len();
        let base = program.text_base();
        let pc_of = |i: usize| base.wrapping_add(4 * i as u32);

        // Leader marks: entry, static branch targets, CF fall-throughs.
        let mut leader = vec![false; len];
        let entry_idx = (program.entry().wrapping_sub(base) / 4) as usize;
        if entry_idx < len {
            leader[entry_idx] = true;
        }
        for i in 0..len {
            let Some(inst) = program.fetch(pc_of(i)) else {
                continue;
            };
            if let Inst::Branch { offset, .. } | Inst::Jal { offset, .. } = inst {
                let target = pc_of(i).wrapping_add(offset as u32);
                let ti = (target.wrapping_sub(base) / 4) as usize;
                if target & 3 == 0 && ti < len {
                    leader[ti] = true;
                }
            }
            if inst.is_control_flow() && i + 1 < len {
                leader[i + 1] = true;
            }
        }

        let mut slots: Vec<Slot<M>> = (0..len)
            .map(|i| match table.fetch(pc_of(i)) {
                Some(lu) => Slot::Single(*lu),
                None => Slot::Empty,
            })
            .collect();

        let mut static_pairs = 0;
        let mut i = 0;
        while i + 1 < len {
            let (Some(ia), Some(ib)) = (program.fetch(pc_of(i)), program.fetch(pc_of(i + 1))) else {
                i += 1;
                continue;
            };
            if leader[i + 1] || !fusable_head(&ia) || !fusable_tail(&ib) {
                i += 1;
                continue;
            }
            let (Some(&a), Some(&b)) = (table.fetch(pc_of(i)), table.fetch(pc_of(i + 1))) else {
                i += 1;
                continue;
            };
            let exec = spec2::<M>(&ia, &ib).unwrap_or(pair_generic::<M>);
            slots[i] = Slot::Pair(PairUop { exec, a, b });
            static_pairs += 1;
            i += 2;
        }

        Self { entry: program.entry(), text_base: base, slots, static_pairs }
    }

    /// The program entry point.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Number of statically fused pairs (coverage diagnostics; the
    /// *dynamic* coverage comes from [`resume_profiled`]).
    pub fn static_pairs(&self) -> usize {
        self.static_pairs
    }

    /// Fetches the dispatch slot at `pc` (`None` = illegal fetch).
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&Slot<M>> {
        if pc & 3 != 0 {
            return None;
        }
        let idx = (pc.wrapping_sub(self.text_base) / 4) as usize;
        match self.slots.get(idx) {
            None | Some(Slot::Empty) => None,
            Some(s) => Some(s),
        }
    }
}

// --- Per-constituent execution steps -----------------------------------
//
// These replicate the `resume_lowered` loop body exactly; the `exec`
// parameter is generic so specialized superinstructions pass the concrete
// kernel function (statically dispatched and inlined) while the generic
// pair passes the slot's function pointer.

/// Load latency refinement, identical to the unfused loop: the effective
/// address is computed *before* execution (post-increment bases change).
#[inline(always)]
fn latency_of<M: Memory>(cpu: &Cpu, meta: &UopMeta, mem: &M, config: &RunConfig) -> u32 {
    if config.per_address_latency && meta.is_load {
        let base = cpu.reg_raw(meta.ea_base);
        let addr = if meta.ea_no_offset { base } else { base.wrapping_add(meta.ea_offset as u32) };
        mem.latency(addr)
    } else {
        meta.result_lat as u32
    }
}

/// Executes a pair head: guaranteed fall-through, so no control-flow check
/// and no `mcycle` publication (the tail is never a CSR read).
#[inline(always)]
fn head_step<M: Memory, F>(
    cpu: &mut Cpu,
    lu: &LoweredUop<M>,
    mem: &mut M,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
    config: &RunConfig,
    exec: F,
) -> Result<(), Trap>
where
    F: FnOnce(&mut Cpu, uop::Uop, &mut M) -> Result<Outcome, Trap>,
{
    let meta = &lu.meta;
    let latency = latency_of(cpu, meta, mem, config);
    exec(cpu, lu.uop, mem)?;
    sb.issue_slots(meta.srcs, meta.nsrcs, meta.dst, meta.post_inc, latency);
    stats.retired += 1;
    stats.class_counts[meta.class.index()] += 1;
    Ok(())
}

/// Executes one full instruction step — the complete `resume_lowered` loop
/// body: latency refinement, execution, scoreboard issue, statistics,
/// taken-branch bubble, `mcycle` publication. Used for pair tails and for
/// every unfused single step.
#[inline(always)]
fn full_step<M: Memory, F>(
    cpu: &mut Cpu,
    lu: &LoweredUop<M>,
    mem: &mut M,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
    config: &RunConfig,
    exec: F,
) -> Result<Outcome, Trap>
where
    F: FnOnce(&mut Cpu, uop::Uop, &mut M) -> Result<Outcome, Trap>,
{
    let meta = &lu.meta;
    let pc = cpu.pc();
    let latency = latency_of(cpu, meta, mem, config);
    let out = exec(cpu, lu.uop, mem)?;
    sb.issue_slots(meta.srcs, meta.nsrcs, meta.dst, meta.post_inc, latency);
    stats.retired += 1;
    stats.class_counts[meta.class.index()] += 1;
    if meta.is_control_flow && cpu.pc() != pc.wrapping_add(4) {
        sb.bubble(config.latency.taken_branch_penalty);
        stats.branch_bubbles += u64::from(config.latency.taken_branch_penalty);
    }
    cpu.set_mcycle(sb.cycles());
    Ok(out)
}

/// The generic fused pair: one dispatch, two (predictably sited) indirect
/// constituent calls, merged loop bookkeeping.
fn pair_generic<M: Memory>(
    cpu: &mut Cpu,
    p: &PairUop<M>,
    mem: &mut M,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
    config: &RunConfig,
) -> Result<Outcome, Trap> {
    head_step(cpu, &p.a, mem, sb, stats, config, p.a.exec)?;
    full_step(cpu, &p.b, mem, sb, stats, config, p.b.exec)
}

// Specialized superinstructions for the dominant static pairs of the
// emitted PHY kernels (see the `--fusion-report` histogram): both
// constituent kernels are called statically, so the whole pair compiles
// to straight-line code behind a single dispatch.
macro_rules! spec_pairs {
    ($($name:ident: $ka:ident + $kb:ident;)+) => {$(
        fn $name<M: Memory>(
            cpu: &mut Cpu,
            p: &PairUop<M>,
            mem: &mut M,
            sb: &mut Scoreboard,
            stats: &mut RunStats,
            config: &RunConfig,
        ) -> Result<Outcome, Trap> {
            head_step(cpu, &p.a, mem, sb, stats, config, uop::$ka::<M>)?;
            full_step(cpu, &p.b, mem, sb, stats, config, uop::$kb::<M>)
        }
    )+};
}

spec_pairs! {
    p_addi_beq: k_addi + k_beq;
    p_addi_bne: k_addi + k_bne;
    p_addi_blt: k_addi + k_blt;
    p_addi_bge: k_addi + k_bge;
    p_addi_bltu: k_addi + k_bltu;
    p_addi_bgeu: k_addi + k_bgeu;
    p_addi_addi: k_addi + k_addi;
    p_addi_add: k_addi + k_add;
    p_add_addi: k_add + k_addi;
    p_add_add: k_add + k_add;
    p_slli_add: k_slli + k_add;
    p_slli_addi: k_slli + k_addi;
    p_slli_srli: k_slli + k_srli;
    p_srli_slli: k_srli + k_slli;
    p_slli_or: k_slli + k_or;
    p_add_lw: k_add + k_lw;
    p_slli_lw: k_slli + k_lw;
    p_addi_lw: k_addi + k_lw;
    p_lw_addi: k_lw + k_addi;
    p_lw_lw: k_lw + k_lw;
    p_lwp_lwp: k_lw_post + k_lw_post;
    p_lhp_lhp: k_lh_post + k_lh_post;
    p_lhup_lhup: k_lhu_post + k_lhu_post;
    p_lwp_cdotpc: k_lw_post + k_vfcdotpex_c_s_h;
    p_lwp_dotp: k_lw_post + k_vfdotpex_s_h;
    p_lwp_ndotp: k_lw_post + k_vfndotpex_s_h;
    p_lwp_swap: k_lw_post + k_pv_swap_h;
    p_cdotpc_lwp: k_vfcdotpex_c_s_h + k_lw_post;
    p_dotp_lwp: k_vfdotpex_s_h + k_lw_post;
    p_ndotp_lwp: k_vfndotpex_s_h + k_lw_post;
    p_swap_dotp: k_pv_swap_h + k_vfdotpex_s_h;
    p_fmaddh_fmaddh: k_fmadd_h + k_fmadd_h;
    p_fmaddh_fnmsubh: k_fmadd_h + k_fnmsub_h;
    p_lhp_fmaddh: k_lh_post + k_fmadd_h;
    p_mul_add: k_mul + k_add;
    p_mul_addi: k_mul + k_addi;
    p_addi_mul: k_addi + k_mul;
    p_mul_mul: k_mul + k_mul;
    p_sw_addi: k_sw + k_addi;
    p_addi_sw: k_addi + k_sw;
}

/// Selects a specialized superinstruction for a pair, if one exists.
fn spec2<M: Memory>(a: &Inst, b: &Inst) -> Option<PairKernel<M>> {
    let kern: PairKernel<M> = match (a, b) {
        (Inst::OpImm { op: AluOp::Add, .. }, Inst::Branch { op, .. }) => match op {
            BranchOp::Eq => p_addi_beq::<M>,
            BranchOp::Ne => p_addi_bne::<M>,
            BranchOp::Lt => p_addi_blt::<M>,
            BranchOp::Ge => p_addi_bge::<M>,
            BranchOp::Ltu => p_addi_bltu::<M>,
            BranchOp::Geu => p_addi_bgeu::<M>,
        },
        (Inst::OpImm { op: AluOp::Add, .. }, Inst::OpImm { op: AluOp::Add, .. }) => p_addi_addi::<M>,
        (Inst::OpImm { op: AluOp::Add, .. }, Inst::Op { op: AluOp::Add, .. }) => p_addi_add::<M>,
        (Inst::Op { op: AluOp::Add, .. }, Inst::OpImm { op: AluOp::Add, .. }) => p_add_addi::<M>,
        (Inst::Op { op: AluOp::Add, .. }, Inst::Op { op: AluOp::Add, .. }) => p_add_add::<M>,
        (Inst::OpImm { op: AluOp::Sll, .. }, Inst::Op { op: AluOp::Add, .. }) => p_slli_add::<M>,
        (Inst::OpImm { op: AluOp::Sll, .. }, Inst::OpImm { op: AluOp::Add, .. }) => p_slli_addi::<M>,
        (Inst::OpImm { op: AluOp::Sll, .. }, Inst::OpImm { op: AluOp::Srl, .. }) => p_slli_srli::<M>,
        (Inst::OpImm { op: AluOp::Srl, .. }, Inst::OpImm { op: AluOp::Sll, .. }) => p_srli_slli::<M>,
        (Inst::OpImm { op: AluOp::Sll, .. }, Inst::Op { op: AluOp::Or, .. }) => p_slli_or::<M>,
        (Inst::Op { op: AluOp::Add, .. }, Inst::Load { op: LoadOp::Lw, post_inc: false, .. }) => {
            p_add_lw::<M>
        }
        (Inst::OpImm { op: AluOp::Sll, .. }, Inst::Load { op: LoadOp::Lw, post_inc: false, .. }) => {
            p_slli_lw::<M>
        }
        (Inst::OpImm { op: AluOp::Add, .. }, Inst::Load { op: LoadOp::Lw, post_inc: false, .. }) => {
            p_addi_lw::<M>
        }
        (Inst::Load { op: LoadOp::Lw, post_inc: false, .. }, Inst::OpImm { op: AluOp::Add, .. }) => {
            p_lw_addi::<M>
        }
        (
            Inst::Load { op: LoadOp::Lw, post_inc: false, .. },
            Inst::Load { op: LoadOp::Lw, post_inc: false, .. },
        ) => p_lw_lw::<M>,
        (
            Inst::Load { op: LoadOp::Lw, post_inc: true, .. },
            Inst::Load { op: LoadOp::Lw, post_inc: true, .. },
        ) => p_lwp_lwp::<M>,
        (
            Inst::Load { op: LoadOp::Lh, post_inc: true, .. },
            Inst::Load { op: LoadOp::Lh, post_inc: true, .. },
        ) => p_lhp_lhp::<M>,
        (
            Inst::Load { op: LoadOp::Lhu, post_inc: true, .. },
            Inst::Load { op: LoadOp::Lhu, post_inc: true, .. },
        ) => p_lhup_lhup::<M>,
        (Inst::Load { op: LoadOp::Lw, post_inc: true, .. }, Inst::Vf { op, .. }) => match op {
            VfOp::CdotpExCSH => p_lwp_cdotpc::<M>,
            VfOp::DotpExSH => p_lwp_dotp::<M>,
            VfOp::NDotpExSH => p_lwp_ndotp::<M>,
            VfOp::SwapH => p_lwp_swap::<M>,
            _ => return None,
        },
        (Inst::Vf { op, .. }, Inst::Load { op: LoadOp::Lw, post_inc: true, .. }) => match op {
            VfOp::CdotpExCSH => p_cdotpc_lwp::<M>,
            VfOp::DotpExSH => p_dotp_lwp::<M>,
            VfOp::NDotpExSH => p_ndotp_lwp::<M>,
            _ => return None,
        },
        (Inst::Vf { op: VfOp::SwapH, .. }, Inst::Vf { op: VfOp::DotpExSH, .. }) => p_swap_dotp::<M>,
        (Inst::Load { op: LoadOp::Lh, post_inc: true, .. }, Inst::FpFma { .. }) => {
            if matches!(b, Inst::FpFma { op: terasim_riscv::FmaOp::Madd, fmt: terasim_riscv::FpFmt::H, .. }) {
                p_lhp_fmaddh::<M>
            } else {
                return None;
            }
        }
        (Inst::FpFma { .. }, Inst::FpFma { .. }) => {
            use terasim_riscv::{FmaOp, FpFmt};
            match (a, b) {
                (
                    Inst::FpFma { op: FmaOp::Madd, fmt: FpFmt::H, .. },
                    Inst::FpFma { op: FmaOp::Madd, fmt: FpFmt::H, .. },
                ) => p_fmaddh_fmaddh::<M>,
                (
                    Inst::FpFma { op: FmaOp::Madd, fmt: FpFmt::H, .. },
                    Inst::FpFma { op: FmaOp::Nmsub, fmt: FpFmt::H, .. },
                ) => p_fmaddh_fnmsubh::<M>,
                _ => return None,
            }
        }
        (Inst::MulDiv { op: terasim_riscv::MulDivOp::Mul, .. }, _) => match b {
            Inst::Op { op: AluOp::Add, .. } => p_mul_add::<M>,
            Inst::OpImm { op: AluOp::Add, .. } => p_mul_addi::<M>,
            Inst::MulDiv { op: terasim_riscv::MulDivOp::Mul, .. } => p_mul_mul::<M>,
            _ => return None,
        },
        (Inst::OpImm { op: AluOp::Add, .. }, Inst::MulDiv { op: terasim_riscv::MulDivOp::Mul, .. }) => {
            p_addi_mul::<M>
        }
        (
            Inst::Store { op: terasim_riscv::StoreOp::Sw, post_inc: false, .. },
            Inst::OpImm { op: AluOp::Add, .. },
        ) => p_sw_addi::<M>,
        (
            Inst::OpImm { op: AluOp::Add, .. },
            Inst::Store { op: terasim_riscv::StoreOp::Sw, post_inc: false, .. },
        ) => p_addi_sw::<M>,
        _ => return None,
    };
    Some(kern)
}

// --- Drivers -----------------------------------------------------------

/// As [`resume_lowered`](crate::resume_lowered) over the fused
/// superinstruction table: bit-identical results and statistics, roughly
/// half the dispatches on fused-dense code.
///
/// # Errors
///
/// Propagates any [`Trap`] raised by the guest, with the same
/// per-constituent accounting as the unfused loop.
pub fn resume_fused<M: Memory>(
    cpu: &mut Cpu,
    fp: &FusedProgram<M>,
    mem: &mut M,
    config: &RunConfig,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
) -> Result<StopReason, Trap> {
    if cpu.pc() == 0 {
        cpu.set_pc(fp.entry);
    }

    loop {
        if stats.retired >= config.max_instructions {
            finalize(stats, sb, cpu, StopReason::Budget);
            return Ok(StopReason::Budget);
        }
        let pc = cpu.pc();
        let out = match fp.fetch(pc) {
            Some(Slot::Pair(p)) => {
                if config.max_instructions - stats.retired >= 2 {
                    (p.exec)(cpu, p, mem, sb, stats, config)?
                } else {
                    // Budget boundary: execute the head alone so Budget
                    // fires at the exact retired count.
                    full_step(cpu, &p.a, mem, sb, stats, config, p.a.exec)?
                }
            }
            Some(Slot::Single(lu)) => full_step(cpu, lu, mem, sb, stats, config, lu.exec)?,
            _ => return Err(Trap::IllegalFetch { pc }),
        };

        match out {
            Outcome::Continue => {}
            Outcome::Exit { code } => {
                let stop = StopReason::Exit { code };
                finalize(stats, sb, cpu, stop);
                return Ok(stop);
            }
            Outcome::Wfi => {
                finalize(stats, sb, cpu, StopReason::Wfi);
                return Ok(StopReason::Wfi);
            }
        }
    }
}

/// One SPMD lane: the per-hart mutable state [`resume_spmd`] advances.
#[derive(Debug)]
pub struct Lane<'a, M> {
    /// Architectural state of the lane's hart.
    pub cpu: &'a mut Cpu,
    /// The lane's private memory view.
    pub mem: &'a mut M,
    /// The lane's issue scoreboard.
    pub sb: &'a mut Scoreboard,
    /// The lane's accumulated run statistics.
    pub stats: &'a mut RunStats,
}

/// Runs a set of lanes to their next stop (exit, `wfi` park, budget),
/// executing converged lanes in lockstep: lanes at the same PC form a
/// group, each fetched (super)instruction is dispatched once and applied
/// across the whole group, and per-lane timing/statistics are accounted
/// exactly as the per-core loop would. Lanes whose branches resolve
/// differently split into subgroups (singletons continue through
/// [`resume_fused`]); every result is bit-identical to running each lane
/// alone.
///
/// Returns one [`StopReason`] per lane, in input order.
///
/// # Errors
///
/// Returns the first [`Trap`] raised by any lane (lane order within a
/// group, group order by lowest lane index). Partial state is abandoned,
/// exactly as cluster drivers treat a trapped run.
pub fn resume_spmd<M: Memory>(
    lanes: &mut [Lane<'_, M>],
    fp: &FusedProgram<M>,
    config: &RunConfig,
) -> Result<Vec<StopReason>, Trap> {
    let mut stops: Vec<StopReason> = vec![StopReason::Budget; lanes.len()];
    for lane in lanes.iter_mut() {
        if lane.cpu.pc() == 0 {
            lane.cpu.set_pc(fp.entry);
        }
    }

    // Initial convergence groups: lanes sharing a PC, lowest lane first.
    let mut work: VecDeque<Vec<usize>> = VecDeque::new();
    {
        let mut parts: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, lane) in lanes.iter().enumerate() {
            let pc = lane.cpu.pc();
            match parts.iter_mut().find(|(q, _)| *q == pc) {
                Some((_, v)) => v.push(i),
                None => parts.push((pc, vec![i])),
            }
        }
        parts.sort_by_key(|(_, v)| v[0]);
        work.extend(parts.into_iter().map(|(_, v)| v));
    }

    while let Some(group) = work.pop_front() {
        if group.len() == 1 {
            let l = &mut lanes[group[0]];
            stops[group[0]] = resume_fused(l.cpu, fp, l.mem, config, l.sb, l.stats)?;
            continue;
        }
        run_group(lanes, &group, fp, config, &mut stops, &mut work)?;
    }
    Ok(stops)
}

/// Lockstep execution of one convergence group until it stops, splits, or
/// nears the instruction budget (then lanes finish per-core for exact
/// budget semantics).
fn run_group<M: Memory>(
    lanes: &mut [Lane<'_, M>],
    group: &[usize],
    fp: &FusedProgram<M>,
    config: &RunConfig,
    stops: &mut [StopReason],
    work: &mut VecDeque<Vec<usize>>,
) -> Result<(), Trap> {
    let mut pc = lanes[group[0]].cpu.pc();
    let mut rem: u64 = group
        .iter()
        .map(|&i| config.max_instructions.saturating_sub(lanes[i].stats.retired))
        .min()
        .unwrap_or(0);

    loop {
        if rem < 2 {
            // Near the budget: per-core execution gets the boundary exact.
            for &i in group {
                let l = &mut lanes[i];
                stops[i] = resume_fused(l.cpu, fp, l.mem, config, l.sb, l.stats)?;
            }
            return Ok(());
        }
        let Some(slot) = fp.fetch(pc) else {
            return Err(Trap::IllegalFetch { pc });
        };
        let (cf, cost, out) = match slot {
            Slot::Pair(p) => {
                let mut out = Outcome::Continue;
                for &i in group {
                    let l = &mut lanes[i];
                    out = (p.exec)(l.cpu, p, l.mem, l.sb, l.stats, config)?;
                }
                (p.b.meta.is_control_flow, 2u64, out)
            }
            Slot::Single(lu) => {
                let mut out = Outcome::Continue;
                for &i in group {
                    let l = &mut lanes[i];
                    out = full_step(l.cpu, lu, l.mem, l.sb, l.stats, config, lu.exec)?;
                }
                (lu.meta.is_control_flow, 1u64, out)
            }
            Slot::Empty => return Err(Trap::IllegalFetch { pc }),
        };
        rem -= cost;

        // The fetched instruction is the same for every lane, so the
        // outcome *kind* is uniform (`ecall` exits everywhere, `wfi`
        // parks everywhere); only exit codes are per-lane.
        match out {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                for &i in group {
                    let l = &mut lanes[i];
                    let stop = StopReason::Exit { code: l.cpu.reg_raw(10) };
                    finalize(l.stats, l.sb, l.cpu, stop);
                    stops[i] = stop;
                }
                return Ok(());
            }
            Outcome::Wfi => {
                for &i in group {
                    let l = &mut lanes[i];
                    finalize(l.stats, l.sb, l.cpu, StopReason::Wfi);
                    stops[i] = StopReason::Wfi;
                }
                return Ok(());
            }
        }

        if cf {
            let next = lanes[group[0]].cpu.pc();
            if group.iter().any(|&i| lanes[i].cpu.pc() != next) {
                // Divergence: partition by PC and requeue; singletons run
                // per-core, converged subsets keep lockstepping.
                let mut parts: Vec<(u32, Vec<usize>)> = Vec::new();
                for &i in group {
                    let p = lanes[i].cpu.pc();
                    match parts.iter_mut().find(|(q, _)| *q == p) {
                        Some((_, v)) => v.push(i),
                        None => parts.push((p, vec![i])),
                    }
                }
                parts.sort_by_key(|(_, v)| v[0]);
                work.extend(parts.into_iter().map(|(_, v)| v));
                return Ok(());
            }
            pc = next;
        } else {
            pc = pc.wrapping_add(4 * cost as u32);
        }
    }
}

// --- Profiling ---------------------------------------------------------

/// Dynamic fusion profile: the adjacent-pair histogram and fused-dispatch
/// coverage of one (or many merged) runs. Collected by
/// [`resume_profiled`]; drives pair-selection tuning via the
/// `mips --fusion-report` bench leg.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionProfile {
    /// `pair_counts[a][b]`: dynamic occurrences of a class-`b` instruction
    /// retiring immediately after a class-`a` instruction on the same
    /// hart (indices per [`InstClass::index`]).
    pub pair_counts: [[u64; InstClass::COUNT]; InstClass::COUNT],
    /// Instructions the fused table dispatches inside a superinstruction.
    pub fused_retired: u64,
    /// Total retired instructions observed.
    pub total_retired: u64,
}

impl Default for FusionProfile {
    fn default() -> Self {
        Self { pair_counts: [[0; InstClass::COUNT]; InstClass::COUNT], fused_retired: 0, total_retired: 0 }
    }
}

impl FusionProfile {
    /// Merges another profile (e.g. another hart's) into this one.
    pub fn merge(&mut self, other: &FusionProfile) {
        for (a, b) in self.pair_counts.iter_mut().zip(other.pair_counts.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
        self.fused_retired += other.fused_retired;
        self.total_retired += other.total_retired;
    }

    /// Percentage of retired instructions dispatched fused (0–100).
    pub fn fused_pct(&self) -> f64 {
        if self.total_retired == 0 {
            0.0
        } else {
            100.0 * self.fused_retired as f64 / self.total_retired as f64
        }
    }

    /// The `k` most frequent dynamic class pairs, descending.
    pub fn top_pairs(&self, k: usize) -> Vec<(InstClass, InstClass, u64)> {
        let mut all: Vec<(InstClass, InstClass, u64)> = Vec::new();
        for (ai, a) in InstClass::ALL.iter().enumerate() {
            for (bi, b) in InstClass::ALL.iter().enumerate() {
                let n = self.pair_counts[ai][bi];
                if n > 0 {
                    all.push((*a, *b, n));
                }
            }
        }
        all.sort_by_key(|pair| std::cmp::Reverse(pair.2));
        all.truncate(k);
        all
    }
}

/// As [`resume_lowered`](crate::resume_lowered) (unfused execution order,
/// bit-identical results) while recording the dynamic adjacent-pair
/// histogram and the coverage the fused table *would* achieve. Slow path —
/// benchmarking legs only.
///
/// # Errors
///
/// Propagates any [`Trap`] raised by the guest.
pub fn resume_profiled<M: Memory>(
    cpu: &mut Cpu,
    fp: &FusedProgram<M>,
    mem: &mut M,
    config: &RunConfig,
    sb: &mut Scoreboard,
    stats: &mut RunStats,
    prof: &mut FusionProfile,
) -> Result<StopReason, Trap> {
    if cpu.pc() == 0 {
        cpu.set_pc(fp.entry);
    }
    let mut prev: Option<usize> = None;
    // Remaining instructions of the fused dispatch the coverage walk is
    // inside (mirrors the fetch decisions `resume_fused` would make on
    // the identical PC stream).
    let mut pending: u64 = 0;
    loop {
        if stats.retired >= config.max_instructions {
            finalize(stats, sb, cpu, StopReason::Budget);
            return Ok(StopReason::Budget);
        }
        let pc = cpu.pc();
        let lu = match fp.fetch(pc) {
            Some(Slot::Pair(p)) => {
                if pending == 0 && config.max_instructions - stats.retired >= 2 {
                    prof.fused_retired += 2;
                    pending = 2;
                }
                &p.a
            }
            Some(Slot::Single(lu)) => lu,
            _ => return Err(Trap::IllegalFetch { pc }),
        };
        if pending == 0 {
            pending = 1;
        }
        let out = full_step(cpu, lu, mem, sb, stats, config, lu.exec)?;
        pending -= 1;
        let class = lu.meta.class.index();
        prof.total_retired += 1;
        if let Some(p) = prev {
            prof.pair_counts[p][class] += 1;
        }
        prev = Some(class);

        match out {
            Outcome::Continue => {}
            Outcome::Exit { code } => {
                let stop = StopReason::Exit { code };
                finalize(stats, sb, cpu, stop);
                return Ok(stop);
            }
            Outcome::Wfi => {
                finalize(stats, sb, cpu, StopReason::Wfi);
                return Ok(StopReason::Wfi);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    use super::*;
    use crate::mem::DenseMemory;
    use crate::runner::resume_lowered;

    fn program_of(build: impl FnOnce(&mut Assembler)) -> Program {
        let mut a = Assembler::new(0x8000_0000);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(0x8000_0000);
        image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
        Program::translate(&image).unwrap()
    }

    /// Runs the same program fused and unfused with the given budget and
    /// asserts full-state bit-identity (registers, memory, stats, stop).
    fn differential(build: impl FnOnce(&mut Assembler), max_instructions: u64) {
        let program = program_of(build);
        let config = RunConfig { max_instructions, ..RunConfig::default() };
        let table: UopProgram<DenseMemory> = UopProgram::lower(&program, &config.latency);
        let fused = FusedProgram::build(&program, &table);

        let mut cpu_u = Cpu::new(0);
        let mut cpu_f = Cpu::new(0);
        let mut mem_u = DenseMemory::new(0, 0x1000);
        let mut mem_f = DenseMemory::new(0, 0x1000);
        let mut sb_u = Scoreboard::new();
        let mut sb_f = Scoreboard::new();
        let mut st_u = RunStats::default();
        let mut st_f = RunStats::default();

        let ru = resume_lowered(&mut cpu_u, &table, &mut mem_u, &config, &mut sb_u, &mut st_u);
        let rf = resume_fused(&mut cpu_f, &fused, &mut mem_f, &config, &mut sb_f, &mut st_f);
        assert_eq!(ru, rf, "stop/trap diverged");
        assert_eq!(st_u, st_f, "stats diverged");
        assert_eq!(cpu_u.pc(), cpu_f.pc(), "pc diverged");
        for r in 0..32u8 {
            assert_eq!(cpu_u.reg_raw(r), cpu_f.reg_raw(r), "x{r} diverged");
        }
        assert_eq!(mem_u.read_bytes(0, 0x1000), mem_f.read_bytes(0, 0x1000), "memory diverged");
    }

    #[test]
    fn loop_and_memory_identical() {
        for budget in [u64::MAX, 100, 7, 6, 5, 2, 1] {
            differential(
                |a| {
                    a.li(Reg::A0, 0);
                    a.li(Reg::T0, 10);
                    let top = a.new_label();
                    a.bind(top);
                    a.add(Reg::A0, Reg::A0, Reg::T0);
                    a.addi(Reg::T0, Reg::T0, -1);
                    a.bnez(Reg::T0, top);
                    a.sw(Reg::A0, 0x40, Reg::Zero);
                    a.lw(Reg::A1, 0x40, Reg::Zero);
                },
                budget,
            );
        }
    }

    #[test]
    fn jump_into_pair_tail_uses_unfused_slot() {
        // `jal` over the pair head lands mid-pair; the tail executes via
        // its own single slot.
        differential(
            |a| {
                let mid = a.new_label();
                a.li(Reg::T0, 5);
                a.j(mid);
                a.addi(Reg::T0, Reg::T0, 100); // pair head, skipped
                a.bind(mid);
                a.addi(Reg::T0, Reg::T0, 1); // potential pair tail
                a.addi(Reg::T1, Reg::T0, 2);
            },
            u64::MAX,
        );
    }

    #[test]
    fn trap_mid_pair_accounts_head() {
        // The second load faults (out of DenseMemory range): the head of
        // the pair must stay committed and accounted identically.
        differential(
            |a| {
                a.li(Reg::A1, 0x100);
                a.lui(Reg::A2, 0x7000_0000u32 as i32);
                a.lw(Reg::A3, 0, Reg::A1); // pair head: fine
                a.lw(Reg::A4, 0, Reg::A2); // pair tail: faults
            },
            u64::MAX,
        );
    }

    #[test]
    fn post_inc_mac_chain_identical() {
        differential(
            |a| {
                a.li(Reg::A0, 0x100);
                a.li(Reg::A1, 0x200);
                a.li(Reg::A6, 4);
                let top = a.new_label();
                a.bind(top);
                a.p_lw(Reg::A2, 4, Reg::A0);
                a.p_lw(Reg::A3, 4, Reg::A1);
                a.vfcdotpex_c_s_h(Reg::T0, Reg::A2, Reg::A3);
                a.addi(Reg::A6, Reg::A6, -1);
                a.bnez(Reg::A6, top);
            },
            u64::MAX,
        );
    }

    #[test]
    fn csr_reads_never_fuse() {
        // mcycle/minstret reads must observe the per-instruction
        // publication; the pass refuses to fuse them and results match.
        differential(
            |a| {
                a.nop().nop().nop();
                a.csrr(Reg::A0, terasim_riscv::csr::MCYCLE);
                a.csrr(Reg::A1, terasim_riscv::csr::MINSTRET);
                a.addi(Reg::A2, Reg::A0, 0);
            },
            u64::MAX,
        );
    }

    #[test]
    fn spmd_lockstep_matches_per_lane() {
        // Four lanes diverging on hart id, then reconverging.
        let program = program_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.andi(Reg::T1, Reg::T0, 1);
            let odd = a.new_label();
            let join = a.new_label();
            a.bnez(Reg::T1, odd);
            a.slli(Reg::A0, Reg::T0, 4);
            a.j(join);
            a.bind(odd);
            a.addi(Reg::A0, Reg::T0, 100);
            a.bind(join);
            a.slli(Reg::T2, Reg::T0, 2);
            a.sw(Reg::A0, 0x80, Reg::T2);
        });
        let config = RunConfig::default();
        let table: UopProgram<DenseMemory> = UopProgram::lower(&program, &config.latency);
        let fused = FusedProgram::build(&program, &table);

        let run_ref = |hart: u32| {
            let mut cpu = Cpu::new(hart);
            let mut mem = DenseMemory::new(0, 0x1000);
            let mut sb = Scoreboard::new();
            let mut st = RunStats::default();
            let stop = resume_lowered(&mut cpu, &table, &mut mem, &config, &mut sb, &mut st).unwrap();
            (cpu, mem, st, stop)
        };

        let mut cpus: Vec<Cpu> = (0..4).map(Cpu::new).collect();
        let mut mems: Vec<DenseMemory> = (0..4).map(|_| DenseMemory::new(0, 0x1000)).collect();
        let mut sbs: Vec<Scoreboard> = (0..4).map(|_| Scoreboard::new()).collect();
        let mut sts: Vec<RunStats> = (0..4).map(|_| RunStats::default()).collect();
        let mut lanes: Vec<Lane<'_, DenseMemory>> = cpus
            .iter_mut()
            .zip(mems.iter_mut())
            .zip(sbs.iter_mut())
            .zip(sts.iter_mut())
            .map(|(((cpu, mem), sb), stats)| Lane { cpu, mem, sb, stats })
            .collect();
        let stops = resume_spmd(&mut lanes, &fused, &config).unwrap();

        for hart in 0..4u32 {
            let (rc, rm, rst, rstop) = run_ref(hart);
            let i = hart as usize;
            assert_eq!(stops[i], rstop, "hart {hart} stop diverged");
            assert_eq!(sts[i], rst, "hart {hart} stats diverged");
            for r in 0..32u8 {
                assert_eq!(cpus[i].reg_raw(r), rc.reg_raw(r), "hart {hart} x{r} diverged");
            }
            assert_eq!(
                mems[i].read_bytes(0, 0x1000),
                rm.read_bytes(0, 0x1000),
                "hart {hart} memory diverged"
            );
        }
    }

    #[test]
    fn profile_counts_cover_all_retirements() {
        let program = program_of(|a| {
            a.li(Reg::T0, 8);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        let config = RunConfig::default();
        let table: UopProgram<DenseMemory> = UopProgram::lower(&program, &config.latency);
        let fused = FusedProgram::build(&program, &table);
        let mut cpu = Cpu::new(0);
        let mut mem = DenseMemory::new(0, 0x1000);
        let mut sb = Scoreboard::new();
        let mut st = RunStats::default();
        let mut prof = FusionProfile::default();
        resume_profiled(&mut cpu, &fused, &mut mem, &config, &mut sb, &mut st, &mut prof).unwrap();
        assert_eq!(prof.total_retired, st.retired);
        // The addi+bnez loop body fuses: coverage must be substantial.
        assert!(prof.fused_retired > st.retired / 2, "{prof:?}");
        assert!(prof.fused_pct() > 50.0);
        let pairs = prof.top_pairs(3);
        assert!(!pairs.is_empty());
        // Adjacency counts: every retirement except the first follows one.
        let total: u64 = prof.pair_counts.iter().flatten().sum();
        assert_eq!(total, st.retired - 1);
    }
}
