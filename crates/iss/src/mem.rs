//! The core's view of data memory.

use core::fmt;

use terasim_riscv::AmoOp;

/// Error produced by a data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address is not backed by any memory region.
    Unmapped {
        /// Faulting address.
        addr: u32,
    },
    /// The access is not naturally aligned for its size.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "access to unmapped address {addr:#010x}"),
            MemError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Data memory as seen by one hart.
///
/// Implementations decide sharing (the TeraPool L1 is shared between 1024
/// harts) and per-address latency (NUMA distance). Sub-word values are
/// passed in the low bits of `u32`, zero-extended on load.
///
/// All accesses must be naturally aligned; implementations return
/// [`MemError::Misaligned`] otherwise.
pub trait Memory {
    /// Loads `size` ∈ {1, 2, 4} bytes at `addr`, zero-extended.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unmapped or misaligned access.
    fn load(&mut self, addr: u32, size: u32) -> Result<u32, MemError>;

    /// Stores the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unmapped or misaligned access.
    fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), MemError>;

    /// Atomic read-modify-write on the aligned word at `addr`; returns the
    /// old value. Used for `amo*.w` and the `sc.w` commit.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unmapped or misaligned access.
    fn amo(&mut self, op: AmoOp, addr: u32, value: u32) -> Result<u32, MemError>;

    /// Static access latency in cycles for the timing model.
    ///
    /// The default is the paper's conservative choice: the largest
    /// non-contended TeraPool L1 latency (9 cycles) for every access.
    fn latency(&self, addr: u32) -> u32 {
        let _ = addr;
        9
    }
}

pub(crate) fn check_align(addr: u32, size: u32) -> Result<(), MemError> {
    if !addr.is_multiple_of(size) {
        Err(MemError::Misaligned { addr, size })
    } else {
        Ok(())
    }
}

/// Applies an AMO operation to `old`, returning the new memory value.
pub(crate) fn amo_apply(op: AmoOp, old: u32, value: u32) -> u32 {
    match op {
        AmoOp::Swap => value,
        AmoOp::Add => old.wrapping_add(value),
        AmoOp::Xor => old ^ value,
        AmoOp::And => old & value,
        AmoOp::Or => old | value,
        AmoOp::Min => (old as i32).min(value as i32) as u32,
        AmoOp::Max => (old as i32).max(value as i32) as u32,
        AmoOp::Minu => old.min(value),
        AmoOp::Maxu => old.max(value),
    }
}

/// A flat, single-owner RAM region — the simplest [`Memory`], used for
/// single-core runs and unit tests.
///
/// # Examples
///
/// ```
/// use terasim_iss::{DenseMemory, Memory};
///
/// let mut mem = DenseMemory::new(0x1000, 0x100);
/// mem.store(0x1004, 4, 0xdead_beef)?;
/// assert_eq!(mem.load(0x1004, 4)?, 0xdead_beef);
/// assert_eq!(mem.load(0x1006, 2)?, 0xdead);
/// # Ok::<(), terasim_iss::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenseMemory {
    base: u32,
    bytes: Vec<u8>,
}

impl DenseMemory {
    /// Allocates `size` zeroed bytes starting at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        Self { base, bytes: vec![0; size as usize] }
    }

    /// Base address of the region.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size of the region in bytes.
    pub fn size(&self) -> u32 {
        u32::try_from(self.bytes.len()).expect("region fits the address space")
    }

    /// Copies `bytes` into the region at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the region.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let start = addr.checked_sub(self.base).expect("address below region") as usize;
        self.bytes[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the region.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        let start = addr.checked_sub(self.base).expect("address below region") as usize;
        &self.bytes[start..start + len]
    }

    fn offset(&self, addr: u32, size: u32) -> Result<usize, MemError> {
        check_align(addr, size)?;
        let off = addr.wrapping_sub(self.base);
        if off.checked_add(size).is_some_and(|end| end as usize <= self.bytes.len()) && addr >= self.base {
            Ok(off as usize)
        } else {
            Err(MemError::Unmapped { addr })
        }
    }
}

impl Memory for DenseMemory {
    fn load(&mut self, addr: u32, size: u32) -> Result<u32, MemError> {
        let off = self.offset(addr, size)?;
        let mut word = [0u8; 4];
        word[..size as usize].copy_from_slice(&self.bytes[off..off + size as usize]);
        Ok(u32::from_le_bytes(word))
    }

    fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), MemError> {
        let off = self.offset(addr, size)?;
        self.bytes[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
        Ok(())
    }

    fn amo(&mut self, op: AmoOp, addr: u32, value: u32) -> Result<u32, MemError> {
        let old = self.load(addr, 4)?;
        self.store(addr, 4, amo_apply(op, old, value))?;
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subword_access() {
        let mut mem = DenseMemory::new(0, 16);
        mem.store(0, 4, 0x0403_0201).unwrap();
        assert_eq!(mem.load(0, 1).unwrap(), 0x01);
        assert_eq!(mem.load(3, 1).unwrap(), 0x04);
        assert_eq!(mem.load(2, 2).unwrap(), 0x0403);
        mem.store(1, 1, 0xff).unwrap();
        assert_eq!(mem.load(0, 4).unwrap(), 0x0403_ff01);
    }

    #[test]
    fn bounds_and_alignment() {
        let mut mem = DenseMemory::new(0x100, 16);
        assert_eq!(mem.load(0x0fc, 4), Err(MemError::Unmapped { addr: 0x0fc }));
        assert_eq!(mem.load(0x110, 4), Err(MemError::Unmapped { addr: 0x110 }));
        assert_eq!(mem.load(0x102, 4), Err(MemError::Misaligned { addr: 0x102, size: 4 }));
        assert!(mem.store(0x10c, 4, 0).is_ok());
    }

    #[test]
    fn amo_operations() {
        let mut mem = DenseMemory::new(0, 16);
        mem.store(4, 4, 10).unwrap();
        assert_eq!(mem.amo(AmoOp::Add, 4, 5).unwrap(), 10);
        assert_eq!(mem.load(4, 4).unwrap(), 15);
        assert_eq!(mem.amo(AmoOp::Swap, 4, 99).unwrap(), 15);
        assert_eq!(mem.load(4, 4).unwrap(), 99);
        mem.store(8, 4, (-5i32) as u32).unwrap();
        assert_eq!(mem.amo(AmoOp::Max, 8, 3).unwrap(), (-5i32) as u32);
        assert_eq!(mem.load(8, 4).unwrap(), 3);
        assert_eq!(mem.amo(AmoOp::Maxu, 8, (-1i32) as u32).unwrap(), 3);
        assert_eq!(mem.load(8, 4).unwrap(), u32::MAX);
    }
}
