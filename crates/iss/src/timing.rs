//! The fast approximate timing model: static latencies + RAW scoreboard.
//!
//! Following the paper (§III-B), every instruction is assigned a *static*
//! latency and a scoreboard tracks when each destination register becomes
//! available. An instruction issues when (a) the previous instruction has
//! issued (single-issue, in-order Snitch) and (b) all of its source
//! registers are ready. The difference between those two times is the RAW
//! stall the paper's Figure 8 calls `stall-raw`; loads stalled on the
//! conservative 9-cycle memory latency surface the `stall-lsu` effect.

use terasim_riscv::{FpOp, Inst, VfOp};

/// Coarse instruction classes used for latency assignment and the
/// Figure-8-style breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer ALU, `lui`/`auipc`, CSR moves.
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide/remainder.
    Div,
    /// Data-memory loads (including post-increment forms).
    Load,
    /// Data-memory stores.
    Store,
    /// Atomic read-modify-write, `lr.w`, `sc.w`.
    Amo,
    /// Conditional branches.
    Branch,
    /// `jal`/`jalr`.
    Jump,
    /// Scalar FP add/sub/mul/FMA/compare/sign ops.
    Fp,
    /// Scalar FP divide and square root (long-latency iterative unit).
    FpDivSqrt,
    /// SIMD SmallFloat lane ops, shuffles, conversions.
    Simd,
    /// Widening/complex dot products.
    Dotp,
    /// `wfi`, `ecall`, `fence` and friends.
    System,
}

impl InstClass {
    /// Number of classes (for stat arrays).
    pub const COUNT: usize = 13;

    /// All classes, in stat-array order.
    pub const ALL: [InstClass; Self::COUNT] = [
        InstClass::Alu,
        InstClass::Mul,
        InstClass::Div,
        InstClass::Load,
        InstClass::Store,
        InstClass::Amo,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::Fp,
        InstClass::FpDivSqrt,
        InstClass::Simd,
        InstClass::Dotp,
        InstClass::System,
    ];

    /// Stat-array index of the class.
    pub const fn index(self) -> usize {
        match self {
            InstClass::Alu => 0,
            InstClass::Mul => 1,
            InstClass::Div => 2,
            InstClass::Load => 3,
            InstClass::Store => 4,
            InstClass::Amo => 5,
            InstClass::Branch => 6,
            InstClass::Jump => 7,
            InstClass::Fp => 8,
            InstClass::FpDivSqrt => 9,
            InstClass::Simd => 10,
            InstClass::Dotp => 11,
            InstClass::System => 12,
        }
    }

    /// Classifies a decoded instruction.
    pub fn of(inst: &Inst) -> Self {
        match inst {
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::OpImm { .. }
            | Inst::Op { .. }
            | Inst::Csr { .. } => InstClass::Alu,
            Inst::MulDiv { op, .. } => match op {
                terasim_riscv::MulDivOp::Mul
                | terasim_riscv::MulDivOp::Mulh
                | terasim_riscv::MulDivOp::Mulhsu
                | terasim_riscv::MulDivOp::Mulhu => InstClass::Mul,
                _ => InstClass::Div,
            },
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::LrW { .. } | Inst::ScW { .. } | Inst::Amo { .. } => InstClass::Amo,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Jal { .. } | Inst::Jalr { .. } => InstClass::Jump,
            Inst::FpArith { op, .. } => match op {
                FpOp::Div => InstClass::FpDivSqrt,
                _ => InstClass::Fp,
            },
            Inst::FpUn { op, .. } => match op {
                terasim_riscv::FpUnOp::Sqrt => InstClass::FpDivSqrt,
                _ => InstClass::Fp,
            },
            Inst::FpFma { .. } | Inst::FpCmp { .. } => InstClass::Fp,
            Inst::Vf { op, .. } => match op {
                VfOp::DotpExSH
                | VfOp::NDotpExSH
                | VfOp::CdotpExSH
                | VfOp::CdotpExCSH
                | VfOp::DotpExHB
                | VfOp::NDotpExHB
                | VfOp::CmacB
                | VfOp::CmacConjB => InstClass::Dotp,
                _ => InstClass::Simd,
            },
            Inst::Pv { op, .. } => match op {
                terasim_riscv::PvOp::Mac
                | terasim_riscv::PvOp::Msu
                | terasim_riscv::PvOp::DotspH
                | terasim_riscv::PvOp::SdotspH => InstClass::Mul,
                _ => InstClass::Alu,
            },
            Inst::Fence | Inst::Ecall | Inst::Ebreak | Inst::Wfi => InstClass::System,
        }
    }
}

/// Static per-class result latencies (cycles until the destination register
/// is usable) plus control-flow penalties.
///
/// The defaults approximate the Snitch pipeline and its co-processing
/// functional units; they are deliberately public so the ablation benches
/// can perturb them (DESIGN.md, decision D2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyModel {
    /// Integer ALU result latency.
    pub alu: u32,
    /// IPU multiply latency.
    pub mul: u32,
    /// IPU divide latency.
    pub div: u32,
    /// Fallback load-use latency when the memory does not refine it. The
    /// paper's conservative choice is the worst non-contended L1 access:
    /// 9 cycles.
    pub load: u32,
    /// AMO round-trip latency.
    pub amo: u32,
    /// FPU add/mul/FMA latency.
    pub fp: u32,
    /// FPU divide/sqrt latency.
    pub fp_div_sqrt: u32,
    /// SIMD lane-op latency.
    pub simd: u32,
    /// Widening/complex dot-product latency.
    pub dotp: u32,
    /// Extra bubbles after a taken branch or jump.
    pub taken_branch_penalty: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            alu: 1,
            mul: 3,
            div: 21,
            load: 9,
            amo: 10,
            fp: 4,
            fp_div_sqrt: 12,
            simd: 4,
            dotp: 4,
            taken_branch_penalty: 2,
        }
    }
}

impl LatencyModel {
    /// Result latency for an instruction of class `class` (loads use the
    /// fallback; drivers override with per-address memory latency).
    pub fn result_latency(&self, class: InstClass) -> u32 {
        match class {
            InstClass::Alu | InstClass::Branch | InstClass::Store | InstClass::System => 1,
            InstClass::Jump => 1,
            InstClass::Mul => self.mul,
            InstClass::Div => self.div,
            InstClass::Load => self.load,
            InstClass::Amo => self.amo,
            InstClass::Fp => self.fp,
            InstClass::FpDivSqrt => self.fp_div_sqrt,
            InstClass::Simd => self.simd,
            InstClass::Dotp => self.dotp,
        }
    }
}

/// Per-hart issue scoreboard: tracks when each register's value becomes
/// available and accumulates RAW stalls.
///
/// # Examples
///
/// ```
/// use terasim_iss::Scoreboard;
/// use terasim_riscv::{Inst, LoadOp, Reg, AluOp};
///
/// let mut sb = Scoreboard::new();
/// let load = Inst::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::A1, offset: 0, post_inc: false };
/// let use_it = Inst::OpImm { op: AluOp::Add, rd: Reg::A2, rs1: Reg::A0, imm: 1 };
/// sb.issue(&load, 9);
/// sb.issue(&use_it, 1);
/// // The dependent add waited for the 9-cycle load.
/// assert_eq!(sb.raw_stalls(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    ready: [u64; 32],
    next_issue: u64,
    raw_stalls: u64,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Scoreboard {
    /// Creates an empty scoreboard at cycle zero.
    pub fn new() -> Self {
        Self { ready: [0; 32], next_issue: 0, raw_stalls: 0 }
    }

    /// Issues `inst` whose result latency is `latency`; returns the issue
    /// cycle.
    pub fn issue(&mut self, inst: &Inst, latency: u32) -> u64 {
        let mut t = self.next_issue;
        for src in inst.srcs() {
            t = t.max(self.ready[src.index()]);
        }
        self.raw_stalls += t - self.next_issue;
        if let Some(rd) = inst.dst() {
            self.ready[rd.index()] = t + u64::from(latency);
        }
        if let Some(base) = inst.post_inc_dst() {
            // The incremented base comes from the ALU path: ready next cycle.
            self.ready[base.index()] = t + 1;
        }
        self.next_issue = t + 1;
        t
    }

    /// As [`Scoreboard::issue`], but over pre-decoded register slots (the
    /// micro-op hot path): `srcs[..nsrcs]` are source indices with `x0`
    /// already omitted, `dst`/`post_inc` are destination indices or
    /// [`NO_REG`](crate::uop::NO_REG). Semantically identical to `issue`
    /// on the instruction the slots were lowered from.
    #[inline]
    pub fn issue_slots(&mut self, srcs: [u8; 3], nsrcs: u8, dst: u8, post_inc: u8, latency: u32) -> u64 {
        let mut t = self.next_issue;
        for &src in &srcs[..nsrcs as usize] {
            t = t.max(self.ready[(src & 31) as usize]);
        }
        self.raw_stalls += t - self.next_issue;
        if dst != crate::uop::NO_REG {
            self.ready[(dst & 31) as usize] = t + u64::from(latency);
        }
        if post_inc != crate::uop::NO_REG {
            // The incremented base comes from the ALU path: ready next cycle.
            self.ready[(post_inc & 31) as usize] = t + 1;
        }
        self.next_issue = t + 1;
        t
    }

    /// Inserts `n` pipeline bubbles (taken-branch penalty).
    pub fn bubble(&mut self, n: u32) {
        self.next_issue += u64::from(n);
    }

    /// Advances the local clock to at least `t` (used when a cluster
    /// barrier releases: the hart idled until the slowest arrival).
    /// Returns the number of idle cycles inserted.
    pub fn advance_to(&mut self, t: u64) -> u64 {
        let idle = t.saturating_sub(self.next_issue);
        self.next_issue += idle;
        idle
    }

    /// Current cycle estimate (the cycle after the last issue, including
    /// any outstanding result latency is *not* waited for — matching an
    /// in-order core that can retire under outstanding writebacks).
    pub fn cycles(&self) -> u64 {
        self.next_issue
    }

    /// Cycle at which every outstanding result has landed (used at program
    /// end so trailing loads are not cut off).
    pub fn drain_cycles(&self) -> u64 {
        self.ready.iter().copied().fold(self.next_issue, u64::max)
    }

    /// Accumulated read-after-write stall cycles.
    pub fn raw_stalls(&self) -> u64 {
        self.raw_stalls
    }
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{AluOp, LoadOp, Reg};

    use super::*;

    fn load(rd: Reg) -> Inst {
        Inst::Load { op: LoadOp::Lw, rd, rs1: Reg::Sp, offset: 0, post_inc: false }
    }

    fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst::Op { op: AluOp::Add, rd, rs1, rs2 }
    }

    #[test]
    fn independent_instructions_dual_stream() {
        let mut sb = Scoreboard::new();
        sb.issue(&load(Reg::A0), 9);
        sb.issue(&load(Reg::A1), 9);
        sb.issue(&add(Reg::A2, Reg::T0, Reg::T1), 1);
        assert_eq!(sb.cycles(), 3, "independent ops issue back to back");
        assert_eq!(sb.raw_stalls(), 0);
    }

    #[test]
    fn dependent_chain_stalls() {
        let mut sb = Scoreboard::new();
        sb.issue(&load(Reg::A0), 9); // issues at 0, a0 ready at 9
        sb.issue(&add(Reg::A1, Reg::A0, Reg::A0), 1); // waits until 9
        assert_eq!(sb.cycles(), 10);
        assert_eq!(sb.raw_stalls(), 8);
        sb.issue(&add(Reg::A2, Reg::A1, Reg::A1), 1); // a1 ready at 10, issues at 10
        assert_eq!(sb.raw_stalls(), 8, "back-to-back ALU has no extra stall");
    }

    #[test]
    fn unrolling_hides_latency() {
        // Two interleaved load-use pairs: the second load issues during the
        // first load's latency, halving total stall - the paper's rationale
        // for unrolled kernels.
        let mut interleaved = Scoreboard::new();
        interleaved.issue(&load(Reg::A0), 9);
        interleaved.issue(&load(Reg::A1), 9);
        interleaved.issue(&add(Reg::A2, Reg::A0, Reg::A0), 1);
        interleaved.issue(&add(Reg::A3, Reg::A1, Reg::A1), 1);

        let mut serial = Scoreboard::new();
        serial.issue(&load(Reg::A0), 9);
        serial.issue(&add(Reg::A2, Reg::A0, Reg::A0), 1);
        serial.issue(&load(Reg::A1), 9);
        serial.issue(&add(Reg::A3, Reg::A1, Reg::A1), 1);

        assert!(interleaved.cycles() < serial.cycles());
        assert_eq!(interleaved.raw_stalls(), 7);
        assert_eq!(serial.raw_stalls(), 16);
    }

    #[test]
    fn drain_includes_trailing_latency() {
        let mut sb = Scoreboard::new();
        sb.issue(&load(Reg::A0), 9);
        assert_eq!(sb.cycles(), 1);
        assert_eq!(sb.drain_cycles(), 9);
    }

    #[test]
    fn classification_covers_all_variants() {
        use terasim_riscv::{FmaOp, FpFmt, VfOp};
        assert_eq!(InstClass::of(&add(Reg::A0, Reg::A0, Reg::A0)), InstClass::Alu);
        assert_eq!(InstClass::of(&load(Reg::A0)), InstClass::Load);
        assert_eq!(
            InstClass::of(&Inst::FpFma {
                op: FmaOp::Madd,
                fmt: FpFmt::H,
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::A0,
                rs3: Reg::A0
            }),
            InstClass::Fp
        );
        assert_eq!(
            InstClass::of(&Inst::Vf { op: VfOp::CdotpExSH, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A0 }),
            InstClass::Dotp
        );
        assert_eq!(
            InstClass::of(&Inst::Vf { op: VfOp::SwapH, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::Zero }),
            InstClass::Simd
        );
        assert_eq!(InstClass::of(&Inst::Wfi), InstClass::System);
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
