//! Differential suite pinning the pre-lowered micro-op interpreter
//! (`UopProgram` + kernel dispatch) **bit-identical** to the retained
//! seed interpreter (`Cpu::step` over the decoded `Inst` stream): same
//! registers, PC, retired count, outcomes, traps and memory contents
//! after every single instruction, across randomized programs covering
//! every instruction family.

use terasim_iss::{Cpu, DenseMemory, LatencyModel, Outcome, Program, Trap, UopProgram};
use terasim_riscv::{
    AluOp, AmoOp, Assembler, CsrSrc, FmaOp, FpCmpOp, FpFmt, FpOp, FpUnOp, Image, Inst, LoadOp, MulDivOp,
    PvOp, Reg, Segment, StoreOp, VfOp,
};

const BASE: u32 = 0x8000_0000;
const MEM_BYTES: u32 = 0x1000;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn reg(&mut self) -> Reg {
        // Stay off x0 (uninteresting) and the address registers T5/T6.
        Reg::from_num(1 + (self.next() % 28) as u32)
    }

    fn imm12(&mut self) -> i32 {
        ((self.next() as i32) << 20) >> 20
    }

    /// A word-aligned address inside the data window.
    fn addr(&mut self) -> i32 {
        (((self.next() as u32) % MEM_BYTES) & !3) as i32
    }
}

/// Emits one random instruction (plus any address setup it needs).
fn emit_random(a: &mut Assembler, rng: &mut Rng) {
    let (rd, rs1, rs2, rs3) = (rng.reg(), rng.reg(), rng.reg(), rng.reg());
    match rng.next() % 20 {
        0 => {
            let op = [
                AluOp::Add,
                AluOp::Sll,
                AluOp::Slt,
                AluOp::Sltu,
                AluOp::Xor,
                AluOp::Srl,
                AluOp::Sra,
                AluOp::Or,
                AluOp::And,
            ][(rng.next() % 9) as usize];
            // Shift immediates are 5-bit; the assembler rejects more.
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                (rng.next() % 32) as i32
            } else {
                rng.imm12()
            };
            a.inst(Inst::OpImm { op, rd, rs1, imm });
        }
        1 => {
            let op = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Sll,
                AluOp::Slt,
                AluOp::Sltu,
                AluOp::Xor,
                AluOp::Srl,
                AluOp::Sra,
                AluOp::Or,
                AluOp::And,
            ][(rng.next() % 10) as usize];
            a.inst(Inst::Op { op, rd, rs1, rs2 });
        }
        2 => {
            let op = [
                MulDivOp::Mul,
                MulDivOp::Mulh,
                MulDivOp::Mulhsu,
                MulDivOp::Mulhu,
                MulDivOp::Div,
                MulDivOp::Divu,
                MulDivOp::Rem,
                MulDivOp::Remu,
            ][(rng.next() % 8) as usize];
            a.inst(Inst::MulDiv { op, rd, rs1, rs2 });
        }
        3 => {
            a.inst(Inst::Lui { rd, imm: ((rng.next() as i32) >> 12) << 12 });
        }
        4 => {
            a.inst(Inst::Auipc { rd, imm: ((rng.next() as i32) >> 12) << 12 });
        }
        5 | 6 => {
            // Load through a freshly materialized in-window address.
            a.li(Reg::T6, rng.addr());
            let op =
                [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu][(rng.next() % 5) as usize];
            let post_inc = rng.next().is_multiple_of(4);
            let offset = if post_inc { 4 } else { 0 };
            a.inst(Inst::Load { op, rd, rs1: Reg::T6, offset, post_inc });
        }
        7 | 8 => {
            a.li(Reg::T6, rng.addr());
            let op = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw][(rng.next() % 3) as usize];
            let post_inc = rng.next().is_multiple_of(4);
            let offset = if post_inc { 4 } else { 0 };
            a.inst(Inst::Store { op, rs1: Reg::T6, rs2, offset, post_inc });
        }
        9 => {
            a.li(Reg::T6, rng.addr());
            let op = [
                AmoOp::Swap,
                AmoOp::Add,
                AmoOp::Xor,
                AmoOp::And,
                AmoOp::Or,
                AmoOp::Min,
                AmoOp::Max,
                AmoOp::Minu,
                AmoOp::Maxu,
            ][(rng.next() % 9) as usize];
            a.inst(Inst::Amo { op, rd, rs1: Reg::T6, rs2 });
        }
        10 => {
            a.li(Reg::T6, rng.addr());
            a.inst(Inst::LrW { rd, rs1: Reg::T6 });
            if rng.next().is_multiple_of(2) {
                // Sometimes move the reservation before the SC.
                a.li(Reg::T6, rng.addr());
            }
            a.inst(Inst::ScW { rd: rs1, rs1: Reg::T6, rs2 });
        }
        11 => {
            let op = [
                FpOp::Add,
                FpOp::Sub,
                FpOp::Mul,
                FpOp::Div,
                FpOp::Min,
                FpOp::Max,
                FpOp::SgnJ,
                FpOp::SgnJN,
                FpOp::SgnJX,
            ][(rng.next() % 9) as usize];
            let fmt = if rng.next().is_multiple_of(2) { FpFmt::H } else { FpFmt::S };
            a.inst(Inst::FpArith { op, fmt, rd, rs1, rs2 });
        }
        12 => {
            let op =
                [FpUnOp::Sqrt, FpUnOp::CvtWFromFp, FpUnOp::CvtFpFromW, FpUnOp::CvtSFromH, FpUnOp::CvtHFromS]
                    [(rng.next() % 5) as usize];
            let fmt = if rng.next().is_multiple_of(2) { FpFmt::H } else { FpFmt::S };
            a.inst(Inst::FpUn { op, fmt, rd, rs1 });
        }
        13 => {
            let op = [FmaOp::Madd, FmaOp::Msub, FmaOp::Nmadd, FmaOp::Nmsub][(rng.next() % 4) as usize];
            let fmt = if rng.next().is_multiple_of(2) { FpFmt::H } else { FpFmt::S };
            a.inst(Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 });
        }
        14 => {
            let op = [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le][(rng.next() % 3) as usize];
            let fmt = if rng.next().is_multiple_of(2) { FpFmt::H } else { FpFmt::S };
            a.inst(Inst::FpCmp { op, fmt, rd, rs1, rs2 });
        }
        15 => {
            let op = [
                VfOp::AddH,
                VfOp::SubH,
                VfOp::MulH,
                VfOp::MacH,
                VfOp::DotpExSH,
                VfOp::NDotpExSH,
                VfOp::CdotpExSH,
                VfOp::CdotpExCSH,
                VfOp::DotpExHB,
                VfOp::NDotpExHB,
                VfOp::CpkAHS,
                VfOp::CvtHBLo,
                VfOp::CvtHBHi,
                VfOp::CvtBH,
                VfOp::SwapH,
                VfOp::SwapB,
                VfOp::CmacB,
                VfOp::CmacConjB,
            ][(rng.next() % 18) as usize];
            a.inst(Inst::Vf { op, rd, rs1, rs2 });
        }
        16 => {
            let op = [
                PvOp::AddH,
                PvOp::AddB,
                PvOp::SubH,
                PvOp::SubB,
                PvOp::Mac,
                PvOp::Msu,
                PvOp::DotspH,
                PvOp::SdotspH,
            ][(rng.next() % 8) as usize];
            a.inst(Inst::Pv { op, rd, rs1, rs2 });
        }
        17 => {
            let op = [terasim_riscv::CsrOp::Rw, terasim_riscv::CsrOp::Rs, terasim_riscv::CsrOp::Rc]
                [(rng.next() % 3) as usize];
            let src = if rng.next().is_multiple_of(2) {
                CsrSrc::Reg(rs1)
            } else {
                CsrSrc::Imm((rng.next() % 32) as u8)
            };
            let csr = [terasim_riscv::csr::MHARTID, terasim_riscv::csr::MCYCLE, terasim_riscv::csr::MINSTRET]
                [(rng.next() % 3) as usize];
            a.inst(Inst::Csr { op, rd, src, csr });
        }
        18 => {
            a.inst(Inst::Fence);
        }
        _ => {
            // A short fixed-count loop: taken backward branches plus a
            // not-taken forward branch over one instruction.
            a.li(Reg::T5, 2 + (rng.next() % 3) as i32);
            let top = a.new_label();
            a.bind(top);
            a.inst(Inst::OpImm { op: AluOp::Add, rd: Reg::T5, rs1: Reg::T5, imm: -1 });
            a.bnez(Reg::T5, top);
            let skip = a.new_label();
            a.beq(Reg::T5, Reg::Zero, skip); // taken
            a.inst(Inst::OpImm { op: AluOp::Add, rd, rs1, imm: 1 });
            a.bind(skip);
        }
    }
}

/// Builds one random program, then runs the seed interpreter and the
/// micro-op table in lockstep, asserting full state equality per step.
fn lockstep(seed: u64) {
    let mut rng = Rng(seed | 1);
    let mut a = Assembler::new(BASE);
    // Seed registers with reproducible garbage (covers FP bit patterns).
    for r in 1..29 {
        a.li(Reg::from_num(r), rng.next() as i32);
    }
    for _ in 0..200 {
        emit_random(&mut a, &mut rng);
    }
    a.ecall();
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().expect("assembles")));
    let program = Program::translate(&image).expect("translates");
    let table: UopProgram<DenseMemory> = UopProgram::lower(&program, &LatencyModel::default());

    let mut seed_cpu = Cpu::new(7);
    let mut uop_cpu = Cpu::new(7);
    seed_cpu.set_pc(program.entry());
    uop_cpu.set_pc(program.entry());
    let mut seed_mem = DenseMemory::new(0, MEM_BYTES + 8);
    let mut uop_mem = DenseMemory::new(0, MEM_BYTES + 8);

    for step in 0..100_000u32 {
        let seed_out = seed_cpu.step(&program, &mut seed_mem);
        let uop_out = match table.fetch(uop_cpu.pc()) {
            Some(lu) => (lu.exec)(&mut uop_cpu, lu.uop, &mut uop_mem),
            None => Err(Trap::IllegalFetch { pc: uop_cpu.pc() }),
        };
        assert_eq!(seed_out, uop_out, "outcome diverged (seed {seed}, step {step})");
        assert_eq!(seed_cpu.pc(), uop_cpu.pc(), "pc diverged (seed {seed}, step {step})");
        assert_eq!(seed_cpu.retired(), uop_cpu.retired(), "retired diverged (seed {seed}, step {step})");
        for r in 0..32 {
            let reg = Reg::from_num(r);
            assert_eq!(
                seed_cpu.reg(reg),
                uop_cpu.reg(reg),
                "x{r} diverged (seed {seed}, step {step}, pc {:#010x})",
                seed_cpu.pc()
            );
        }
        match seed_out {
            Ok(Outcome::Exit { .. }) | Err(_) => {
                assert_eq!(
                    seed_mem.read_bytes(0, (MEM_BYTES + 8) as usize),
                    uop_mem.read_bytes(0, (MEM_BYTES + 8) as usize),
                    "memory diverged (seed {seed})"
                );
                return;
            }
            _ => {}
        }
    }
    panic!("random program did not exit (seed {seed})");
}

#[test]
fn randomized_programs_bit_identical() {
    for seed in 0..40 {
        lockstep(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(seed + 1));
    }
}

#[test]
fn illegal_fetch_and_breakpoint_trap_identically() {
    let mut a = Assembler::new(BASE);
    a.nop();
    a.inst(Inst::Ebreak);
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().unwrap()));
    let program = Program::translate(&image).unwrap();
    let table: UopProgram<DenseMemory> = UopProgram::lower(&program, &LatencyModel::default());

    let mut cpu = Cpu::new(0);
    cpu.set_pc(program.entry());
    let mut mem = DenseMemory::new(0, 0x100);
    let lu = table.fetch(cpu.pc()).unwrap();
    assert_eq!((lu.exec)(&mut cpu, lu.uop, &mut mem), Ok(Outcome::Continue));
    let lu = table.fetch(cpu.pc()).unwrap();
    assert_eq!((lu.exec)(&mut cpu, lu.uop, &mut mem), Err(Trap::Breakpoint { pc: BASE + 4 }));
    // Past the end of text: both paths report an illegal fetch.
    assert!(table.fetch(BASE + 8).is_none());
    assert!(program.fetch(BASE + 8).is_none());
}
