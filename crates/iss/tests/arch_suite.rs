//! Directed architectural test suite (riscv-tests style).
//!
//! Every implemented instruction is exercised through full guest programs:
//! assemble → translate → emulate → check architectural state. Each case
//! targets one behaviour or edge (sign extension, overflow wrapping,
//! division corner cases, NaN rules, saturation, …).

use terasim_iss::{run_core, Cpu, DenseMemory, Outcome, Program, RunConfig, Trap};
use terasim_riscv::{AluOp, Assembler, FpCmpOp, FpFmt, FpOp, Image, Inst, Reg, Segment, VfOp};
use terasim_softfloat::{F16, F8};

const BASE: u32 = 0x8000_0000;

/// Assembles, runs to `ecall`, and returns the final CPU + memory.
fn run(build: impl FnOnce(&mut Assembler)) -> (Cpu, DenseMemory) {
    let mut a = Assembler::new(BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().expect("assembles")));
    let program = Program::translate(&image).expect("translates");
    let mut cpu = Cpu::new(0);
    let mut mem = DenseMemory::new(0, 0x1000);
    let stats = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).expect("runs");
    assert!(matches!(stats.stop, terasim_iss::StopReason::Exit { .. }), "program must exit via ecall");
    (cpu, mem)
}

/// Runs a two-register ALU computation and returns `a0`.
fn alu2(op: AluOp, x: u32, y: u32) -> u32 {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, x as i32);
        a.li(Reg::T1, y as i32);
        a.inst(Inst::Op { op, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
    });
    cpu.reg(Reg::A0)
}

#[test]
fn alu_register_ops() {
    assert_eq!(alu2(AluOp::Add, 7, 8), 15);
    assert_eq!(alu2(AluOp::Add, u32::MAX, 1), 0, "wrapping add");
    assert_eq!(alu2(AluOp::Sub, 3, 5), (-2i32) as u32);
    assert_eq!(alu2(AluOp::Sub, 0, u32::MAX), 1, "wrapping sub");
    assert_eq!(alu2(AluOp::Xor, 0b1100, 0b1010), 0b0110);
    assert_eq!(alu2(AluOp::Or, 0b1100, 0b1010), 0b1110);
    assert_eq!(alu2(AluOp::And, 0b1100, 0b1010), 0b1000);
    assert_eq!(alu2(AluOp::Sll, 1, 31), 0x8000_0000);
    assert_eq!(alu2(AluOp::Sll, 1, 32), 1, "shift amount masked to 5 bits");
    assert_eq!(alu2(AluOp::Srl, 0x8000_0000, 31), 1);
    assert_eq!(alu2(AluOp::Sra, 0x8000_0000, 31), u32::MAX, "arithmetic shift extends sign");
    assert_eq!(alu2(AluOp::Slt, (-1i32) as u32, 1), 1, "signed compare");
    assert_eq!(alu2(AluOp::Sltu, (-1i32) as u32, 1), 0, "unsigned compare");
    assert_eq!(alu2(AluOp::Slt, 1, 1), 0);
}

#[test]
fn alu_immediate_ops() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, 100);
        a.addi(Reg::A0, Reg::T0, -2048); // minimum I-immediate
        a.andi(Reg::A1, Reg::T0, 0x7f);
        a.ori(Reg::A2, Reg::T0, 0x700);
        a.xori(Reg::A3, Reg::T0, -1); // bitwise not
        a.slti(Reg::A4, Reg::T0, 101);
        a.srai(Reg::A5, Reg::T0, 2);
    });
    assert_eq!(cpu.reg(Reg::A0) as i32, -1948);
    assert_eq!(cpu.reg(Reg::A1), 100 & 0x7f);
    assert_eq!(cpu.reg(Reg::A2), 100 | 0x700);
    assert_eq!(cpu.reg(Reg::A3), !100u32);
    assert_eq!(cpu.reg(Reg::A4), 1);
    assert_eq!(cpu.reg(Reg::A5), 25);
}

#[test]
fn lui_auipc_materialize_addresses() {
    let (cpu, _) = run(|a| {
        a.lui(Reg::A0, 0x12345 << 12);
        a.inst(Inst::Auipc { rd: Reg::A1, imm: 0x1000 });
    });
    assert_eq!(cpu.reg(Reg::A0), 0x1234_5000);
    // auipc was the third instruction (li = lui+addi for 0x12345000).
    assert_eq!(cpu.reg(Reg::A1), BASE + 4 + 0x1000);
}

#[test]
fn jal_jalr_link_and_jump() {
    let (cpu, _) = run(|a| {
        let target = a.new_label();
        let end = a.new_label();
        a.jal(Reg::Ra, target); // at BASE
        a.li(Reg::A1, 111); // skipped
        a.bind(target);
        a.mv(Reg::A0, Reg::Ra); // link value
                                // jalr back over the dead instruction via a register target.
        a.li(Reg::T0, (BASE + 4 * 6) as i32);
        a.inst(Inst::Jalr { rd: Reg::A2, rs1: Reg::T0, offset: 4 });
        a.li(Reg::A1, 222); // skipped (jalr lands past it)
        a.bind(end);
        a.nop();
    });
    assert_eq!(cpu.reg(Reg::A0), BASE + 4, "jal links to the next instruction");
    assert_eq!(cpu.reg(Reg::A1), 0, "both dead instructions skipped");
    assert_ne!(cpu.reg(Reg::A2), 0, "jalr wrote its link register");
}

#[test]
fn branches_taken_and_not_taken() {
    // For each op: (x, y, taken_expected)
    let cases = [
        (terasim_riscv::BranchOp::Eq, 5u32, 5u32, true),
        (terasim_riscv::BranchOp::Eq, 5, 6, false),
        (terasim_riscv::BranchOp::Ne, 5, 6, true),
        (terasim_riscv::BranchOp::Ne, 5, 5, false),
        (terasim_riscv::BranchOp::Lt, (-1i32) as u32, 0, true),
        (terasim_riscv::BranchOp::Lt, 0, (-1i32) as u32, false),
        (terasim_riscv::BranchOp::Ge, 0, (-1i32) as u32, true),
        (terasim_riscv::BranchOp::Ge, (-1i32) as u32, 0, false),
        (terasim_riscv::BranchOp::Ltu, 0, (-1i32) as u32, true),
        (terasim_riscv::BranchOp::Ltu, (-1i32) as u32, 0, false),
        (terasim_riscv::BranchOp::Geu, (-1i32) as u32, 0, true),
        (terasim_riscv::BranchOp::Geu, 0, (-1i32) as u32, false),
    ];
    for (op, x, y, taken) in cases {
        let (cpu, _) = run(|a| {
            a.li(Reg::T0, x as i32);
            a.li(Reg::T1, y as i32);
            a.li(Reg::A0, 1);
            let skip = a.new_label();
            match op {
                terasim_riscv::BranchOp::Eq => a.beq(Reg::T0, Reg::T1, skip),
                terasim_riscv::BranchOp::Ne => a.bne(Reg::T0, Reg::T1, skip),
                terasim_riscv::BranchOp::Lt => a.blt(Reg::T0, Reg::T1, skip),
                terasim_riscv::BranchOp::Ge => a.bge(Reg::T0, Reg::T1, skip),
                terasim_riscv::BranchOp::Ltu => a.bltu(Reg::T0, Reg::T1, skip),
                terasim_riscv::BranchOp::Geu => {
                    a.inst(Inst::Branch { op, rs1: Reg::T0, rs2: Reg::T1, offset: 8 })
                }
            };
            a.li(Reg::A0, 0); // executed only if not taken
            a.bind(skip);
        });
        assert_eq!(cpu.reg(Reg::A0) == 1, taken, "{op:?} {x:#x} {y:#x}");
    }
}

#[test]
fn loads_sign_and_zero_extend() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, 0x8000_0081u32 as i32);
        a.sw(Reg::T0, 0x20, Reg::Zero);
        a.lb(Reg::A0, 0x20, Reg::Zero); // 0x81 -> sign-extended
        a.lbu(Reg::A1, 0x20, Reg::Zero);
        a.lh(Reg::A2, 0x22, Reg::Zero); // 0x8000 -> sign-extended
        a.lhu(Reg::A3, 0x22, Reg::Zero);
        a.lw(Reg::A4, 0x20, Reg::Zero);
    });
    assert_eq!(cpu.reg(Reg::A0), 0xffff_ff81);
    assert_eq!(cpu.reg(Reg::A1), 0x81);
    assert_eq!(cpu.reg(Reg::A2), 0xffff_8000);
    assert_eq!(cpu.reg(Reg::A3), 0x8000);
    assert_eq!(cpu.reg(Reg::A4), 0x8000_0081);
}

#[test]
fn stores_are_width_isolated() {
    let (_, mem) = run(|a| {
        a.li(Reg::T0, -1);
        a.sw(Reg::T0, 0x40, Reg::Zero);
        a.li(Reg::T1, 0);
        a.sb(Reg::T1, 0x41, Reg::Zero);
        a.sh(Reg::T1, 0x44, Reg::Zero); // outside the word
        a.sw(Reg::T0, 0x44, Reg::Zero);
        a.sh(Reg::T1, 0x46, Reg::Zero);
    });
    assert_eq!(mem.read_bytes(0x40, 4), &[0xff, 0x00, 0xff, 0xff]);
    assert_eq!(mem.read_bytes(0x44, 4), &[0xff, 0xff, 0x00, 0x00]);
}

#[test]
fn post_increment_chains() {
    // Stream three halfwords with p.lh and write them back with p.sh.
    let (cpu, mem) = run(|a| {
        for (i, v) in [0x1111i32, 0x2222, 0x3333].into_iter().enumerate() {
            a.li(Reg::T0, v);
            a.sh(Reg::T0, 0x60 + 2 * i as i32, Reg::Zero);
        }
        a.li(Reg::A1, 0x60);
        a.li(Reg::A2, 0x80);
        for _ in 0..3 {
            a.p_lh(Reg::T1, 2, Reg::A1);
            a.p_sh(Reg::T1, 2, Reg::A2);
        }
    });
    assert_eq!(cpu.reg(Reg::A1), 0x66);
    assert_eq!(cpu.reg(Reg::A2), 0x86);
    assert_eq!(mem.read_bytes(0x80, 6), mem.read_bytes(0x60, 6));
}

#[test]
fn multiply_high_parts() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, -7);
        a.li(Reg::T1, 6);
        a.mul(Reg::A0, Reg::T0, Reg::T1);
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Mulh, rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Mulhu, rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Mulhsu, rd: Reg::A3, rs1: Reg::T0, rs2: Reg::T1 });
    });
    assert_eq!(cpu.reg(Reg::A0) as i32, -42);
    assert_eq!(cpu.reg(Reg::A1), u32::MAX, "mulh of small negative product");
    // (2^32 - 7) * 6 = 6*2^32 - 42 -> high word 5 (borrow).
    assert_eq!(cpu.reg(Reg::A2), 5);
    assert_eq!(cpu.reg(Reg::A3), u32::MAX, "mulhsu: signed rs1");
}

#[test]
fn division_through_guest() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, -40);
        a.li(Reg::T1, 6);
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Div, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Rem, rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 });
        a.li(Reg::T2, 0);
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Div, rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T2 });
        a.inst(Inst::MulDiv { op: terasim_riscv::MulDivOp::Remu, rd: Reg::A3, rs1: Reg::T0, rs2: Reg::T2 });
        a.divu(Reg::A4, Reg::T0, Reg::T1);
    });
    assert_eq!(cpu.reg(Reg::A0) as i32, -6, "division truncates toward zero");
    assert_eq!(cpu.reg(Reg::A1) as i32, -4, "remainder keeps dividend sign");
    assert_eq!(cpu.reg(Reg::A2), u32::MAX, "divide by zero returns -1");
    assert_eq!(cpu.reg(Reg::A3), (-40i32) as u32, "remu by zero returns dividend");
    assert_eq!(cpu.reg(Reg::A4), ((-40i32) as u32) / 6);
}

#[test]
fn lr_sc_success_and_failure() {
    let (cpu, mem) = run(|a| {
        a.li(Reg::T0, 0x100);
        a.li(Reg::T1, 77);
        a.sw(Reg::T1, 0, Reg::T0);
        a.inst(Inst::LrW { rd: Reg::A0, rs1: Reg::T0 }); // a0 = 77
        a.li(Reg::T2, 88);
        a.inst(Inst::ScW { rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T2 }); // succeeds: a1 = 0
        a.inst(Inst::ScW { rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T1 }); // no reservation: a2 = 1
    });
    assert_eq!(cpu.reg(Reg::A0), 77);
    assert_eq!(cpu.reg(Reg::A1), 0, "sc with valid reservation succeeds");
    assert_eq!(cpu.reg(Reg::A2), 1, "sc without reservation fails");
    assert_eq!(mem.read_bytes(0x100, 4), &88u32.to_le_bytes());
}

#[test]
fn amo_family() {
    use terasim_riscv::AmoOp::*;
    let cases: [(terasim_riscv::AmoOp, u32, u32, u32); 9] = [
        (Swap, 5, 9, 9),
        (Add, 5, 9, 14),
        (Xor, 0b1100, 0b1010, 0b0110),
        (And, 0b1100, 0b1010, 0b1000),
        (Or, 0b1100, 0b1010, 0b1110),
        (Min, (-5i32) as u32, 3, (-5i32) as u32),
        (Max, (-5i32) as u32, 3, 3),
        (Minu, (-5i32) as u32, 3, 3),
        (Maxu, (-5i32) as u32, 3, (-5i32) as u32),
    ];
    for (op, old, arg, want) in cases {
        let (cpu, mem) = run(|a| {
            a.li(Reg::T0, 0x200);
            a.li(Reg::T1, old as i32);
            a.sw(Reg::T1, 0, Reg::T0);
            a.li(Reg::T2, arg as i32);
            a.inst(Inst::Amo { op, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T2 });
        });
        assert_eq!(cpu.reg(Reg::A0), old, "{op:?} returns the old value");
        assert_eq!(mem.read_bytes(0x200, 4), &want.to_le_bytes(), "{op:?} memory result");
    }
}

fn fp_h(op: FpOp, x: f32, y: f32) -> F16 {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, F16::from_f32(x).to_bits() as i32);
        a.li(Reg::T1, F16::from_f32(y).to_bits() as i32);
        a.inst(Inst::FpArith { op, fmt: FpFmt::H, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
    });
    F16::from_bits(cpu.reg(Reg::A0) as u16)
}

#[test]
fn half_precision_arithmetic() {
    assert_eq!(fp_h(FpOp::Add, 1.5, 2.25).to_f32(), 3.75);
    assert_eq!(fp_h(FpOp::Sub, 1.0, 4.0).to_f32(), -3.0);
    assert_eq!(fp_h(FpOp::Mul, -1.5, 2.0).to_f32(), -3.0);
    assert_eq!(fp_h(FpOp::Div, 1.0, 4.0).to_f32(), 0.25);
    assert_eq!(fp_h(FpOp::Min, -1.0, 2.0).to_f32(), -1.0);
    assert_eq!(fp_h(FpOp::Max, -1.0, 2.0).to_f32(), 2.0);
    // RISC-V NaN rule: min/max with one NaN returns the other operand.
    let nan_min = {
        let (cpu, _) = run(|a| {
            a.li(Reg::T0, F16::NAN.to_bits() as i32);
            a.li(Reg::T1, F16::from_f32(3.0).to_bits() as i32);
            a.inst(Inst::FpArith { op: FpOp::Min, fmt: FpFmt::H, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        });
        F16::from_bits(cpu.reg(Reg::A0) as u16)
    };
    assert_eq!(nan_min.to_f32(), 3.0);
    // Sign injection.
    assert_eq!(fp_h(FpOp::SgnJ, 2.0, -1.0).to_f32(), -2.0);
    assert_eq!(fp_h(FpOp::SgnJN, 2.0, -1.0).to_f32(), 2.0);
    assert_eq!(fp_h(FpOp::SgnJX, -2.0, -1.0).to_f32(), 2.0);
}

#[test]
fn half_precision_rounding_is_rne() {
    // 2048 + 1 in binary16: ulp(2048) = 2, tie at 2049 rounds to even 2048.
    assert_eq!(fp_h(FpOp::Add, 2048.0, 1.0).to_f32(), 2048.0);
    assert_eq!(fp_h(FpOp::Add, 2048.0, 3.0).to_f32(), 2052.0, "above tie rounds up to even 2052");
}

#[test]
fn fp_compare_and_convert() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, F16::from_f32(1.5).to_bits() as i32);
        a.li(Reg::T1, F16::from_f32(2.5).to_bits() as i32);
        a.inst(Inst::FpCmp { op: FpCmpOp::Lt, fmt: FpFmt::H, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::FpCmp { op: FpCmpOp::Le, fmt: FpFmt::H, rd: Reg::A1, rs1: Reg::T1, rs2: Reg::T1 });
        a.inst(Inst::FpCmp { op: FpCmpOp::Eq, fmt: FpFmt::H, rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T1 });
        // fcvt.w.h truncates toward zero.
        a.li(Reg::T2, F16::from_f32(-2.75).to_bits() as i32);
        a.inst(Inst::FpUn {
            op: terasim_riscv::FpUnOp::CvtWFromFp,
            fmt: FpFmt::H,
            rd: Reg::A3,
            rs1: Reg::T2,
        });
        // int -> half -> single roundtrip.
        a.li(Reg::T3, 77);
        a.inst(Inst::FpUn {
            op: terasim_riscv::FpUnOp::CvtFpFromW,
            fmt: FpFmt::H,
            rd: Reg::A4,
            rs1: Reg::T3,
        });
        a.fcvt_s_h(Reg::A5, Reg::A4);
    });
    assert_eq!(cpu.reg(Reg::A0), 1);
    assert_eq!(cpu.reg(Reg::A1), 1);
    assert_eq!(cpu.reg(Reg::A2), 0);
    assert_eq!(cpu.reg(Reg::A3) as i32, -2, "RTZ conversion");
    assert_eq!(f32::from_bits(cpu.reg(Reg::A5)), 77.0);
}

#[test]
fn single_precision_path() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, 2.5f32.to_bits() as i32);
        a.li(Reg::T1, 4.0f32.to_bits() as i32);
        a.fadd_s(Reg::A0, Reg::T0, Reg::T1);
        a.fdiv_s(Reg::A1, Reg::T0, Reg::T1);
        a.fcvt_h_s(Reg::A2, Reg::A1);
    });
    assert_eq!(f32::from_bits(cpu.reg(Reg::A0)), 6.5);
    assert_eq!(f32::from_bits(cpu.reg(Reg::A1)), 0.625);
    assert_eq!(F16::from_bits(cpu.reg(Reg::A2) as u16).to_f32(), 0.625);
}

fn pack2(re: f32, im: f32) -> i32 {
    (u32::from(F16::from_f32(re).to_bits()) | (u32::from(F16::from_f32(im).to_bits()) << 16)) as i32
}

#[test]
fn simd_lanewise_ops() {
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, pack2(1.0, -2.0));
        a.li(Reg::T1, pack2(0.5, 4.0));
        a.inst(Inst::Vf { op: VfOp::AddH, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::Vf { op: VfOp::SubH, rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::Vf { op: VfOp::MulH, rd: Reg::A2, rs1: Reg::T0, rs2: Reg::T1 });
        // MacH accumulates into rd.
        a.li(Reg::A3, pack2(10.0, 20.0));
        a.inst(Inst::Vf { op: VfOp::MacH, rd: Reg::A3, rs1: Reg::T0, rs2: Reg::T1 });
    });
    let unpack = |r: Reg, cpu: &Cpu| {
        let v = cpu.reg(r);
        (F16::from_bits(v as u16).to_f32(), F16::from_bits((v >> 16) as u16).to_f32())
    };
    assert_eq!(unpack(Reg::A0, &cpu), (1.5, 2.0));
    assert_eq!(unpack(Reg::A1, &cpu), (0.5, -6.0));
    assert_eq!(unpack(Reg::A2, &cpu), (0.5, -8.0));
    assert_eq!(unpack(Reg::A3, &cpu), (10.5, 12.0));
}

#[test]
fn simd_pack_and_convert() {
    let (cpu, _) = run(|a| {
        // vfcpka.h.s packs two f32 into 2xf16.
        a.li(Reg::T0, 1.25f32.to_bits() as i32);
        a.li(Reg::T1, (-3.5f32).to_bits() as i32);
        a.vfcpka_h_s(Reg::A0, Reg::T0, Reg::T1);
        // binary8 widen/narrow.
        let b8 = u32::from(F8::from_f32(1.5).to_bits()) | (u32::from(F8::from_f32(-0.5).to_bits()) << 8);
        a.li(Reg::T2, b8 as i32);
        a.vfcvt_h_b_lo(Reg::A1, Reg::T2);
        a.vfcvt_b_h(Reg::A2, Reg::A1);
    });
    let v = cpu.reg(Reg::A0);
    assert_eq!(F16::from_bits(v as u16).to_f32(), 1.25);
    assert_eq!(F16::from_bits((v >> 16) as u16).to_f32(), -3.5);
    let w = cpu.reg(Reg::A1);
    assert_eq!(F16::from_bits(w as u16).to_f32(), 1.5);
    assert_eq!(F16::from_bits((w >> 16) as u16).to_f32(), -0.5);
    let b = cpu.reg(Reg::A2);
    assert_eq!(F8::from_bits(b as u8).to_f32(), 1.5);
    assert_eq!(F8::from_bits((b >> 8) as u8).to_f32(), -0.5);
}

#[test]
fn traps_are_reported() {
    // Illegal fetch: jump off the end of the text.
    let mut a = Assembler::new(BASE);
    a.nop();
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().unwrap()));
    let program = Program::translate(&image).unwrap();
    let mut cpu = Cpu::new(0);
    let mut mem = DenseMemory::new(0, 0x100);
    let err = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap_err();
    assert!(matches!(err, Trap::IllegalFetch { pc } if pc == BASE + 4));

    // Misaligned store.
    let mut a = Assembler::new(BASE);
    a.li(Reg::T0, 0x33);
    a.sw(Reg::T0, 2, Reg::Zero);
    a.ecall();
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().unwrap()));
    let program = Program::translate(&image).unwrap();
    let mut cpu = Cpu::new(0);
    let err = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap_err();
    assert!(matches!(err, Trap::Mem { .. }), "misaligned store traps: {err}");

    // Ebreak.
    let mut a = Assembler::new(BASE);
    a.inst(Inst::Ebreak);
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().unwrap()));
    let program = Program::translate(&image).unwrap();
    let mut cpu = Cpu::new(0);
    let err = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap_err();
    assert!(matches!(err, Trap::Breakpoint { pc } if pc == BASE));
}

#[test]
fn wfi_stops_the_fast_runner() {
    let mut a = Assembler::new(BASE);
    a.li(Reg::A0, 5);
    a.wfi();
    a.ecall();
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().unwrap()));
    let program = Program::translate(&image).unwrap();
    let mut cpu = Cpu::new(0);
    let mut mem = DenseMemory::new(0, 0x100);
    let stats = run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap();
    assert_eq!(stats.stop, terasim_iss::StopReason::Wfi);
    assert_eq!(cpu.reg(Reg::A0), 5);
    // Resuming continues to the ecall.
    let mut cpu2 = cpu.clone();
    let stats2 = run_core(&mut cpu2, &program, &mut mem, &RunConfig::default()).unwrap();
    assert!(matches!(stats2.stop, terasim_iss::StopReason::Exit { code: 5 }));
}

#[test]
fn x0_is_immutable_everywhere() {
    let (cpu, _) = run(|a| {
        a.li(Reg::A0, 1);
        a.addi(Reg::Zero, Reg::A0, 41);
        a.lui(Reg::Zero, 0x1000_0000u32 as i32);
        a.add(Reg::A1, Reg::Zero, Reg::Zero);
        a.inst(Inst::Vf { op: VfOp::AddH, rd: Reg::Zero, rs1: Reg::A0, rs2: Reg::A0 });
        a.add(Reg::A2, Reg::Zero, Reg::A0);
    });
    assert_eq!(cpu.reg(Reg::Zero), 0);
    assert_eq!(cpu.reg(Reg::A1), 0);
    assert_eq!(cpu.reg(Reg::A2), 1);
}

#[test]
fn outcome_enum_is_reported_through_step() {
    // Direct Cpu::step outcomes.
    let mut a = Assembler::new(BASE);
    a.nop();
    a.wfi();
    a.ecall();
    let mut image = Image::new(BASE);
    image.push_segment(Segment::from_words(BASE, &a.finish().unwrap()));
    let program = Program::translate(&image).unwrap();
    let mut cpu = Cpu::new(0);
    cpu.set_pc(BASE);
    let mut mem = DenseMemory::new(0, 0x10);
    assert_eq!(cpu.step(&program, &mut mem).unwrap(), Outcome::Continue);
    assert_eq!(cpu.step(&program, &mut mem).unwrap(), Outcome::Wfi);
    assert_eq!(cpu.step(&program, &mut mem).unwrap(), Outcome::Exit { code: 0 });
}

#[test]
fn xpulpimg_integer_mac_and_simd() {
    use terasim_riscv::PvOp;
    let (cpu, _) = run(|a| {
        // p.mac / p.msu accumulate in rd.
        a.li(Reg::A0, 100);
        a.li(Reg::T0, 6);
        a.li(Reg::T1, 7);
        a.p_mac(Reg::A0, Reg::T0, Reg::T1); // 100 + 42
        a.p_msu(Reg::A0, Reg::T0, Reg::T0); // 142 - 36
                                            // Lanewise i16 add with independent wrap-around.
        a.li(Reg::T2, 0x7fff_0001u32 as i32); // lanes [1, 32767]
        a.li(Reg::T3, 0x0001_0002u32 as i32); // lanes [2, 1]
        a.pv_add_h(Reg::A1, Reg::T2, Reg::T3); // [3, -32768]
        a.pv_sub_h(Reg::A2, Reg::T2, Reg::T3); // [-1, 32766]
                                               // Signed dot product with accumulation.
        a.li(Reg::A3, 1000);
        a.li(Reg::T4, 0xfffe_0003u32 as i32); // lanes [3, -2]
        a.li(Reg::T5, 0x0004_0005u32 as i32); // lanes [5, 4]
        a.pv_sdotsp_h(Reg::A3, Reg::T4, Reg::T5); // 1000 + 15 - 8
        a.inst(Inst::Pv { op: PvOp::DotspH, rd: Reg::A4, rs1: Reg::T4, rs2: Reg::T5 });
    });
    assert_eq!(cpu.reg(Reg::A0), 106);
    assert_eq!(cpu.reg(Reg::A1), 0x8000_0003);
    assert_eq!(cpu.reg(Reg::A2), 0x7ffe_ffff);
    assert_eq!(cpu.reg(Reg::A3), 1007);
    assert_eq!(cpu.reg(Reg::A4) as i32, 7);
}

#[test]
fn xpulpimg_byte_simd_wraps_per_lane() {
    use terasim_riscv::PvOp;
    let (cpu, _) = run(|a| {
        a.li(Reg::T0, 0x7f01_ff80u32 as i32); // i8 lanes [-128, -1, 1, 127]
        a.li(Reg::T1, 0x0101_0101u32 as i32); // all ones
        a.inst(Inst::Pv { op: PvOp::AddB, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        a.inst(Inst::Pv { op: PvOp::SubB, rd: Reg::A1, rs1: Reg::T0, rs2: Reg::T1 });
    });
    // [-128+1, -1+1, 1+1, 127+1] = [-127, 0, 2, -128]
    assert_eq!(cpu.reg(Reg::A0), 0x8002_0081);
    // [-128-1, -1-1, 1-1, 127-1] = [127, -2, 0, 126]
    assert_eq!(cpu.reg(Reg::A1), 0x7e00_fe7f);
}
