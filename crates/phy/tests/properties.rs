//! Property-based tests of the PHY substrate.

use proptest::prelude::*;
use terasim_phy::{ChannelKind, Cplx, Detector, Mimo, MmseF64, Modulation, TxGenerator};

fn cplx() -> impl Strategy<Value = Cplx> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| Cplx::new(re, im))
}

/// A well-conditioned random channel: identity plus a small perturbation.
fn channel(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    proptest::collection::vec((-0.2..0.2f64, -0.2..0.2f64), n * n).prop_map(move |v| {
        let mut h: Vec<Cplx> = v.into_iter().map(|(re, im)| Cplx::new(re, im)).collect();
        for i in 0..n {
            h[i * n + i] += Cplx::new(1.0, 0.0);
        }
        h
    })
}

proptest! {
    /// Zero-noise MMSE inverts the channel: x̂ recovers x for any
    /// well-conditioned H.
    #[test]
    fn mmse_inverts_at_zero_noise(h in channel(4), x in proptest::collection::vec(cplx(), 4)) {
        let n = 4;
        let mut y = vec![Cplx::ZERO; n];
        for k in 0..n {
            for i in 0..n {
                y[k] += h[k * n + i] * x[i];
            }
        }
        let xhat = MmseF64.detect(n, &h, &y, 0.0);
        for (a, b) in xhat.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// MMSE shrinks towards zero as sigma grows (never amplifies): the
    /// regularized solution has smaller norm than the zero-noise one.
    #[test]
    fn mmse_regularization_shrinks(h in channel(4), x in proptest::collection::vec(cplx(), 4)) {
        let n = 4;
        let mut y = vec![Cplx::ZERO; n];
        for k in 0..n {
            for i in 0..n {
                y[k] += h[k * n + i] * x[i];
            }
        }
        let norm = |v: &[Cplx]| v.iter().map(|z| z.norm_sqr()).sum::<f64>();
        let x0 = MmseF64.detect(n, &h, &y, 1e-9);
        let x9 = MmseF64.detect(n, &h, &y, 100.0);
        prop_assert!(norm(&x9) <= norm(&x0) + 1e-9, "{} vs {}", norm(&x9), norm(&x0));
    }

    /// QAM map/demap round-trips for arbitrary bit patterns (all
    /// modulations).
    #[test]
    fn qam_roundtrip(bits in proptest::collection::vec(any::<bool>(), 6)) {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let b = &bits[..m.bits_per_symbol()];
            prop_assert_eq!(m.demap(m.map(b)), b.to_vec());
        }
    }

    /// Demapping is idempotent under small perturbations below half the
    /// minimum constellation distance.
    #[test]
    fn qam_demap_robust_to_small_noise(
        bits in proptest::collection::vec(any::<bool>(), 4),
        dx in -0.9f64..0.9,
        dy in -0.9f64..0.9,
    ) {
        let m = Modulation::Qam16;
        let half_min_dist = 1.0 / m.norm(); // levels are 2 apart before normalization
        let sym = m.map(&bits);
        let noisy = sym + Cplx::new(dx * half_min_dist, dy * half_min_dist);
        prop_assert_eq!(m.demap(noisy), bits);
    }

    /// Transmission generation is deterministic in the seed and the
    /// received power scales with the transmitted symbols.
    #[test]
    fn transmission_determinism(seed in any::<u64>(), snr in 0.0f64..30.0) {
        let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
        let ta = TxGenerator::new(scenario, snr, seed).next_transmission();
        let tb = TxGenerator::new(scenario, snr, seed).next_transmission();
        prop_assert_eq!(ta.bits, tb.bits);
        for (a, b) in ta.y.iter().zip(&tb.y) {
            prop_assert_eq!(a.re, b.re);
            prop_assert_eq!(a.im, b.im);
        }
        prop_assert!((ta.sigma - 10f64.powf(-snr / 10.0)).abs() < 1e-12);
    }

    /// Complex arithmetic laws (with exact f64 where applicable).
    #[test]
    fn cplx_conjugation_laws(a in cplx(), b in cplx()) {
        prop_assert_eq!((a + b).conj(), a.conj() + b.conj());
        prop_assert_eq!((a * b).conj(), a.conj() * b.conj());
        let n = (a * a.conj()).re;
        prop_assert!((n - a.norm_sqr()).abs() < 1e-12);
        prop_assert!((a * a.conj()).im.abs() < 1e-12);
    }
}
