//! MIMO uplink transmission generation: bits → QAM → channel → noise.

use crate::qam::Modulation;
use crate::rng::Rng64;
use crate::Cplx;

/// Wireless channel model between the UEs and the basestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Ideal propagation: `H = I`, additive white Gaussian noise only
    /// ("zero attenuation and interference from other transmitters").
    Awgn,
    /// Flat-fading Rayleigh: i.i.d. `CN(0, 1/N_TX)` entries drawn per
    /// transmission (models multi-path fading, paper Figure 10).
    Rayleigh,
}

impl ChannelKind {
    /// The paper-style name.
    pub const fn name(self) -> &'static str {
        match self {
            ChannelKind::Awgn => "AWGN",
            ChannelKind::Rayleigh => "Rayleigh",
        }
    }
}

/// A MIMO scenario: dimensions, modulation and channel type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mimo {
    /// Transmitting user equipments.
    pub n_tx: usize,
    /// Basestation antennas (the paper uses square `N×N`).
    pub n_rx: usize,
    /// Uplink modulation.
    pub modulation: Modulation,
    /// Channel model.
    pub channel: ChannelKind,
}

impl Mimo {
    /// Bits carried by one transmission (all users).
    pub fn bits_per_use(&self) -> usize {
        self.n_tx * self.modulation.bits_per_symbol()
    }
}

/// One generated channel use: the transmitted bits/symbols, the channel
/// realization, the noisy receive vector and the noise power.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Transmitted bits, `n_tx * bits_per_symbol` LSB-first per user.
    pub bits: Vec<bool>,
    /// Transmitted QAM symbols (one per user).
    pub x: Vec<Cplx>,
    /// Channel matrix, row-major `h[k*n_tx + i]`.
    pub h: Vec<Cplx>,
    /// Received vector (`y = Hx + n`).
    pub y: Vec<Cplx>,
    /// Noise power σ² (per receive antenna).
    pub sigma: f64,
}

/// Deterministic transmission generator for Monte-Carlo runs.
#[derive(Debug)]
pub struct TxGenerator {
    scenario: Mimo,
    snr_db: f64,
    rng: Rng64,
}

impl TxGenerator {
    /// Creates a generator for `scenario` at the given SNR (dB, per
    /// receive antenna), seeded for reproducibility.
    pub fn new(scenario: Mimo, snr_db: f64, seed: u64) -> Self {
        Self { scenario, snr_db, rng: Rng64::seed_from_u64(seed) }
    }

    /// Noise power used for this SNR (`σ² = 10^(-SNR/10)`, unit receive
    /// signal power by construction).
    pub fn sigma(&self) -> f64 {
        10f64.powf(-self.snr_db / 10.0)
    }

    /// Standard normal sample (Box-Muller).
    fn randn(&mut self) -> f64 {
        let u1: f64 = self.rng.next_f64().max(1e-300);
        let u2: f64 = self.rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Circularly-symmetric complex Gaussian with variance `var`.
    fn randcn(&mut self, var: f64) -> Cplx {
        let s = (var / 2.0).sqrt();
        Cplx::new(self.randn() * s, self.randn() * s)
    }

    /// Draws one channel use.
    pub fn next_transmission(&mut self) -> Transmission {
        let Mimo { n_tx, n_rx, modulation, channel } = self.scenario;
        let bps = modulation.bits_per_symbol();
        let bits: Vec<bool> = (0..n_tx * bps).map(|_| self.rng.next_bool()).collect();
        let x: Vec<Cplx> = (0..n_tx).map(|u| modulation.map(&bits[u * bps..(u + 1) * bps])).collect();

        let h: Vec<Cplx> = match channel {
            ChannelKind::Awgn => {
                let mut h = vec![Cplx::ZERO; n_rx * n_tx];
                for i in 0..n_tx.min(n_rx) {
                    h[i * n_tx + i] = Cplx::new(1.0, 0.0);
                }
                h
            }
            // E|h|² = 1/n_tx keeps unit receive power per antenna.
            ChannelKind::Rayleigh => (0..n_rx * n_tx).map(|_| self.randcn(1.0 / n_tx as f64)).collect(),
        };

        let sigma = self.sigma();
        let mut y = vec![Cplx::ZERO; n_rx];
        for k in 0..n_rx {
            for i in 0..n_tx {
                y[k] += h[k * n_tx + i] * x[i];
            }
            y[k] += self.randcn(sigma);
        }
        Transmission { bits, x, h, y, sigma }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(channel: ChannelKind) -> Mimo {
        Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel }
    }

    #[test]
    fn awgn_channel_is_identity() {
        let mut g = TxGenerator::new(scenario(ChannelKind::Awgn), 20.0, 7);
        let t = g.next_transmission();
        for k in 0..4 {
            for i in 0..4 {
                let expect = if k == i { 1.0 } else { 0.0 };
                assert_eq!(t.h[k * 4 + i].re, expect);
                assert_eq!(t.h[k * 4 + i].im, 0.0);
            }
        }
        // y ≈ x at high SNR.
        for k in 0..4 {
            assert!((t.y[k] - t.x[k]).abs() < 0.2);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TxGenerator::new(scenario(ChannelKind::Rayleigh), 10.0, 42);
        let mut b = TxGenerator::new(scenario(ChannelKind::Rayleigh), 10.0, 42);
        let (ta, tb) = (a.next_transmission(), b.next_transmission());
        assert_eq!(ta.bits, tb.bits);
        assert_eq!(ta.h[3], tb.h[3]);
        assert_eq!(ta.y[0], tb.y[0]);
    }

    #[test]
    fn rayleigh_unit_receive_power() {
        let mut g = TxGenerator::new(scenario(ChannelKind::Rayleigh), 100.0, 3);
        let mut power = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let t = g.next_transmission();
            power += t.y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 4.0;
        }
        let avg = power / trials as f64;
        assert!((avg - 1.0).abs() < 0.15, "average receive power {avg}");
    }

    #[test]
    fn sigma_follows_snr() {
        let g = TxGenerator::new(scenario(ChannelKind::Awgn), 10.0, 0);
        assert!((g.sigma() - 0.1).abs() < 1e-12);
    }
}
