//! The detector interface and the f64 reference implementation.

use crate::Cplx;

/// A MIMO detector: estimates the transmitted symbol vector from the
/// received vector, the channel estimate and the noise power.
///
/// The DUT (native precision models or the ISS-executed kernels) and the
/// golden reference both implement this, so the Monte-Carlo engine treats
/// hardware-in-the-loop and reference runs identically.
pub trait Detector {
    /// Detects `x̂` given row-major `h` (`n_rx × n_tx`), `y` and σ².
    fn detect(&self, n_tx: usize, h: &[Cplx], y: &[Cplx], sigma: f64) -> Vec<Cplx>;

    /// Display name for reports.
    fn name(&self) -> String {
        "detector".into()
    }
}

/// The paper's "64bDouble" golden model: linear MMSE solved by Cholesky
/// factorization in double precision.
///
/// # Examples
///
/// ```
/// use terasim_phy::{Cplx, Detector, MmseF64};
///
/// // Identity channel: detection returns y scaled by 1/(1+sigma).
/// let h = vec![Cplx::new(1.0, 0.0)];
/// let y = vec![Cplx::new(0.5, -0.5)];
/// let x = MmseF64.detect(1, &h, &y, 0.0);
/// assert!((x[0].re - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MmseF64;

impl Detector for MmseF64 {
    fn detect(&self, n_tx: usize, h: &[Cplx], y: &[Cplx], sigma: f64) -> Vec<Cplx> {
        let n_rx = h.len() / n_tx;
        assert_eq!(h.len(), n_rx * n_tx, "H must be rectangular");
        assert_eq!(y.len(), n_rx, "y must have n_rx entries");

        // G = H^H H + sigma I (n_tx x n_tx), z = H^H y.
        let mut g = vec![Cplx::ZERO; n_tx * n_tx];
        let mut z = vec![Cplx::ZERO; n_tx];
        for i in 0..n_tx {
            for j in 0..n_tx {
                let mut acc = Cplx::ZERO;
                for k in 0..n_rx {
                    acc += h[k * n_tx + i].conj() * h[k * n_tx + j];
                }
                if i == j {
                    acc.re += sigma;
                }
                g[i * n_tx + j] = acc;
            }
            let mut acc = Cplx::ZERO;
            for k in 0..n_rx {
                acc += h[k * n_tx + i].conj() * y[k];
            }
            z[i] = acc;
        }

        // Cholesky G = L L^H.
        let mut l = vec![Cplx::ZERO; n_tx * n_tx];
        for j in 0..n_tx {
            let mut s = g[j * n_tx + j].re;
            for k in 0..j {
                s -= l[j * n_tx + k].norm_sqr();
            }
            let d = s.max(0.0).sqrt();
            l[j * n_tx + j] = Cplx::new(d, 0.0);
            for i in (j + 1)..n_tx {
                let mut c = g[i * n_tx + j];
                for k in 0..j {
                    c = c - l[i * n_tx + k] * l[j * n_tx + k].conj();
                }
                l[i * n_tx + j] = c.scale(1.0 / d);
            }
        }
        // Forward then backward substitution.
        let mut w = z;
        for i in 0..n_tx {
            let mut c = w[i];
            for k in 0..i {
                c = c - l[i * n_tx + k] * w[k];
            }
            w[i] = c.scale(1.0 / l[i * n_tx + i].re);
        }
        let mut x = vec![Cplx::ZERO; n_tx];
        for i in (0..n_tx).rev() {
            let mut c = w[i];
            for k in (i + 1)..n_tx {
                c = c - l[k * n_tx + i].conj() * x[k];
            }
            x[i] = c.scale(1.0 / l[i * n_tx + i].re);
        }
        x
    }

    fn name(&self) -> String {
        "64bDouble".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // H = [[1, 1], [0, 1]], x = [1, 2]: y = [3, 2]; zero noise recovers x.
        let h = vec![Cplx::new(1.0, 0.0), Cplx::new(1.0, 0.0), Cplx::new(0.0, 0.0), Cplx::new(1.0, 0.0)];
        let y = vec![Cplx::new(3.0, 0.0), Cplx::new(2.0, 0.0)];
        let x = MmseF64.detect(2, &h, &y, 0.0);
        assert!((x[0].re - 1.0).abs() < 1e-10 && (x[1].re - 2.0).abs() < 1e-10);
    }

    #[test]
    fn complex_channel_roundtrip() {
        // Random-ish fixed unitary-like channel.
        let h = vec![Cplx::new(0.6, 0.2), Cplx::new(-0.3, 0.5), Cplx::new(0.1, -0.7), Cplx::new(0.8, 0.1)];
        let x_true = [Cplx::new(1.0, -1.0), Cplx::new(-0.5, 0.25)];
        let mut y = vec![Cplx::ZERO; 2];
        for k in 0..2 {
            for i in 0..2 {
                y[k] += h[k * 2 + i] * x_true[i];
            }
        }
        let x = MmseF64.detect(2, &h, &y, 0.0);
        for (a, b) in x.iter().zip(&x_true) {
            assert!((*a - *b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn rectangular_channel_supported() {
        // 4 RX antennas, 2 users.
        let mut h = vec![Cplx::ZERO; 8];
        for k in 0..4 {
            h[k * 2] = Cplx::new(1.0, 0.0);
            h[k * 2 + 1] = Cplx::new(if k % 2 == 0 { 1.0 } else { -1.0 }, 0.0);
        }
        let x_true = [Cplx::new(0.5, 0.0), Cplx::new(-0.5, 0.0)];
        let mut y = vec![Cplx::ZERO; 4];
        for k in 0..4 {
            for i in 0..2 {
                y[k] += h[k * 2 + i] * x_true[i];
            }
        }
        let x = MmseF64.detect(2, &h, &y, 1e-9);
        assert!((x[0].re - 0.5).abs() < 1e-6);
        assert!((x[1].re + 0.5).abs() < 1e-6);
    }
}
