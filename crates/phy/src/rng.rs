//! Self-contained deterministic RNG for Monte-Carlo generation.
//!
//! The workspace builds offline, so the crates.io `rand` stack is not
//! available; this module provides the small surface the PHY needs: a
//! seedable, portable, fast generator with uniform `u64`/`f64`/`bool`
//! draws. The implementation is xoshiro256++ with a splitmix64 seed
//! expander — the same construction `rand`'s small RNGs use — so streams
//! are well distributed even for adjacent seeds (the sweep layers derive
//! per-point seeds by adding the point index).

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit: xoshiro++'s low bits are its weakest.
        self.next_u64() >> 63 == 1
    }

    /// Uniform index in `0..n` (`n > 0`) — unbiased via rejection
    /// sampling (no-op for powers of two, so those draw exactly one
    /// `next_u64`).
    pub fn below(&mut self, n: usize) -> usize {
        let n = n as u64;
        // Reject draws below `2^64 mod n`: the remaining range is an
        // exact multiple of n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return (x % n) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        let mut c = Rng64::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc, "adjacent seeds must diverge immediately");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng64::seed_from_u64(123);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut rng = Rng64::seed_from_u64(55);
        let heads = (0..10_000).filter(|_| rng.next_bool()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.below(4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform_for_non_power_of_two() {
        let mut rng = Rng64::seed_from_u64(31);
        let mut buckets = [0u32; 3];
        let n = 30_000;
        for _ in 0..n {
            buckets[rng.below(3)] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            let expected = n / 3;
            assert!(count.abs_diff(expected) < expected / 10, "bucket {i}: {count} of {n}");
        }
    }
}
