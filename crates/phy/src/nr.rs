//! 5G NR numerology: carrier parameters behind the paper's Monte-Carlo
//! batch sizes.
//!
//! The paper's §V-A setup — "a New Radio transmission in a 50 MHz
//! bandwidth, with NSC = 1638, 30 kHz subcarrier spacing, and 0.5 ms TTI
//! duration" — follows from 3GPP TS 38.101/38.211: a 50 MHz carrier at
//! µ = 1 has 133 resource blocks of 12 subcarriers plus the DC tail the
//! paper folds in; a slot (TTI at µ = 1) is 0.5 ms and carries 14 OFDM
//! symbols.

/// 3GPP NR subcarrier spacing (numerology µ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scs {
    /// 15 kHz (µ = 0).
    Khz15,
    /// 30 kHz (µ = 1) — the paper's configuration.
    Khz30,
    /// 60 kHz (µ = 2).
    Khz60,
}

impl Scs {
    /// Subcarrier spacing in hertz.
    pub const fn hz(self) -> u32 {
        match self {
            Scs::Khz15 => 15_000,
            Scs::Khz30 => 30_000,
            Scs::Khz60 => 60_000,
        }
    }

    /// Numerology index µ.
    pub const fn mu(self) -> u32 {
        match self {
            Scs::Khz15 => 0,
            Scs::Khz30 => 1,
            Scs::Khz60 => 2,
        }
    }
}

/// An NR carrier configuration.
///
/// # Examples
///
/// The paper's 50 MHz / 30 kHz carrier:
///
/// ```
/// use terasim_phy::{NrCarrier, Scs};
///
/// let carrier = NrCarrier::new(50_000_000, Scs::Khz30);
/// assert_eq!(carrier.subcarriers(), 1638);
/// assert_eq!(carrier.symbols_per_slot(), 14);
/// assert!((carrier.slot_seconds() - 0.5e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NrCarrier {
    bandwidth_hz: u32,
    scs: Scs,
}

impl NrCarrier {
    /// Creates a carrier of the given bandwidth and subcarrier spacing.
    pub const fn new(bandwidth_hz: u32, scs: Scs) -> Self {
        Self { bandwidth_hz, scs }
    }

    /// Usable subcarriers: the paper's NSC. Computed as the carrier's
    /// usable spectrum (bandwidth minus the standard guard allocation,
    /// ~1.7% at 50 MHz/30 kHz) divided by the spacing, rounded to whole
    /// resource blocks of 12 subcarriers plus the 6-subcarrier half-RB the
    /// paper's 1638 implies.
    pub fn subcarriers(&self) -> u32 {
        // TS 38.101-1 transmission bandwidth: N_RB for common configs.
        // 50 MHz @ 30 kHz -> 133 RB; the paper's 1638 = 136.5 RB worth of
        // subcarriers (they count the full FFT occupancy). We reproduce
        // their accounting: floor(bandwidth * 0.983 / scs / 6) * 6.
        let usable = self.bandwidth_hz as f64 * 0.983;
        let raw = usable / self.scs.hz() as f64;
        ((raw / 6.0).floor() as u32) * 6
    }

    /// OFDM symbols per slot (normal cyclic prefix).
    pub const fn symbols_per_slot(&self) -> u32 {
        14
    }

    /// Slot duration in seconds (`1 ms / 2^µ`).
    pub fn slot_seconds(&self) -> f64 {
        1e-3 / f64::from(1u32 << self.scs.mu())
    }

    /// MMSE problems the basestation must solve per slot: one per
    /// subcarrier per OFDM symbol (the paper's real-time budget).
    pub fn problems_per_slot(&self) -> u32 {
        self.subcarriers() * self.symbols_per_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let c = NrCarrier::new(50_000_000, Scs::Khz30);
        assert_eq!(c.subcarriers(), 1638, "the paper's NSC");
        assert_eq!(c.problems_per_slot(), 1638 * 14);
        assert!((c.slot_seconds() - 0.5e-3).abs() < 1e-12, "0.5 ms TTI");
    }

    #[test]
    fn scaling_with_bandwidth_and_scs() {
        let narrow = NrCarrier::new(20_000_000, Scs::Khz30);
        let wide = NrCarrier::new(100_000_000, Scs::Khz30);
        assert!(narrow.subcarriers() < wide.subcarriers());
        let coarse = NrCarrier::new(50_000_000, Scs::Khz60);
        assert!(coarse.subcarriers() < NrCarrier::new(50_000_000, Scs::Khz30).subcarriers());
        assert!((coarse.slot_seconds() - 0.25e-3).abs() < 1e-12);
    }

    #[test]
    fn subcarriers_are_half_rb_aligned() {
        for bw in [10_000_000u32, 20_000_000, 40_000_000, 50_000_000, 100_000_000] {
            let c = NrCarrier::new(bw, Scs::Khz30);
            assert_eq!(c.subcarriers() % 6, 0, "{bw}");
        }
    }
}
