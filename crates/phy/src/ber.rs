//! The Monte-Carlo BER engine (paper §V-C).
//!
//! For each SNR point the paper "iterates to a target error count": keep
//! generating channel uses, running the detector and hard-demapping until
//! enough bit errors accumulate for a statistically solid estimate (or an
//! iteration cap is hit).

use crate::channel::{Mimo, TxGenerator};
use crate::detector::Detector;

/// One measured point of a BER-vs-SNR curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerPoint {
    /// SNR in dB.
    pub snr_db: f64,
    /// Total bits transmitted.
    pub bits: u64,
    /// Bit errors observed.
    pub errors: u64,
    /// Channel uses simulated.
    pub iterations: u64,
}

impl BerPoint {
    /// The measured bit error rate.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.errors as f64 / self.bits as f64
        }
    }
}

/// A Monte-Carlo run at one SNR point.
#[derive(Debug)]
pub struct BerRun {
    scenario: Mimo,
    snr_db: f64,
    generator: TxGenerator,
}

impl BerRun {
    /// Creates a run for `scenario` at `snr_db`, deterministically seeded.
    pub fn new(scenario: Mimo, snr_db: f64, seed: u64) -> Self {
        Self { scenario, snr_db, generator: TxGenerator::new(scenario, snr_db, seed) }
    }

    /// Simulates until `target_errors` bit errors or `max_iterations`
    /// channel uses, whichever comes first.
    pub fn run(&mut self, detector: &dyn Detector, target_errors: u64, max_iterations: u64) -> BerPoint {
        let mut point = BerPoint { snr_db: self.snr_db, bits: 0, errors: 0, iterations: 0 };
        let bps = self.scenario.modulation.bits_per_symbol();
        while point.errors < target_errors && point.iterations < max_iterations {
            let t = self.generator.next_transmission();
            let xhat = detector.detect(self.scenario.n_tx, &t.h, &t.y, t.sigma);
            for (u, sym) in xhat.iter().enumerate() {
                let rx_bits = self.scenario.modulation.demap(*sym);
                let tx_bits = &t.bits[u * bps..(u + 1) * bps];
                point.errors += rx_bits.iter().zip(tx_bits).filter(|(a, b)| a != b).count() as u64;
            }
            point.bits += self.scenario.bits_per_use() as u64;
            point.iterations += 1;
        }
        point
    }
}

/// One SNR point of a sweep, as a self-contained batchable job: scenario,
/// SNR and the point's derived seed.
///
/// A BER curve is "inherently batched" work — every point is an
/// independent Monte-Carlo run. Decomposing a sweep into `BerJob`s lets
/// any batch scheduler (this crate's [`sweep_with_threads`], or a
/// job-serving layer like `terasim::serve::BatchRunner`) distribute the
/// points while the result stays a pure function of the job list: the
/// seed travels *with* the job, never with the executing thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerJob {
    /// The MIMO scenario swept.
    pub scenario: Mimo,
    /// This point's SNR in dB.
    pub snr_db: f64,
    /// This point's seed (derived from the point index by [`ber_jobs`]).
    pub seed: u64,
}

impl BerJob {
    /// Runs the point to completion: simulate until `target_errors` bit
    /// errors or `max_iterations` channel uses, whichever comes first.
    pub fn run(&self, detector: &dyn Detector, target_errors: u64, max_iterations: u64) -> BerPoint {
        BerRun::new(self.scenario, self.snr_db, self.seed).run(detector, target_errors, max_iterations)
    }
}

/// Decomposes a sweep into independent [`BerJob`]s, one per SNR point,
/// with each point's seed derived from its *index* (never from the
/// executing thread) — so any scheduling of the jobs reproduces the exact
/// curve [`sweep`] computes.
pub fn ber_jobs(scenario: Mimo, snrs_db: &[f64], seed: u64) -> Vec<BerJob> {
    snrs_db
        .iter()
        .enumerate()
        .map(|(i, &snr_db)| BerJob { scenario, snr_db, seed: seed.wrapping_add(i as u64) })
        .collect()
}

/// Sweeps a detector over a list of SNR points (one [`BerRun`] each, seeds
/// derived from `seed`), parallelized over the host's available cores.
///
/// Every SNR point is an independent Monte-Carlo run whose seed derives
/// from the *point index* — never from the executing thread — so the
/// returned points are identical for any host thread count (the paper's
/// determinism requirement; pinned by the workspace determinism tests).
pub fn sweep(
    scenario: Mimo,
    snrs_db: &[f64],
    detector: &(dyn Detector + Sync),
    target_errors: u64,
    max_iterations: u64,
    seed: u64,
) -> Vec<BerPoint> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    sweep_with_threads(scenario, snrs_db, detector, target_errors, max_iterations, seed, threads)
}

/// As [`sweep`], with an explicit host worker-thread count.
///
/// # Panics
///
/// Panics if `host_threads == 0`.
pub fn sweep_with_threads(
    scenario: Mimo,
    snrs_db: &[f64],
    detector: &(dyn Detector + Sync),
    target_errors: u64,
    max_iterations: u64,
    seed: u64,
    host_threads: usize,
) -> Vec<BerPoint> {
    // Dynamic work distribution (points near the error target finish at
    // very different speeds); seeds travel with the jobs, so scheduling
    // order never affects the result.
    crate::par::par_map(ber_jobs(scenario, snrs_db, seed), host_threads, |job| {
        job.run(detector, target_errors, max_iterations)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelKind, MmseF64, Modulation};

    fn awgn(modulation: Modulation) -> Mimo {
        Mimo { n_tx: 4, n_rx: 4, modulation, channel: ChannelKind::Awgn }
    }

    #[test]
    fn ber_decreases_with_snr() {
        let points = sweep(awgn(Modulation::Qam16), &[6.0, 12.0, 18.0], &MmseF64, 400, 4_000, 1);
        assert!(points[0].ber() > points[2].ber(), "{points:?}");
        assert!(points[0].ber() > 1e-3);
        assert!(points[2].ber() < 5e-3);
    }

    #[test]
    fn higher_order_modulation_is_more_fragile() {
        let p16 = BerRun::new(awgn(Modulation::Qam16), 12.0, 2).run(&MmseF64, 300, 3_000);
        let p64 = BerRun::new(awgn(Modulation::Qam64), 12.0, 2).run(&MmseF64, 300, 3_000);
        assert!(p64.ber() > p16.ber(), "64QAM {} vs 16QAM {}", p64.ber(), p16.ber());
    }

    #[test]
    fn target_error_stopping() {
        let mut run = BerRun::new(awgn(Modulation::Qam16), 0.0, 3);
        let p = run.run(&MmseF64, 50, 100_000);
        assert!(p.errors >= 50);
        assert!(p.iterations < 100_000, "low SNR should hit the error target quickly");
    }

    #[test]
    fn rayleigh_is_harder_than_awgn() {
        let a = BerRun::new(awgn(Modulation::Qam16), 10.0, 4).run(&MmseF64, 300, 3_000);
        let r = BerRun::new(
            Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh },
            10.0,
            4,
        )
        .run(&MmseF64, 300, 3_000);
        assert!(r.ber() > a.ber(), "Rayleigh {} vs AWGN {}", r.ber(), a.ber());
    }
}
