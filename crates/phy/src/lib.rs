//! Wireless-PHY substrate for the end-to-end MMSE testbench (paper §III-A).
//!
//! This crate plays the role of the paper's Python/Sionna model: it
//! generates uplink transmissions (random bits → Gray-mapped QAM symbols →
//! MIMO channel → additive noise) and scores detected symbols into bit
//! error rates over Monte-Carlo iterations. It is *detector-agnostic*: the
//! DUT (native model or ISS-executed kernel) plugs in through the
//! [`Detector`] trait, exactly like the paper's hardware-in-the-loop
//! arrangement.
//!
//! * [`Cplx`] — minimal complex arithmetic for channel math.
//! * [`Modulation`] — Gray-mapped 4/16/64-QAM with unit average power.
//! * [`ChannelKind`]/[`Transmission`] — AWGN (identity channel) and flat
//!   Rayleigh block-fading MIMO channels at a given SNR.
//! * [`Detector`] / [`MmseF64`] — the detection interface and the paper's
//!   "64bDouble" golden reference.
//! * [`BerRun`] — the Monte-Carlo engine: iterate transmissions until a
//!   target error count (the paper's stopping rule), then report BER.
//!
//! # Examples
//!
//! BER of the f64 MMSE on a 4×4 AWGN channel at high SNR is tiny:
//!
//! ```
//! use terasim_phy::{BerRun, ChannelKind, Mimo, MmseF64, Modulation};
//!
//! let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
//! let mut run = BerRun::new(scenario, 18.0, 0xbeef);
//! let point = run.run(&MmseF64, 200, 2_000);
//! assert!(point.ber() < 1e-2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ber;
mod channel;
mod complex;
mod detector;
mod nr;
mod par;
mod qam;
pub mod rng;

pub use ber::{ber_jobs, sweep, sweep_with_threads, BerJob, BerPoint, BerRun};
pub use channel::{ChannelKind, Mimo, Transmission, TxGenerator};
pub use complex::Cplx;
pub use detector::{Detector, MmseF64};
pub use nr::{NrCarrier, Scs};
pub use par::par_map;
pub use qam::Modulation;
