//! Order-preserving parallel map over scoped threads.
//!
//! The single work-distribution helper shared by the Monte-Carlo layers:
//! the SNR sweep in this crate and the experiment binaries in
//! `terasim-bench`. Work is handed out dynamically (items differ in
//! runtime by orders of magnitude) and results return in input order, so
//! output never depends on the thread count or scheduling.

/// Maps `f` over `items` using up to `threads` scoped worker threads,
/// returning results in input order.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn par_map<I: Send, T: Send>(items: Vec<I>, threads: usize, f: impl Fn(I) -> T + Sync) -> Vec<T> {
    assert!(threads > 0, "need at least one worker thread");
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue =
        std::sync::Mutex::new(items.into_iter().enumerate().collect::<std::collections::VecDeque<_>>());
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            s.spawn(move || loop {
                let item = queue.lock().expect("work queue").pop_front();
                let Some((i, item)) = item else { break };
                let _ = tx.send((i, f(item)));
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out.into_iter().map(|v| v.expect("every item mapped")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_thread_count() {
        for threads in [1, 2, 7, 64] {
            let out = par_map((0..100u64).collect(), threads, |x| x * x);
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>(), "threads = {threads}");
        }
        assert!(par_map(Vec::<u32>::new(), 4, |x| x).is_empty());
    }
}
