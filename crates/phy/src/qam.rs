//! Gray-mapped square QAM constellations with unit average power.

use crate::Cplx;

/// Modulation order of the uplink bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    /// 4-QAM / QPSK (2 bits per symbol).
    Qpsk,
    /// 16-QAM (4 bits per symbol) — used in Figures 9–10.
    Qam16,
    /// 64-QAM (6 bits per symbol) — used in Figures 9–10.
    Qam64,
}

impl Modulation {
    /// Bits carried per complex symbol.
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Amplitude levels per I/Q axis.
    const fn levels(self) -> usize {
        1 << (self.bits_per_symbol() / 2)
    }

    /// Unit-average-power normalization factor: `sqrt(2(M-1)/3)` for
    /// square M-QAM with levels `±1, ±3, …`.
    pub fn norm(self) -> f64 {
        let m = (self.levels() * self.levels()) as f64;
        (2.0 * (m - 1.0) / 3.0).sqrt()
    }

    /// The paper-style name ("16QAM").
    pub const fn name(self) -> &'static str {
        match self {
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16QAM",
            Modulation::Qam64 => "64QAM",
        }
    }

    /// Maps `bits_per_symbol` bits (LSB-first in the slice) to a
    /// constellation point with unit average power, Gray-coded per axis.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != bits_per_symbol()`.
    pub fn map(self, bits: &[bool]) -> Cplx {
        assert_eq!(bits.len(), self.bits_per_symbol(), "wrong number of bits");
        let half = self.bits_per_symbol() / 2;
        let i = Self::pam_level(&bits[..half]);
        let q = Self::pam_level(&bits[half..]);
        Cplx::new(i / self.norm(), q / self.norm())
    }

    /// Hard demapping: nearest constellation point back to bits.
    ///
    /// The output has `bits_per_symbol()` entries in the same order
    /// [`map`](Self::map) consumes them.
    pub fn demap(self, symbol: Cplx) -> Vec<bool> {
        let half = self.bits_per_symbol() / 2;
        let mut bits = Vec::with_capacity(self.bits_per_symbol());
        bits.extend(Self::pam_bits(symbol.re * self.norm(), half));
        bits.extend(Self::pam_bits(symbol.im * self.norm(), half));
        bits
    }

    /// Gray-coded PAM: `b` bits to an odd level in `±1..=±(2^b - 1)`.
    fn pam_level(bits: &[bool]) -> f64 {
        // Binary-reflected Gray decode, then map index 0..2^b to levels.
        let mut idx = 0usize;
        let mut acc = false;
        for &bit in bits.iter().rev() {
            acc ^= bit;
            idx = (idx << 1) | usize::from(acc);
        }
        let m = 1usize << bits.len();
        (2.0 * idx as f64) - (m as f64 - 1.0)
    }

    /// Inverse of [`pam_level`]: nearest level back to Gray bits.
    fn pam_bits(level: f64, b: usize) -> Vec<bool> {
        let m = 1usize << b;
        let idx = (((level + (m as f64 - 1.0)) / 2.0).round() as i64).clamp(0, m as i64 - 1) as usize;
        // Gray encode, then emit in map()'s bit order (LSB-first of the
        // reflected code).
        let gray = idx ^ (idx >> 1);
        (0..b).map(|i| (gray >> i) & 1 == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_bit_patterns(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1usize << n).map(move |v| (0..n).map(|i| (v >> i) & 1 == 1).collect())
    }

    #[test]
    fn map_demap_roundtrip_all_symbols() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            for bits in all_bit_patterns(m.bits_per_symbol()) {
                let sym = m.map(&bits);
                assert_eq!(m.demap(sym), bits, "{} bits {bits:?}", m.name());
            }
        }
    }

    #[test]
    fn unit_average_power() {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
            let mut power = 0.0;
            let mut count = 0;
            for bits in all_bit_patterns(m.bits_per_symbol()) {
                power += m.map(&bits).norm_sqr();
                count += 1;
            }
            let avg = power / count as f64;
            assert!((avg - 1.0).abs() < 1e-12, "{}: avg power {avg}", m.name());
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit() {
        // Adjacent I-axis points must differ in exactly one bit (Gray
        // property keeps nearest-neighbour errors to single bit errors).
        let m = Modulation::Qam16;
        let norm = m.norm();
        for bits in all_bit_patterns(4) {
            let sym = m.map(&bits);
            let neighbour = Cplx::new(sym.re + 2.0 / norm, sym.im);
            if neighbour.re * norm <= 3.1 {
                let nb = m.demap(neighbour);
                let diff: usize = bits.iter().zip(&nb).filter(|(a, b)| a != b).count();
                assert_eq!(diff, 1, "bits {bits:?} -> neighbour {nb:?}");
            }
        }
    }

    #[test]
    fn demap_clamps_outliers() {
        let m = Modulation::Qam16;
        let far = Cplx::new(10.0, -10.0);
        let bits = m.demap(far);
        let sym = m.map(&bits);
        // Nearest corner.
        assert!((sym.re * m.norm() - 3.0).abs() < 1e-12);
        assert!((sym.im * m.norm() + 3.0).abs() < 1e-12);
    }
}
