//! Minimal double-precision complex arithmetic.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in `f64` (the channel-model precision).
///
/// # Examples
///
/// ```
/// use terasim_phy::Cplx;
///
/// let a = Cplx::new(1.0, 2.0);
/// let b = Cplx::new(3.0, -1.0);
/// assert_eq!(a * b, Cplx::new(5.0, 5.0));
/// assert_eq!(a.conj(), Cplx::new(1.0, -2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

impl From<(f64, f64)> for Cplx {
    fn from((re, im): (f64, f64)) -> Self {
        Self { re, im }
    }
}

impl From<Cplx> for (f64, f64) {
    fn from(z: Cplx) -> Self {
        (z.re, z.im)
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Cplx::new(2.0, -3.0);
        let b = Cplx::new(-1.0, 0.5);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a - a, Cplx::ZERO);
        assert_eq!((a * b).conj(), a.conj() * b.conj());
        assert!((a.norm_sqr() - 13.0).abs() < 1e-12);
        assert_eq!((-a) + a, Cplx::ZERO);
    }

    #[test]
    fn conversions() {
        let z: Cplx = (1.5, -2.5).into();
        let t: (f64, f64) = z.into();
        assert_eq!(t, (1.5, -2.5));
        assert_eq!(z.to_string(), "1.5-2.5j");
    }
}
