//! The paper's experiment harness: one entry point per evaluation axis.
//!
//! Each function sets up operands through the PHY, generates the kernel,
//! runs a simulator backend, *verifies* the architectural results against
//! the native bit-true model, and reports timing/statistics. The figure
//! binaries in `terasim-bench` are thin wrappers over these.

use std::error::Error;
use std::sync::Arc;
use std::time::{Duration, Instant};

use terasim_iss::{EpochMode, FusionMode, FusionProfile, RunConfig};
use terasim_kernels::{data, native, MmseKernel, Precision, ProblemLayout, C64};
use terasim_phy::{BerPoint, ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_terapool::{ClusterMem, CycleSim, CycleStats, FastSim, MemPool, SimArtifacts, Topology};

use crate::detectors::DetectorKind;
use crate::serve::{BatchRunner, JobCtx, JobError};

/// Configuration of the parallel-MMSE experiment (Figures 5, 7, 8): one
/// subcarrier problem per core, all cores at once.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Simulated cores (1024 in the paper; scaled configs keep the
    /// hierarchy shape).
    pub cores: u32,
    /// MIMO size.
    pub n: u32,
    /// Kernel precision.
    pub precision: Precision,
    /// Seed for operand generation.
    pub seed: u64,
    /// Dot-product unroll factor.
    pub unroll: u32,
}

/// Result of a fast-mode (Banshee-equivalent) parallel run.
#[derive(Debug, Clone)]
pub struct FastOutcome {
    /// Host wall-clock time of the emulation.
    pub wall: Duration,
    /// Estimated cluster cycles (slowest hart).
    pub cluster_cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Total RAW stall estimate.
    pub raw_stalls: u64,
    /// Total barrier idle estimate.
    pub wfi_stalls: u64,
    /// Simulation speed in MIPS (instructions / wall second).
    pub mips: f64,
    /// All results matched the bit-true native model.
    pub verified: bool,
}

/// Result of a cycle-accurate (RTL-equivalent) parallel run.
#[derive(Debug, Clone)]
pub struct CycleOutcome {
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
    /// Cluster makespan in cycles.
    pub cycles: u64,
    /// Aggregated per-class breakdown (instructions and stalls).
    pub breakdown: CycleStats,
    /// Per-group breakdown (the sharded engine's arbitration domains).
    pub per_group: Vec<CycleStats>,
    /// Total retired instructions.
    pub instructions: u64,
    /// All results matched the bit-true native model.
    pub verified: bool,
}

/// Picks a topology that fits the experiment: the TeraPool hierarchy at
/// `cores`, with banks deepened (larger tile SPM) when the operand set of
/// big MIMO sizes exceeds the 32 KiB/tile of the taped-out design — the
/// capacity substitution recorded in `DESIGN.md`.
pub fn topology_for(
    cores: u32,
    active: u32,
    n: u32,
    precision: Precision,
    problems_per_core: u32,
) -> Topology {
    let mut topo = Topology::scaled(cores);
    let kernel = kernel_for(n, precision, problems_per_core, active, 2);
    while kernel.layout(&topo).is_err() && topo.tile_spm_bytes < (1 << 19) {
        topo.tile_spm_bytes *= 2;
    }
    assert!(topo.tile_spm_bytes <= Topology::SEQ_STRIDE, "tile SPM outgrew the sequential-view stride");
    topo
}

fn kernel_for(n: u32, precision: Precision, ppc: u32, active: u32, unroll: u32) -> MmseKernel {
    MmseKernel::new(n, precision).with_problems_per_core(ppc).with_active_cores(active).with_unroll(unroll)
}

/// Generated operands for verification.
struct ProblemSet {
    problems: Vec<(Vec<C64>, Vec<C64>, f64)>,
}

fn generate_problems(mem: &ClusterMem, layout: &ProblemLayout, seed: u64) -> ProblemSet {
    let scenario = Mimo {
        n_tx: layout.n as usize,
        n_rx: layout.n as usize,
        modulation: Modulation::Qam16,
        channel: ChannelKind::Rayleigh,
    };
    let mut generator = TxGenerator::new(scenario, 12.0, seed);
    let mut problems = Vec::with_capacity(layout.problems as usize);
    for p in 0..layout.problems {
        let t = generator.next_transmission();
        let h: Vec<C64> = t.h.iter().map(|z| (*z).into()).collect();
        let y: Vec<C64> = t.y.iter().map(|z| (*z).into()).collect();
        data::write_problem(mem, layout, p, &h, &y, t.sigma);
        problems.push((h, y, t.sigma));
    }
    ProblemSet { problems }
}

fn verify(mem: &ClusterMem, layout: &ProblemLayout, set: &ProblemSet) -> bool {
    set.problems.iter().enumerate().all(|(p, (h, y, sigma))| {
        let got = data::read_xhat(mem, layout, p as u32);
        let want = native::detect(layout.precision, layout.n as usize, h, y, *sigma);
        got.iter()
            .zip(&want)
            .all(|(a, b)| a[0].to_bits() == b[0].to_bits() && a[1].to_bits() == b[1].to_bits())
    })
}

/// A prepared parallel-MMSE scenario: the immutable artifact set —
/// topology, generated kernel image, decoded program and lowered micro-op
/// tables — built **once** and shared (via [`SimArtifacts`]) by every job
/// run from it, on either backend, at any seed.
///
/// [`parallel_fast`] / [`parallel_cycle`] are one-shot wrappers; batch
/// drivers ([`crate::serve::BatchRunner`] clients, the figure binaries)
/// prepare a scenario and fan jobs out over it.
#[derive(Debug)]
pub struct ParallelScenario {
    config: ParallelConfig,
    layout: ProblemLayout,
    arts: Arc<SimArtifacts>,
}

impl ParallelScenario {
    /// Builds the scenario's shared artifacts: picks the topology,
    /// generates and assembles the kernel, translates it, and configures
    /// the fast mode with the paper's rule (every access charged the
    /// topology's largest non-contended latency, 9 cycles on full
    /// TeraPool).
    ///
    /// # Errors
    ///
    /// Propagates kernel build and translation errors.
    pub fn prepare(config: &ParallelConfig) -> Result<Self, Box<dyn Error>> {
        Self::prepare_with_fusion(config, FusionMode::default())
    }

    /// As [`prepare`](Self::prepare) with an explicit
    /// [`FusionMode`] for the scenario's fast-mode jobs — the A/B hook
    /// behind the `tsim`/`terasim-serve` `--fusion` flags and the
    /// fusion-off differential legs. Results are bit-identical either
    /// way; only dispatch cost changes.
    ///
    /// # Errors
    ///
    /// Propagates kernel build and translation errors.
    pub fn prepare_with_fusion(config: &ParallelConfig, fusion: FusionMode) -> Result<Self, Box<dyn Error>> {
        Self::prepare_with(config, fusion, EpochMode::default())
    }

    /// As [`prepare_with_fusion`](Self::prepare_with_fusion) with an
    /// explicit [`EpochMode`] for the scenario's sharded cycle-mode jobs
    /// — the A/B hook behind the `tsim`/`terasim-serve` `--epochs` flags
    /// and the adaptive-vs-fixed differential legs. Results are
    /// bit-identical either way; only the epoch cadence changes.
    ///
    /// # Errors
    ///
    /// Propagates kernel build and translation errors.
    pub fn prepare_with(
        config: &ParallelConfig,
        fusion: FusionMode,
        epochs: EpochMode,
    ) -> Result<Self, Box<dyn Error>> {
        let topo = topology_for(config.cores, config.cores, config.n, config.precision, 1);
        let kernel = kernel_for(config.n, config.precision, 1, config.cores, config.unroll);
        let layout = kernel.layout(&topo)?;
        let image = kernel.build(&topo)?;
        let mut rc = RunConfig { fusion, epochs, ..RunConfig::default() };
        rc.latency.load = topo.max_access_latency();
        let arts = SimArtifacts::build_with(topo, &image, rc)?;
        Ok(Self { config: *config, layout, arts })
    }

    /// The scenario's shared artifact set.
    pub fn artifacts(&self) -> &Arc<SimArtifacts> {
        &self.arts
    }

    /// The configuration the scenario was prepared from.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// One fast-mode job at the scenario's own seed.
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_fast(&self, host_threads: usize) -> Result<FastOutcome, Box<dyn Error>> {
        self.run_fast_seeded(host_threads, self.config.seed)
    }

    /// One fast-mode job with an explicit operand seed (batch drivers
    /// derive per-job seeds; artifacts are shared regardless).
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_fast_seeded(&self, host_threads: usize, seed: u64) -> Result<FastOutcome, Box<dyn Error>> {
        self.fast_job(host_threads, seed, None)
    }

    /// One fast-mode job with an explicit ISS timing configuration (the
    /// latency-model ablation, DESIGN.md D2). A configuration whose
    /// latency model matches the scenario's still uses the shared table;
    /// otherwise the job re-lowers privately.
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_fast_configured(
        &self,
        host_threads: usize,
        run_config: RunConfig,
    ) -> Result<FastOutcome, Box<dyn Error>> {
        self.fast_job(host_threads, self.config.seed, Some(run_config))
    }

    /// One fast-mode job drawing its cluster memory from a recycling
    /// pool (built over this scenario's artifacts — see
    /// [`SimArtifacts`]-tied [`MemPool`]); results are bit-identical to
    /// [`run_fast_seeded`](Self::run_fast_seeded).
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    ///
    /// # Panics
    ///
    /// Panics if `pool` was built over a different artifact set.
    pub fn run_fast_pooled(
        &self,
        pool: &Arc<MemPool>,
        host_threads: usize,
        seed: u64,
    ) -> Result<FastOutcome, Box<dyn Error>> {
        assert!(Arc::ptr_eq(pool.artifacts(), &self.arts), "pool built over a different scenario");
        self.fast_outcome(FastSim::from_pool(pool), host_threads, seed)
    }

    /// One fast-mode job run under a batch supervisor (the
    /// [`BatchRunner::try_run`] family): draws cluster memory from the
    /// batch's pool when one is attached over this scenario's artifacts,
    /// applies the batch [`RunPolicy`](crate::serve::RunPolicy)'s per-job
    /// instruction budget and cooperative cancel token, and surfaces
    /// engine-level faults — traps, deadlocks, exhausted budgets,
    /// cancellation — as structured [`JobError`]s instead of boxed
    /// strings. Healthy jobs are bit-identical to
    /// [`run_fast_seeded`](Self::run_fast_seeded).
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any.
    pub fn try_run_fast(
        &self,
        ctx: &JobCtx,
        host_threads: usize,
        seed: u64,
    ) -> Result<FastOutcome, JobError> {
        self.try_run_fast_with(ctx, host_threads, seed, ctx.budget())
    }

    /// As [`try_run_fast`](Self::try_run_fast) with an explicit per-job
    /// instruction budget overriding the batch policy's (fault-injection
    /// drivers shrink the budget of chosen jobs only).
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any.
    pub fn try_run_fast_with(
        &self,
        ctx: &JobCtx,
        host_threads: usize,
        seed: u64,
        budget: Option<u64>,
    ) -> Result<FastOutcome, JobError> {
        let mut sim = match ctx.pool() {
            Some(pool) if Arc::ptr_eq(pool.artifacts(), &self.arts) => FastSim::from_pool(pool),
            _ => FastSim::from_artifacts(Arc::clone(&self.arts)),
        };
        if let Some(b) = budget {
            // Same latency model, so the shared lowered table is kept.
            let mut rc = self.arts.fast_config().clone();
            rc.max_instructions = b;
            sim.set_config(rc);
        }
        if let Some(cancel) = ctx.cancel() {
            sim.set_cancel(cancel.clone());
        }

        let set = generate_problems(sim.memory(), &self.layout, seed);
        let start = Instant::now();
        let result = sim.run_all(host_threads).map_err(JobError::Trap)?;
        let wall = start.elapsed();
        JobError::check_fast(&result, budget)?;

        let instructions = result.total_instructions();
        Ok(FastOutcome {
            wall,
            cluster_cycles: result.cycles,
            instructions,
            raw_stalls: result.per_core.iter().map(|s| s.raw_stalls).sum(),
            wfi_stalls: result.per_core.iter().map(|s| s.wfi_stalls).sum(),
            mips: instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
            verified: verify(sim.memory(), &self.layout, &set),
        })
    }

    /// One fast-mode job with fusion-coverage instrumentation: returns the
    /// outcome plus the dynamic uop-pair histogram and `fused_pct` merged
    /// across all harts (the `mips --fusion-report` leg). Instrumented
    /// execution order is unfused, so the outcome is bit-identical to
    /// [`run_fast_seeded`](Self::run_fast_seeded) — but slower; don't use
    /// its wall time for speed claims.
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_fast_profiled(
        &self,
        host_threads: usize,
        seed: u64,
    ) -> Result<(FastOutcome, FusionProfile), Box<dyn Error>> {
        let mut sim = FastSim::from_artifacts(Arc::clone(&self.arts));
        let set = generate_problems(sim.memory(), &self.layout, seed);

        let start = Instant::now();
        let (result, prof) = sim.run_all_profiled(host_threads)?;
        let wall = start.elapsed();

        let instructions = result.total_instructions();
        let outcome = FastOutcome {
            wall,
            cluster_cycles: result.cycles,
            instructions,
            raw_stalls: result.per_core.iter().map(|s| s.raw_stalls).sum(),
            wfi_stalls: result.per_core.iter().map(|s| s.wfi_stalls).sum(),
            mips: instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
            verified: verify(sim.memory(), &self.layout, &set),
        };
        Ok((outcome, prof))
    }

    fn fast_job(
        &self,
        host_threads: usize,
        seed: u64,
        run_config: Option<RunConfig>,
    ) -> Result<FastOutcome, Box<dyn Error>> {
        let mut sim = FastSim::from_artifacts(Arc::clone(&self.arts));
        if let Some(rc) = run_config {
            sim.set_config(rc);
        }
        self.fast_outcome(sim, host_threads, seed)
    }

    fn fast_outcome(
        &self,
        mut sim: FastSim,
        host_threads: usize,
        seed: u64,
    ) -> Result<FastOutcome, Box<dyn Error>> {
        let set = generate_problems(sim.memory(), &self.layout, seed);

        let start = Instant::now();
        let result = sim.run_all(host_threads)?;
        let wall = start.elapsed();

        let instructions = result.total_instructions();
        Ok(FastOutcome {
            wall,
            cluster_cycles: result.cycles,
            instructions,
            raw_stalls: result.per_core.iter().map(|s| s.raw_stalls).sum(),
            wfi_stalls: result.per_core.iter().map(|s| s.wfi_stalls).sum(),
            mips: instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
            verified: verify(sim.memory(), &self.layout, &set),
        })
    }

    /// One cycle-accurate job at the scenario's own seed.
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_cycle(&self, engine: CycleEngine) -> Result<CycleOutcome, Box<dyn Error>> {
        self.run_cycle_seeded(engine, self.config.seed)
    }

    /// One cycle-accurate job with an explicit operand seed. In a batch,
    /// pass `CycleEngine::Parallel(ctx.claimable_threads())` so a sharded
    /// job widens into worker lanes the batch has stopped using — results
    /// are bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_cycle_seeded(&self, engine: CycleEngine, seed: u64) -> Result<CycleOutcome, Box<dyn Error>> {
        self.cycle_outcome(CycleSim::from_artifacts(Arc::clone(&self.arts)), engine, seed)
    }

    /// One cycle-accurate job drawing its cluster memory from a recycling
    /// pool; results are bit-identical to
    /// [`run_cycle_seeded`](Self::run_cycle_seeded).
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    ///
    /// # Panics
    ///
    /// Panics if `pool` was built over a different artifact set.
    pub fn run_cycle_pooled(
        &self,
        pool: &Arc<MemPool>,
        engine: CycleEngine,
        seed: u64,
    ) -> Result<CycleOutcome, Box<dyn Error>> {
        assert!(Arc::ptr_eq(pool.artifacts(), &self.arts), "pool built over a different scenario");
        self.cycle_outcome(CycleSim::from_pool(pool), engine, seed)
    }

    /// One cycle-accurate job run under a batch supervisor: the
    /// cycle-mode counterpart of [`try_run_fast`](Self::try_run_fast).
    /// The policy's per-job instruction budget feeds the engine's
    /// per-core safety net (`CycleSim::max_instructions`) and the cancel
    /// token is polled at event steps, scan passes and epoch boundaries.
    /// Healthy jobs are bit-identical to
    /// [`run_cycle_seeded`](Self::run_cycle_seeded) on every engine.
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any.
    pub fn try_run_cycle(
        &self,
        ctx: &JobCtx,
        engine: CycleEngine,
        seed: u64,
    ) -> Result<CycleOutcome, JobError> {
        self.try_run_cycle_with(ctx, engine, seed, ctx.budget())
    }

    /// As [`try_run_cycle`](Self::try_run_cycle) with an explicit per-job
    /// instruction budget overriding the batch policy's.
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any.
    pub fn try_run_cycle_with(
        &self,
        ctx: &JobCtx,
        engine: CycleEngine,
        seed: u64,
        budget: Option<u64>,
    ) -> Result<CycleOutcome, JobError> {
        let mut sim = match ctx.pool() {
            Some(pool) if Arc::ptr_eq(pool.artifacts(), &self.arts) => CycleSim::from_pool(pool),
            _ => CycleSim::from_artifacts(Arc::clone(&self.arts)),
        };
        if let Some(b) = budget {
            sim.max_instructions = b;
        }
        if let Some(cancel) = ctx.cancel() {
            sim.set_cancel(cancel.clone());
        }

        let topo = self.arts.topology();
        let set = generate_problems(sim.memory(), &self.layout, seed);
        let start = Instant::now();
        let result = match engine {
            CycleEngine::EventDriven => sim.run(topo.num_cores()),
            CycleEngine::NaiveScan => sim.run_naive(topo.num_cores()),
            CycleEngine::Parallel(threads) => sim.run_parallel(topo.num_cores(), threads),
        }
        .map_err(JobError::Trap)?;
        let wall = start.elapsed();
        JobError::check_cycle(&result, budget)?;

        let breakdown = result.aggregate();
        Ok(CycleOutcome {
            wall,
            cycles: result.cycles,
            breakdown,
            per_group: result.aggregate_groups(&topo),
            instructions: breakdown.instructions,
            verified: verify(sim.memory(), &self.layout, &set),
        })
    }

    fn cycle_outcome(
        &self,
        mut sim: CycleSim,
        engine: CycleEngine,
        seed: u64,
    ) -> Result<CycleOutcome, Box<dyn Error>> {
        let topo = self.arts.topology();
        let set = generate_problems(sim.memory(), &self.layout, seed);

        let start = Instant::now();
        let result = match engine {
            CycleEngine::EventDriven => sim.run(topo.num_cores())?,
            CycleEngine::NaiveScan => sim.run_naive(topo.num_cores())?,
            CycleEngine::Parallel(threads) => sim.run_parallel(topo.num_cores(), threads)?,
        };
        let wall = start.elapsed();

        let breakdown = result.aggregate();
        Ok(CycleOutcome {
            wall,
            cycles: result.cycles,
            breakdown,
            per_group: result.aggregate_groups(&topo),
            instructions: breakdown.instructions,
            verified: verify(sim.memory(), &self.layout, &set),
        })
    }
}

/// Runs the parallel MMSE on the fast (Banshee-style) backend.
///
/// # Errors
///
/// Propagates kernel build, translation and guest traps.
pub fn parallel_fast(config: &ParallelConfig, host_threads: usize) -> Result<FastOutcome, Box<dyn Error>> {
    ParallelScenario::prepare(config)?.run_fast(host_threads)
}

/// As [`parallel_fast`] with an explicit ISS timing configuration — used
/// by the latency-model ablation (DESIGN.md, D2) to compare the paper's
/// uniform conservative 9-cycle load latency against topology-aware
/// per-address latencies.
///
/// # Errors
///
/// Propagates kernel build, translation and guest traps.
pub fn parallel_fast_configured(
    config: &ParallelConfig,
    host_threads: usize,
    run_config: RunConfig,
) -> Result<FastOutcome, Box<dyn Error>> {
    ParallelScenario::prepare(config)?.run_fast_configured(host_threads, run_config)
}

/// Which cycle-accurate scheduler to drive (see [`CycleSim`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleEngine {
    /// The event-driven ready-queue scheduler (`CycleSim::run`).
    EventDriven,
    /// The retained full-scan reference scheduler (`CycleSim::run_naive`).
    NaiveScan,
    /// The epoch-sharded engine (`CycleSim::run_parallel`) over this many
    /// host threads — bit-identical to the other two at any count.
    Parallel(usize),
}

/// Runs the parallel MMSE on the cycle-accurate backend (the RTL-simulation
/// stand-in).
///
/// # Errors
///
/// Propagates kernel build, translation and guest traps.
pub fn parallel_cycle(config: &ParallelConfig) -> Result<CycleOutcome, Box<dyn Error>> {
    parallel_cycle_with_engine(config, CycleEngine::EventDriven)
}

/// As [`parallel_cycle`] on the epoch-sharded engine with `threads` host
/// threads (domain-per-group; see `CycleSim::run_parallel`).
///
/// # Errors
///
/// Propagates kernel build, translation and guest traps.
pub fn parallel_cycle_threads(
    config: &ParallelConfig,
    threads: usize,
) -> Result<CycleOutcome, Box<dyn Error>> {
    parallel_cycle_with_engine(config, CycleEngine::Parallel(threads))
}

/// As [`parallel_cycle`] with an explicit scheduler — the hook the `mips`
/// bench and the differential tests use to compare the event-driven engine
/// against the retained naive scan on identical workloads.
///
/// # Errors
///
/// Propagates kernel build, translation and guest traps.
pub fn parallel_cycle_with_engine(
    config: &ParallelConfig,
    engine: CycleEngine,
) -> Result<CycleOutcome, Box<dyn Error>> {
    ParallelScenario::prepare(config)?.run_cycle(engine)
}

/// Configuration of the batched Monte-Carlo experiment (Figure 6): all
/// `nsc` subcarrier problems of one OFDM symbol on a single Snitch.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// MIMO size.
    pub n: u32,
    /// Kernel precision.
    pub precision: Precision,
    /// Subcarriers per OFDM symbol (1638 for the paper's 50 MHz NR
    /// carrier).
    pub nsc: u32,
    /// Operand seed.
    pub seed: u64,
    /// Dot-product unroll factor.
    pub unroll: u32,
}

/// Result of one batched symbol simulation.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Host wall-clock time.
    pub wall: Duration,
    /// Estimated Snitch cycles for the whole symbol.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Simulation speed in MIPS.
    pub mips: f64,
    /// Results matched the native model.
    pub verified: bool,
}

/// A prepared OFDM-symbol scenario: the batched single-Snitch kernel and
/// its shared artifact set, built once; every simulated symbol is then a
/// cheap per-job instantiation ([`SymbolScenario::run_symbol`]) that only
/// pays for fresh memory, operand generation, the run and verification.
#[derive(Debug)]
pub struct SymbolScenario {
    config: BatchConfig,
    layout: ProblemLayout,
    arts: Arc<SimArtifacts>,
}

impl SymbolScenario {
    /// Builds the scenario's shared artifacts: one Snitch of the full
    /// TeraPool cluster, as in the paper, with banks deepened when `nsc`
    /// outgrows the taped-out tile SPM.
    ///
    /// # Errors
    ///
    /// Propagates kernel build and translation errors.
    pub fn prepare(config: &BatchConfig) -> Result<Self, Box<dyn Error>> {
        Self::prepare_with_fusion(config, FusionMode::default())
    }

    /// As [`prepare`](Self::prepare) with an explicit [`FusionMode`] for
    /// the scenario's jobs (A/B and differential legs).
    ///
    /// # Errors
    ///
    /// Propagates kernel build and translation errors.
    pub fn prepare_with_fusion(config: &BatchConfig, fusion: FusionMode) -> Result<Self, Box<dyn Error>> {
        Self::prepare_with(config, fusion, EpochMode::default())
    }

    /// As [`prepare_with_fusion`](Self::prepare_with_fusion) with an
    /// explicit [`EpochMode`] (A/B and differential legs; a single-Snitch
    /// symbol job never shards, so the mode only matters when the same
    /// scenario is also driven in cycle mode).
    ///
    /// # Errors
    ///
    /// Propagates kernel build and translation errors.
    pub fn prepare_with(
        config: &BatchConfig,
        fusion: FusionMode,
        epochs: EpochMode,
    ) -> Result<Self, Box<dyn Error>> {
        let topo = topology_for(1024, 1, config.n, config.precision, config.nsc);
        let kernel = kernel_for(config.n, config.precision, config.nsc, 1, config.unroll);
        let layout = kernel.layout(&topo)?;
        let image = kernel.build(&topo)?;
        let rc = RunConfig { fusion, epochs, ..RunConfig::default() };
        let arts = SimArtifacts::build_with(topo, &image, rc)?;
        Ok(Self { config: *config, layout, arts })
    }

    /// The scenario's shared artifact set.
    pub fn artifacts(&self) -> &Arc<SimArtifacts> {
        &self.arts
    }

    /// The configuration the scenario was prepared from.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Simulates one OFDM symbol (`nsc` problems batched on a single
    /// Snitch, one host thread) with operands drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_symbol(&self, seed: u64) -> Result<BatchOutcome, Box<dyn Error>> {
        self.symbol_outcome(FastSim::from_artifacts(Arc::clone(&self.arts)), seed)
    }

    /// As [`run_symbol`](Self::run_symbol) with the job's cluster memory
    /// drawn from a recycling pool over this scenario's artifacts —
    /// bit-identical results, without the per-job 20 MiB arena
    /// allocation (the dominant fixed cost of a small symbol job).
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    ///
    /// # Panics
    ///
    /// Panics if `pool` was built over a different artifact set.
    pub fn run_symbol_pooled(&self, pool: &Arc<MemPool>, seed: u64) -> Result<BatchOutcome, Box<dyn Error>> {
        assert!(Arc::ptr_eq(pool.artifacts(), &self.arts), "pool built over a different scenario");
        self.symbol_outcome(FastSim::from_pool(pool), seed)
    }

    /// One OFDM-symbol job run under a batch supervisor: pool, budget and
    /// cancellation wired exactly as in
    /// [`ParallelScenario::try_run_fast`], faults surfaced as
    /// [`JobError`]s. Healthy jobs are bit-identical to
    /// [`run_symbol`](Self::run_symbol).
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any.
    pub fn try_run_symbol(&self, ctx: &JobCtx, seed: u64) -> Result<BatchOutcome, JobError> {
        self.try_run_symbol_with(ctx, seed, ctx.budget())
    }

    /// As [`try_run_symbol`](Self::try_run_symbol) with an explicit
    /// per-job instruction budget overriding the batch policy's.
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any.
    pub fn try_run_symbol_with(
        &self,
        ctx: &JobCtx,
        seed: u64,
        budget: Option<u64>,
    ) -> Result<BatchOutcome, JobError> {
        let mut sim = match ctx.pool() {
            Some(pool) if Arc::ptr_eq(pool.artifacts(), &self.arts) => FastSim::from_pool(pool),
            _ => FastSim::from_artifacts(Arc::clone(&self.arts)),
        };
        if let Some(b) = budget {
            let mut rc = self.arts.fast_config().clone();
            rc.max_instructions = b;
            sim.set_config(rc);
        }
        if let Some(cancel) = ctx.cancel() {
            sim.set_cancel(cancel.clone());
        }

        let set = generate_problems(sim.memory(), &self.layout, seed);
        let start = Instant::now();
        let result = sim.run_cores(0..1, 1).map_err(JobError::Trap)?;
        let wall = start.elapsed();
        JobError::check_fast(&result, budget)?;

        let instructions = result.total_instructions();
        Ok(BatchOutcome {
            wall,
            cycles: result.cycles,
            instructions,
            mips: instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
            verified: verify(sim.memory(), &self.layout, &set),
        })
    }

    /// One symbol job with fusion-coverage instrumentation (unfused
    /// execution order, bit-identical outcome — see
    /// [`ParallelScenario::run_fast_profiled`]).
    ///
    /// # Errors
    ///
    /// Propagates guest traps.
    pub fn run_symbol_profiled(&self, seed: u64) -> Result<(BatchOutcome, FusionProfile), Box<dyn Error>> {
        let mut sim = FastSim::from_artifacts(Arc::clone(&self.arts));
        let set = generate_problems(sim.memory(), &self.layout, seed);

        let start = Instant::now();
        let (result, prof) = sim.run_cores_profiled(0..1, 1)?;
        let wall = start.elapsed();

        let instructions = result.total_instructions();
        let outcome = BatchOutcome {
            wall,
            cycles: result.cycles,
            instructions,
            mips: instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
            verified: verify(sim.memory(), &self.layout, &set),
        };
        Ok((outcome, prof))
    }

    fn symbol_outcome(&self, mut sim: FastSim, seed: u64) -> Result<BatchOutcome, Box<dyn Error>> {
        let set = generate_problems(sim.memory(), &self.layout, seed);

        let start = Instant::now();
        let result = sim.run_cores(0..1, 1)?;
        let wall = start.elapsed();

        let instructions = result.total_instructions();
        Ok(BatchOutcome {
            wall,
            cycles: result.cycles,
            instructions,
            mips: instructions as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
            verified: verify(sim.memory(), &self.layout, &set),
        })
    }
}

/// Simulates one OFDM symbol (`nsc` problems) batched on a single core,
/// on one host thread — the paper's single-thread MC iteration (a
/// single-use [`SymbolScenario`]).
///
/// # Errors
///
/// Propagates kernel build, translation and guest traps.
pub fn mc_symbol_single(config: &BatchConfig) -> Result<BatchOutcome, Box<dyn Error>> {
    SymbolScenario::prepare(config)?.run_symbol(config.seed)
}

/// Simulates `symbols` independent OFDM symbols over `host_threads`
/// worker lanes of a [`BatchRunner`] (the paper's 128-thread scaling
/// experiment) and returns the wall time together with the per-symbol
/// outcomes in submission order.
///
/// All symbols share one artifact set and recycle cluster memories
/// through the batch's [`MemPool`] (one arena per worker lane instead of
/// one allocation per symbol); per-symbol seeds derive from the symbol
/// index, so the outcomes are identical for any worker count and any
/// work-stealing schedule, and bit-identical to unpooled per-symbol runs.
///
/// # Errors
///
/// Propagates the first failure from any symbol.
pub fn mc_symbols_parallel(
    config: &BatchConfig,
    symbols: u32,
    host_threads: usize,
) -> Result<(Duration, Vec<BatchOutcome>), Box<dyn Error>> {
    let start = Instant::now();
    let scenario = SymbolScenario::prepare(config)?;
    let outcomes = BatchRunner::with_workers(host_threads).run_pooled(
        scenario.artifacts(),
        (0..symbols).collect(),
        |ctx, sym| {
            scenario
                .run_symbol_pooled(
                    ctx.pool().expect("pooled batch"),
                    config.seed.wrapping_add(u64::from(sym)),
                )
                .map_err(|e| e.to_string())
        },
    );
    let wall = start.elapsed();
    let outcomes: Result<Vec<_>, String> = outcomes.into_iter().collect();
    Ok((wall, outcomes.map_err(|e| -> Box<dyn Error> { e.into() })?))
}

/// Runs a BER-vs-SNR sweep for one scenario and detector kind
/// (Figures 9–10): one [`BatchRunner`] job per SNR point
/// ([`terasim_phy::ber_jobs`]), bit-identical to [`terasim_phy::sweep`]
/// for every worker count because each point's seed travels with its job.
pub fn ber_curve(
    scenario: Mimo,
    snrs_db: &[f64],
    kind: DetectorKind,
    target_errors: u64,
    max_iterations: u64,
    seed: u64,
) -> Vec<BerPoint> {
    let detector = kind.instantiate(scenario.n_tx);
    BatchRunner::new().run(terasim_phy::ber_jobs(scenario, snrs_db, seed), |_ctx, job| {
        job.run(detector.as_ref(), target_errors, max_iterations)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_and_cycle_agree_architecturally() {
        let config = ParallelConfig { cores: 8, n: 4, precision: Precision::WDotp8, seed: 9, unroll: 2 };
        let fast = parallel_fast(&config, 2).unwrap();
        let cycle = parallel_cycle(&config).unwrap();
        assert!(fast.verified, "fast backend diverged from native model");
        assert!(cycle.verified, "cycle backend diverged from native model");
        assert_eq!(fast.instructions, cycle.instructions, "same retired instruction count");
        assert!(cycle.wall >= fast.wall / 50, "sanity: both ran");
    }

    #[test]
    fn batch_runs_and_verifies() {
        let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 16, seed: 5, unroll: 2 };
        let out = mc_symbol_single(&config).unwrap();
        assert!(out.verified);
        assert!(out.instructions > 16 * 500, "16 problems retired {}", out.instructions);
    }

    #[test]
    fn parallel_symbols_match_single() {
        let config = BatchConfig { n: 4, precision: Precision::Half16, nsc: 4, seed: 11, unroll: 2 };
        let (_, outcomes) = mc_symbols_parallel(&config, 4, 2).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.verified));
    }

    #[test]
    fn ber_curve_with_native_dut() {
        let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
        let points =
            ber_curve(scenario, &[8.0, 16.0], DetectorKind::Native(Precision::CDotp16), 100, 1_000, 3);
        assert_eq!(points.len(), 2);
        assert!(points[0].ber() > points[1].ber());
    }
}
