//! DUT-in-the-loop detector adapters.
//!
//! The PHY scores any [`Detector`]; this module provides the three kinds
//! the paper compares:
//!
//! * [`MmseF64`] — the "64bDouble" golden model
//!   (re-exported from the PHY).
//! * [`NativeDut`] — the bit-true native model of a kernel precision;
//!   fast, and pinned to the ISS by the `bit_true` integration test.
//! * [`IssDetector`] — actual hardware-in-the-loop: every detection runs
//!   the generated RISC-V kernel on a simulated Snitch core.

use std::sync::{Arc, Mutex};

use terasim_kernels::{data, native, MmseKernel, Precision};
use terasim_phy::{Cplx, Detector, MmseF64};
use terasim_terapool::{FastSim, MemPool, SimArtifacts, Topology};

/// Which detector implementation to plug into a BER run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Double-precision reference.
    Reference64,
    /// Native bit-true model of a kernel precision.
    Native(Precision),
    /// ISS-executed kernel (one simulated core per detection).
    Iss(Precision),
}

impl DetectorKind {
    /// Instantiates the detector for `n × n` problems.
    ///
    /// The box is `Sync` so BER sweeps can share one detector across the
    /// parallel SNR workers ([`terasim_phy::sweep`]).
    ///
    /// # Panics
    ///
    /// Panics if the ISS kernel cannot be built for `n` (invalid size).
    pub fn instantiate(self, n: usize) -> Box<dyn Detector + Send + Sync> {
        match self {
            DetectorKind::Reference64 => Box::new(MmseF64),
            DetectorKind::Native(p) => Box::new(NativeDut::new(p)),
            DetectorKind::Iss(p) => Box::new(IssDetector::new(p, n as u32).expect("valid kernel")),
        }
    }

    /// A recycling cluster-memory pool for this detector kind's simulator
    /// — `Some` only for [`DetectorKind::Iss`], the kinds that own a
    /// cluster memory. Build it once per batch and hand it to
    /// [`instantiate_pooled`](Self::instantiate_pooled): per-job detector
    /// instantiation then shares the kernel artifacts *and* recycles the
    /// cluster arena, leaving almost no per-job fixed cost.
    ///
    /// # Panics
    ///
    /// Panics if the ISS kernel cannot be built for `n` (invalid size).
    pub fn memory_pool(self, n: usize) -> Option<Arc<MemPool>> {
        match self {
            DetectorKind::Reference64 | DetectorKind::Native(_) => None,
            DetectorKind::Iss(p) => {
                Some(MemPool::new(IssDetector::build_artifacts(p, n as u32).expect("valid kernel")))
            }
        }
    }

    /// As [`instantiate`](Self::instantiate), drawing the simulator's
    /// cluster memory from `pool` (a [`memory_pool`](Self::memory_pool)
    /// of the same kind and size). Kinds without cluster memory ignore
    /// the pool. Detections are bit-identical to the unpooled detector.
    ///
    /// # Panics
    ///
    /// Panics if the ISS kernel cannot be built for `n`, or if `pool`
    /// belongs to a different kernel scenario.
    pub fn instantiate_pooled(self, n: usize, pool: &Arc<MemPool>) -> Box<dyn Detector + Send + Sync> {
        match self {
            DetectorKind::Iss(p) => {
                Box::new(IssDetector::from_pool(p, n as u32, pool).expect("valid kernel"))
            }
            other => other.instantiate(n),
        }
    }

    /// Report label ("DUT 16bCDotp" etc.).
    pub fn label(self) -> String {
        match self {
            DetectorKind::Reference64 => "64bDouble".into(),
            DetectorKind::Native(p) | DetectorKind::Iss(p) => format!("DUT {p}"),
        }
    }
}

/// The native bit-true DUT model as a [`Detector`].
#[derive(Debug, Clone, Copy)]
pub struct NativeDut {
    precision: Precision,
}

impl NativeDut {
    /// Creates the adapter for one kernel precision.
    pub fn new(precision: Precision) -> Self {
        Self { precision }
    }
}

impl Detector for NativeDut {
    fn detect(&self, n_tx: usize, h: &[Cplx], y: &[Cplx], sigma: f64) -> Vec<Cplx> {
        let h64: Vec<(f64, f64)> = h.iter().map(|z| (*z).into()).collect();
        let y64: Vec<(f64, f64)> = y.iter().map(|z| (*z).into()).collect();
        native::detect(self.precision, n_tx, &h64, &y64, sigma)
            .into_iter()
            .map(|c| Cplx::new(c[0].to_f64(), c[1].to_f64()))
            .collect()
    }

    fn name(&self) -> String {
        format!("DUT {}", self.precision)
    }
}

/// Hardware-in-the-loop detector: runs the generated kernel on one
/// simulated Snitch for every detection (paper Figure 2a).
///
/// Slow by construction — use [`NativeDut`] for Monte-Carlo volume and
/// this for validation, exactly as the framework intends.
pub struct IssDetector {
    precision: Precision,
    n: u32,
    inner: Mutex<IssInner>,
}

struct IssInner {
    sim: FastSim,
    layout: terasim_kernels::ProblemLayout,
}

impl std::fmt::Debug for IssDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IssDetector").field("precision", &self.precision).field("n", &self.n).finish()
    }
}

impl IssDetector {
    /// Per-detection instruction budget: a generous safety net (a real
    /// detection retires well under a million instructions) so a runaway
    /// kernel surfaces as a contained, descriptive fault instead of
    /// hanging the whole BER sweep.
    pub const DETECT_BUDGET: u64 = 100_000_000;

    /// The detector's cluster topology (one tile hosts the single active
    /// Snitch).
    fn topology() -> Topology {
        Topology::scaled(8)
    }

    /// Arms the per-detection instruction budget (same latency model, so
    /// the artifacts' shared lowered table keeps being used).
    fn budgeted(mut sim: FastSim) -> FastSim {
        let mut rc = sim.artifacts().fast_config().clone();
        rc.max_instructions = Self::DETECT_BUDGET;
        sim.set_config(rc);
        sim
    }

    fn kernel(precision: Precision, n: u32) -> MmseKernel {
        MmseKernel::new(n, precision).with_active_cores(1)
    }

    /// Builds the kernel image and the single-core simulator (a
    /// single-use artifact set; batch drivers share
    /// [`build_artifacts`](Self::build_artifacts) through a [`MemPool`]
    /// and use [`from_pool`](Self::from_pool) per job).
    ///
    /// # Errors
    ///
    /// Returns any kernel build or translation error.
    pub fn new(precision: Precision, n: u32) -> Result<Self, Box<dyn std::error::Error>> {
        let topo = Self::topology();
        let kernel = Self::kernel(precision, n);
        let layout = kernel.layout(&topo)?;
        let image = kernel.build(&topo)?;
        let sim = Self::budgeted(FastSim::new(topo, &image)?);
        Ok(Self { precision, n, inner: Mutex::new(IssInner { sim, layout }) })
    }

    /// The shared immutable artifact set of the `(precision, n)` detector
    /// kernel — build once, wrap in a [`MemPool`], and instantiate
    /// per-job detectors from it with [`from_pool`](Self::from_pool).
    ///
    /// # Errors
    ///
    /// Returns any kernel build or translation error.
    pub fn build_artifacts(
        precision: Precision,
        n: u32,
    ) -> Result<Arc<SimArtifacts>, Box<dyn std::error::Error>> {
        let topo = Self::topology();
        let image = Self::kernel(precision, n).build(&topo)?;
        Ok(SimArtifacts::build(topo, &image)?)
    }

    /// A detector over the shared artifacts of `pool` (built with
    /// [`build_artifacts`](Self::build_artifacts) for the same
    /// `(precision, n)`), its cluster memory recycled through the pool —
    /// detections are bit-identical to a [`new`](Self::new) detector.
    ///
    /// # Errors
    ///
    /// Returns any kernel build or layout error.
    ///
    /// # Panics
    ///
    /// Panics if `pool` was built for a different kernel scenario — a
    /// different topology, precision or MIMO size. The check rebuilds
    /// this `(precision, n)` kernel image and compares it against the
    /// pool artifacts' image, so a mismatched pool can never silently
    /// run the wrong kernel.
    pub fn from_pool(
        precision: Precision,
        n: u32,
        pool: &Arc<MemPool>,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let topo = pool.artifacts().topology();
        assert_eq!(topo, Self::topology(), "pool built for a different cluster");
        let kernel = Self::kernel(precision, n);
        let layout = kernel.layout(&topo)?;
        assert_eq!(
            *pool.artifacts().image(),
            kernel.build(&topo)?,
            "pool built for a different detector kernel (precision/size mismatch)"
        );
        let sim = Self::budgeted(FastSim::from_pool(pool));
        Ok(Self { precision, n, inner: Mutex::new(IssInner { sim, layout }) })
    }
}

impl Detector for IssDetector {
    fn detect(&self, n_tx: usize, h: &[Cplx], y: &[Cplx], sigma: f64) -> Vec<Cplx> {
        assert_eq!(n_tx as u32, self.n, "detector built for n = {}", self.n);
        let h64: Vec<(f64, f64)> = h.iter().map(|z| (*z).into()).collect();
        let y64: Vec<(f64, f64)> = y.iter().map(|z| (*z).into()).collect();
        // Recover the detector from a caller's caught panic: the next
        // detection rewrites operands and resets the barrier, so the
        // poisoned state is not actually corrupt.
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let IssInner { sim, layout } = &mut *inner;
        data::write_problem(sim.memory(), layout, 0, &h64, &y64, sigma);
        // Reset the barrier counter: the image is re-run for every call.
        sim.memory().write_u32(layout.barrier_addr, 0);
        let result = sim.run_cores(0..1, 1).unwrap_or_else(|trap| {
            panic!("ISS detector kernel (DUT {} n={}) trapped: {trap}", self.precision, self.n)
        });
        assert!(
            !result.budget_exhausted(),
            "ISS detector kernel (DUT {} n={}) exhausted its {}-instruction safety budget",
            self.precision,
            self.n,
            Self::DETECT_BUDGET,
        );
        assert!(
            !result.deadlocked,
            "ISS detector kernel (DUT {} n={}) deadlocked (harts {:?} parked with no waker)",
            self.precision, self.n, result.parked,
        );
        data::read_xhat(sim.memory(), layout, 0)
            .into_iter()
            .map(|c| Cplx::new(c[0].to_f64(), c[1].to_f64()))
            .collect()
    }

    fn name(&self) -> String {
        format!("DUT {} (ISS)", self.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_and_iss_agree() {
        let h = vec![
            Cplx::new(0.9, 0.1),
            Cplx::new(0.2, -0.3),
            Cplx::new(-0.1, 0.2),
            Cplx::new(0.8, -0.2),
            Cplx::new(0.05, 0.0),
            Cplx::new(0.3, 0.3),
            Cplx::new(0.0, -0.4),
            Cplx::new(0.7, 0.0),
            Cplx::new(0.1, 0.1),
            Cplx::new(-0.2, 0.0),
            Cplx::new(0.9, -0.1),
            Cplx::new(0.2, 0.2),
            Cplx::new(0.0, 0.1),
            Cplx::new(0.1, -0.1),
            Cplx::new(-0.3, 0.2),
            Cplx::new(1.0, 0.0),
        ];
        let y = vec![Cplx::new(0.5, -0.5), Cplx::new(-0.25, 0.75), Cplx::new(0.1, 0.2), Cplx::new(-0.6, 0.0)];
        let native = NativeDut::new(Precision::WDotp16);
        let iss = IssDetector::new(Precision::WDotp16, 4).unwrap();
        let a = native.detect(4, &h, &y, 0.05);
        let b = iss.detect(4, &h, &y, 0.05);
        for (x, z) in a.iter().zip(&b) {
            assert_eq!(x.re, z.re);
            assert_eq!(x.im, z.im);
        }
        // Repeat to exercise the barrier reset path.
        let c = iss.detect(4, &h, &y, 0.05);
        assert_eq!(b[0].re, c[0].re);
    }

    #[test]
    fn pooled_detector_matches_fresh() {
        let pool = DetectorKind::Iss(Precision::WDotp16).memory_pool(4).unwrap();
        let fresh = IssDetector::new(Precision::WDotp16, 4).unwrap();
        let pooled = IssDetector::from_pool(Precision::WDotp16, 4, &pool).unwrap();
        let h: Vec<Cplx> = (0..16).map(|i| Cplx::new(1.0 / (1.0 + f64::from(i)), 0.1)).collect();
        let y = vec![Cplx::new(0.5, -0.5); 4];
        let a = fresh.detect(4, &h, &y, 0.05);
        let b = pooled.detect(4, &h, &y, 0.05);
        for (x, z) in a.iter().zip(&b) {
            assert_eq!(x.re, z.re);
            assert_eq!(x.im, z.im);
        }
    }

    #[test]
    #[should_panic(expected = "different detector kernel")]
    fn pooled_detector_rejects_mismatched_pool() {
        // A pool built for the 16-bit kernel must not instantiate an
        // 8-bit detector: same topology, different scenario.
        let pool = DetectorKind::Iss(Precision::WDotp16).memory_pool(4).unwrap();
        let _ = IssDetector::from_pool(Precision::WDotp8, 4, &pool);
    }

    #[test]
    fn labels() {
        assert_eq!(DetectorKind::Reference64.label(), "64bDouble");
        assert_eq!(DetectorKind::Native(Precision::WDotp8).label(), "DUT 8bwDotp");
    }
}
