//! DUT-in-the-loop detector adapters.
//!
//! The PHY scores any [`Detector`]; this module provides the three kinds
//! the paper compares:
//!
//! * [`MmseF64`] — the "64bDouble" golden model
//!   (re-exported from the PHY).
//! * [`NativeDut`] — the bit-true native model of a kernel precision;
//!   fast, and pinned to the ISS by the `bit_true` integration test.
//! * [`IssDetector`] — actual hardware-in-the-loop: every detection runs
//!   the generated RISC-V kernel on a simulated Snitch core.

use std::sync::Mutex;

use terasim_kernels::{data, native, MmseKernel, Precision};
use terasim_phy::{Cplx, Detector, MmseF64};
use terasim_terapool::{FastSim, Topology};

/// Which detector implementation to plug into a BER run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// Double-precision reference.
    Reference64,
    /// Native bit-true model of a kernel precision.
    Native(Precision),
    /// ISS-executed kernel (one simulated core per detection).
    Iss(Precision),
}

impl DetectorKind {
    /// Instantiates the detector for `n × n` problems.
    ///
    /// The box is `Sync` so BER sweeps can share one detector across the
    /// parallel SNR workers ([`terasim_phy::sweep`]).
    ///
    /// # Panics
    ///
    /// Panics if the ISS kernel cannot be built for `n` (invalid size).
    pub fn instantiate(self, n: usize) -> Box<dyn Detector + Send + Sync> {
        match self {
            DetectorKind::Reference64 => Box::new(MmseF64),
            DetectorKind::Native(p) => Box::new(NativeDut::new(p)),
            DetectorKind::Iss(p) => Box::new(IssDetector::new(p, n as u32).expect("valid kernel")),
        }
    }

    /// Report label ("DUT 16bCDotp" etc.).
    pub fn label(self) -> String {
        match self {
            DetectorKind::Reference64 => "64bDouble".into(),
            DetectorKind::Native(p) | DetectorKind::Iss(p) => format!("DUT {p}"),
        }
    }
}

/// The native bit-true DUT model as a [`Detector`].
#[derive(Debug, Clone, Copy)]
pub struct NativeDut {
    precision: Precision,
}

impl NativeDut {
    /// Creates the adapter for one kernel precision.
    pub fn new(precision: Precision) -> Self {
        Self { precision }
    }
}

impl Detector for NativeDut {
    fn detect(&self, n_tx: usize, h: &[Cplx], y: &[Cplx], sigma: f64) -> Vec<Cplx> {
        let h64: Vec<(f64, f64)> = h.iter().map(|z| (*z).into()).collect();
        let y64: Vec<(f64, f64)> = y.iter().map(|z| (*z).into()).collect();
        native::detect(self.precision, n_tx, &h64, &y64, sigma)
            .into_iter()
            .map(|c| Cplx::new(c[0].to_f64(), c[1].to_f64()))
            .collect()
    }

    fn name(&self) -> String {
        format!("DUT {}", self.precision)
    }
}

/// Hardware-in-the-loop detector: runs the generated kernel on one
/// simulated Snitch for every detection (paper Figure 2a).
///
/// Slow by construction — use [`NativeDut`] for Monte-Carlo volume and
/// this for validation, exactly as the framework intends.
pub struct IssDetector {
    precision: Precision,
    n: u32,
    inner: Mutex<IssInner>,
}

struct IssInner {
    sim: FastSim,
    layout: terasim_kernels::ProblemLayout,
}

impl std::fmt::Debug for IssDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IssDetector").field("precision", &self.precision).field("n", &self.n).finish()
    }
}

impl IssDetector {
    /// Builds the kernel image and the single-core simulator.
    ///
    /// # Errors
    ///
    /// Returns any kernel build or translation error.
    pub fn new(precision: Precision, n: u32) -> Result<Self, Box<dyn std::error::Error>> {
        let topo = Topology::scaled(8);
        let kernel = MmseKernel::new(n, precision).with_active_cores(1);
        let layout = kernel.layout(&topo)?;
        let image = kernel.build(&topo)?;
        let sim = FastSim::new(topo, &image)?;
        Ok(Self { precision, n, inner: Mutex::new(IssInner { sim, layout }) })
    }
}

impl Detector for IssDetector {
    fn detect(&self, n_tx: usize, h: &[Cplx], y: &[Cplx], sigma: f64) -> Vec<Cplx> {
        assert_eq!(n_tx as u32, self.n, "detector built for n = {}", self.n);
        let h64: Vec<(f64, f64)> = h.iter().map(|z| (*z).into()).collect();
        let y64: Vec<(f64, f64)> = y.iter().map(|z| (*z).into()).collect();
        let mut inner = self.inner.lock().expect("ISS detector lock");
        let IssInner { sim, layout } = &mut *inner;
        data::write_problem(sim.memory(), layout, 0, &h64, &y64, sigma);
        // Reset the barrier counter: the image is re-run for every call.
        sim.memory().write_u32(layout.barrier_addr, 0);
        sim.run_cores(0..1, 1).expect("kernel runs");
        data::read_xhat(sim.memory(), layout, 0)
            .into_iter()
            .map(|c| Cplx::new(c[0].to_f64(), c[1].to_f64()))
            .collect()
    }

    fn name(&self) -> String {
        format!("DUT {} (ISS)", self.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_and_iss_agree() {
        let h = vec![
            Cplx::new(0.9, 0.1),
            Cplx::new(0.2, -0.3),
            Cplx::new(-0.1, 0.2),
            Cplx::new(0.8, -0.2),
            Cplx::new(0.05, 0.0),
            Cplx::new(0.3, 0.3),
            Cplx::new(0.0, -0.4),
            Cplx::new(0.7, 0.0),
            Cplx::new(0.1, 0.1),
            Cplx::new(-0.2, 0.0),
            Cplx::new(0.9, -0.1),
            Cplx::new(0.2, 0.2),
            Cplx::new(0.0, 0.1),
            Cplx::new(0.1, -0.1),
            Cplx::new(-0.3, 0.2),
            Cplx::new(1.0, 0.0),
        ];
        let y = vec![Cplx::new(0.5, -0.5), Cplx::new(-0.25, 0.75), Cplx::new(0.1, 0.2), Cplx::new(-0.6, 0.0)];
        let native = NativeDut::new(Precision::WDotp16);
        let iss = IssDetector::new(Precision::WDotp16, 4).unwrap();
        let a = native.detect(4, &h, &y, 0.05);
        let b = iss.detect(4, &h, &y, 0.05);
        for (x, z) in a.iter().zip(&b) {
            assert_eq!(x.re, z.re);
            assert_eq!(x.im, z.im);
        }
        // Repeat to exercise the barrier reset path.
        let c = iss.detect(4, &h, &y, 0.05);
        assert_eq!(b[0].re, c[0].re);
    }

    #[test]
    fn labels() {
        assert_eq!(DetectorKind::Reference64.label(), "64bDouble");
        assert_eq!(DetectorKind::Native(Precision::WDotp8).label(), "DUT 8bwDotp");
    }
}
