//! End-to-end co-simulation of many-RISC-V-core SDR baseband transceivers.
//!
//! `terasim` reproduces the DAC 2025 framework of Bertuletti et al.: a
//! Banshee-style fast simulator for the 1024-core TeraPool-SDR cluster,
//! coupled to wireless channel models for Monte-Carlo analysis of
//! software-defined MMSE detection, with a cycle-accurate cluster model
//! standing in for RTL simulation. The pieces live in focused crates —
//!
//! * `terasim_softfloat` — binary16/E4M3 arithmetic and SDR dot products,
//! * [`terasim_riscv`] — the Snitch ISA, assembler and disassembler,
//! * [`terasim_iss`] — instruction-accurate emulation + timing scoreboard,
//! * [`terasim_terapool`] — the cluster: fast mode and cycle mode,
//! * [`terasim_kernels`] — MMSE guest code generation + native models,
//! * [`terasim_phy`] — QAM, channels, BER Monte-Carlo
//!
//! — and this crate ties them into the paper's experiments:
//!
//! * [`detectors`] — plug DUT models (native or ISS-in-the-loop) into the
//!   PHY's [`Detector`](terasim_phy::Detector) interface.
//! * [`experiments`] — one function per evaluation axis: parallel-MMSE
//!   runtime (Figures 5–8), batched Monte-Carlo symbol runtime (Figure 6)
//!   and BER curves (Figures 9–10), plus the prepared-scenario types
//!   ([`experiments::ParallelScenario`], [`experiments::SymbolScenario`])
//!   that share one immutable artifact set across a batch of jobs.
//! * [`serve`] — the batched job-serving layer: a work-stealing
//!   [`serve::BatchRunner`] that drives many independent simulations over
//!   shared artifacts with submission-order (deterministic) results, and
//!   its supervised mode (`try_run`) that contains panics, traps,
//!   deadlocks, exhausted budgets and cancellations as per-job
//!   [`serve::JobError`]s under a [`serve::RunPolicy`].
//! * [`daemon`] — the persistent serving tier above [`serve`]: a
//!   long-lived [`daemon::Daemon`] with a bounded admission queue
//!   (backpressure via [`daemon::Rejected`]), an LRU artifact cache
//!   keyed by [`daemon::ScenarioKey`] whose warm memory pools survive
//!   across requests, graceful drain, and a deterministic open-loop
//!   load generator ([`daemon::open_loop`]). `SERVING.md` documents the
//!   full serving contract.
//! * [`faults`] — the deterministic fault-injection harness driving the
//!   workspace's fault-containment differential tests.
//!
//! # Examples
//!
//! Simulate a full 16-core parallel MMSE and compare the fast estimate
//! against the cycle-accurate reference:
//!
//! ```
//! use terasim::experiments::{self, ParallelConfig};
//! use terasim_kernels::Precision;
//!
//! let config = ParallelConfig { cores: 16, n: 4, precision: Precision::CDotp16, seed: 1, unroll: 2 };
//! let fast = experiments::parallel_fast(&config, 2)?;
//! let cycle = experiments::parallel_cycle(&config)?;
//! assert!(fast.verified && cycle.verified);
//! // Banshee-style estimates land within a factor ~2 of the reference.
//! let err = (fast.cluster_cycles as f64 - cycle.cycles as f64).abs() / cycle.cycles as f64;
//! assert!(err < 1.0, "estimate error {err}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod daemon;
pub mod detectors;
pub mod experiments;
pub mod faults;
pub mod serve;

pub use detectors::{DetectorKind, IssDetector, NativeDut};
pub use serve::{BatchRunner, JobCtx, JobError, RunPolicy};
pub use terasim_terapool::CancelToken;
