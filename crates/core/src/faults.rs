//! Deterministic fault injection for the serving stack's containment
//! tests.
//!
//! A [`FaultPlan`] marks chosen job indices with a [`Fault`]; batch test
//! drivers consult the plan inside their job closure and trip the listed
//! fault instead of (or on top of) the healthy work. Every fault is a
//! *deterministic* function of the job index — a panic with a pinned
//! payload, a guest image that traps or deadlocks identically on both
//! backends, a tiny instruction budget, a fixed spin — so the workspace's
//! `faults` integration tests can require bit-exact results at every
//! healthy index while errors appear at exactly the injected ones, for
//! every worker count, pooled and unpooled.
//!
//! The faulty *guests* are real programs run through the real engines:
//! [`trap_artifacts`] builds an image whose first instruction jumps to
//! address `0` (outside the text segment — an
//! [`IllegalFetch`](terasim_iss::Trap::IllegalFetch) on both backends),
//! and [`deadlock_artifacts`] parks every hart in `wfi` with no waker
//! (the engine-level deadlock surface pinned in `terapool`'s cycle
//! tests). [`run_fault_guest_fast`] / [`run_fault_guest_cycle`] drive
//! them and map the outcome to the [`JobError`] taxonomy.
//!
//! # Examples
//!
//! ```
//! use terasim::faults::{Fault, FaultPlan};
//! use terasim::serve::{BatchRunner, JobError};
//!
//! let plan = FaultPlan::new().inject(1, Fault::Panic).inject(3, Fault::Slow { spins: 100 });
//! let out = BatchRunner::with_workers(2).try_run((0..4u32).collect(), |_ctx, &j| {
//!     match plan.fault(j as usize) {
//!         Some(Fault::Panic) => terasim::faults::inject_panic(j as usize),
//!         Some(Fault::Slow { spins }) => {
//!             terasim::faults::spin(spins);
//!             Ok(j)
//!         }
//!         _ => Ok(j),
//!     }
//! });
//! assert!(matches!(out[1], Err(JobError::Panicked { .. })));
//! assert_eq!(out[3], Ok(3));
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use terasim_riscv::{Assembler, Image, Segment};
use terasim_terapool::{CycleSim, FastSim, SimArtifacts, Topology};

use crate::serve::JobError;

/// One injectable fault kind. Every kind is deterministic for a given
/// job index and configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The job closure panics with the pinned payload of
    /// [`panic_payload`].
    Panic,
    /// The job runs the [`trap_artifacts`] guest: an architectural
    /// [`IllegalFetch`](terasim_iss::Trap::IllegalFetch) at address `0`,
    /// identical on both backends.
    Trap,
    /// The job runs the [`deadlock_artifacts`] guest: every hart parks in
    /// `wfi` with no waker.
    Deadlock,
    /// The job runs its healthy guest under a per-core instruction budget
    /// too small to finish, exercising the engines' safety net.
    BudgetExhaust {
        /// The deliberately-too-small per-core instruction budget.
        budget: u64,
    },
    /// The job spins deterministically before doing its healthy work — a
    /// straggler, not an error; its result must still be bit-identical.
    Slow {
        /// Busy-loop iterations ([`spin`]).
        spins: u32,
    },
}

/// A deterministic assignment of [`Fault`]s to job indices.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Fault>,
}

impl FaultPlan {
    /// An empty plan (every job healthy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `index` with `fault` (builder style; a later injection at
    /// the same index replaces the earlier one).
    #[must_use]
    pub fn inject(mut self, index: usize, fault: Fault) -> Self {
        self.faults.insert(index, fault);
        self
    }

    /// The fault injected at `index`, if any.
    pub fn fault(&self, index: usize) -> Option<Fault> {
        self.faults.get(&index).copied()
    }

    /// Whether `index` carries an injected fault that must surface as a
    /// [`JobError`] ([`Fault::Slow`] is a straggler, not an error).
    pub fn expects_error(&self, index: usize) -> bool {
        self.faults.get(&index).is_some_and(|f| !matches!(f, Fault::Slow { .. }))
    }

    /// The injected indices, ascending.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.faults.keys().copied()
    }
}

/// The pinned panic payload of [`Fault::Panic`] at `index` (tests match
/// the caught [`JobError::Panicked`] payload against this).
pub fn panic_payload(index: usize) -> String {
    format!("injected panic at job {index}")
}

/// Panics with [`panic_payload`]`(index)`.
pub fn inject_panic(index: usize) -> ! {
    panic!("{}", panic_payload(index));
}

/// Deterministic busy work for [`Fault::Slow`]: `spins` dependent
/// multiply-xor rounds the optimizer cannot elide.
pub fn spin(spins: u32) -> u32 {
    let mut acc = 0x9e37_79b9u32;
    for i in 0..spins {
        acc = std::hint::black_box(acc.wrapping_mul(0x85eb_ca6b) ^ i);
    }
    acc
}

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().expect("fault guest assembles")));
    image
}

/// A guest whose first instruction returns to address `0` — outside the
/// text segment — raising `IllegalFetch { pc: 0 }` on both backends.
pub fn trap_image() -> Image {
    // `ret` is `jalr x0, ra, 0` and `ra` is zero at reset.
    image_of(|a| {
        a.ret();
    })
}

/// A guest where every hart parks in `wfi` with no waker: the canonical
/// guest deadlock (wfi-with-no-waker, pinned at engine level in the
/// cycle tests).
pub fn deadlock_image() -> Image {
    image_of(|a| {
        a.wfi();
        a.ecall();
    })
}

/// Shared artifacts for the [`trap_image`] guest on `topo`.
pub fn trap_artifacts(topo: Topology) -> Arc<SimArtifacts> {
    SimArtifacts::build(topo, &trap_image()).expect("trap guest translates")
}

/// Shared artifacts for the [`deadlock_image`] guest on `topo`.
pub fn deadlock_artifacts(topo: Topology) -> Arc<SimArtifacts> {
    SimArtifacts::build(topo, &deadlock_image()).expect("deadlock guest translates")
}

/// Runs a faulty guest on the fast backend over `cores` harts and
/// returns the [`JobError`] it produces.
///
/// # Panics
///
/// Panics if the guest completes cleanly — that would be a harness bug,
/// not an acceptable test outcome.
pub fn run_fault_guest_fast(arts: &Arc<SimArtifacts>, cores: u32) -> JobError {
    let mut sim = FastSim::from_artifacts(Arc::clone(arts));
    match sim.run_cores(0..cores, 1) {
        Err(trap) => JobError::Trap(trap),
        Ok(res) => JobError::check_fast(&res, None)
            .expect_err("fault guest must not complete cleanly (fast backend)"),
    }
}

/// Runs a faulty guest on the cycle backend over `cores` harts and
/// returns the [`JobError`] it produces.
///
/// # Panics
///
/// Panics if the guest completes cleanly — that would be a harness bug,
/// not an acceptable test outcome.
pub fn run_fault_guest_cycle(arts: &Arc<SimArtifacts>, cores: u32) -> JobError {
    let mut sim = CycleSim::from_artifacts(Arc::clone(arts));
    match sim.run(cores) {
        Err(trap) => JobError::Trap(trap),
        Ok(res) => JobError::check_cycle(&res, None)
            .expect_err("fault guest must not complete cleanly (cycle backend)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terasim_iss::Trap;

    #[test]
    fn trap_guest_raises_the_same_illegal_fetch_on_both_backends() {
        let arts = trap_artifacts(Topology::scaled(8));
        let fast = run_fault_guest_fast(&arts, 1);
        let cycle = run_fault_guest_cycle(&arts, 1);
        assert_eq!(fast, JobError::Trap(Trap::IllegalFetch { pc: 0 }));
        assert_eq!(fast, cycle, "trap must be backend-independent");
    }

    #[test]
    fn deadlock_guest_parks_every_hart_on_both_backends() {
        let arts = deadlock_artifacts(Topology::scaled(8));
        for err in [run_fault_guest_fast(&arts, 4), run_fault_guest_cycle(&arts, 4)] {
            let JobError::Deadlocked { parked } = err else { panic!("expected Deadlocked, got {err:?}") };
            assert_eq!(parked, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn spin_is_deterministic() {
        assert_eq!(spin(1000), spin(1000));
        assert_ne!(spin(1000), spin(1001));
    }
}
