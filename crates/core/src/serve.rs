//! The batched job-serving layer: a work-stealing [`BatchRunner`] that
//! drives many independent simulation jobs over one shared artifact set.
//!
//! The paper's evaluation is inherently batched — BER curves, figure
//! sweeps and ablations each run hundreds of *independent* cluster
//! simulations. The cycle engine already parallelizes *within* a job
//! (`CycleSim::run_parallel`); this module adds the throughput axis
//! *across* jobs:
//!
//! * **Artifact sharing.** All jobs of a scenario run over one
//!   [`SimArtifacts`](terasim_terapool::SimArtifacts) set — decoded
//!   program, lowered micro-op tables, topology maps, initial memory
//!   image — built once instead of once per run (the scenario types in
//!   [`experiments`](crate::experiments) wrap this; `mips --jobs` records
//!   the amortization win).
//! * **Work stealing.** Jobs are dealt round-robin to per-worker queues;
//!   a worker that drains its own queue steals from the busiest
//!   neighbour, so a batch of wildly uneven jobs (BER points near the
//!   error target differ by orders of magnitude) keeps every host thread
//!   busy.
//! * **Ordered results.** Results return in submission order, keyed by
//!   job index — never by completion order or executing worker — so a
//!   batch is deterministic for every worker count.
//! * **Idle-worker claiming.** Fast-mode jobs run one-per-worker; a
//!   sharded cycle job can widen into threads the batch is not using —
//!   [`JobCtx::claimable_threads`] reports `1 +` the workers that have
//!   gone idle (the tail of a draining batch), which the job passes to
//!   `CycleSim::run_parallel`. Because the sharded engine is
//!   bit-identical at every thread count, claiming is invisible in the
//!   results.
//! * **Memory recycling.** [`BatchRunner::run_pooled`] owns one
//!   [`MemPool`] for the duration of the batch and exposes it through
//!   [`JobCtx::pool`]: each lane's jobs acquire and return one recycled
//!   `ClusterMem` instead of re-mapping the 20 MiB arena per job — the
//!   dominant fixed cost of small jobs after artifact sharing. Recycled
//!   arenas are reset to the exact fresh state (only the dirty footprint
//!   is re-zeroed), so pooled batches stay bit-identical to unpooled
//!   ones.
//!
//! # Examples
//!
//! Run a BER sweep as a batch of per-SNR-point jobs:
//!
//! ```
//! use terasim::serve::BatchRunner;
//! use terasim_phy::{ber_jobs, ChannelKind, Mimo, MmseF64, Modulation};
//!
//! let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
//! let runner = BatchRunner::with_workers(2);
//! let points = runner.run(ber_jobs(scenario, &[6.0, 12.0, 18.0], 1), |_ctx, job| {
//!     job.run(&MmseF64, 200, 2_000)
//! });
//! assert_eq!(points.len(), 3);
//! assert!(points[0].ber() > points[2].ber());
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use terasim_terapool::{MemPool, SimArtifacts};

/// Context handed to every job: which worker lane runs it, how much host
/// parallelism the job may claim for itself, and (in pooled batches) the
/// batch's recycling cluster-memory pool.
#[derive(Debug)]
pub struct JobCtx<'a> {
    worker: usize,
    workers: usize,
    idle: &'a AtomicUsize,
    pool: Option<&'a Arc<MemPool>>,
}

impl JobCtx<'_> {
    /// The worker lane executing this job (`0..workers`).
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The runner's total worker-lane count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Host threads this job may use for *intra-job* parallelism: its own
    /// lane plus every lane currently idle (out of work, or never spawned
    /// because the batch was smaller than the runner). A sharded cycle
    /// job passes this to `CycleSim::run_parallel`; since that engine is
    /// bit-identical at every thread count, the claim affects wall time
    /// only, never results.
    pub fn claimable_threads(&self) -> usize {
        1 + self.idle.load(Ordering::Relaxed).min(self.workers.saturating_sub(1))
    }

    /// The batch's recycling cluster-memory pool — present when the batch
    /// was started with [`BatchRunner::run_pooled`]. Jobs hand it to
    /// `FastSim::from_pool` / `CycleSim::from_pool` (or the pooled
    /// scenario runners in [`experiments`](crate::experiments)) so each
    /// worker lane recycles one arena instead of re-mapping 20 MiB per
    /// job.
    pub fn pool(&self) -> Option<&Arc<MemPool>> {
        self.pool
    }
}

/// A batch executor over a fixed pool of worker lanes: work-stealing job
/// distribution, submission-order results. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner with one worker lane per available host core.
    pub fn new() -> Self {
        Self::with_workers(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// A runner with an explicit worker-lane count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker lane");
        Self { workers }
    }

    /// The worker-lane count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job through `f` and returns the results in submission
    /// order.
    ///
    /// Jobs are dealt round-robin to per-worker queues; workers pop their
    /// own queue front-first and steal from the fullest other queue when
    /// empty. A worker with nothing left to do (or steal) retires into
    /// the idle pool that [`JobCtx::claimable_threads`] reports. The
    /// output is a pure function of `jobs` and `f` — worker count,
    /// stealing order and completion order never show.
    pub fn run<I: Send, T: Send>(&self, jobs: Vec<I>, f: impl Fn(&JobCtx, I) -> T + Sync) -> Vec<T> {
        self.run_with_pool(None, jobs, f)
    }

    /// As [`run`](Self::run), with a recycling cluster-memory pool over
    /// `arts` owned by the batch and exposed to every job through
    /// [`JobCtx::pool`]. Each worker lane's jobs acquire and return one
    /// arena in turn, so the per-job `ClusterMem` allocation (the
    /// dominant fixed cost of small jobs) is paid at most once per lane;
    /// recycled arenas are reset to the exact fresh state, so the results
    /// are bit-identical to an unpooled run. The pool lives exactly as
    /// long as the batch.
    pub fn run_pooled<I: Send, T: Send>(
        &self,
        arts: &Arc<SimArtifacts>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, I) -> T + Sync,
    ) -> Vec<T> {
        let pool = MemPool::new(Arc::clone(arts));
        self.run_with_pool(Some(&pool), jobs, f)
    }

    fn run_with_pool<I: Send, T: Send>(
        &self,
        pool: Option<&Arc<MemPool>>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, I) -> T + Sync,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let spawned = self.workers.min(n);
        // Lanes the batch never fills are idle (claimable) from the start.
        let idle = AtomicUsize::new(self.workers - spawned);

        // Deal jobs round-robin so every lane starts with local work.
        let mut queues: Vec<VecDeque<(usize, I)>> = (0..spawned).map(|_| VecDeque::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % spawned].push_back((i, job));
        }
        let queues: Vec<Mutex<VecDeque<(usize, I)>>> = queues.into_iter().map(Mutex::new).collect();

        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let worker = |w: usize, tx: mpsc::Sender<(usize, T)>| {
            let ctx = JobCtx { worker: w, workers: self.workers, idle: &idle, pool };
            loop {
                // Own queue first (front: submission order within the lane)...
                let mut job = queues[w].lock().expect("job queue").pop_front();
                while job.is_none() {
                    // ... then steal the *back* of the fullest other queue,
                    // leaving the victim its locally-next work. A steal can
                    // race to an emptied queue (the scan and the pop are
                    // separate locks), so keep re-scanning and retire only
                    // once a full pass observes every queue empty — queues
                    // drain monotonically, so this terminates.
                    let victim = (0..queues.len())
                        .filter(|&v| v != w)
                        .map(|v| (v, queues[v].lock().expect("job queue").len()))
                        .filter(|&(_, len)| len > 0)
                        .max_by_key(|&(_, len)| len);
                    let Some((v, _)) = victim else { break };
                    job = queues[v].lock().expect("job queue").pop_back();
                }
                let Some((i, item)) = job else { break };
                let _ = tx.send((i, f(&ctx, item)));
            }
            // Out of work everywhere: this lane is claimable by the
            // still-running jobs' intra-job parallelism.
            idle.fetch_add(1, Ordering::Relaxed);
        };

        std::thread::scope(|s| {
            for w in 1..spawned {
                let tx = tx.clone();
                let worker = &worker;
                s.spawn(move || worker(w, tx));
            }
            worker(0, tx);
        });

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        out.into_iter().map(|v| v.expect("every job produced a result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 17] {
            let runner = BatchRunner::with_workers(workers);
            let out = runner.run((0..100u64).collect(), |_ctx, x| x * x);
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>(), "workers = {workers}");
        }
        assert!(BatchRunner::with_workers(4).run(Vec::<u32>::new(), |_c, x| x).is_empty());
    }

    #[test]
    fn uneven_jobs_all_complete_once() {
        // Jobs with wildly different runtimes (the BER-point profile):
        // every job must run exactly once and land at its own index.
        let runner = BatchRunner::with_workers(4);
        let counter = AtomicUsize::new(0);
        let out = runner.run((0..40u64).collect(), |_ctx, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        assert_eq!(out, (1..=40u64).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_batch_recycles_and_matches_unpooled() {
        use terasim_riscv::{Assembler, Image, Reg, Segment};
        use terasim_terapool::{FastSim, SimArtifacts, Topology};

        let mut a = Assembler::new(Topology::L2_BASE);
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::T1, Reg::T0, 2);
        a.addi(Reg::T0, Reg::T0, 3);
        a.sw(Reg::T0, 0x40, Reg::T1);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        let arts = SimArtifacts::build(Topology::scaled(8), &image).unwrap();

        let job = |sim: &mut FastSim, j: u32| {
            sim.memory().write_u32(0x80, j);
            sim.run_all(1).unwrap();
            (sim.memory().read_u32(0x40), sim.memory().read_u32(0x80))
        };
        let runner = BatchRunner::with_workers(2);
        let unpooled = runner.run((0..6u32).collect(), |_ctx, j| {
            job(&mut FastSim::from_artifacts(std::sync::Arc::clone(&arts)), j)
        });
        let pooled = runner.run_pooled(&arts, (0..6u32).collect(), |ctx, j| {
            let pool = ctx.pool().expect("pooled batch exposes its pool");
            job(&mut FastSim::from_pool(pool), j)
        });
        assert_eq!(pooled, unpooled, "pooled batch must be bit-identical");
        // Unpooled batches expose no pool.
        let flags = runner.run(vec![0u32], |ctx, _| ctx.pool().is_some());
        assert!(!flags[0]);
    }

    #[test]
    fn claimable_threads_within_bounds() {
        // Claimable parallelism is always >= 1 and <= the lane count; a
        // batch smaller than the runner starts with the unfilled lanes
        // already claimable.
        let runner = BatchRunner::with_workers(4);
        let claims = runner.run(vec![0u32], |ctx, _| ctx.claimable_threads());
        assert_eq!(claims[0], 4, "3 never-spawned lanes + own lane");
        let runner = BatchRunner::with_workers(2);
        let claims = runner.run((0..8u32).collect(), |ctx, _| ctx.claimable_threads());
        assert!(claims.iter().all(|&c| (1..=2).contains(&c)), "{claims:?}");
    }
}
