//! The batched job-serving layer: a work-stealing [`BatchRunner`] that
//! drives many independent simulation jobs over one shared artifact set.
//!
//! The paper's evaluation is inherently batched — BER curves, figure
//! sweeps and ablations each run hundreds of *independent* cluster
//! simulations. The cycle engine already parallelizes *within* a job
//! (`CycleSim::run_parallel`); this module adds the throughput axis
//! *across* jobs:
//!
//! * **Artifact sharing.** All jobs of a scenario run over one
//!   [`SimArtifacts`] set — decoded
//!   program, lowered micro-op tables, topology maps, initial memory
//!   image — built once instead of once per run (the scenario types in
//!   [`experiments`](crate::experiments) wrap this; `mips --jobs` records
//!   the amortization win).
//! * **Work stealing.** Jobs are dealt round-robin to per-worker queues;
//!   a worker that drains its own queue steals from the busiest
//!   neighbour, so a batch of wildly uneven jobs (BER points near the
//!   error target differ by orders of magnitude) keeps every host thread
//!   busy.
//! * **Ordered results.** Results return in submission order, keyed by
//!   job index — never by completion order or executing worker — so a
//!   batch is deterministic for every worker count.
//! * **Idle-worker claiming.** Fast-mode jobs run one-per-worker; a
//!   sharded cycle job can widen into threads the batch is not using —
//!   [`JobCtx::claimable_threads`] reports `1 +` the workers that have
//!   gone idle (the tail of a draining batch), which the job passes to
//!   `CycleSim::run_parallel`. Because the sharded engine is
//!   bit-identical at every thread count, claiming is invisible in the
//!   results.
//! * **Memory recycling.** [`BatchRunner::run_pooled`] owns one
//!   [`MemPool`] for the duration of the batch and exposes it through
//!   [`JobCtx::pool`]: each lane's jobs acquire and return one recycled
//!   `ClusterMem` instead of re-mapping the 20 MiB arena per job — the
//!   dominant fixed cost of small jobs after artifact sharing. Recycled
//!   arenas are reset to the exact fresh state (only the dirty footprint
//!   is re-zeroed), so pooled batches stay bit-identical to unpooled
//!   ones.
//!
//! # Supervised mode (fault containment)
//!
//! [`BatchRunner::try_run`] / [`try_run_pooled`](BatchRunner::try_run_pooled)
//! run each job under supervision and return `Vec<Result<T, JobError>>`
//! in submission order. The contract:
//!
//! * **Panic isolation.** A panic inside one job closure is caught with
//!   [`std::panic::catch_unwind`] and becomes
//!   [`JobError::Panicked`] *for that index only*; every other job runs
//!   and reports normally. Queue locks use poison recovery, so a panicked
//!   lane can never cascade into its siblings (the queues hold plain
//!   `(index, job)` pairs — there is no invariant a mid-panic closure
//!   could have broken). The runner does not touch the process panic
//!   hook: the default hook still prints each caught panic to stderr.
//! * **Structured faults.** Job closures report guest-level faults —
//!   traps, deadlocks, exhausted budgets — as [`JobError`] values; the
//!   supervised scenario runners in [`experiments`](crate::experiments)
//!   (`try_run_fast` and friends) do this mapping for the standard
//!   workloads.
//! * **Policy.** A [`RunPolicy`] carries the per-job instruction budget,
//!   the bounded-retry count for retryable faults (only host-side panics
//!   are retryable: guest faults are deterministic and would simply
//!   recur), and the batch's [`CancelToken`]. The token is checked at
//!   every job boundary — jobs not yet started return
//!   [`JobError::Cancelled`] without running — and the scenario runners
//!   forward it into the engines, which poll it at scheduling-round /
//!   event-step / epoch boundaries to abort a stuck job mid-run.
//! * **Quarantine.** A pooled job that panics or is cancelled mid-run
//!   never returns its arena to the free list: the simulator drop
//!   detects the unwind (or the cancelled run) and routes the arena to
//!   [`MemPool::quarantine`] — counted in
//!   [`PoolStats::quarantined`](terasim_terapool::PoolStats) — so later
//!   jobs can't inherit memory abandoned mid-write.
//! * **Determinism.** Supervision changes *scheduling*, never results: a
//!   supervised batch with k faulty jobs reports errors at exactly those
//!   k indices and is bit-identical to a fresh serial run at every other
//!   index, for every worker count, pooled and unpooled, on both
//!   backends (pinned by the workspace's `faults` integration tests).
//!
//! # Examples
//!
//! Run a BER sweep as a batch of per-SNR-point jobs:
//!
//! ```
//! use terasim::serve::BatchRunner;
//! use terasim_phy::{ber_jobs, ChannelKind, Mimo, MmseF64, Modulation};
//!
//! let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
//! let runner = BatchRunner::with_workers(2);
//! let points = runner.run(ber_jobs(scenario, &[6.0, 12.0, 18.0], 1), |_ctx, job| {
//!     job.run(&MmseF64, 200, 2_000)
//! });
//! assert_eq!(points.len(), 3);
//! assert!(points[0].ber() > points[2].ber());
//! ```
//!
//! Supervised: one job panics, its neighbours are unaffected:
//!
//! ```
//! use terasim::serve::{BatchRunner, JobError, RunPolicy};
//!
//! let runner = BatchRunner::with_workers(2);
//! let out = runner.try_run_with(&RunPolicy::new(), (0..4u32).collect(), |_ctx, &j| {
//!     if j == 2 {
//!         panic!("injected");
//!     }
//!     Ok(j * 10)
//! });
//! assert_eq!(out[0], Ok(0));
//! assert_eq!(out[1], Ok(10));
//! assert!(matches!(out[2], Err(JobError::Panicked { .. })));
//! assert_eq!(out[3], Ok(30));
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use terasim_iss::Trap;
use terasim_terapool::{CancelToken, ClusterResult, CycleResult, MemPool, SimArtifacts};

/// Why one supervised job failed — the per-job fault taxonomy of
/// [`BatchRunner::try_run`]. One job's error never affects its batch
/// neighbours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job closure panicked; the payload is the panic message when it
    /// was a string (the common `panic!`/`assert!` case). The only
    /// *retryable* fault: a host-side panic may be environmental, while
    /// guest faults are deterministic and would simply recur.
    Panicked {
        /// The panic payload, stringified.
        payload: String,
    },
    /// The guest raised an architectural trap (illegal fetch, faulting
    /// memory access, breakpoint).
    Trap(Trap),
    /// The guest deadlocked: the listed harts were parked in `wfi` with
    /// nobody left to wake them.
    Deadlocked {
        /// Hart ids still parked when the run gave up.
        parked: Vec<u32>,
    },
    /// The job hit its [`RunPolicy::budget`] instruction budget before
    /// finishing (a runaway guest, stopped by the engines' per-core
    /// safety net instead of hanging the lane).
    BudgetExhausted {
        /// The per-core instruction budget that was exhausted.
        budget: u64,
    },
    /// The batch's [`CancelToken`] was raised before or during this job.
    Cancelled,
}

impl JobError {
    /// Whether a bounded retry ([`RunPolicy::max_retries`]) may be
    /// attempted: true only for [`JobError::Panicked`]. Guest faults
    /// (traps, deadlocks, exhausted budgets) are deterministic functions
    /// of the job and would fail identically again; cancellation is an
    /// explicit request to stop.
    pub fn is_retryable(&self) -> bool {
        matches!(self, JobError::Panicked { .. })
    }

    /// Maps a fast-mode result's fault flags to a `JobError`, in severity
    /// order: cancellation, then budget exhaustion (only when a budget
    /// was actually set — `budget` is the configured per-core limit
    /// reported in the error), then deadlock. `Ok(())` for a clean run.
    ///
    /// # Errors
    ///
    /// Returns the fault recorded in `res`, if any.
    pub fn check_fast(res: &ClusterResult, budget: Option<u64>) -> Result<(), JobError> {
        if res.cancelled {
            return Err(JobError::Cancelled);
        }
        if let Some(b) = budget {
            if res.budget_exhausted() {
                return Err(JobError::BudgetExhausted { budget: b });
            }
        }
        if res.deadlocked {
            return Err(JobError::Deadlocked { parked: res.parked.clone() });
        }
        Ok(())
    }

    /// Maps a cycle-mode result's fault flags to a `JobError` (same
    /// severity order as [`check_fast`](Self::check_fast)).
    ///
    /// # Errors
    ///
    /// Returns the fault recorded in `res`, if any.
    pub fn check_cycle(res: &CycleResult, budget: Option<u64>) -> Result<(), JobError> {
        if res.cancelled {
            return Err(JobError::Cancelled);
        }
        if let Some(b) = budget {
            if !res.budgeted.is_empty() {
                return Err(JobError::BudgetExhausted { budget: b });
            }
        }
        if res.deadlocked {
            return Err(JobError::Deadlocked { parked: res.parked.clone() });
        }
        Ok(())
    }
}

impl From<Trap> for JobError {
    fn from(trap: Trap) -> Self {
        JobError::Trap(trap)
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { payload } => write!(f, "job panicked: {payload}"),
            JobError::Trap(trap) => write!(f, "guest trap: {trap}"),
            JobError::Deadlocked { parked } => {
                write!(f, "guest deadlock: harts {parked:?} parked with no wake in flight")
            }
            JobError::BudgetExhausted { budget } => {
                write!(f, "instruction budget of {budget} exhausted")
            }
            JobError::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

/// Batch-level execution policy for supervised runs: per-job instruction
/// budget, bounded retry for retryable faults, and cooperative
/// cancellation. `RunPolicy::default()` is permissive: no budget, no
/// retries, a token nobody cancels.
#[derive(Debug, Clone, Default)]
pub struct RunPolicy {
    /// Per-core instruction budget applied to every job (wired into
    /// `RunConfig::max_instructions` / `CycleSim::max_instructions` by
    /// the supervised scenario runners); exhaustion surfaces as
    /// [`JobError::BudgetExhausted`] instead of a hung lane.
    pub budget: Option<u64>,
    /// Times a job may be re-run after a *retryable* fault (see
    /// [`JobError::is_retryable`]); `0` fails fast.
    pub max_retries: u32,
    /// The batch's cancellation flag: raised, it fails not-yet-started
    /// jobs at the job boundary and aborts in-flight engine runs at
    /// their next safe point.
    pub cancel: CancelToken,
}

impl RunPolicy {
    /// The permissive default policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-job instruction budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the bounded-retry count for retryable faults.
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Attaches a caller-held cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// Context handed to every job: which worker lane runs it, how much host
/// parallelism the job may claim for itself, (in pooled batches) the
/// batch's recycling cluster-memory pool, and (in supervised batches)
/// the batch's [`RunPolicy`].
#[derive(Debug)]
pub struct JobCtx<'a> {
    worker: usize,
    workers: usize,
    idle: &'a AtomicUsize,
    pool: Option<&'a Arc<MemPool>>,
    policy: Option<&'a RunPolicy>,
}

impl JobCtx<'_> {
    /// The worker lane executing this job (`0..workers`).
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The runner's total worker-lane count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Host threads this job may use for *intra-job* parallelism: its own
    /// lane plus every lane currently idle (out of work, or never spawned
    /// because the batch was smaller than the runner). A sharded cycle
    /// job passes this to `CycleSim::run_parallel`; since that engine is
    /// bit-identical at every thread count, the claim affects wall time
    /// only, never results.
    pub fn claimable_threads(&self) -> usize {
        1 + self.idle.load(Ordering::Relaxed).min(self.workers.saturating_sub(1))
    }

    /// The batch's recycling cluster-memory pool — present when the batch
    /// was started with [`BatchRunner::run_pooled`]. Jobs hand it to
    /// `FastSim::from_pool` / `CycleSim::from_pool` (or the pooled
    /// scenario runners in [`experiments`](crate::experiments)) so each
    /// worker lane recycles one arena instead of re-mapping 20 MiB per
    /// job.
    pub fn pool(&self) -> Option<&Arc<MemPool>> {
        self.pool
    }

    /// The batch's [`RunPolicy`] — present in supervised batches
    /// ([`BatchRunner::try_run`] and friends).
    pub fn policy(&self) -> Option<&RunPolicy> {
        self.policy
    }

    /// The supervised batch's per-job instruction budget, if one is set.
    pub fn budget(&self) -> Option<u64> {
        self.policy.and_then(|p| p.budget)
    }

    /// The supervised batch's cancellation token, for forwarding into
    /// engine runs (`FastSim::set_cancel` / `CycleSim::set_cancel`).
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.policy.map(|p| &p.cancel)
    }
}

/// A batch executor over a fixed pool of worker lanes: work-stealing job
/// distribution, submission-order results. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner with one worker lane per available host core.
    pub fn new() -> Self {
        Self::with_workers(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// A runner with an explicit worker-lane count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker lane");
        Self { workers }
    }

    /// The worker-lane count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job through `f` and returns the results in submission
    /// order.
    ///
    /// Jobs are dealt round-robin to per-worker queues; workers pop their
    /// own queue front-first and steal from the fullest other queue when
    /// empty. A worker with nothing left to do (or steal) retires into
    /// the idle pool that [`JobCtx::claimable_threads`] reports. The
    /// output is a pure function of `jobs` and `f` — worker count,
    /// stealing order and completion order never show.
    pub fn run<I: Send, T: Send>(&self, jobs: Vec<I>, f: impl Fn(&JobCtx, I) -> T + Sync) -> Vec<T> {
        self.run_with_pool(None, None, jobs, f)
    }

    /// As [`run`](Self::run), with a recycling cluster-memory pool over
    /// `arts` owned by the batch and exposed to every job through
    /// [`JobCtx::pool`]. Each worker lane's jobs acquire and return one
    /// arena in turn, so the per-job `ClusterMem` allocation (the
    /// dominant fixed cost of small jobs) is paid at most once per lane;
    /// recycled arenas are reset to the exact fresh state, so the results
    /// are bit-identical to an unpooled run. The pool lives exactly as
    /// long as the batch.
    pub fn run_pooled<I: Send, T: Send>(
        &self,
        arts: &Arc<SimArtifacts>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, I) -> T + Sync,
    ) -> Vec<T> {
        let pool = MemPool::new(Arc::clone(arts));
        self.run_pooled_in(&pool, jobs, f)
    }

    /// As [`run_pooled`](Self::run_pooled) over a **caller-owned** pool,
    /// so recycled arenas survive the batch: the first batch's jobs pay
    /// the arena allocations, every later batch over the same pool
    /// recycles them. This is the cross-batch (serving-tier) shape — a
    /// long-lived daemon keeps one warm pool per cached scenario and
    /// threads it through every request batch — while `run_pooled` keeps
    /// the one-shot shape where the pool dies with the batch. Results
    /// are bit-identical either way (recycled arenas reset to the exact
    /// fresh state).
    pub fn run_pooled_in<I: Send, T: Send>(
        &self,
        pool: &Arc<MemPool>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, I) -> T + Sync,
    ) -> Vec<T> {
        self.run_with_pool(Some(pool), None, jobs, f)
    }

    /// Supervised batch under the default (permissive) [`RunPolicy`]:
    /// every job runs in a [`std::panic::catch_unwind`] guard and the
    /// batch returns `Vec<Result<T, JobError>>` in submission order —
    /// one faulty job fails *its own index* and nothing else. See the
    /// [module docs](self) for the full contract.
    pub fn try_run<I: Send + Sync, T: Send>(
        &self,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    ) -> Vec<Result<T, JobError>> {
        self.try_run_with(&RunPolicy::default(), jobs, f)
    }

    /// As [`try_run`](Self::try_run) with an explicit [`RunPolicy`]
    /// (budget, bounded retry, cancellation). Jobs receive their item by
    /// reference so a retryable fault can re-run the same item.
    pub fn try_run_with<I: Send + Sync, T: Send>(
        &self,
        policy: &RunPolicy,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    ) -> Vec<Result<T, JobError>> {
        self.run_with_pool(None, Some(policy), jobs, |ctx, item| supervise(ctx, policy, &item, &f))
    }

    /// Supervised *pooled* batch under the default policy: as
    /// [`run_pooled`](Self::run_pooled), plus the fault containment of
    /// [`try_run`](Self::try_run). Arenas of panicked or cancelled jobs
    /// are quarantined by the simulators' drops, never recycled.
    ///
    /// # Examples
    ///
    /// A supervised pooled batch over a prepared scenario: pool and
    /// policy arrive through the [`JobCtx`], faults come back as
    /// [`JobError`]s at their own index.
    ///
    /// ```
    /// use terasim::experiments::{BatchConfig, SymbolScenario};
    /// use terasim::serve::BatchRunner;
    /// use terasim_kernels::Precision;
    ///
    /// let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 3, unroll: 2 };
    /// let scenario = SymbolScenario::prepare(&config)?;
    /// let out = BatchRunner::with_workers(2).try_run_pooled(
    ///     scenario.artifacts(),
    ///     (0..4u64).collect(),
    ///     |ctx, &seed| scenario.try_run_symbol(ctx, seed),
    /// );
    /// assert!(out.iter().all(|r| r.as_ref().is_ok_and(|o| o.verified)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn try_run_pooled<I: Send + Sync, T: Send>(
        &self,
        arts: &Arc<SimArtifacts>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    ) -> Vec<Result<T, JobError>> {
        self.try_run_pooled_with(&RunPolicy::default(), arts, jobs, f)
    }

    /// As [`try_run_pooled`](Self::try_run_pooled) with an explicit
    /// [`RunPolicy`].
    pub fn try_run_pooled_with<I: Send + Sync, T: Send>(
        &self,
        policy: &RunPolicy,
        arts: &Arc<SimArtifacts>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    ) -> Vec<Result<T, JobError>> {
        let pool = MemPool::new(Arc::clone(arts));
        self.try_run_pooled_in(policy, &pool, jobs, f)
    }

    /// Supervised batch over a **caller-owned** pool — the fault-contained
    /// counterpart of [`run_pooled_in`](Self::run_pooled_in), and the
    /// entry point the serving daemon drives requests through: the pool
    /// outlives the batch, so healthy jobs recycle arenas across
    /// requests while panicked or cancelled jobs still quarantine theirs
    /// ([`MemPool::quarantine`]) instead of poisoning later traffic.
    pub fn try_run_pooled_in<I: Send + Sync, T: Send>(
        &self,
        policy: &RunPolicy,
        pool: &Arc<MemPool>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, &I) -> Result<T, JobError> + Sync,
    ) -> Vec<Result<T, JobError>> {
        self.run_with_pool(Some(pool), Some(policy), jobs, |ctx, item| supervise(ctx, policy, &item, &f))
    }

    fn run_with_pool<I: Send, T: Send>(
        &self,
        pool: Option<&Arc<MemPool>>,
        policy: Option<&RunPolicy>,
        jobs: Vec<I>,
        f: impl Fn(&JobCtx, I) -> T + Sync,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let spawned = self.workers.min(n);
        // Lanes the batch never fills are idle (claimable) from the start.
        let idle = AtomicUsize::new(self.workers - spawned);

        // Deal jobs round-robin so every lane starts with local work.
        let mut queues: Vec<VecDeque<(usize, I)>> = (0..spawned).map(|_| VecDeque::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % spawned].push_back((i, job));
        }
        let queues: Vec<Mutex<VecDeque<(usize, I)>>> = queues.into_iter().map(Mutex::new).collect();

        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let worker = |w: usize, tx: mpsc::Sender<(usize, T)>| {
            let ctx = JobCtx { worker: w, workers: self.workers, idle: &idle, pool, policy };
            loop {
                // Own queue first (front: submission order within the lane)...
                // Every queue lock recovers from poisoning: the queues hold
                // plain (index, job) pairs with no invariant a mid-panic
                // closure could have broken, and a supervised lane must
                // keep draining after catching a sibling's panic.
                let mut job = queues[w].lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                while job.is_none() {
                    // ... then steal the *back* of the fullest other queue,
                    // leaving the victim its locally-next work. A steal can
                    // race to an emptied queue (the scan and the pop are
                    // separate locks), so keep re-scanning and retire only
                    // once a full pass observes every queue empty — queues
                    // drain monotonically, so this terminates.
                    let victim = (0..queues.len())
                        .filter(|&v| v != w)
                        .map(|v| (v, queues[v].lock().unwrap_or_else(|e| e.into_inner()).len()))
                        .filter(|&(_, len)| len > 0)
                        .max_by_key(|&(_, len)| len);
                    let Some((v, _)) = victim else { break };
                    job = queues[v].lock().unwrap_or_else(|e| e.into_inner()).pop_back();
                }
                let Some((i, item)) = job else { break };
                let _ = tx.send((i, f(&ctx, item)));
            }
            // Out of work everywhere: this lane is claimable by the
            // still-running jobs' intra-job parallelism.
            idle.fetch_add(1, Ordering::Relaxed);
        };

        std::thread::scope(|s| {
            for w in 1..spawned {
                let tx = tx.clone();
                let worker = &worker;
                s.spawn(move || worker(w, tx));
            }
            worker(0, tx);
        });

        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            out[i] = Some(v);
        }
        out.into_iter().map(|v| v.expect("every job produced a result")).collect()
    }
}

/// Runs one supervised job: cancellation check at the job boundary, a
/// `catch_unwind` guard around the closure, and bounded retry for
/// retryable faults.
fn supervise<I, T>(
    ctx: &JobCtx,
    policy: &RunPolicy,
    item: &I,
    f: &(impl Fn(&JobCtx, &I) -> Result<T, JobError> + Sync),
) -> Result<T, JobError> {
    let mut attempt = 0u32;
    loop {
        // Job boundary: never start (or re-start) work on a cancelled
        // batch.
        if policy.cancel.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        // `AssertUnwindSafe` is sound here: on a caught panic nothing of
        // the closure's partial state is reused — the job either reports
        // `Panicked` or re-runs from the original item, and pooled
        // simulators quarantine their arena during the unwind.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(ctx, item)))
            .unwrap_or_else(|payload| Err(JobError::Panicked { payload: panic_message(&*payload) }));
        match result {
            Ok(value) => return Ok(value),
            Err(e) if e.is_retryable() && attempt < policy.max_retries => attempt += 1,
            Err(e) => return Err(e),
        }
    }
}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` cover `panic!`, `assert!` and `expect`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 17] {
            let runner = BatchRunner::with_workers(workers);
            let out = runner.run((0..100u64).collect(), |_ctx, x| x * x);
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>(), "workers = {workers}");
        }
        assert!(BatchRunner::with_workers(4).run(Vec::<u32>::new(), |_c, x| x).is_empty());
    }

    #[test]
    fn uneven_jobs_all_complete_once() {
        // Jobs with wildly different runtimes (the BER-point profile):
        // every job must run exactly once and land at its own index.
        let runner = BatchRunner::with_workers(4);
        let counter = AtomicUsize::new(0);
        let out = runner.run((0..40u64).collect(), |_ctx, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        assert_eq!(out, (1..=40u64).collect::<Vec<_>>());
    }

    #[test]
    fn pooled_batch_recycles_and_matches_unpooled() {
        use terasim_riscv::{Assembler, Image, Reg, Segment};
        use terasim_terapool::{FastSim, SimArtifacts, Topology};

        let mut a = Assembler::new(Topology::L2_BASE);
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::T1, Reg::T0, 2);
        a.addi(Reg::T0, Reg::T0, 3);
        a.sw(Reg::T0, 0x40, Reg::T1);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        let arts = SimArtifacts::build(Topology::scaled(8), &image).unwrap();

        let job = |sim: &mut FastSim, j: u32| {
            sim.memory().write_u32(0x80, j);
            sim.run_all(1).unwrap();
            (sim.memory().read_u32(0x40), sim.memory().read_u32(0x80))
        };
        let runner = BatchRunner::with_workers(2);
        let unpooled = runner.run((0..6u32).collect(), |_ctx, j| {
            job(&mut FastSim::from_artifacts(std::sync::Arc::clone(&arts)), j)
        });
        let pooled = runner.run_pooled(&arts, (0..6u32).collect(), |ctx, j| {
            let pool = ctx.pool().expect("pooled batch exposes its pool");
            job(&mut FastSim::from_pool(pool), j)
        });
        assert_eq!(pooled, unpooled, "pooled batch must be bit-identical");
        // Unpooled batches expose no pool.
        let flags = runner.run(vec![0u32], |ctx, _| ctx.pool().is_some());
        assert!(!flags[0]);
    }

    #[test]
    fn panicked_jobs_fail_alone_at_any_worker_count() {
        for workers in [1, 2, 4, 7] {
            let runner = BatchRunner::with_workers(workers);
            let out = runner.try_run((0..20u64).collect(), |_ctx, &x| {
                if x % 5 == 3 {
                    panic!("injected panic at {x}");
                }
                Ok(x * 2)
            });
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let Err(JobError::Panicked { payload }) = r else {
                        panic!("expected Panicked at {i}, got {r:?}")
                    };
                    assert_eq!(payload, &format!("injected panic at {i}"));
                } else {
                    assert_eq!(*r, Ok(i as u64 * 2), "workers = {workers}");
                }
            }
        }
    }

    #[test]
    fn retryable_faults_are_retried_up_to_the_bound() {
        use std::sync::atomic::AtomicU32;
        // A job that panics twice, then succeeds: passes with 2 retries.
        let attempts = AtomicU32::new(0);
        let policy = RunPolicy::new().with_retries(2);
        let out = BatchRunner::with_workers(1).try_run_with(&policy, vec![7u32], |_ctx, &x| {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            Ok(x)
        });
        assert_eq!(out, vec![Ok(7)]);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);

        // An always-panicking job exhausts the bound: 1 + max_retries runs.
        let attempts = AtomicU32::new(0);
        let out = BatchRunner::with_workers(1).try_run_with(
            &policy,
            vec![0u32],
            |_ctx, _| -> Result<u32, JobError> {
                attempts.fetch_add(1, Ordering::Relaxed);
                panic!("always");
            },
        );
        assert!(matches!(&out[0], Err(JobError::Panicked { payload }) if payload == "always"));
        assert_eq!(attempts.load(Ordering::Relaxed), 3);

        // Guest faults are not retryable: exactly one attempt.
        let attempts = AtomicU32::new(0);
        let out = BatchRunner::with_workers(1).try_run_with(&policy, vec![0u32], |_ctx, _| {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err::<u32, _>(JobError::Deadlocked { parked: vec![0] })
        });
        assert_eq!(out[0], Err(JobError::Deadlocked { parked: vec![0] }));
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancelled_batch_fails_unstarted_jobs_at_the_boundary() {
        let policy = RunPolicy::new();
        policy.cancel.cancel();
        let ran = AtomicUsize::new(0);
        let out = BatchRunner::with_workers(2).try_run_with(&policy, (0..5u32).collect(), |_c, &x| {
            ran.fetch_add(1, Ordering::Relaxed);
            Ok(x)
        });
        assert!(out.iter().all(|r| *r == Err(JobError::Cancelled)), "{out:?}");
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no job may start on a cancelled batch");
    }

    #[test]
    fn claimable_threads_within_bounds() {
        // Claimable parallelism is always >= 1 and <= the lane count; a
        // batch smaller than the runner starts with the unfilled lanes
        // already claimable.
        let runner = BatchRunner::with_workers(4);
        let claims = runner.run(vec![0u32], |ctx, _| ctx.claimable_threads());
        assert_eq!(claims[0], 4, "3 never-spawned lanes + own lane");
        let runner = BatchRunner::with_workers(2);
        let claims = runner.run((0..8u32).collect(), |ctx, _| ctx.claimable_threads());
        assert!(claims.iter().all(|&c| (1..=2).contains(&c)), "{claims:?}");
    }
}
