//! `tsim` — command-line front end to the terasim co-simulation framework.
//!
//! ```text
//! tsim run    --mimo 8 --precision 16bCDotp --cores 64 --backend fast|cycle
//! tsim symbol --mimo 4 --precision 16bHalf --nsc 128
//! tsim ber    --mimo 4 --mod 16qam --channel awgn --detector 16bCDotp --snr 6,10,14,18
//! tsim info   --cores 1024
//! ```

use std::process::ExitCode;

use terasim::experiments::{
    self, BatchConfig, CycleEngine, ParallelConfig, ParallelScenario, SymbolScenario,
};
use terasim::DetectorKind;
use terasim_iss::{EpochMode, FusionMode};
use terasim_kernels::Precision;
use terasim_phy::{ChannelKind, Mimo, Modulation};
use terasim_terapool::Topology;

struct Args(Vec<String>);

impl Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    /// The flag's value as a `u32`, or `default` when absent. A value
    /// that is present but malformed is a hard error naming the flag —
    /// never silently replaced by the default.
    fn u32(&self, name: &str, default: u32) -> Result<u32, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| format!("invalid value for {name}: {v:?} is not an unsigned integer"))
            }
        }
    }
}

/// Unwraps a numeric flag or exits with the parse error naming the flag.
macro_rules! flag {
    ($args:expr, $name:expr, $default:expr) => {
        match $args.u32($name, $default) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
}

fn parse_precision(s: &str) -> Option<Precision> {
    Precision::ALL.into_iter().find(|p| p.paper_name().eq_ignore_ascii_case(s))
}

/// Parses `--fusion on|off` (default: on — the fused fast engine).
fn parse_fusion(args: &Args) -> Result<FusionMode, String> {
    match args.value("--fusion") {
        None | Some("on") => Ok(FusionMode::On),
        Some("off") => Ok(FusionMode::Off),
        Some(v) => Err(format!("invalid value for --fusion: {v:?} (expected on|off)")),
    }
}

/// Parses `--epochs fixed|adaptive` (default: adaptive — the
/// quiescence-extended cadence of the sharded cycle engine; `fixed`
/// keeps the base 4-cycle cadence served and CI-exercised).
fn parse_epochs(args: &Args) -> Result<EpochMode, String> {
    match args.value("--epochs") {
        None | Some("adaptive") => Ok(EpochMode::Adaptive),
        Some("fixed") => Ok(EpochMode::Fixed),
        Some(v) => Err(format!("invalid value for --epochs: {v:?} (expected fixed|adaptive)")),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tsim run    --mimo <4|8|16|32> --precision <name> [--cores N] [--backend fast|cycle] [--threads T] [--seed S] [--fusion on|off] [--epochs fixed|adaptive]\n  tsim symbol --mimo <N> --precision <name> [--nsc N] [--seed S] [--fusion on|off] [--epochs fixed|adaptive]\n  tsim ber    --mimo <N> --detector <64b|name|iss:name> [--mod 16qam|64qam] [--channel awgn|rayleigh] [--snr a,b,c] [--errors E]\n  tsim info   [--cores N]\n\nprecisions: 16bHalf 16bwDotp 16bCDotp 8bQuarter 8bwDotp"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        return usage();
    };
    let args = Args(argv);

    match cmd.as_str() {
        "run" => cmd_run(&args),
        "symbol" => cmd_symbol(&args),
        "ber" => cmd_ber(&args),
        "info" => cmd_info(&args),
        _ => usage(),
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    let n = flag!(args, "--mimo", 4);
    let Some(precision) = parse_precision(args.value("--precision").unwrap_or("16bCDotp")) else {
        return usage();
    };
    let config = ParallelConfig {
        cores: flag!(args, "--cores", 64),
        n,
        precision,
        seed: u64::from(flag!(args, "--seed", 1)),
        unroll: flag!(args, "--unroll", 2),
    };
    let epochs = match parse_epochs(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.value("--backend").unwrap_or("fast") {
        "fast" => {
            let threads = flag!(args, "--threads", 2) as usize;
            let fusion = match parse_fusion(args) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let run =
                ParallelScenario::prepare_with(&config, fusion, epochs).and_then(|s| s.run_fast(threads));
            match run {
                Ok(out) => {
                    println!(
                        "fast: {} cores x {}x{} {} (fusion {}) -> {} instructions, ~{} cluster cycles, {:.2} MIPS, wall {:?}, verified={}",
                        config.cores,
                        n,
                        n,
                        precision,
                        if fusion == FusionMode::On { "on" } else { "off" },
                        out.instructions,
                        out.cluster_cycles,
                        out.mips,
                        out.wall,
                        out.verified
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "cycle" => {
            let run = ParallelScenario::prepare_with(&config, FusionMode::default(), epochs)
                .and_then(|s| s.run_cycle(CycleEngine::EventDriven));
            match run {
                Ok(out) => {
                    let b = out.breakdown;
                    println!(
                        "cycle: {} cores x {}x{} {} (epochs {}) -> {} cycles (instr {} raw {} lsu {} ins {} acc {} wfi {}), wall {:?}, verified={}",
                        config.cores,
                        n,
                        n,
                        precision,
                        if epochs == EpochMode::Adaptive { "adaptive" } else { "fixed" },
                        out.cycles,
                        b.instructions,
                        b.stall_raw,
                        b.stall_lsu,
                        b.stall_ins,
                        b.stall_acc,
                        b.stall_wfi,
                        out.wall,
                        out.verified
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn cmd_symbol(args: &Args) -> ExitCode {
    let Some(precision) = parse_precision(args.value("--precision").unwrap_or("16bCDotp")) else {
        return usage();
    };
    let config = BatchConfig {
        n: flag!(args, "--mimo", 4),
        precision,
        nsc: flag!(args, "--nsc", 128),
        seed: u64::from(flag!(args, "--seed", 1)),
        unroll: flag!(args, "--unroll", 2),
    };
    let fusion = match parse_fusion(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let epochs = match parse_epochs(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = SymbolScenario::prepare_with(&config, fusion, epochs).and_then(|s| s.run_symbol(config.seed));
    match run {
        Ok(out) => {
            println!(
                "symbol: NSC={} {}x{} {} -> {} instructions, {} Snitch cycles, {:.2} MIPS, wall {:?}, verified={}",
                config.nsc, config.n, config.n, precision, out.instructions, out.cycles, out.mips, out.wall, out.verified
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_ber(args: &Args) -> ExitCode {
    let n = flag!(args, "--mimo", 4) as usize;
    let detector = match args.value("--detector").unwrap_or("64b") {
        "64b" | "64bDouble" => DetectorKind::Reference64,
        s => {
            if let Some(rest) = s.strip_prefix("iss:") {
                match parse_precision(rest) {
                    Some(p) => DetectorKind::Iss(p),
                    None => return usage(),
                }
            } else {
                match parse_precision(s) {
                    Some(p) => DetectorKind::Native(p),
                    None => return usage(),
                }
            }
        }
    };
    let modulation = match args.value("--mod").unwrap_or("16qam") {
        "qpsk" => Modulation::Qpsk,
        "16qam" => Modulation::Qam16,
        "64qam" => Modulation::Qam64,
        _ => return usage(),
    };
    let channel = match args.value("--channel").unwrap_or("awgn") {
        "awgn" => ChannelKind::Awgn,
        "rayleigh" => ChannelKind::Rayleigh,
        _ => return usage(),
    };
    let mut snrs: Vec<f64> = Vec::new();
    for part in args.value("--snr").unwrap_or("6,10,14,18").split(',') {
        match part.trim().parse() {
            Ok(v) => snrs.push(v),
            Err(_) => {
                eprintln!("error: invalid value for --snr: {:?} is not a number", part.trim());
                return ExitCode::FAILURE;
            }
        }
    }
    if snrs.is_empty() {
        return usage();
    }
    let scenario = Mimo { n_tx: n, n_rx: n, modulation, channel };
    let errors = u64::from(flag!(args, "--errors", 500));
    println!("BER {}x{} {} {} — {}", n, n, modulation.name(), channel.name(), detector.label());
    for p in experiments::ber_curve(scenario, &snrs, detector, errors, 50_000, 1) {
        println!(
            "  {:>5.1} dB: BER {:.3e}  ({} errors / {} bits, {} iterations)",
            p.snr_db,
            p.ber(),
            p.errors,
            p.bits,
            p.iterations
        );
    }
    ExitCode::SUCCESS
}

fn cmd_info(args: &Args) -> ExitCode {
    let topo = Topology::scaled(flag!(args, "--cores", 1024));
    println!("TeraPool topology:");
    println!("  cores: {} ({} per tile)", topo.num_cores(), topo.cores_per_tile);
    println!(
        "  hierarchy: {} tiles = {} subgroups x {} -> {} groups",
        topo.num_tiles(),
        topo.tiles_per_subgroup,
        topo.subgroups_per_group,
        topo.groups
    );
    println!(
        "  L1: {} KiB in {} banks ({} KiB / tile)",
        topo.l1_bytes() >> 10,
        topo.num_banks(),
        topo.tile_spm_bytes >> 10
    );
    println!("  worst non-contended access: {} cycles", topo.max_access_latency());
    println!("  I$: {} B per tile, {} B lines", topo.icache_bytes, topo.icache_line);
    ExitCode::SUCCESS
}
