//! `terasim-serve` — the co-simulation serving daemon under synthetic load.
//!
//! Starts a [`Daemon`], drives the standard mixed request traffic
//! (symbol batches, fast and cycle cluster runs, hardware-in-the-loop
//! BER points) through the deterministic open-loop generator, drains,
//! and prints the load report.
//!
//! ```text
//! terasim-serve [--workers N] [--depth N] [--cache N] [--requests N]
//!               [--rate R] [--seed S] [--budget B] [--fusion on|off]
//!               [--epochs fixed|adaptive] [--check]
//! ```
//!
//! `--rate 0` (the default) saturates the admission queue to measure
//! sustained capacity; a positive rate paces Poisson arrivals at that
//! many requests per second, shedding on overload. `--check` makes the
//! exit status a smoke-test verdict: failure unless every admitted
//! request completed and the artifact cache was actually hit.

use std::process::ExitCode;

use terasim::daemon::{open_loop, standard_mix, Daemon, DaemonConfig};
use terasim::serve::RunPolicy;
use terasim_iss::{EpochMode, FusionMode};

struct Args(Vec<String>);

impl Args {
    fn value(&self, name: &str) -> Option<&str> {
        self.0.iter().position(|a| a == name).and_then(|i| self.0.get(i + 1)).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    /// The flag's value parsed as `T`, or `default` when absent. A value
    /// that is present but malformed is a hard error naming the flag —
    /// never silently replaced by the default.
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v:?}")),
        }
    }
}

macro_rules! flag {
    ($args:expr, $name:expr, $default:expr) => {
        match $args.get($name, $default) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
}

fn main() -> ExitCode {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("--help") || args.has("-h") {
        eprintln!(
            "usage: terasim-serve [--workers N] [--depth N] [--cache N] [--requests N] [--rate R] [--seed S] [--budget B] [--fusion on|off] [--epochs fixed|adaptive] [--check]"
        );
        return ExitCode::FAILURE;
    }
    let workers: usize = flag!(args, "--workers", 1);
    let depth: usize = flag!(args, "--depth", 16);
    let cache: usize = flag!(args, "--cache", 4);
    let requests: usize = flag!(args, "--requests", 40);
    let rate: f64 = flag!(args, "--rate", 0.0);
    let seed: u64 = flag!(args, "--seed", 1);
    let budget: u64 = flag!(args, "--budget", 0);
    let check = args.has("--check");
    let fusion = match args.value("--fusion") {
        None | Some("on") => FusionMode::On,
        Some("off") => FusionMode::Off,
        Some(v) => {
            eprintln!("error: invalid value for --fusion: {v:?} (expected on|off)");
            return ExitCode::FAILURE;
        }
    };
    let epochs = match args.value("--epochs") {
        None | Some("adaptive") => EpochMode::Adaptive,
        Some("fixed") => EpochMode::Fixed,
        Some(v) => {
            eprintln!("error: invalid value for --epochs: {v:?} (expected fixed|adaptive)");
            return ExitCode::FAILURE;
        }
    };

    let mut policy = RunPolicy::new();
    if budget > 0 {
        policy = policy.with_budget(budget);
    }
    let daemon = Daemon::start(DaemonConfig {
        workers,
        queue_depth: depth,
        cache_capacity: cache,
        policy,
        fusion,
        epochs,
    });

    println!(
        "terasim-serve: workers={workers} depth={depth} cache={cache} requests={requests} rate={rate} seed={seed} fusion={} epochs={}",
        if fusion == FusionMode::On { "on" } else { "off" },
        if epochs == EpochMode::Adaptive { "adaptive" } else { "fixed" }
    );
    let report = open_loop(&daemon, &standard_mix(), rate, requests, seed);
    let stats = daemon.shutdown();

    println!(
        "offered {} accepted {} rejected {} completed {} failed {}",
        report.offered, report.accepted, report.rejected, report.completed, report.failed
    );
    println!(
        "throughput {:.2} jobs/s  latency p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        report.jobs_per_sec,
        report.p50_ns as f64 / 1e6,
        report.p99_ns as f64 / 1e6,
        report.max_ns as f64 / 1e6
    );
    println!(
        "cache hits {} misses {} (hit rate {:.1}%)  entries {}/{} evictions {}",
        report.cache_hits,
        report.cache_misses,
        report.hit_rate() * 100.0,
        stats.cache.entries,
        stats.cache.capacity,
        stats.cache.evictions
    );
    println!(
        "pools fresh {} recycled {} quarantined {} trimmed {}",
        stats.pools.fresh, stats.pools.recycled, stats.pools.quarantined, stats.pools.trimmed
    );

    if check {
        if report.failed > 0 {
            eprintln!("check FAILED: {} admitted requests did not complete", report.failed);
            return ExitCode::FAILURE;
        }
        if report.cache_hits == 0 {
            eprintln!("check FAILED: artifact cache was never hit across {} requests", report.completed);
            return ExitCode::FAILURE;
        }
        println!("check OK: zero failures, cross-request cache hits present");
    }
    ExitCode::SUCCESS
}
