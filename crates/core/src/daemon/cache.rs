//! The daemon's cross-request artifact and pool cache.
//!
//! A serving process sees the same scenarios over and over: the same
//! MIMO size, precision and subcarrier count arrive from many clients,
//! differing only in operand seeds. Rebuilding the kernel image and
//! re-lowering the uop tables per request would dominate service time,
//! so the daemon keys every request to a [`ScenarioKey`] and memoises
//! the prepared scenario — immutable [`SimArtifacts`] *plus* a warm
//! [`MemPool`] of cluster arenas — in this cache.
//!
//! Three rules govern the cache:
//!
//! * **Build once, even under races.** Each entry is an
//!   [`OnceLock`] cell inserted under the map lock but *initialised
//!   outside it*: concurrent requests for the same cold key all block on
//!   one build instead of duplicating it, and unrelated keys never wait
//!   behind a slow build.
//! * **Deterministic failures are cached too.** A scenario whose kernel
//!   cannot be built fails identically every time; the error string is
//!   memoised so repeat offenders are rejected without re-paying the
//!   failed build.
//! * **Accounting survives eviction.** Evicting a cold entry drops its
//!   pool, but the pool's [`PoolStats`] — including the quarantine
//!   counter that records faulted arenas — are merged into a retired
//!   total first. [`ArtifactCache::pool_stats`] is therefore a
//!   process-lifetime view, not a view of whatever happens to be warm.

use std::sync::{Arc, Mutex, OnceLock};

use terasim_iss::{EpochMode, FusionMode};
use terasim_phy::{BerJob, Detector};
use terasim_terapool::{MemPool, PoolStats, SimArtifacts};

use super::{ScenarioKey, ServeRequest, ServeResponse};
use crate::detectors::{DetectorKind, IssDetector};
use crate::experiments::{ParallelScenario, SymbolScenario};
use crate::serve::{JobCtx, JobError};

/// What a cache entry holds per request family.
enum Prepared {
    /// A batched OFDM-symbol scenario (single Snitch, `nsc` problems).
    Symbol(SymbolScenario),
    /// A parallel-cluster scenario; serves both fast-mode and
    /// cycle-accurate requests (they share one artifact set).
    Parallel(ParallelScenario),
    /// A hardware-in-the-loop BER detector, its cluster memory drawn
    /// from the entry's pool. Detections serialise on the detector's
    /// internal simulator lock; the kernel image is built exactly once.
    Ber(Box<dyn Detector + Send + Sync>),
}

/// One prepared, immutable scenario plus its warm cluster-memory pool —
/// the unit the [`ArtifactCache`] shares across requests.
pub struct CachedScenario {
    prepared: Prepared,
    pool: Arc<MemPool>,
}

impl std::fmt::Debug for CachedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.prepared {
            Prepared::Symbol(_) => "symbol",
            Prepared::Parallel(_) => "parallel",
            Prepared::Ber(_) => "ber",
        };
        f.debug_struct("CachedScenario").field("kind", &kind).field("pool", &self.pool.stats()).finish()
    }
}

impl CachedScenario {
    /// Prepares the scenario a request needs: kernel build, translation,
    /// artifact lowering, and a fresh recycling pool over the artifacts.
    /// Seeds are normalised out — the prepared scenario serves every
    /// seed of its key. Public so embedders (and the workspace's cache
    /// tests) can pre-warm an [`ArtifactCache`] outside a daemon.
    ///
    /// # Errors
    ///
    /// Returns the kernel build or translation error as a string (the
    /// form the cache memoises).
    pub fn build(req: &ServeRequest) -> Result<Self, String> {
        Self::build_with_fusion(req, FusionMode::default())
    }

    /// As [`build`](Self::build) with an explicit fast-engine
    /// [`FusionMode`] for the prepared scenario (the daemon passes its
    /// configured mode; results are bit-identical either way).
    ///
    /// # Errors
    ///
    /// Returns the kernel build or translation error as a string.
    pub fn build_with_fusion(req: &ServeRequest, fusion: FusionMode) -> Result<Self, String> {
        Self::build_with(req, fusion, EpochMode::default())
    }

    /// As [`build_with_fusion`](Self::build_with_fusion) with an explicit
    /// [`EpochMode`] for the scenario's sharded cycle-mode jobs (the
    /// daemon passes its configured cadence; results are bit-identical
    /// either way).
    ///
    /// # Errors
    ///
    /// Returns the kernel build or translation error as a string.
    pub fn build_with(req: &ServeRequest, fusion: FusionMode, epochs: EpochMode) -> Result<Self, String> {
        match req {
            ServeRequest::Symbol { config } => {
                let mut config = *config;
                config.seed = 0;
                let scenario =
                    SymbolScenario::prepare_with(&config, fusion, epochs).map_err(|e| e.to_string())?;
                let pool = MemPool::new(Arc::clone(scenario.artifacts()));
                Ok(Self { prepared: Prepared::Symbol(scenario), pool })
            }
            ServeRequest::Fast { config } | ServeRequest::Cycle { config, .. } => {
                let mut config = *config;
                config.seed = 0;
                let scenario =
                    ParallelScenario::prepare_with(&config, fusion, epochs).map_err(|e| e.to_string())?;
                let pool = MemPool::new(Arc::clone(scenario.artifacts()));
                Ok(Self { prepared: Prepared::Parallel(scenario), pool })
            }
            ServeRequest::Ber { scenario, kind, .. } => {
                let DetectorKind::Iss(precision) = kind else {
                    return Err(format!("{} detectors run uncached", kind.label()));
                };
                let arts = IssDetector::build_artifacts(*precision, scenario.n_tx as u32)
                    .map_err(|e| e.to_string())?;
                let pool = MemPool::new(arts);
                let detector = kind.instantiate_pooled(scenario.n_tx, &pool);
                Ok(Self { prepared: Prepared::Ber(detector), pool })
            }
        }
    }

    /// The entry's recycling cluster-memory pool (built over the
    /// scenario's own artifact set, so the supervised runners' pool
    /// identity check passes and arenas recycle across requests).
    pub fn pool(&self) -> &Arc<MemPool> {
        &self.pool
    }

    /// The shared artifact set behind the pool.
    pub fn artifacts(&self) -> &Arc<SimArtifacts> {
        self.pool.artifacts()
    }

    /// Executes one request against the prepared scenario, under the
    /// supervisor's context (pool, budget, cancellation all flow through
    /// `ctx`).
    ///
    /// # Errors
    ///
    /// Returns the [`JobError`] classifying the fault, if any. A request
    /// whose family does not match the entry (only possible through a
    /// key collision) is reported as a panic-class error rather than
    /// silently running the wrong scenario.
    pub(super) fn run(&self, ctx: &JobCtx, req: &ServeRequest) -> Result<ServeResponse, JobError> {
        match (&self.prepared, req) {
            (Prepared::Symbol(s), ServeRequest::Symbol { config }) => {
                s.try_run_symbol(ctx, config.seed).map(ServeResponse::Symbol)
            }
            (Prepared::Parallel(s), ServeRequest::Fast { config }) => {
                s.try_run_fast(ctx, 1, config.seed).map(ServeResponse::Fast)
            }
            (Prepared::Parallel(s), ServeRequest::Cycle { config, engine }) => {
                s.try_run_cycle(ctx, *engine, config.seed).map(ServeResponse::Cycle)
            }
            (
                Prepared::Ber(detector),
                ServeRequest::Ber { scenario, snr_db, seed, target_errors, max_iterations, .. },
            ) => {
                let job = BerJob { scenario: *scenario, snr_db: *snr_db, seed: *seed };
                Ok(ServeResponse::Ber(job.run(detector.as_ref(), *target_errors, *max_iterations)))
            }
            _ => Err(JobError::Panicked {
                payload: "request family does not match its cached scenario (scenario-key collision)".into(),
            }),
        }
    }
}

/// A build-once cell: placeholder inserted under the map lock,
/// initialised outside it.
type Cell = Arc<OnceLock<Result<Arc<CachedScenario>, String>>>;

struct Slot {
    key: ScenarioKey,
    last_used: u64,
    cell: Cell,
}

struct Inner {
    slots: Vec<Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Accumulated [`PoolStats`] of every evicted entry, so quarantine
    /// and recycle accounting survive eviction.
    retired: PoolStats,
}

/// Observability counters of an [`ArtifactCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups whose entry was already built on arrival.
    pub hits: u64,
    /// Lookups that inserted a fresh entry *or* arrived while the entry
    /// was still mid-build (those share the build but are not warm).
    pub misses: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
    /// Entries currently resident (built or building).
    pub entries: usize,
    /// The configured capacity.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A capacity-bounded LRU cache of prepared scenarios, shared by all
/// daemon workers. Capacities are small (scenarios are ~tens of MiB of
/// arena plus lowered tables), so lookup is a linear scan — the lock is
/// held only for the scan, never for a build.
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache").field("stats", &self.stats()).finish()
    }
}

impl ArtifactCache {
    /// Creates an empty cache holding at most `capacity` scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a cache that can hold nothing
    /// would rebuild artifacts per request and silently defeat the
    /// serving tier.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "artifact cache needs capacity for at least one scenario");
        let inner = Inner {
            slots: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            retired: PoolStats::default(),
        };
        Self { inner: Mutex::new(inner), capacity }
    }

    /// Looks up `key`, building the entry with `build` on a miss.
    /// Returns the entry (or its memoised build error) and whether the
    /// lookup was a warm hit. Concurrent misses on one key run `build`
    /// exactly once; the rest block on the winner's cell.
    pub fn get_or_build(
        &self,
        key: ScenarioKey,
        build: impl FnOnce() -> Result<CachedScenario, String>,
    ) -> (Result<Arc<CachedScenario>, String>, bool) {
        let (cell, hit) = {
            // Poison recovery: the map holds plain slots with no
            // invariant a panicking builder could break (builds run
            // outside the lock).
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.tick += 1;
            let tick = inner.tick;
            match inner.slots.iter().position(|s| s.key == key) {
                Some(i) => {
                    inner.slots[i].last_used = tick;
                    let hit = inner.slots[i].cell.get().is_some();
                    if hit {
                        inner.hits += 1;
                    } else {
                        inner.misses += 1;
                    }
                    (Arc::clone(&inner.slots[i].cell), hit)
                }
                None => {
                    inner.misses += 1;
                    if inner.slots.len() >= self.capacity {
                        self.evict_lru(&mut inner);
                    }
                    let cell: Cell = Arc::new(OnceLock::new());
                    inner.slots.push(Slot { key, last_used: tick, cell: Arc::clone(&cell) });
                    (cell, false)
                }
            }
        };
        (cell.get_or_init(|| build().map(Arc::new)).clone(), hit)
    }

    /// Drops the least-recently-used slot, folding a built entry's pool
    /// accounting into the retired total first. An entry still mid-build
    /// simply loses its slot — its in-flight waiters keep their handle
    /// on the cell and complete normally.
    fn evict_lru(&self, inner: &mut Inner) {
        let Some(victim) = inner.slots.iter().enumerate().min_by_key(|(_, s)| s.last_used).map(|(i, _)| i)
        else {
            return;
        };
        let slot = inner.slots.swap_remove(victim);
        if let Some(Ok(scenario)) = slot.cell.get() {
            inner.retired.merge(&scenario.pool.stats());
        }
        inner.evictions += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.slots.len(),
            capacity: self.capacity,
        }
    }

    /// Process-lifetime pool accounting: the sum over every resident
    /// pool *plus* every evicted pool's final counters — so a faulted
    /// job's quarantined arena stays on the books after its scenario
    /// goes cold and is evicted.
    pub fn pool_stats(&self) -> PoolStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = inner.retired;
        for slot in &inner.slots {
            if let Some(Ok(scenario)) = slot.cell.get() {
                total.merge(&scenario.pool.stats());
            }
        }
        total
    }
}
