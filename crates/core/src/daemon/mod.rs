//! A long-lived, in-process co-simulation serving daemon.
//!
//! The batch tier ([`crate::serve`]) amortises artifact builds *within*
//! one batch; this module amortises them *across* batches, for a process
//! that stays up and serves many independent requests — the shape of a
//! CI farm, a BER-curve service, or the paper's Monte-Carlo campaigns
//! run as a shared facility. The layering is strict:
//!
//! ```text
//! SimArtifacts   immutable per-scenario build products   (terapool)
//!   MemPool      recycling cluster arenas per scenario   (terapool)
//!     BatchRunner  supervised work-stealing batch        (serve)
//!       Daemon     queue + artifact cache + workers      (this module)
//! ```
//!
//! A [`Daemon`] owns three things:
//!
//! * an [`ArtifactCache`] — an LRU of prepared scenarios, each an
//!   immutable artifact set plus a warm [`MemPool`](terasim_terapool::MemPool)
//!   that survives between requests, keyed by [`ScenarioKey`];
//! * a bounded admission queue — [`Daemon::submit`] enqueues a
//!   [`ServeRequest`] and hands back a [`Ticket`]; beyond the high-water
//!   depth, submission fails fast with [`Rejected::Overloaded`]
//!   (backpressure, never unbounded memory);
//! * worker threads — each pops requests and executes them through the
//!   supervised batch runner, so every per-request fault surfaces as a
//!   structured [`JobError`] and a faulted arena is quarantined, never
//!   recycled.
//!
//! Shutdown is graceful by construction: [`Daemon::begin_drain`] stops
//! intake (subsequent submissions get [`Rejected::ShuttingDown`]) while
//! workers finish everything already queued; [`Daemon::shutdown`] drains
//! and joins, returning the final [`DaemonStats`].
//!
//! Determinism contract: responses are a pure function of the request —
//! artifacts are immutable, pooled arenas are reset to image state on
//! acquire, and seeds travel inside the request — so a cache hit, a
//! cache miss, and a fresh process all produce bit-identical outcomes.
//!
//! # Example
//!
//! ```
//! use terasim::daemon::{Daemon, DaemonConfig, ServeRequest, ServeResponse};
//! use terasim::experiments::BatchConfig;
//! use terasim_kernels::Precision;
//!
//! let daemon = Daemon::start(DaemonConfig::default());
//! let config = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 7, unroll: 2 };
//! let ticket = daemon.submit(ServeRequest::Symbol { config }).expect("queue empty");
//! let done = ticket.wait();
//! match done.response {
//!     Ok(ServeResponse::Symbol(out)) => assert!(out.verified),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! let stats = daemon.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

mod cache;
mod loadgen;

pub use cache::{ArtifactCache, CacheStats, CachedScenario};
pub use loadgen::{open_loop, standard_mix, LoadMix, LoadReport};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use terasim_iss::{EpochMode, FusionMode};
use terasim_phy::{BerPoint, Mimo};
use terasim_terapool::PoolStats;

use crate::detectors::DetectorKind;
use crate::experiments::{BatchConfig, BatchOutcome, CycleEngine, CycleOutcome, FastOutcome, ParallelConfig};
use crate::serve::{BatchRunner, JobError, RunPolicy};

/// The stable identity of a request's *scenario* — everything that
/// determines the artifact set (topology, kernel image, run
/// configuration), and nothing that doesn't (operand seeds, SNR points,
/// cycle engine choice). Requests with equal keys share one cache entry.
///
/// The key is an FNV-1a digest of the scenario-defining fields, so it is
/// stable across processes (unlike `std`'s randomly-seeded hasher) —
/// cache hit accounting is comparable between runs and machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioKey(u64);

impl ScenarioKey {
    /// The raw digest (for logs and bench JSON).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Incremental FNV-1a, the same digest family `SimArtifacts::digest`
/// uses for cross-process stability.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// One unit of work a client hands to the daemon. Seeds (and for BER,
/// the SNR point) ride *inside* the request; the scenario identity used
/// for caching deliberately excludes them — see [`ServeRequest::key`].
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// One batched OFDM symbol (`nsc` subcarrier problems on a single
    /// Snitch) — the Figure 6 Monte-Carlo iteration.
    Symbol {
        /// Scenario and operand seed.
        config: BatchConfig,
    },
    /// One fast-mode parallel-cluster run (Banshee-equivalent timing).
    Fast {
        /// Scenario and operand seed.
        config: ParallelConfig,
    },
    /// One cycle-accurate parallel-cluster run.
    Cycle {
        /// Scenario and operand seed.
        config: ParallelConfig,
        /// Which cycle engine to drive (all engines are bit-identical;
        /// the choice is not part of the scenario key).
        engine: CycleEngine,
    },
    /// One BER-vs-SNR Monte-Carlo point.
    Ber {
        /// The MIMO scenario swept.
        scenario: Mimo,
        /// The detector in the loop. [`DetectorKind::Iss`] requests are
        /// cached (kernel + artifacts + pooled simulator); the cheap
        /// reference/native detectors run uncached.
        kind: DetectorKind,
        /// This point's SNR in dB.
        snr_db: f64,
        /// This point's Monte-Carlo seed.
        seed: u64,
        /// Stop after this many bit errors.
        target_errors: u64,
        /// Hard cap on channel uses.
        max_iterations: u64,
    },
}

impl ServeRequest {
    /// The request's scenario identity. Operand seeds, SNR points,
    /// Monte-Carlo bounds and engine choice are excluded: they select
    /// *work*, not *artifacts*. [`Fast`](Self::Fast) and
    /// [`Cycle`](Self::Cycle) requests over the same config share a key
    /// (and a cache entry) because [`ParallelScenario`] serves both
    /// backends from one artifact set.
    ///
    /// [`ParallelScenario`]: crate::experiments::ParallelScenario
    pub fn key(&self) -> ScenarioKey {
        let mut h = Fnv::new();
        match self {
            ServeRequest::Symbol { config } => {
                h.bytes(b"symbol");
                h.u64(u64::from(config.n));
                h.bytes(config.precision.paper_name().as_bytes());
                h.u64(u64::from(config.nsc));
                h.u64(u64::from(config.unroll));
            }
            ServeRequest::Fast { config } | ServeRequest::Cycle { config, .. } => {
                h.bytes(b"parallel");
                h.u64(u64::from(config.cores));
                h.u64(u64::from(config.n));
                h.bytes(config.precision.paper_name().as_bytes());
                h.u64(u64::from(config.unroll));
            }
            ServeRequest::Ber { scenario, kind, .. } => {
                h.bytes(b"ber");
                h.bytes(kind.label().as_bytes());
                h.u64(scenario.n_tx as u64);
            }
        }
        ScenarioKey(h.0)
    }

    /// Whether the daemon caches this request's scenario. Everything is
    /// cacheable except BER with a detector that owns no cluster memory
    /// ([`DetectorKind::Reference64`] / [`DetectorKind::Native`]): those
    /// detectors are a few arithmetic ops to build, so caching would
    /// only add lock traffic.
    pub fn cacheable(&self) -> bool {
        match self {
            ServeRequest::Ber { kind, .. } => matches!(kind, DetectorKind::Iss(_)),
            _ => true,
        }
    }

    /// Replaces the request's operand/Monte-Carlo seed — the load
    /// generator's knob for emitting many independent requests from one
    /// template without touching the scenario identity.
    pub fn reseed(&mut self, seed: u64) {
        match self {
            ServeRequest::Symbol { config } => config.seed = seed,
            ServeRequest::Fast { config } | ServeRequest::Cycle { config, .. } => config.seed = seed,
            ServeRequest::Ber { seed: s, .. } => *s = seed,
        }
    }

    /// Short family label for reports ("symbol", "fast", "cycle",
    /// "ber").
    pub fn label(&self) -> &'static str {
        match self {
            ServeRequest::Symbol { .. } => "symbol",
            ServeRequest::Fast { .. } => "fast",
            ServeRequest::Cycle { .. } => "cycle",
            ServeRequest::Ber { .. } => "ber",
        }
    }
}

/// The successful outcome of a [`ServeRequest`], variant-matched to the
/// request family.
#[derive(Debug, Clone)]
pub enum ServeResponse {
    /// Outcome of a [`ServeRequest::Symbol`].
    Symbol(BatchOutcome),
    /// Outcome of a [`ServeRequest::Fast`].
    Fast(FastOutcome),
    /// Outcome of a [`ServeRequest::Cycle`].
    Cycle(CycleOutcome),
    /// Outcome of a [`ServeRequest::Ber`].
    Ber(BerPoint),
}

impl ServeResponse {
    /// Whether the run's architectural results matched the bit-true
    /// native model (BER points carry no verification flag and report
    /// `true`).
    pub fn verified(&self) -> bool {
        match self {
            ServeResponse::Symbol(o) => o.verified,
            ServeResponse::Fast(o) => o.verified,
            ServeResponse::Cycle(o) => o.verified,
            ServeResponse::Ber(_) => true,
        }
    }
}

/// Why a submission was refused at the door (backpressure — the request
/// was never queued and had no side effects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The admission queue is at its high-water depth; retry later or
    /// shed the request.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded { depth } => write!(f, "overloaded: queue at depth {depth}"),
            Rejected::ShuttingDown => write!(f, "shutting down: daemon is draining"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an *admitted* request did not produce a [`ServeResponse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The scenario could not be prepared (kernel build or translation
    /// failure). Deterministic, and memoised by the cache.
    Build(String),
    /// The run itself faulted; the [`JobError`] taxonomy from the batch
    /// tier applies unchanged (panic, trap, deadlock, budget,
    /// cancellation).
    Job(JobError),
    /// The daemon terminated before completing the request (only
    /// observable if a [`Ticket`] outlives its daemon).
    Terminated,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Build(e) => write!(f, "scenario build failed: {e}"),
            ServeError::Job(e) => write!(f, "job faulted: {e}"),
            ServeError::Terminated => write!(f, "daemon terminated before completing the request"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything the daemon reports back for one admitted request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The response, or why there is none.
    pub response: Result<ServeResponse, ServeError>,
    /// Submission-to-completion latency (queueing included).
    pub latency: Duration,
    /// Time spent waiting in the admission queue.
    pub queued: Duration,
    /// Whether the request's scenario was already warm in the artifact
    /// cache when a worker picked it up (uncached request families
    /// always report `false`).
    pub cache_hit: bool,
}

/// The claim check for one admitted request; redeem it with
/// [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Completion>,
}

impl Ticket {
    /// Blocks until the request completes.
    pub fn wait(self) -> Completion {
        self.rx.recv().unwrap_or(Completion {
            response: Err(ServeError::Terminated),
            latency: Duration::ZERO,
            queued: Duration::ZERO,
            cache_hit: false,
        })
    }

    /// Non-blocking poll; `Some` exactly once, when the request has
    /// completed.
    pub fn try_wait(&self) -> Option<Completion> {
        self.rx.try_recv().ok()
    }
}

/// Daemon sizing and policy.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads executing requests (each runs its request through
    /// a single-lane supervised batch, so per-request host parallelism
    /// stays bounded by this count).
    pub workers: usize,
    /// Admission-queue high-water depth: submissions beyond this are
    /// rejected with [`Rejected::Overloaded`].
    pub queue_depth: usize,
    /// Scenarios the artifact cache keeps warm (LRU beyond this).
    pub cache_capacity: usize,
    /// Execution policy applied to every request (instruction budget,
    /// retry-on-panic, cancellation token).
    pub policy: RunPolicy,
    /// Fast-engine fusion mode applied to every scenario the cache
    /// prepares (A/B hook for the `--fusion` serve flag; results are
    /// bit-identical either way).
    pub fusion: FusionMode,
    /// Epoch cadence of the sharded cycle engine applied to every
    /// scenario the cache prepares (A/B hook for the `--epochs` serve
    /// flag; results are bit-identical either way).
    pub epochs: EpochMode,
}

impl Default for DaemonConfig {
    /// One worker, depth 64, four warm scenarios, permissive policy,
    /// fused fast engine, adaptive epochs.
    fn default() -> Self {
        Self {
            workers: 1,
            queue_depth: 64,
            cache_capacity: 4,
            policy: RunPolicy::new(),
            fusion: FusionMode::On,
            epochs: EpochMode::Adaptive,
        }
    }
}

/// Lifetime counters of a [`Daemon`], including the artifact cache and
/// the process-lifetime pool accounting.
#[derive(Debug, Clone)]
pub struct DaemonStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Submissions refused with [`Rejected::Overloaded`].
    pub rejected_overload: u64,
    /// Submissions refused with [`Rejected::ShuttingDown`].
    pub rejected_draining: u64,
    /// Admitted requests that produced a [`ServeResponse`].
    pub completed: u64,
    /// Admitted requests that ended in a [`ServeError`].
    pub failed: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
    /// Pool accounting summed over live *and* evicted scenario pools.
    pub pools: PoolStats,
}

struct Work {
    req: ServeRequest,
    tx: Sender<Completion>,
    submitted: Instant,
}

struct QueueState {
    jobs: VecDeque<Work>,
    draining: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ArtifactCache,
    policy: RunPolicy,
    fusion: FusionMode,
    epochs: EpochMode,
    high_water: usize,
    submitted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

/// The serving daemon: admission queue, artifact cache, worker threads.
/// See the [module docs](self) for the architecture; `examples/serve_loop.rs`
/// is a minimal embedding.
#[derive(Debug)]
pub struct Daemon {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("high_water", &self.high_water).finish_non_exhaustive()
    }
}

impl Daemon {
    /// Starts the daemon's worker threads and returns the handle.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.queue_depth` is zero, or if
    /// the host refuses to spawn threads.
    pub fn start(config: DaemonConfig) -> Self {
        assert!(config.workers > 0, "daemon needs at least one worker");
        assert!(config.queue_depth > 0, "daemon needs a nonzero admission queue");
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), draining: false }),
            available: Condvar::new(),
            cache: ArtifactCache::new(config.cache_capacity),
            policy: config.policy,
            fusion: config.fusion,
            epochs: config.epochs,
            high_water: config.queue_depth,
            submitted: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        let handles = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("terasim-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn daemon worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Submits one request. On admission the returned [`Ticket`] will
    /// eventually yield exactly one [`Completion`]; on rejection the
    /// request had no effect and may be retried.
    ///
    /// # Errors
    ///
    /// [`Rejected::ShuttingDown`] after [`begin_drain`](Self::begin_drain),
    /// [`Rejected::Overloaded`] at the high-water queue depth.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, Rejected> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.draining {
            self.shared.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::ShuttingDown);
        }
        let depth = q.jobs.len();
        if depth >= self.shared.high_water {
            self.shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Overloaded { depth });
        }
        let (tx, rx) = mpsc::channel();
        q.jobs.push_back(Work { req, tx, submitted: Instant::now() });
        drop(q);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }

    /// Stops intake: every subsequent [`submit`](Self::submit) is
    /// rejected with [`Rejected::ShuttingDown`], while already-queued
    /// requests keep draining. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).draining = true;
        self.shared.available.notify_all();
    }

    /// Graceful shutdown: stop intake, let the workers finish the
    /// queue, join them, and report the final counters.
    pub fn shutdown(mut self) -> DaemonStats {
        self.join_workers();
        self.stats()
    }

    /// Current counters (also available live, before shutdown).
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            rejected_overload: self.shared.rejected_overload.load(Ordering::Relaxed),
            rejected_draining: self.shared.rejected_draining.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
            pools: self.shared.cache.pool_stats(),
        }
    }

    /// Artifact-cache counters only (hit/miss/eviction).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    fn join_workers(&mut self) {
        self.begin_drain();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    /// Dropping the handle drains and joins — the daemon never leaks
    /// detached workers.
    fn drop(&mut self) {
        self.join_workers();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(w) = q.jobs.pop_front() {
                    break Some(w);
                }
                if q.draining {
                    break None;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(work) = work else { return };
        let queued = work.submitted.elapsed();
        let (response, cache_hit) = serve_one(shared, &work.req);
        if response.is_ok() {
            shared.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.failed.fetch_add(1, Ordering::Relaxed);
        }
        // A client that dropped its ticket just doesn't read the result.
        let _ = work.tx.send(Completion { response, latency: work.submitted.elapsed(), queued, cache_hit });
    }
}

/// Executes one request on the calling worker thread. Both paths run
/// through the supervised batch runner at a single lane (zero extra
/// threads), so panics, traps, budgets and cancellation all surface as
/// [`JobError`]s instead of killing the worker.
fn serve_one(shared: &Shared, req: &ServeRequest) -> (Result<ServeResponse, ServeError>, bool) {
    let runner = BatchRunner::with_workers(1);
    if req.cacheable() {
        let (entry, hit) = shared
            .cache
            .get_or_build(req.key(), || CachedScenario::build_with(req, shared.fusion, shared.epochs));
        match entry {
            Ok(scenario) => {
                let mut out =
                    runner.try_run_pooled_in(&shared.policy, scenario.pool(), vec![()], |ctx, ()| {
                        scenario.run(ctx, req)
                    });
                (out.pop().expect("one job, one result").map_err(ServeError::Job), hit)
            }
            Err(e) => (Err(ServeError::Build(e)), hit),
        }
    } else {
        let ServeRequest::Ber { scenario, kind, snr_db, seed, target_errors, max_iterations } = req else {
            unreachable!("only BER requests can be uncacheable");
        };
        let mut out = runner.try_run_with(&shared.policy, vec![()], |_ctx, ()| {
            let detector = kind.instantiate(scenario.n_tx);
            let job = terasim_phy::BerJob { scenario: *scenario, snr_db: *snr_db, seed: *seed };
            Ok(ServeResponse::Ber(job.run(detector.as_ref(), *target_errors, *max_iterations)))
        });
        (out.pop().expect("one job, one result").map_err(ServeError::Job), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terasim_kernels::Precision;

    fn symbol_req(n: u32, nsc: u32, seed: u64) -> ServeRequest {
        ServeRequest::Symbol {
            config: BatchConfig { n, precision: Precision::CDotp16, nsc, seed, unroll: 2 },
        }
    }

    #[test]
    fn keys_ignore_seeds_but_separate_scenarios() {
        assert_eq!(symbol_req(4, 8, 1).key(), symbol_req(4, 8, 999).key());
        assert_ne!(symbol_req(4, 8, 1).key(), symbol_req(4, 16, 1).key());
        assert_ne!(symbol_req(4, 8, 1).key(), symbol_req(8, 8, 1).key());
        let parallel = ServeRequest::Fast {
            config: ParallelConfig { cores: 16, n: 4, precision: Precision::CDotp16, seed: 1, unroll: 2 },
        };
        let cycle = ServeRequest::Cycle {
            config: ParallelConfig { cores: 16, n: 4, precision: Precision::CDotp16, seed: 7, unroll: 2 },
            engine: CycleEngine::EventDriven,
        };
        // Fast and cycle share artifacts, hence a cache entry.
        assert_eq!(parallel.key(), cycle.key());
        assert_ne!(parallel.key(), symbol_req(4, 8, 1).key());
    }

    #[test]
    fn reseed_changes_only_the_seed() {
        let mut req = symbol_req(4, 8, 1);
        let key = req.key();
        req.reseed(42);
        assert_eq!(req.key(), key);
        let ServeRequest::Symbol { config } = &req else { unreachable!() };
        assert_eq!(config.seed, 42);
    }

    #[test]
    fn serves_and_caches_a_symbol_scenario() {
        let daemon = Daemon::start(DaemonConfig::default());
        let first = daemon.submit(symbol_req(4, 4, 3)).expect("admitted").wait();
        let second = daemon.submit(symbol_req(4, 4, 4)).expect("admitted").wait();
        assert!(first.response.expect("first").verified());
        assert!(!first.cache_hit, "cold start must miss");
        assert!(second.response.expect("second").verified());
        assert!(second.cache_hit, "same scenario, different seed: must hit");
        let stats = daemon.shutdown();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        // The second request recycled the first's arena.
        assert_eq!(stats.pools.fresh, 1);
        assert_eq!(stats.pools.recycled, 1);
    }

    #[test]
    fn drain_rejects_new_work_but_finishes_queued() {
        let daemon = Daemon::start(DaemonConfig::default());
        let ticket = daemon.submit(symbol_req(4, 4, 1)).expect("admitted");
        daemon.begin_drain();
        assert_eq!(daemon.submit(symbol_req(4, 4, 2)).unwrap_err(), Rejected::ShuttingDown);
        assert!(ticket.wait().response.expect("queued work drains").verified());
        let stats = daemon.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected_draining, 1);
    }
}
