//! Synthetic open-loop load generation against a [`Daemon`].
//!
//! Two modes, one entry point ([`open_loop`]):
//!
//! * **Paced** (`rate_per_sec > 0`): a Poisson arrival process —
//!   exponential inter-arrival gaps at the given mean rate, submissions
//!   never waiting for earlier responses (true open loop). When the
//!   daemon pushes back with [`Rejected::Overloaded`] the request is
//!   *dropped* and counted, exactly like a shed request in a real
//!   front end.
//! * **Saturating** (`rate_per_sec == 0`): submissions as fast as the
//!   admission queue accepts them, waiting out the oldest in-flight
//!   ticket whenever the queue is full. This measures the daemon's
//!   sustained capacity (`jobs_per_sec`) without choosing an arrival
//!   rate first — the mode the `mips --serve` benchmark records.
//!
//! All randomness (template choice, inter-arrival gaps, per-request
//! seeds) derives from one `u64` seed through the PHY's deterministic
//! [`Rng64`], so a load run is reproducible end to end.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use terasim_phy::rng::Rng64;
use terasim_phy::{ChannelKind, Mimo, Modulation};

use super::{Completion, Daemon, Rejected, ServeRequest, Ticket};
use crate::detectors::DetectorKind;
use crate::experiments::{BatchConfig, CycleEngine, ParallelConfig};
use terasim_kernels::Precision;

/// A weighted set of request templates; each emitted request is a clone
/// of one template with a fresh seed ([`ServeRequest::reseed`]).
#[derive(Debug, Clone, Default)]
pub struct LoadMix {
    entries: Vec<(u32, ServeRequest)>,
}

impl LoadMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a template with the given relative weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    #[must_use]
    pub fn with(mut self, weight: u32, template: ServeRequest) -> Self {
        assert!(weight > 0, "a zero-weight template would never be emitted");
        self.entries.push((weight, template));
        self
    }

    /// Number of templates in the mix.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the mix has no templates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Picks one template by weight and reseeds it from `rng`.
    fn sample(&self, rng: &mut Rng64) -> ServeRequest {
        assert!(!self.entries.is_empty(), "cannot sample an empty load mix");
        let total: u64 = self.entries.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.next_u64() % total;
        for (weight, template) in &self.entries {
            if pick < u64::from(*weight) {
                let mut req = template.clone();
                req.reseed(rng.next_u64());
                return req;
            }
            pick -= u64::from(*weight);
        }
        unreachable!("weighted pick is bounded by the total weight");
    }
}

/// The benchmark's mixed traffic: mostly symbol batches (two scenarios,
/// so the cache holds more than one key), some fast-mode cluster runs,
/// an occasional cycle-accurate run and an occasional
/// hardware-in-the-loop BER point. Sized for CI — every template is a
/// sub-second request on one host core.
pub fn standard_mix() -> LoadMix {
    LoadMix::new()
        .with(
            4,
            ServeRequest::Symbol {
                config: BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 8, seed: 0, unroll: 2 },
            },
        )
        .with(
            2,
            ServeRequest::Symbol {
                config: BatchConfig { n: 4, precision: Precision::Half16, nsc: 4, seed: 0, unroll: 2 },
            },
        )
        .with(
            2,
            ServeRequest::Fast {
                config: ParallelConfig { cores: 16, n: 4, precision: Precision::CDotp16, seed: 0, unroll: 2 },
            },
        )
        .with(
            1,
            ServeRequest::Cycle {
                config: ParallelConfig { cores: 8, n: 4, precision: Precision::WDotp8, seed: 0, unroll: 2 },
                engine: CycleEngine::EventDriven,
            },
        )
        .with(
            1,
            ServeRequest::Ber {
                scenario: Mimo {
                    n_tx: 4,
                    n_rx: 4,
                    modulation: Modulation::Qam16,
                    channel: ChannelKind::Awgn,
                },
                kind: DetectorKind::Iss(Precision::CDotp16),
                snr_db: 12.0,
                seed: 0,
                target_errors: 4,
                max_iterations: 32,
            },
        )
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests the generator tried to submit.
    pub offered: u64,
    /// Requests the daemon admitted.
    pub accepted: u64,
    /// Requests shed at the door (paced mode) or refused because the
    /// daemon was draining.
    pub rejected: u64,
    /// Admitted requests that produced a response.
    pub completed: u64,
    /// Admitted requests that ended in a [`ServeError`](super::ServeError).
    pub failed: u64,
    /// Wall-clock span from first submission to last completion.
    pub wall: Duration,
    /// Sustained completion throughput over `wall`.
    pub jobs_per_sec: f64,
    /// Median submission-to-completion latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst-case latency, nanoseconds.
    pub max_ns: u64,
    /// Requests whose scenario was warm in the artifact cache.
    pub cache_hits: u64,
    /// Requests that paid (or shared) a scenario build.
    pub cache_misses: u64,
}

impl LoadReport {
    /// Warm-cache fraction of all completed requests (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Drives `requests` requests from `mix` at `rate_per_sec` (0 =
/// saturating — see [`crate::daemon`] for the two pacing modes), waits for every admitted
/// request, and reports throughput, latency percentiles and cache
/// behaviour. Fully deterministic in its request *sequence* given
/// `seed`; timing numbers are of course host-dependent.
///
/// # Panics
///
/// Panics if `mix` is empty.
pub fn open_loop(
    daemon: &Daemon,
    mix: &LoadMix,
    rate_per_sec: f64,
    requests: usize,
    seed: u64,
) -> LoadReport {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut outstanding: VecDeque<Ticket> = VecDeque::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(requests);
    let mut rejected = 0u64;
    let mut accepted = 0u64;
    let start = Instant::now();
    let mut next_arrival = Duration::ZERO;

    for _ in 0..requests {
        let req = mix.sample(&mut rng);
        if rate_per_sec > 0.0 {
            // Poisson arrivals: exponential gap at the mean rate.
            let gap = -(1.0 - rng.next_f64()).ln() / rate_per_sec;
            next_arrival += Duration::from_secs_f64(gap);
            let elapsed = start.elapsed();
            if next_arrival > elapsed {
                std::thread::sleep(next_arrival - elapsed);
            }
            match daemon.submit(req) {
                Ok(ticket) => {
                    accepted += 1;
                    outstanding.push_back(ticket);
                }
                Err(_) => rejected += 1,
            }
        } else {
            // Saturating: never shed; when the queue is full, wait out
            // the oldest in-flight request (guaranteeing the queue made
            // progress) and retry.
            loop {
                match daemon.submit(req.clone()) {
                    Ok(ticket) => {
                        accepted += 1;
                        outstanding.push_back(ticket);
                        break;
                    }
                    Err(Rejected::Overloaded { .. }) => match outstanding.pop_front() {
                        Some(ticket) => completions.push(ticket.wait()),
                        None => std::thread::yield_now(),
                    },
                    Err(Rejected::ShuttingDown) => {
                        rejected += 1;
                        break;
                    }
                }
            }
        }
    }
    for ticket in outstanding {
        completions.push(ticket.wait());
    }
    let wall = start.elapsed();

    let failed = completions.iter().filter(|c| c.response.is_err()).count() as u64;
    let cache_hits = completions.iter().filter(|c| c.cache_hit).count() as u64;
    let mut latencies: Vec<u64> = completions.iter().map(|c| c.latency.as_nanos() as u64).collect();
    latencies.sort_unstable();
    let completed = completions.len() as u64 - failed;
    LoadReport {
        offered: requests as u64,
        accepted,
        rejected,
        completed,
        failed,
        wall,
        jobs_per_sec: completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_ns: percentile(&latencies, 50.0),
        p99_ns: percentile(&latencies, 99.0),
        max_ns: latencies.last().copied().unwrap_or(0),
        cache_hits,
        cache_misses: completions.len() as u64 - cache_hits,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() as f64 * p / 100.0).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sampling_is_deterministic_and_reseeded() {
        let mix = standard_mix();
        assert_eq!(mix.len(), 5);
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..32 {
            let ra = mix.sample(&mut a);
            let rb = mix.sample(&mut b);
            assert_eq!(ra.key(), rb.key());
            assert_eq!(ra.label(), rb.label());
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
