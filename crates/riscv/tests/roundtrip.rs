//! Encode/decode round-trip property tests over the whole ISA.

use proptest::prelude::*;
use terasim_riscv::{
    decode, AluOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpFmt, FpOp, FpUnOp, Inst, LoadOp,
    MulDivOp, PvOp, Reg, StoreOp, VfOp,
};

fn reg() -> impl Strategy<Value = Reg> {
    (0u32..32).prop_map(Reg::from_num)
}

fn i_imm() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn b_off() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn j_off() -> impl Strategy<Value = i32> {
    ((-(1 << 19))..(1 << 19)).prop_map(|x: i32| x * 2)
}

fn fp_fmt() -> impl Strategy<Value = FpFmt> {
    prop_oneof![Just(FpFmt::S), Just(FpFmt::H)]
}

fn pv_op() -> impl Strategy<Value = PvOp> {
    prop_oneof![
        Just(PvOp::AddH),
        Just(PvOp::AddB),
        Just(PvOp::SubH),
        Just(PvOp::SubB),
        Just(PvOp::Mac),
        Just(PvOp::Msu),
        Just(PvOp::DotspH),
        Just(PvOp::SdotspH),
    ]
}

fn any_inst() -> impl Strategy<Value = Inst> {
    let alu_imm = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Or),
        Just(AluOp::And),
    ];
    let alu =
        prop_oneof![alu_imm.clone(), Just(AluOp::Sub), Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra),];
    let shift_op = prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)];
    let muldiv = prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
    ];
    let branch = prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ];
    let load = prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
    ];
    let store = prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)];
    let amo = prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ];
    let csr_op = prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)];
    let csr_src = prop_oneof![reg().prop_map(CsrSrc::Reg), (0u8..32).prop_map(CsrSrc::Imm),];
    let fp_op = prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::Min),
        Just(FpOp::Max),
        Just(FpOp::SgnJ),
        Just(FpOp::SgnJN),
        Just(FpOp::SgnJX),
    ];
    let fma_op = prop_oneof![Just(FmaOp::Madd), Just(FmaOp::Msub), Just(FmaOp::Nmadd), Just(FmaOp::Nmsub),];
    let fp_cmp = prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)];
    let vf_op = prop_oneof![
        Just(VfOp::AddH),
        Just(VfOp::SubH),
        Just(VfOp::MulH),
        Just(VfOp::MacH),
        Just(VfOp::DotpExSH),
        Just(VfOp::NDotpExSH),
        Just(VfOp::CdotpExSH),
        Just(VfOp::CdotpExCSH),
        Just(VfOp::DotpExHB),
        Just(VfOp::NDotpExHB),
        Just(VfOp::CpkAHS),
        Just(VfOp::CvtHBLo),
        Just(VfOp::CvtHBHi),
        Just(VfOp::CvtBH),
        Just(VfOp::SwapH),
        Just(VfOp::SwapB),
        Just(VfOp::CmacB),
        Just(VfOp::CmacConjB),
    ];

    prop_oneof![
        (reg(), any::<i32>()).prop_map(|(rd, v)| Inst::Lui { rd, imm: v & !0xfffi32 }),
        (reg(), any::<i32>()).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v & !0xfffi32 }),
        (reg(), j_off()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (reg(), reg(), i_imm()).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (branch, reg(), reg(), b_off()).prop_map(|(op, rs1, rs2, offset)| Inst::Branch {
            op,
            rs1,
            rs2,
            offset
        }),
        (load, reg(), reg(), i_imm(), any::<bool>()).prop_map(|(op, rd, rs1, offset, post_inc)| Inst::Load {
            op,
            rd,
            rs1,
            offset,
            post_inc
        }),
        (store, reg(), reg(), i_imm(), any::<bool>())
            .prop_map(|(op, rs1, rs2, offset, post_inc)| Inst::Store { op, rs1, rs2, offset, post_inc }),
        (alu_imm, reg(), reg(), i_imm()).prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (shift_op, reg(), reg(), 0i32..32).prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (alu, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        (muldiv, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv { op, rd, rs1, rs2 }),
        (reg(), reg()).prop_map(|(rd, rs1)| Inst::LrW { rd, rs1 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Inst::ScW { rd, rs1, rs2 }),
        (amo, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Amo { op, rd, rs1, rs2 }),
        (csr_op, reg(), csr_src, 0u16..0x1000).prop_map(|(op, rd, src, csr)| Inst::Csr { op, rd, src, csr }),
        (fp_op, fp_fmt(), reg(), reg(), reg()).prop_map(|(op, fmt, rd, rs1, rs2)| Inst::FpArith {
            op,
            fmt,
            rd,
            rs1,
            rs2
        }),
        (fp_fmt(), reg(), reg()).prop_map(|(fmt, rd, rs1)| Inst::FpUn { op: FpUnOp::Sqrt, fmt, rd, rs1 }),
        (fp_fmt(), reg(), reg()).prop_map(|(fmt, rd, rs1)| Inst::FpUn {
            op: FpUnOp::CvtWFromFp,
            fmt,
            rd,
            rs1
        }),
        (fp_fmt(), reg(), reg()).prop_map(|(fmt, rd, rs1)| Inst::FpUn {
            op: FpUnOp::CvtFpFromW,
            fmt,
            rd,
            rs1
        }),
        (reg(), reg()).prop_map(|(rd, rs1)| Inst::FpUn { op: FpUnOp::CvtSFromH, fmt: FpFmt::S, rd, rs1 }),
        (reg(), reg()).prop_map(|(rd, rs1)| Inst::FpUn { op: FpUnOp::CvtHFromS, fmt: FpFmt::H, rd, rs1 }),
        (fma_op, fp_fmt(), reg(), reg(), reg(), reg()).prop_map(|(op, fmt, rd, rs1, rs2, rs3)| Inst::FpFma {
            op,
            fmt,
            rd,
            rs1,
            rs2,
            rs3
        }),
        (fp_cmp, fp_fmt(), reg(), reg(), reg()).prop_map(|(op, fmt, rd, rs1, rs2)| Inst::FpCmp {
            op,
            fmt,
            rd,
            rs1,
            rs2
        }),
        (vf_op, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Vf { op, rd, rs1, rs2 }),
        (pv_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Pv { op, rd, rs1, rs2 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Wfi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Every constructible instruction encodes to a word that decodes back
    /// to itself.
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let word = inst.encode();
        let back = decode(word);
        prop_assert_eq!(back, Ok(inst), "word {:#010x}", word);
    }

    /// Disassembly is total and non-empty for every instruction.
    #[test]
    fn disassembly_is_nonempty(inst in any_inst()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    /// Decoding is a function: the same word never decodes differently, and
    /// re-encoding a decoded word reproduces the canonical word.
    #[test]
    fn decode_encode_is_canonical(inst in any_inst()) {
        let word = inst.encode();
        let decoded = decode(word).unwrap();
        prop_assert_eq!(decoded.encode(), word);
    }
}
