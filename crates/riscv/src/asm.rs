//! A label-aware programmatic assembler.
//!
//! The original flow cross-compiles C kernels; here the kernel generators
//! ([`terasim-kernels`]) drive this assembler directly from Rust. It
//! supports forward references via [`Label`]s, validates encoding ranges at
//! [`Assembler::finish`], and emits plain `u32` words ready for a
//! [`Segment`](crate::Segment).

use core::fmt;
use std::collections::HashMap;

use crate::inst::*;
use crate::Reg;

/// A branch/jump target. Created unbound by [`Assembler::new_label`] and
/// attached to an address by [`Assembler::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced when finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The unbound label.
        label: Label,
    },
    /// A branch target is further than the B-type ±4 KiB range.
    BranchOutOfRange {
        /// PC of the branch instruction.
        at: u32,
        /// Resolved target address.
        target: u32,
    },
    /// A jump target is further than the J-type ±1 MiB range.
    JumpOutOfRange {
        /// PC of the jump instruction.
        at: u32,
        /// Resolved target address.
        target: u32,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label {label:?} was never bound"),
            AsmError::BranchOutOfRange { at, target } => {
                write!(f, "branch at {at:#010x} cannot reach {target:#010x}")
            }
            AsmError::JumpOutOfRange { at, target } => {
                write!(f, "jump at {at:#010x} cannot reach {target:#010x}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum Fixup {
    Branch(Label),
    Jump(Label),
}

/// Builds a text section instruction by instruction.
///
/// Every emit method appends one instruction (pseudo-instructions such as
/// [`li`](Assembler::li) may append two) and returns `&mut self` for
/// chaining where convenient.
///
/// # Examples
///
/// ```
/// use terasim_riscv::{Assembler, Reg};
///
/// let mut a = Assembler::new(0x8000_0000);
/// a.li(Reg::T0, 10);
/// let top = a.new_label();
/// a.bind(top);
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, top);
/// a.wfi();
/// let words = a.finish()?;
/// assert_eq!(words.len(), 4); // li fits addi; loop body; branch; wfi
/// # Ok::<(), terasim_riscv::AsmError>(())
/// ```
#[derive(Debug)]
pub struct Assembler {
    base: u32,
    insts: Vec<Inst>,
    fixups: HashMap<usize, Fixup>,
    labels: Vec<Option<u32>>,
}

impl Assembler {
    /// Creates an assembler whose first instruction lands at `base`.
    pub fn new(base: u32) -> Self {
        assert!(base.is_multiple_of(4), "text base must be word aligned");
        Self { base, insts: Vec::new(), fixups: HashMap::new(), labels: Vec::new() }
    }

    /// Address of the next instruction to be emitted.
    pub fn pc(&self) -> u32 {
        self.base + 4 * u32::try_from(self.insts.len()).expect("text fits the address space")
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current PC.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let pc = self.pc();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(pc);
    }

    /// Appends an arbitrary instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Resolves labels and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if a referenced label is unbound or a resolved
    /// offset exceeds its encoding range.
    pub fn finish(self) -> Result<Vec<u32>, AsmError> {
        let mut insts = self.insts;
        for (&idx, &fixup) in &self.fixups {
            let at = self.base + 4 * u32::try_from(idx).expect("index fits");
            let label = match fixup {
                Fixup::Branch(l) | Fixup::Jump(l) => l,
            };
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel { label })?;
            let offset = target.wrapping_sub(at) as i32;
            match (&mut insts[idx], fixup) {
                (Inst::Branch { offset: o, .. }, Fixup::Branch(_)) => {
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { at, target });
                    }
                    *o = offset;
                }
                (Inst::Jal { offset: o, .. }, Fixup::Jump(_)) => {
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { at, target });
                    }
                    *o = offset;
                }
                _ => unreachable!("fixup attached to a non-control-flow instruction"),
            }
        }
        Ok(insts.iter().map(Inst::encode).collect())
    }

    fn branch_to(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.fixups.insert(self.insts.len(), Fixup::Branch(label));
        self.inst(Inst::Branch { op, rs1, rs2, offset: 0 })
    }

    // --- RV32I -----------------------------------------------------------

    /// `lui rd, imm20` (`imm` is the already-shifted 32-bit value).
    pub fn lui(&mut self, rd: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::Lui { rd, imm })
    }

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Add, rd, rs1, imm })
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::And, rd, rs1, imm })
    }

    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Or, rd, rs1, imm })
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Xor, rd, rs1, imm })
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Sll, rd, rs1, imm: shamt })
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Srl, rd, rs1, imm: shamt })
    }

    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Sra, rd, rs1, imm: shamt })
    }

    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OpImm { op: AluOp::Slt, rd, rs1, imm })
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::Add, rd, rs1, rs2 })
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::Sub, rd, rs1, rs2 })
    }

    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::Sll, rd, rs1, rs2 })
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::And, rd, rs1, rs2 })
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::Or, rd, rs1, rs2 })
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::Xor, rd, rs1, rs2 })
    }

    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Op { op: AluOp::Sltu, rd, rs1, rs2 })
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv { op: MulDivOp::Mul, rd, rs1, rs2 })
    }

    /// `divu rd, rs1, rs2`
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv { op: MulDivOp::Divu, rd, rs1, rs2 })
    }

    /// `remu rd, rs1, rs2`
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::MulDiv { op: MulDivOp::Remu, rd, rs1, rs2 })
    }

    // --- loads / stores ---------------------------------------------------

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lw, rd, rs1, offset, post_inc: false })
    }

    /// `lh rd, offset(rs1)`
    pub fn lh(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lh, rd, rs1, offset, post_inc: false })
    }

    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lhu, rd, rs1, offset, post_inc: false })
    }

    /// `lb rd, offset(rs1)`
    pub fn lb(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lb, rd, rs1, offset, post_inc: false })
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lbu, rd, rs1, offset, post_inc: false })
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store { op: StoreOp::Sw, rs1, rs2, offset, post_inc: false })
    }

    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store { op: StoreOp::Sh, rs1, rs2, offset, post_inc: false })
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store { op: StoreOp::Sb, rs1, rs2, offset, post_inc: false })
    }

    /// `p.lw rd, offset(rs1!)` — load word, then `rs1 += offset`.
    pub fn p_lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lw, rd, rs1, offset, post_inc: true })
    }

    /// `p.lh rd, offset(rs1!)`
    pub fn p_lh(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lh, rd, rs1, offset, post_inc: true })
    }

    /// `p.lhu rd, offset(rs1!)`
    pub fn p_lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Load { op: LoadOp::Lhu, rd, rs1, offset, post_inc: true })
    }

    /// `p.sw rs2, offset(rs1!)`
    pub fn p_sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store { op: StoreOp::Sw, rs1, rs2, offset, post_inc: true })
    }

    /// `p.sh rs2, offset(rs1!)`
    pub fn p_sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.inst(Inst::Store { op: StoreOp::Sh, rs1, rs2, offset, post_inc: true })
    }

    // --- control flow -----------------------------------------------------

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch_to(BranchOp::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch_to(BranchOp::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch_to(BranchOp::Lt, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch_to(BranchOp::Ge, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Self {
        self.branch_to(BranchOp::Ltu, rs1, rs2, label)
    }

    /// `beqz rs1, label`
    pub fn beqz(&mut self, rs1: Reg, label: Label) -> &mut Self {
        self.beq(rs1, Reg::Zero, label)
    }

    /// `bnez rs1, label`
    pub fn bnez(&mut self, rs1: Reg, label: Label) -> &mut Self {
        self.bne(rs1, Reg::Zero, label)
    }

    /// `j label` (jal zero)
    pub fn j(&mut self, label: Label) -> &mut Self {
        self.jal(Reg::Zero, label)
    }

    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, label: Label) -> &mut Self {
        self.fixups.insert(self.insts.len(), Fixup::Jump(label));
        self.inst(Inst::Jal { rd, offset: 0 })
    }

    /// `call label` (jal ra)
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.jal(Reg::Ra, label)
    }

    /// `ret` (jalr zero, 0(ra))
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Jalr { rd: Reg::Zero, rs1: Reg::Ra, offset: 0 })
    }

    // --- system ------------------------------------------------------------

    /// `csrr rd, csr` (csrrs rd, csr, zero)
    pub fn csrr(&mut self, rd: Reg, csr: u16) -> &mut Self {
        self.inst(Inst::Csr { op: CsrOp::Rs, rd, src: CsrSrc::Reg(Reg::Zero), csr })
    }

    /// `wfi`
    pub fn wfi(&mut self) -> &mut Self {
        self.inst(Inst::Wfi)
    }

    /// `ecall`
    pub fn ecall(&mut self) -> &mut Self {
        self.inst(Inst::Ecall)
    }

    // --- atomics ------------------------------------------------------------

    /// `amoadd.w rd, rs2, (rs1)`
    pub fn amoadd_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Amo { op: AmoOp::Add, rd, rs1, rs2 })
    }

    /// `amoswap.w rd, rs2, (rs1)`
    pub fn amoswap_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Amo { op: AmoOp::Swap, rd, rs1, rs2 })
    }

    // --- scalar FP (zhinx/zfinx) --------------------------------------------

    /// `fadd.h rd, rs1, rs2`
    pub fn fadd_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::Add, fmt: FpFmt::H, rd, rs1, rs2 })
    }

    /// `fsub.h rd, rs1, rs2`
    pub fn fsub_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::Sub, fmt: FpFmt::H, rd, rs1, rs2 })
    }

    /// `fmul.h rd, rs1, rs2`
    pub fn fmul_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::Mul, fmt: FpFmt::H, rd, rs1, rs2 })
    }

    /// `fdiv.h rd, rs1, rs2`
    pub fn fdiv_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::Div, fmt: FpFmt::H, rd, rs1, rs2 })
    }

    /// `fsqrt.h rd, rs1`
    pub fn fsqrt_h(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FpUn { op: FpUnOp::Sqrt, fmt: FpFmt::H, rd, rs1 })
    }

    /// `fmadd.h rd, rs1, rs2, rs3` — `rd = rs1*rs2 + rs3`
    pub fn fmadd_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) -> &mut Self {
        self.inst(Inst::FpFma { op: FmaOp::Madd, fmt: FpFmt::H, rd, rs1, rs2, rs3 })
    }

    /// `fmsub.h rd, rs1, rs2, rs3` — `rd = rs1*rs2 - rs3`
    pub fn fmsub_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) -> &mut Self {
        self.inst(Inst::FpFma { op: FmaOp::Msub, fmt: FpFmt::H, rd, rs1, rs2, rs3 })
    }

    /// `fnmsub.h rd, rs1, rs2, rs3` — `rd = -(rs1*rs2) + rs3`
    pub fn fnmsub_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) -> &mut Self {
        self.inst(Inst::FpFma { op: FmaOp::Nmsub, fmt: FpFmt::H, rd, rs1, rs2, rs3 })
    }

    /// `fsgnjn.h rd, rs1, rs1` (pseudo `fneg.h`)
    pub fn fneg_h(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::SgnJN, fmt: FpFmt::H, rd, rs1, rs2: rs1 })
    }

    /// `fcvt.h.s rd, rs1`
    pub fn fcvt_h_s(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FpUn { op: FpUnOp::CvtHFromS, fmt: FpFmt::H, rd, rs1 })
    }

    /// `fcvt.s.h rd, rs1`
    pub fn fcvt_s_h(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::FpUn { op: FpUnOp::CvtSFromH, fmt: FpFmt::S, rd, rs1 })
    }

    /// `fadd.s rd, rs1, rs2`
    pub fn fadd_s(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::Add, fmt: FpFmt::S, rd, rs1, rs2 })
    }

    /// `fdiv.s rd, rs1, rs2`
    pub fn fdiv_s(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::FpArith { op: FpOp::Div, fmt: FpFmt::S, rd, rs1, rs2 })
    }

    // --- SmallFloat SIMD ----------------------------------------------------

    /// `vfadd.h rd, rs1, rs2`
    pub fn vfadd_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::AddH, rd, rs1, rs2 })
    }

    /// `vfmac.h rd, rs1, rs2` (accumulating)
    pub fn vfmac_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::MacH, rd, rs1, rs2 })
    }

    /// `vfdotpex.s.h rd, rs1, rs2` (accumulating)
    pub fn vfdotpex_s_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::DotpExSH, rd, rs1, rs2 })
    }

    /// `vfndotpex.s.h rd, rs1, rs2` (accumulating)
    pub fn vfndotpex_s_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::NDotpExSH, rd, rs1, rs2 })
    }

    /// `vfcdotpex.s.h rd, rs1, rs2` (accumulating complex MAC)
    pub fn vfcdotpex_s_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CdotpExSH, rd, rs1, rs2 })
    }

    /// `vfcdotpex.c.s.h rd, rs1, rs2` (accumulating conjugated complex MAC)
    pub fn vfcdotpex_c_s_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CdotpExCSH, rd, rs1, rs2 })
    }

    /// `vfdotpex.h.b rd, rs1, rs2` (accumulating)
    pub fn vfdotpex_h_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::DotpExHB, rd, rs1, rs2 })
    }

    /// `vfndotpex.h.b rd, rs1, rs2` (accumulating)
    pub fn vfndotpex_h_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::NDotpExHB, rd, rs1, rs2 })
    }

    /// `vfcpka.h.s rd, rs1, rs2` — pack two f32 into 2×f16.
    pub fn vfcpka_h_s(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CpkAHS, rd, rs1, rs2 })
    }

    /// `vfcvt.h.b.lo rd, rs1`
    pub fn vfcvt_h_b_lo(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CvtHBLo, rd, rs1, rs2: Reg::Zero })
    }

    /// `vfcvt.h.b.hi rd, rs1`
    pub fn vfcvt_h_b_hi(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CvtHBHi, rd, rs1, rs2: Reg::Zero })
    }

    /// `vfcvt.b.h rd, rs1`
    pub fn vfcvt_b_h(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CvtBH, rd, rs1, rs2: Reg::Zero })
    }

    /// `pv.swap.h rd, rs1`
    pub fn pv_swap_h(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::SwapH, rd, rs1, rs2: Reg::Zero })
    }

    /// `pv.swap.b rd, rs1`
    pub fn pv_swap_b(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::SwapB, rd, rs1, rs2: Reg::Zero })
    }

    /// `pv.cmac.b rd, rs1, rs2` (accumulating complex f8 MAC)
    pub fn pv_cmac_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CmacB, rd, rs1, rs2 })
    }

    /// `pv.cmac.c.b rd, rs1, rs2` (accumulating conjugated complex f8 MAC)
    pub fn pv_cmac_c_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Vf { op: VfOp::CmacConjB, rd, rs1, rs2 })
    }

    // --- Xpulpimg integer MAC / SIMD ------------------------------------------

    /// `p.mac rd, rs1, rs2` — `rd += rs1 * rs2` (accumulating)
    pub fn p_mac(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Pv { op: PvOp::Mac, rd, rs1, rs2 })
    }

    /// `p.msu rd, rs1, rs2` — `rd -= rs1 * rs2` (accumulating)
    pub fn p_msu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Pv { op: PvOp::Msu, rd, rs1, rs2 })
    }

    /// `pv.add.h rd, rs1, rs2` — lanewise 2×i16 add
    pub fn pv_add_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Pv { op: PvOp::AddH, rd, rs1, rs2 })
    }

    /// `pv.sub.h rd, rs1, rs2` — lanewise 2×i16 subtract
    pub fn pv_sub_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Pv { op: PvOp::SubH, rd, rs1, rs2 })
    }

    /// `pv.sdotsp.h rd, rs1, rs2` — accumulating signed 2×i16 dot product
    pub fn pv_sdotsp_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Pv { op: PvOp::SdotspH, rd, rs1, rs2 })
    }

    // --- pseudo-instructions ------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.addi(Reg::Zero, Reg::Zero, 0)
    }

    /// `mv rd, rs1`
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    /// `li rd, value` — loads a 32-bit constant in one or two instructions.
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        if (-2048..=2047).contains(&value) {
            return self.addi(rd, Reg::Zero, value);
        }
        // lui + addi: round the upper part so the sign-extended addi lands
        // exactly on value.
        let lo = (value << 20) >> 20;
        let hi = value.wrapping_sub(lo) as u32;
        self.lui(rd, hi as i32);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use crate::decode;

    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new(0x100);
        let fwd = a.new_label();
        let back = a.new_label();
        a.bind(back);
        a.nop();
        a.beqz(Reg::T0, fwd); // at 0x104, target 0x10c: offset +8
        a.j(back); // at 0x108, target 0x100: offset -8
        a.bind(fwd);
        a.ret();
        let words = a.finish().unwrap();
        assert_eq!(
            decode(words[1]).unwrap(),
            Inst::Branch { op: BranchOp::Eq, rs1: Reg::T0, rs2: Reg::Zero, offset: 8 }
        );
        assert_eq!(decode(words[2]).unwrap(), Inst::Jal { rd: Reg::Zero, offset: -8 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.j(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    fn branch_out_of_range_is_an_error() {
        let mut a = Assembler::new(0);
        let far = a.new_label();
        a.beqz(Reg::T0, far);
        for _ in 0..2000 {
            a.nop();
        }
        a.bind(far);
        a.ret();
        assert!(matches!(a.finish(), Err(AsmError::BranchOutOfRange { .. })));
    }

    #[test]
    fn li_covers_full_range() {
        for value in [
            0,
            1,
            -1,
            2047,
            -2048,
            2048,
            -2049,
            0x1234_5678,
            -0x1234_5678,
            i32::MIN,
            i32::MAX,
            0x7ff,
            0x800,
            0xfffff000u32 as i32,
        ] {
            let mut a = Assembler::new(0);
            a.li(Reg::T0, value);
            let words = a.finish().unwrap();
            // Emulate the one or two instructions.
            let mut t0: i32 = 0;
            for w in words {
                match decode(w).unwrap() {
                    Inst::Lui { imm, .. } => t0 = imm,
                    Inst::OpImm { op: AluOp::Add, rs1, imm, .. } => {
                        t0 = if rs1 == Reg::Zero { imm } else { t0.wrapping_add(imm) };
                    }
                    other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(t0, value, "li {value}");
        }
    }

    #[test]
    fn pc_advances_by_four() {
        let mut a = Assembler::new(0x8000_0000);
        assert_eq!(a.pc(), 0x8000_0000);
        a.nop().nop();
        assert_eq!(a.pc(), 0x8000_0008);
        assert_eq!(a.len(), 2);
    }
}
