//! Integer register file names.

use core::fmt;

/// One of the 32 RV32 integer registers.
///
/// Under `zfinx`/`zhinx` the same registers hold floating-point operands, so
/// there is no separate FP register type. The enum discriminants equal the
/// architectural register numbers.
///
/// # Examples
///
/// ```
/// use terasim_riscv::Reg;
///
/// assert_eq!(Reg::A0 as u32, 10);
/// assert_eq!(Reg::from_num(10), Reg::A0);
/// assert_eq!(Reg::A0.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the ABI mnemonics are self-describing
pub enum Reg {
    Zero = 0,
    Ra = 1,
    Sp = 2,
    Gp = 3,
    Tp = 4,
    T0 = 5,
    T1 = 6,
    T2 = 7,
    S0 = 8,
    S1 = 9,
    A0 = 10,
    A1 = 11,
    A2 = 12,
    A3 = 13,
    A4 = 14,
    A5 = 15,
    A6 = 16,
    A7 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    S8 = 24,
    S9 = 25,
    S10 = 26,
    S11 = 27,
    T3 = 28,
    T4 = 29,
    T5 = 30,
    T6 = 31,
}

const NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5", "a6",
    "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
];

const ALL: [Reg; 32] = [
    Reg::Zero,
    Reg::Ra,
    Reg::Sp,
    Reg::Gp,
    Reg::Tp,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::S0,
    Reg::S1,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
    Reg::S11,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
];

impl Reg {
    /// All 32 registers in architectural order.
    pub const ALL: [Reg; 32] = ALL;

    /// Returns the register with the given architectural number.
    ///
    /// # Panics
    ///
    /// Panics if `num >= 32`.
    pub const fn from_num(num: u32) -> Reg {
        assert!(num < 32, "register number out of range");
        ALL[num as usize]
    }

    /// Architectural register number (0..=31).
    pub const fn num(self) -> u32 {
        self as u32
    }

    /// Register file index as `usize`, for state arrays.
    pub const fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(NAMES[self.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip() {
        for n in 0..32 {
            assert_eq!(Reg::from_num(n).num(), n);
        }
    }

    #[test]
    fn abi_names() {
        assert_eq!(Reg::Zero.to_string(), "zero");
        assert_eq!(Reg::Sp.to_string(), "sp");
        assert_eq!(Reg::T6.to_string(), "t6");
        assert_eq!(Reg::S11.to_string(), "s11");
    }
}
