//! Flat binary images — the loadable artifact the assembler produces and
//! the simulator consumes (in place of ELF files).

use core::fmt;

/// A contiguous chunk of initialized memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Base address of the segment.
    pub base: u32,
    /// Raw contents (little-endian byte order, as on the bus).
    pub bytes: Vec<u8>,
}

impl Segment {
    /// Creates a segment from 32-bit words (little-endian).
    pub fn from_words(base: u32, words: &[u32]) -> Self {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Self { base, bytes }
    }

    /// End address (exclusive).
    pub fn end(&self) -> u32 {
        self.base + u32::try_from(self.bytes.len()).expect("segment fits the address space")
    }

    /// Returns `true` if the segment overlaps `other`.
    pub fn overlaps(&self, other: &Segment) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// A complete program image: text/data segments plus the entry point.
///
/// # Examples
///
/// ```
/// use terasim_riscv::{Image, Segment};
///
/// let mut image = Image::new(0x8000_0000);
/// image.push_segment(Segment::from_words(0x8000_0000, &[0x0000_0013]));
/// assert_eq!(image.entry(), 0x8000_0000);
/// assert_eq!(image.segments().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    entry: u32,
    segments: Vec<Segment>,
}

impl Image {
    /// Creates an empty image with the given entry point.
    pub fn new(entry: u32) -> Self {
        Self { entry, segments: Vec::new() }
    }

    /// The address execution starts at.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// All segments, in insertion order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Appends a segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment overlaps an existing one — overlapping
    /// initialized memory is always a build bug.
    pub fn push_segment(&mut self, segment: Segment) {
        for existing in &self.segments {
            assert!(
                !existing.overlaps(&segment),
                "segment at {:#010x}..{:#010x} overlaps existing {:#010x}..{:#010x}",
                segment.base,
                segment.end(),
                existing.base,
                existing.end()
            );
        }
        self.segments.push(segment);
    }

    /// Total initialized bytes across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }

    /// Returns `true` if the image has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "image: entry {:#010x}, {} segment(s)", self.entry, self.segments.len())?;
        for s in &self.segments {
            writeln!(f, "  {:#010x}..{:#010x} ({} bytes)", s.base, s.end(), s.bytes.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_detection() {
        let a = Segment::from_words(0x100, &[0, 0]);
        let b = Segment::from_words(0x104, &[0]);
        let c = Segment::from_words(0x108, &[0]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn image_rejects_overlap() {
        let mut img = Image::new(0);
        img.push_segment(Segment::from_words(0, &[1, 2]));
        img.push_segment(Segment::from_words(4, &[3]));
    }
}
