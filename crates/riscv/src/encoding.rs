//! Machine-word encodings.
//!
//! Standard RV32IMA, Zfinx/Zhinx scalar FP and the FMA opcodes use the
//! ratified RISC-V layouts. The PULP extensions occupy the custom opcode
//! spaces:
//!
//! | Space | Opcode | Contents |
//! |---|---|---|
//! | custom-0 | `0001011` | post-increment loads (I-type, load `funct3`) |
//! | custom-1 | `0101011` | post-increment stores (S-type, store `funct3`) |
//! | custom-3 | `1111011` | SmallFloat/MiniFloat SIMD + shuffles (R-type, [`VfOp`] in `funct7`) |
//!
//! The upstream Xpulpimg/SmallFloat encodings are not publicly ratified;
//! these layouts are this project's own, chosen to round-trip exactly
//! through [`Inst::encode`] and [`decode`](crate::decode).

use crate::inst::*;
use crate::Reg;

// Major opcodes.
pub(crate) const OP_LUI: u32 = 0b011_0111;
pub(crate) const OP_AUIPC: u32 = 0b001_0111;
pub(crate) const OP_JAL: u32 = 0b110_1111;
pub(crate) const OP_JALR: u32 = 0b110_0111;
pub(crate) const OP_BRANCH: u32 = 0b110_0011;
pub(crate) const OP_LOAD: u32 = 0b000_0011;
pub(crate) const OP_STORE: u32 = 0b010_0011;
pub(crate) const OP_IMM: u32 = 0b001_0011;
pub(crate) const OP_OP: u32 = 0b011_0011;
pub(crate) const OP_MISC_MEM: u32 = 0b000_1111;
pub(crate) const OP_SYSTEM: u32 = 0b111_0011;
pub(crate) const OP_AMO: u32 = 0b010_1111;
pub(crate) const OP_FP: u32 = 0b101_0011;
pub(crate) const OP_FMADD: u32 = 0b100_0011;
pub(crate) const OP_FMSUB: u32 = 0b100_0111;
pub(crate) const OP_FNMSUB: u32 = 0b100_1011;
pub(crate) const OP_FNMADD: u32 = 0b100_1111;
pub(crate) const OP_CUSTOM0: u32 = 0b000_1011;
pub(crate) const OP_CUSTOM1: u32 = 0b010_1011;
pub(crate) const OP_CUSTOM3: u32 = 0b111_1011;

pub(crate) const WORD_ECALL: u32 = 0x0000_0073;
pub(crate) const WORD_EBREAK: u32 = 0x0010_0073;
pub(crate) const WORD_WFI: u32 = 0x1050_0073;
pub(crate) const WORD_FENCE: u32 = 0x0ff0_000f;

pub(crate) fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Eq => 0b000,
        BranchOp::Ne => 0b001,
        BranchOp::Lt => 0b100,
        BranchOp::Ge => 0b101,
        BranchOp::Ltu => 0b110,
        BranchOp::Geu => 0b111,
    }
}

pub(crate) fn load_funct3(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb => 0b000,
        LoadOp::Lh => 0b001,
        LoadOp::Lw => 0b010,
        LoadOp::Lbu => 0b100,
        LoadOp::Lhu => 0b101,
    }
}

pub(crate) fn store_funct3(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 0b000,
        StoreOp::Sh => 0b001,
        StoreOp::Sw => 0b010,
    }
}

/// `(funct3, funct7)` of an OP-format ALU instruction.
pub(crate) fn alu_functs(op: AluOp) -> (u32, u32) {
    match op {
        AluOp::Add => (0b000, 0),
        AluOp::Sub => (0b000, 0b010_0000),
        AluOp::Sll => (0b001, 0),
        AluOp::Slt => (0b010, 0),
        AluOp::Sltu => (0b011, 0),
        AluOp::Xor => (0b100, 0),
        AluOp::Srl => (0b101, 0),
        AluOp::Sra => (0b101, 0b010_0000),
        AluOp::Or => (0b110, 0),
        AluOp::And => (0b111, 0),
    }
}

pub(crate) fn muldiv_funct3(op: MulDivOp) -> u32 {
    match op {
        MulDivOp::Mul => 0b000,
        MulDivOp::Mulh => 0b001,
        MulDivOp::Mulhsu => 0b010,
        MulDivOp::Mulhu => 0b011,
        MulDivOp::Div => 0b100,
        MulDivOp::Divu => 0b101,
        MulDivOp::Rem => 0b110,
        MulDivOp::Remu => 0b111,
    }
}

pub(crate) fn amo_funct5(op: AmoOp) -> u32 {
    match op {
        AmoOp::Add => 0b00000,
        AmoOp::Swap => 0b00001,
        AmoOp::Xor => 0b00100,
        AmoOp::Or => 0b01000,
        AmoOp::And => 0b01100,
        AmoOp::Min => 0b10000,
        AmoOp::Max => 0b10100,
        AmoOp::Minu => 0b11000,
        AmoOp::Maxu => 0b11100,
    }
}

pub(crate) const AMO_LR: u32 = 0b00010;
pub(crate) const AMO_SC: u32 = 0b00011;

pub(crate) fn fp_fmt_bits(fmt: FpFmt) -> u32 {
    match fmt {
        FpFmt::S => 0b00,
        FpFmt::H => 0b10,
    }
}

pub(crate) fn pv_funct7(op: PvOp) -> u32 {
    match op {
        PvOp::AddH => 0x00,
        PvOp::AddB => 0x01,
        PvOp::SubH => 0x02,
        PvOp::SubB => 0x03,
        PvOp::Mac => 0x08,
        PvOp::Msu => 0x09,
        PvOp::DotspH => 0x0c,
        PvOp::SdotspH => 0x0d,
    }
}

pub(crate) fn vf_funct7(op: VfOp) -> u32 {
    match op {
        VfOp::AddH => 0x00,
        VfOp::SubH => 0x01,
        VfOp::MulH => 0x02,
        VfOp::MacH => 0x03,
        VfOp::DotpExSH => 0x08,
        VfOp::NDotpExSH => 0x09,
        VfOp::CdotpExSH => 0x0a,
        VfOp::CdotpExCSH => 0x0b,
        VfOp::DotpExHB => 0x0c,
        VfOp::NDotpExHB => 0x0d,
        VfOp::CpkAHS => 0x10,
        VfOp::CvtHBLo => 0x14,
        VfOp::CvtHBHi => 0x15,
        VfOp::CvtBH => 0x16,
        VfOp::SwapH => 0x18,
        VfOp::SwapB => 0x19,
        VfOp::CmacB => 0x1a,
        VfOp::CmacConjB => 0x1b,
    }
}

fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    opcode | (rd.num() << 7) | (funct3 << 12) | (rs1.num() << 15) | (rs2.num() << 20) | (funct7 << 25)
}

fn i_type(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "I-type immediate {imm} out of range");
    opcode | (rd.num() << 7) | (funct3 << 12) | (rs1.num() << 15) | ((imm as u32 & 0xfff) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    assert!((-2048..=2047).contains(&imm), "S-type immediate {imm} out of range");
    let imm = imm as u32 & 0xfff;
    opcode | ((imm & 0x1f) << 7) | (funct3 << 12) | (rs1.num() << 15) | (rs2.num() << 20) | ((imm >> 5) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i32) -> u32 {
    assert!(
        (-4096..=4094).contains(&offset) && offset % 2 == 0,
        "branch offset {offset} out of range or misaligned"
    );
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | (rs1.num() << 15)
        | (rs2.num() << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opcode: u32, rd: Reg, imm: i32) -> u32 {
    assert!(imm as u32 & 0xfff == 0, "U-type immediate must be 4 KiB aligned");
    opcode | (rd.num() << 7) | (imm as u32)
}

fn j_type(opcode: u32, rd: Reg, offset: i32) -> u32 {
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "jump offset {offset} out of range or misaligned"
    );
    let imm = offset as u32;
    opcode
        | (rd.num() << 7)
        | (imm & 0xf_f000)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

impl Inst {
    /// Encodes the instruction as a 32-bit machine word.
    ///
    /// # Panics
    ///
    /// Panics if an immediate or offset does not fit its encoding field
    /// (e.g. a branch offset beyond ±4 KiB). The [`Assembler`](crate::Assembler)
    /// performs checked validation before calling this.
    pub fn encode(&self) -> u32 {
        match *self {
            Inst::Lui { rd, imm } => u_type(OP_LUI, rd, imm),
            Inst::Auipc { rd, imm } => u_type(OP_AUIPC, rd, imm),
            Inst::Jal { rd, offset } => j_type(OP_JAL, rd, offset),
            Inst::Jalr { rd, rs1, offset } => i_type(OP_JALR, 0, rd, rs1, offset),
            Inst::Branch { op, rs1, rs2, offset } => b_type(OP_BRANCH, branch_funct3(op), rs1, rs2, offset),
            Inst::Load { op, rd, rs1, offset, post_inc } => {
                let opcode = if post_inc { OP_CUSTOM0 } else { OP_LOAD };
                i_type(opcode, load_funct3(op), rd, rs1, offset)
            }
            Inst::Store { op, rs1, rs2, offset, post_inc } => {
                let opcode = if post_inc { OP_CUSTOM1 } else { OP_STORE };
                s_type(opcode, store_funct3(op), rs1, rs2, offset)
            }
            Inst::OpImm { op, rd, rs1, imm } => match op {
                AluOp::Sub => panic!("subi does not exist; use addi with negated immediate"),
                AluOp::Sll => {
                    assert!((0..32).contains(&imm), "shift amount out of range");
                    i_type(OP_IMM, 0b001, rd, rs1, imm)
                }
                AluOp::Srl => {
                    assert!((0..32).contains(&imm), "shift amount out of range");
                    i_type(OP_IMM, 0b101, rd, rs1, imm)
                }
                AluOp::Sra => {
                    assert!((0..32).contains(&imm), "shift amount out of range");
                    i_type(OP_IMM, 0b101, rd, rs1, imm | 0x400)
                }
                _ => i_type(OP_IMM, alu_functs(op).0, rd, rs1, imm),
            },
            Inst::Op { op, rd, rs1, rs2 } => {
                let (f3, f7) = alu_functs(op);
                r_type(OP_OP, f3, f7, rd, rs1, rs2)
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => r_type(OP_OP, muldiv_funct3(op), 0b000_0001, rd, rs1, rs2),
            Inst::LrW { rd, rs1 } => r_type(OP_AMO, 0b010, AMO_LR << 2, rd, rs1, Reg::Zero),
            Inst::ScW { rd, rs1, rs2 } => r_type(OP_AMO, 0b010, AMO_SC << 2, rd, rs1, rs2),
            Inst::Amo { op, rd, rs1, rs2 } => r_type(OP_AMO, 0b010, amo_funct5(op) << 2, rd, rs1, rs2),
            Inst::Csr { op, rd, src, csr } => {
                let (funct3, field) = match (op, src) {
                    (CsrOp::Rw, CsrSrc::Reg(r)) => (0b001, r.num()),
                    (CsrOp::Rs, CsrSrc::Reg(r)) => (0b010, r.num()),
                    (CsrOp::Rc, CsrSrc::Reg(r)) => (0b011, r.num()),
                    (CsrOp::Rw, CsrSrc::Imm(i)) => (0b101, u32::from(i) & 0x1f),
                    (CsrOp::Rs, CsrSrc::Imm(i)) => (0b110, u32::from(i) & 0x1f),
                    (CsrOp::Rc, CsrSrc::Imm(i)) => (0b111, u32::from(i) & 0x1f),
                };
                OP_SYSTEM | (rd.num() << 7) | (funct3 << 12) | (field << 15) | (u32::from(csr) << 20)
            }
            Inst::FpArith { op, fmt, rd, rs1, rs2 } => {
                let (funct5, rm) = match op {
                    FpOp::Add => (0b00000, 0b111),
                    FpOp::Sub => (0b00001, 0b111),
                    FpOp::Mul => (0b00010, 0b111),
                    FpOp::Div => (0b00011, 0b111),
                    FpOp::SgnJ => (0b00100, 0b000),
                    FpOp::SgnJN => (0b00100, 0b001),
                    FpOp::SgnJX => (0b00100, 0b010),
                    FpOp::Min => (0b00101, 0b000),
                    FpOp::Max => (0b00101, 0b001),
                };
                r_type(OP_FP, rm, (funct5 << 2) | fp_fmt_bits(fmt), rd, rs1, rs2)
            }
            Inst::FpUn { op, fmt, rd, rs1 } => {
                let (funct5, rs2_field, rm) = match op {
                    FpUnOp::Sqrt => (0b01011, 0, 0b111),
                    FpUnOp::CvtWFromFp => (0b11000, 0, 0b001), // RTZ
                    FpUnOp::CvtFpFromW => (0b11010, 0, 0b111),
                    // fcvt.s.h: dest fmt S, source code H (2); fcvt.h.s: dest H, source S (0).
                    FpUnOp::CvtSFromH => (0b01000, 2, 0b111),
                    FpUnOp::CvtHFromS => (0b01000, 0, 0b111),
                };
                r_type(OP_FP, rm, (funct5 << 2) | fp_fmt_bits(fmt), rd, rs1, Reg::from_num(rs2_field))
            }
            Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
                let opcode = match op {
                    FmaOp::Madd => OP_FMADD,
                    FmaOp::Msub => OP_FMSUB,
                    FmaOp::Nmsub => OP_FNMSUB,
                    FmaOp::Nmadd => OP_FNMADD,
                };
                opcode
                    | (rd.num() << 7)
                    | (0b111 << 12)
                    | (rs1.num() << 15)
                    | (rs2.num() << 20)
                    | (fp_fmt_bits(fmt) << 25)
                    | (rs3.num() << 27)
            }
            Inst::FpCmp { op, fmt, rd, rs1, rs2 } => {
                let rm = match op {
                    FpCmpOp::Le => 0b000,
                    FpCmpOp::Lt => 0b001,
                    FpCmpOp::Eq => 0b010,
                };
                r_type(OP_FP, rm, (0b10100 << 2) | fp_fmt_bits(fmt), rd, rs1, rs2)
            }
            Inst::Vf { op, rd, rs1, rs2 } => r_type(OP_CUSTOM3, 0, vf_funct7(op), rd, rs1, rs2),
            Inst::Pv { op, rd, rs1, rs2 } => r_type(OP_CUSTOM3, 1, pv_funct7(op), rd, rs1, rs2),
            Inst::Fence => WORD_FENCE,
            Inst::Ecall => WORD_ECALL,
            Inst::Ebreak => WORD_EBREAK,
            Inst::Wfi => WORD_WFI,
        }
    }
}
