//! Instruction-set model of the TeraPool Snitch cores.
//!
//! The paper's DUT executes RV32IMAF binaries where floating-point operands
//! live in the *integer* register file (`zfinx`/`zhinx`), extended with the
//! PULP `Xpulpimg` integer/DSP set and the SmallFloat/MiniFloat SIMD sets.
//! This crate models that ISA as data:
//!
//! * [`Inst`] — the decoded instruction, the unit the simulator executes.
//! * [`Inst::encode`] / [`decode`] — 32-bit machine-word round-tripping.
//!   Standard extensions use the ratified RISC-V encodings; the PULP custom
//!   extensions use the custom-0/1/3 opcode spaces with the layouts
//!   documented in [`encoding`].
//! * [`Assembler`] — a label-aware programmatic assembler producing flat
//!   binary images ([`Image`]) that the ISS loads; this replaces the
//!   cross-compilation toolchain of the original flow.
//! * A disassembler via [`core::fmt::Display`] on [`Inst`].
//!
//! # Examples
//!
//! Assemble a tiny countdown loop:
//!
//! ```
//! use terasim_riscv::{Assembler, Reg};
//!
//! let mut a = Assembler::new(0x8000_0000);
//! let top = a.new_label();
//! a.bind(top);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, top);
//! a.ret();
//! let words = a.finish()?;
//! assert_eq!(words.len(), 3);
//! # Ok::<(), terasim_riscv::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod decode;
mod disasm;
pub mod encoding;
mod image;
mod inst;
mod reg;

pub use asm::{AsmError, Assembler, Label};
pub use decode::{decode, DecodeError};
pub use image::{Image, Segment};
pub use inst::{
    AluOp, AmoOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpCmpOp, FpFmt, FpOp, FpUnOp, Inst, LoadOp, MulDivOp, PvOp,
    StoreOp, VfOp,
};
pub use reg::Reg;

/// Well-known CSR addresses used by the DUT runtime.
pub mod csr {
    /// Hart (core) ID — each Snitch reads this to find its role.
    pub const MHARTID: u16 = 0xf14;
    /// Cycle counter (read-only view of the timing model).
    pub const MCYCLE: u16 = 0xb00;
    /// Retired-instruction counter.
    pub const MINSTRET: u16 = 0xb02;
}
