//! Disassembly: `Display` renders an [`Inst`] in assembler syntax.

use core::fmt;

use crate::inst::*;

impl fmt::Display for FpFmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FpFmt::S => "s",
            FpFmt::H => "h",
        })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch { op, rs1, rs2, offset } => {
                let name = match op {
                    BranchOp::Eq => "beq",
                    BranchOp::Ne => "bne",
                    BranchOp::Lt => "blt",
                    BranchOp::Ge => "bge",
                    BranchOp::Ltu => "bltu",
                    BranchOp::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, {offset}")
            }
            Inst::Load { op, rd, rs1, offset, post_inc } => {
                let name = match op {
                    LoadOp::Lb => "lb",
                    LoadOp::Lh => "lh",
                    LoadOp::Lw => "lw",
                    LoadOp::Lbu => "lbu",
                    LoadOp::Lhu => "lhu",
                };
                if post_inc {
                    write!(f, "p.{name} {rd}, {offset}({rs1}!)")
                } else {
                    write!(f, "{name} {rd}, {offset}({rs1})")
                }
            }
            Inst::Store { op, rs1, rs2, offset, post_inc } => {
                let name = match op {
                    StoreOp::Sb => "sb",
                    StoreOp::Sh => "sh",
                    StoreOp::Sw => "sw",
                };
                if post_inc {
                    write!(f, "p.{name} {rs2}, {offset}({rs1}!)")
                } else {
                    write!(f, "{name} {rs2}, {offset}({rs1})")
                }
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let name = match op {
                    AluOp::Add => "addi",
                    AluOp::Sll => "slli",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sub => "subi?",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                let name = match op {
                    MulDivOp::Mul => "mul",
                    MulDivOp::Mulh => "mulh",
                    MulDivOp::Mulhsu => "mulhsu",
                    MulDivOp::Mulhu => "mulhu",
                    MulDivOp::Div => "div",
                    MulDivOp::Divu => "divu",
                    MulDivOp::Rem => "rem",
                    MulDivOp::Remu => "remu",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::LrW { rd, rs1 } => write!(f, "lr.w {rd}, ({rs1})"),
            Inst::ScW { rd, rs1, rs2 } => write!(f, "sc.w {rd}, {rs2}, ({rs1})"),
            Inst::Amo { op, rd, rs1, rs2 } => {
                let name = match op {
                    AmoOp::Swap => "amoswap.w",
                    AmoOp::Add => "amoadd.w",
                    AmoOp::Xor => "amoxor.w",
                    AmoOp::And => "amoand.w",
                    AmoOp::Or => "amoor.w",
                    AmoOp::Min => "amomin.w",
                    AmoOp::Max => "amomax.w",
                    AmoOp::Minu => "amominu.w",
                    AmoOp::Maxu => "amomaxu.w",
                };
                write!(f, "{name} {rd}, {rs2}, ({rs1})")
            }
            Inst::Csr { op, rd, src, csr } => {
                let name = match (op, src) {
                    (CsrOp::Rw, CsrSrc::Reg(_)) => "csrrw",
                    (CsrOp::Rs, CsrSrc::Reg(_)) => "csrrs",
                    (CsrOp::Rc, CsrSrc::Reg(_)) => "csrrc",
                    (CsrOp::Rw, CsrSrc::Imm(_)) => "csrrwi",
                    (CsrOp::Rs, CsrSrc::Imm(_)) => "csrrsi",
                    (CsrOp::Rc, CsrSrc::Imm(_)) => "csrrci",
                };
                match src {
                    CsrSrc::Reg(r) => write!(f, "{name} {rd}, {csr:#x}, {r}"),
                    CsrSrc::Imm(i) => write!(f, "{name} {rd}, {csr:#x}, {i}"),
                }
            }
            Inst::FpArith { op, fmt, rd, rs1, rs2 } => {
                let name = match op {
                    FpOp::Add => "fadd",
                    FpOp::Sub => "fsub",
                    FpOp::Mul => "fmul",
                    FpOp::Div => "fdiv",
                    FpOp::Min => "fmin",
                    FpOp::Max => "fmax",
                    FpOp::SgnJ => "fsgnj",
                    FpOp::SgnJN => "fsgnjn",
                    FpOp::SgnJX => "fsgnjx",
                };
                write!(f, "{name}.{fmt} {rd}, {rs1}, {rs2}")
            }
            Inst::FpUn { op, fmt, rd, rs1 } => match op {
                FpUnOp::Sqrt => write!(f, "fsqrt.{fmt} {rd}, {rs1}"),
                FpUnOp::CvtWFromFp => write!(f, "fcvt.w.{fmt} {rd}, {rs1}"),
                FpUnOp::CvtFpFromW => write!(f, "fcvt.{fmt}.w {rd}, {rs1}"),
                FpUnOp::CvtSFromH => write!(f, "fcvt.s.h {rd}, {rs1}"),
                FpUnOp::CvtHFromS => write!(f, "fcvt.h.s {rd}, {rs1}"),
            },
            Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
                let name = match op {
                    FmaOp::Madd => "fmadd",
                    FmaOp::Msub => "fmsub",
                    FmaOp::Nmadd => "fnmadd",
                    FmaOp::Nmsub => "fnmsub",
                };
                write!(f, "{name}.{fmt} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Inst::FpCmp { op, fmt, rd, rs1, rs2 } => {
                let name = match op {
                    FpCmpOp::Eq => "feq",
                    FpCmpOp::Lt => "flt",
                    FpCmpOp::Le => "fle",
                };
                write!(f, "{name}.{fmt} {rd}, {rs1}, {rs2}")
            }
            Inst::Vf { op, rd, rs1, rs2 } => {
                let name = match op {
                    VfOp::AddH => "vfadd.h",
                    VfOp::SubH => "vfsub.h",
                    VfOp::MulH => "vfmul.h",
                    VfOp::MacH => "vfmac.h",
                    VfOp::DotpExSH => "vfdotpex.s.h",
                    VfOp::NDotpExSH => "vfndotpex.s.h",
                    VfOp::CdotpExSH => "vfcdotpex.s.h",
                    VfOp::CdotpExCSH => "vfcdotpex.c.s.h",
                    VfOp::DotpExHB => "vfdotpex.h.b",
                    VfOp::NDotpExHB => "vfndotpex.h.b",
                    VfOp::CpkAHS => "vfcpka.h.s",
                    VfOp::CvtHBLo => "vfcvt.h.b.lo",
                    VfOp::CvtHBHi => "vfcvt.h.b.hi",
                    VfOp::CvtBH => "vfcvt.b.h",
                    VfOp::SwapH => "pv.swap.h",
                    VfOp::SwapB => "pv.swap.b",
                    VfOp::CmacB => "pv.cmac.b",
                    VfOp::CmacConjB => "pv.cmac.c.b",
                };
                if op.is_unary() {
                    write!(f, "{name} {rd}, {rs1}")
                } else {
                    write!(f, "{name} {rd}, {rs1}, {rs2}")
                }
            }
            Inst::Pv { op, rd, rs1, rs2 } => {
                let name = match op {
                    PvOp::AddH => "pv.add.h",
                    PvOp::AddB => "pv.add.b",
                    PvOp::SubH => "pv.sub.h",
                    PvOp::SubB => "pv.sub.b",
                    PvOp::Mac => "p.mac",
                    PvOp::Msu => "p.msu",
                    PvOp::DotspH => "pv.dotsp.h",
                    PvOp::SdotspH => "pv.sdotsp.h",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::Fence => f.write_str("fence"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Wfi => f.write_str("wfi"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{decode, Reg};

    use super::*;

    #[test]
    fn renders_common_instructions() {
        let cases: [(Inst, &str); 6] = [
            (Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::Sp, imm: -16 }, "addi a0, sp, -16"),
            (
                Inst::Load { op: LoadOp::Lw, rd: Reg::T0, rs1: Reg::A1, offset: 8, post_inc: false },
                "lw t0, 8(a1)",
            ),
            (
                Inst::Load { op: LoadOp::Lw, rd: Reg::T0, rs1: Reg::A1, offset: 4, post_inc: true },
                "p.lw t0, 4(a1!)",
            ),
            (
                Inst::FpFma {
                    op: FmaOp::Madd,
                    fmt: FpFmt::H,
                    rd: Reg::A2,
                    rs1: Reg::A3,
                    rs2: Reg::A4,
                    rs3: Reg::A2,
                },
                "fmadd.h a2, a3, a4, a2",
            ),
            (
                Inst::Vf { op: VfOp::CdotpExSH, rd: Reg::S0, rs1: Reg::S1, rs2: Reg::S2 },
                "vfcdotpex.s.h s0, s1, s2",
            ),
            (Inst::Vf { op: VfOp::SwapH, rd: Reg::S0, rs1: Reg::S1, rs2: Reg::Zero }, "pv.swap.h s0, s1"),
        ];
        for (inst, want) in cases {
            assert_eq!(inst.to_string(), want);
        }
    }

    #[test]
    fn disasm_of_decoded_word() {
        let word = 0xf140_2573; // csrr a0, mhartid
        assert_eq!(decode(word).unwrap().to_string(), "csrrs a0, 0xf14, zero");
    }
}
