//! Machine-word decoder (the ISS "translation" front end).

use core::fmt;

use crate::encoding::*;
use crate::inst::*;
use crate::Reg;

/// Error returned when a 32-bit word is not a recognized instruction.
///
/// The offending word is carried for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The unrecognized machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(word: u32) -> Reg {
    Reg::from_num((word >> 7) & 0x1f)
}

fn rs1(word: u32) -> Reg {
    Reg::from_num((word >> 15) & 0x1f)
}

fn rs2(word: u32) -> Reg {
    Reg::from_num((word >> 20) & 0x1f)
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

fn imm_s(word: u32) -> i32 {
    (((word as i32) >> 25) << 5) | (((word >> 7) & 0x1f) as i32)
}

fn imm_b(word: u32) -> i32 {
    (((word as i32) >> 31) << 12)
        | ((((word >> 7) & 1) as i32) << 11)
        | ((((word >> 25) & 0x3f) as i32) << 5)
        | ((((word >> 8) & 0xf) as i32) << 1)
}

fn imm_u(word: u32) -> i32 {
    (word & 0xffff_f000) as i32
}

fn imm_j(word: u32) -> i32 {
    (((word as i32) >> 31) << 20)
        | (((word >> 12) & 0xff) as i32) << 12
        | ((((word >> 20) & 1) as i32) << 11)
        | ((((word >> 21) & 0x3ff) as i32) << 1)
}

fn branch_op(f3: u32) -> Option<BranchOp> {
    Some(match f3 {
        0b000 => BranchOp::Eq,
        0b001 => BranchOp::Ne,
        0b100 => BranchOp::Lt,
        0b101 => BranchOp::Ge,
        0b110 => BranchOp::Ltu,
        0b111 => BranchOp::Geu,
        _ => return None,
    })
}

fn load_op(f3: u32) -> Option<LoadOp> {
    Some(match f3 {
        0b000 => LoadOp::Lb,
        0b001 => LoadOp::Lh,
        0b010 => LoadOp::Lw,
        0b100 => LoadOp::Lbu,
        0b101 => LoadOp::Lhu,
        _ => return None,
    })
}

fn store_op(f3: u32) -> Option<StoreOp> {
    Some(match f3 {
        0b000 => StoreOp::Sb,
        0b001 => StoreOp::Sh,
        0b010 => StoreOp::Sw,
        _ => return None,
    })
}

fn fp_fmt(bits: u32) -> Option<FpFmt> {
    Some(match bits {
        0b00 => FpFmt::S,
        0b10 => FpFmt::H,
        _ => return None,
    })
}

fn vf_op(f7: u32) -> Option<VfOp> {
    Some(match f7 {
        0x00 => VfOp::AddH,
        0x01 => VfOp::SubH,
        0x02 => VfOp::MulH,
        0x03 => VfOp::MacH,
        0x08 => VfOp::DotpExSH,
        0x09 => VfOp::NDotpExSH,
        0x0a => VfOp::CdotpExSH,
        0x0b => VfOp::CdotpExCSH,
        0x0c => VfOp::DotpExHB,
        0x0d => VfOp::NDotpExHB,
        0x10 => VfOp::CpkAHS,
        0x14 => VfOp::CvtHBLo,
        0x15 => VfOp::CvtHBHi,
        0x16 => VfOp::CvtBH,
        0x18 => VfOp::SwapH,
        0x19 => VfOp::SwapB,
        0x1a => VfOp::CmacB,
        0x1b => VfOp::CmacConjB,
        _ => return None,
    })
}

fn pv_op(f7: u32) -> Option<PvOp> {
    Some(match f7 {
        0x00 => PvOp::AddH,
        0x01 => PvOp::AddB,
        0x02 => PvOp::SubH,
        0x03 => PvOp::SubB,
        0x08 => PvOp::Mac,
        0x09 => PvOp::Msu,
        0x0c => PvOp::DotspH,
        0x0d => PvOp::SdotspH,
        _ => return None,
    })
}

/// Decodes a 32-bit machine word into an [`Inst`].
///
/// This is the front half of the simulator's translation phase; the ISS
/// pre-decodes whole text segments through this function.
///
/// # Errors
///
/// Returns [`DecodeError`] for words outside the implemented ISA
/// (RV32IMA + Zfinx/Zhinx + the custom PULP encodings of [`crate::encoding`]).
///
/// # Examples
///
/// ```
/// use terasim_riscv::{decode, Inst, Reg};
///
/// let word = Inst::Jal { rd: Reg::Ra, offset: -8 }.encode();
/// assert_eq!(decode(word)?, Inst::Jal { rd: Reg::Ra, offset: -8 });
/// # Ok::<(), terasim_riscv::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let err = DecodeError { word };
    let opcode = word & 0x7f;
    let inst = match opcode {
        OP_LUI => Inst::Lui { rd: rd(word), imm: imm_u(word) },
        OP_AUIPC => Inst::Auipc { rd: rd(word), imm: imm_u(word) },
        OP_JAL => Inst::Jal { rd: rd(word), offset: imm_j(word) },
        OP_JALR if funct3(word) == 0 => Inst::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) },
        OP_BRANCH => Inst::Branch {
            op: branch_op(funct3(word)).ok_or(err)?,
            rs1: rs1(word),
            rs2: rs2(word),
            offset: imm_b(word),
        },
        OP_LOAD | OP_CUSTOM0 => Inst::Load {
            op: load_op(funct3(word)).ok_or(err)?,
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
            post_inc: opcode == OP_CUSTOM0,
        },
        OP_STORE | OP_CUSTOM1 => Inst::Store {
            op: store_op(funct3(word)).ok_or(err)?,
            rs1: rs1(word),
            rs2: rs2(word),
            offset: imm_s(word),
            post_inc: opcode == OP_CUSTOM1,
        },
        OP_IMM => {
            let f3 = funct3(word);
            let imm = imm_i(word);
            let (op, imm) = match f3 {
                0b000 => (AluOp::Add, imm),
                0b001 if funct7(word) == 0 => (AluOp::Sll, imm & 0x1f),
                0b010 => (AluOp::Slt, imm),
                0b011 => (AluOp::Sltu, imm),
                0b100 => (AluOp::Xor, imm),
                0b101 if funct7(word) == 0 => (AluOp::Srl, imm & 0x1f),
                0b101 if funct7(word) == 0b010_0000 => (AluOp::Sra, imm & 0x1f),
                0b110 => (AluOp::Or, imm),
                0b111 => (AluOp::And, imm),
                _ => return Err(err),
            };
            Inst::OpImm { op, rd: rd(word), rs1: rs1(word), imm }
        }
        OP_OP => {
            let f3 = funct3(word);
            let f7 = funct7(word);
            if f7 == 0b000_0001 {
                let op = match f3 {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    _ => MulDivOp::Remu,
                };
                Inst::MulDiv { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
            } else {
                let op = match (f3, f7) {
                    (0b000, 0) => AluOp::Add,
                    (0b000, 0b010_0000) => AluOp::Sub,
                    (0b001, 0) => AluOp::Sll,
                    (0b010, 0) => AluOp::Slt,
                    (0b011, 0) => AluOp::Sltu,
                    (0b100, 0) => AluOp::Xor,
                    (0b101, 0) => AluOp::Srl,
                    (0b101, 0b010_0000) => AluOp::Sra,
                    (0b110, 0) => AluOp::Or,
                    (0b111, 0) => AluOp::And,
                    _ => return Err(err),
                };
                Inst::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
            }
        }
        OP_MISC_MEM => Inst::Fence,
        OP_SYSTEM => {
            let f3 = funct3(word);
            if f3 == 0 {
                match word {
                    WORD_ECALL => Inst::Ecall,
                    WORD_EBREAK => Inst::Ebreak,
                    WORD_WFI => Inst::Wfi,
                    _ => return Err(err),
                }
            } else {
                let csr = u16::try_from(word >> 20).expect("12-bit CSR address");
                let field = (word >> 15) & 0x1f;
                let (op, src) = match f3 {
                    0b001 => (CsrOp::Rw, CsrSrc::Reg(Reg::from_num(field))),
                    0b010 => (CsrOp::Rs, CsrSrc::Reg(Reg::from_num(field))),
                    0b011 => (CsrOp::Rc, CsrSrc::Reg(Reg::from_num(field))),
                    0b101 => (CsrOp::Rw, CsrSrc::Imm(field as u8)),
                    0b110 => (CsrOp::Rs, CsrSrc::Imm(field as u8)),
                    0b111 => (CsrOp::Rc, CsrSrc::Imm(field as u8)),
                    _ => return Err(err),
                };
                Inst::Csr { op, rd: rd(word), src, csr }
            }
        }
        OP_AMO if funct3(word) == 0b010 => {
            let funct5 = funct7(word) >> 2;
            match funct5 {
                AMO_LR if rs2(word) == Reg::Zero => Inst::LrW { rd: rd(word), rs1: rs1(word) },
                AMO_SC => Inst::ScW { rd: rd(word), rs1: rs1(word), rs2: rs2(word) },
                _ => {
                    let op = match funct5 {
                        0b00000 => AmoOp::Add,
                        0b00001 => AmoOp::Swap,
                        0b00100 => AmoOp::Xor,
                        0b01000 => AmoOp::Or,
                        0b01100 => AmoOp::And,
                        0b10000 => AmoOp::Min,
                        0b10100 => AmoOp::Max,
                        0b11000 => AmoOp::Minu,
                        0b11100 => AmoOp::Maxu,
                        _ => return Err(err),
                    };
                    Inst::Amo { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
                }
            }
        }
        OP_FP => {
            let fmt = fp_fmt(funct7(word) & 0b11).ok_or(err)?;
            let funct5 = funct7(word) >> 2;
            let rm = funct3(word);
            match funct5 {
                0b00000 => Inst::FpArith { op: FpOp::Add, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) },
                0b00001 => Inst::FpArith { op: FpOp::Sub, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) },
                0b00010 => Inst::FpArith { op: FpOp::Mul, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) },
                0b00011 => Inst::FpArith { op: FpOp::Div, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) },
                0b00100 => {
                    let op = match rm {
                        0b000 => FpOp::SgnJ,
                        0b001 => FpOp::SgnJN,
                        0b010 => FpOp::SgnJX,
                        _ => return Err(err),
                    };
                    Inst::FpArith { op, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
                }
                0b00101 => {
                    let op = match rm {
                        0b000 => FpOp::Min,
                        0b001 => FpOp::Max,
                        _ => return Err(err),
                    };
                    Inst::FpArith { op, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
                }
                0b01011 if rs2(word) == Reg::Zero => {
                    Inst::FpUn { op: FpUnOp::Sqrt, fmt, rd: rd(word), rs1: rs1(word) }
                }
                0b01000 => {
                    let op = match rs2(word).num() {
                        2 if fmt == FpFmt::S => FpUnOp::CvtSFromH,
                        0 if fmt == FpFmt::H => FpUnOp::CvtHFromS,
                        _ => return Err(err),
                    };
                    Inst::FpUn { op, fmt, rd: rd(word), rs1: rs1(word) }
                }
                0b11000 if rs2(word) == Reg::Zero => {
                    Inst::FpUn { op: FpUnOp::CvtWFromFp, fmt, rd: rd(word), rs1: rs1(word) }
                }
                0b11010 if rs2(word) == Reg::Zero => {
                    Inst::FpUn { op: FpUnOp::CvtFpFromW, fmt, rd: rd(word), rs1: rs1(word) }
                }
                0b10100 => {
                    let op = match rm {
                        0b000 => FpCmpOp::Le,
                        0b001 => FpCmpOp::Lt,
                        0b010 => FpCmpOp::Eq,
                        _ => return Err(err),
                    };
                    Inst::FpCmp { op, fmt, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
                }
                _ => return Err(err),
            }
        }
        OP_FMADD | OP_FMSUB | OP_FNMSUB | OP_FNMADD => {
            let op = match opcode {
                OP_FMADD => FmaOp::Madd,
                OP_FMSUB => FmaOp::Msub,
                OP_FNMSUB => FmaOp::Nmsub,
                _ => FmaOp::Nmadd,
            };
            let fmt = fp_fmt((word >> 25) & 0b11).ok_or(err)?;
            Inst::FpFma {
                op,
                fmt,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
                rs3: Reg::from_num(word >> 27),
            }
        }
        OP_CUSTOM3 if funct3(word) == 0 => {
            Inst::Vf { op: vf_op(funct7(word)).ok_or(err)?, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
        }
        OP_CUSTOM3 if funct3(word) == 1 => {
            Inst::Pv { op: pv_op(funct7(word)).ok_or(err)?, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
        }
        _ => return Err(err),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_canonical_words() {
        // Canonical encodings cross-checked against the RISC-V spec.
        assert_eq!(
            decode(0x0000_0013).unwrap(),
            Inst::OpImm { op: AluOp::Add, rd: Reg::Zero, rs1: Reg::Zero, imm: 0 }
        ); // nop
        assert_eq!(
            decode(0x0080_0093).unwrap(),
            Inst::OpImm { op: AluOp::Add, rd: Reg::Ra, rs1: Reg::Zero, imm: 8 }
        );
        assert_eq!(decode(0x0000_8067).unwrap(), Inst::Jalr { rd: Reg::Zero, rs1: Reg::Ra, offset: 0 }); // ret
        assert_eq!(
            decode(0xfe52_8ae3).unwrap(),
            Inst::Branch { op: BranchOp::Eq, rs1: Reg::T0, rs2: Reg::T0, offset: -12 }
        );
        assert_eq!(
            decode(0x0005_2503).unwrap(),
            Inst::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::A0, offset: 0, post_inc: false }
        );
        assert_eq!(
            decode(0x00b5_2023).unwrap(),
            Inst::Store { op: StoreOp::Sw, rs1: Reg::A0, rs2: Reg::A1, offset: 0, post_inc: false }
        );
        assert_eq!(
            decode(0x02b5_0533).unwrap(),
            Inst::MulDiv { op: MulDivOp::Mul, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 }
        );
        assert_eq!(
            decode(0xf140_2573).unwrap(),
            Inst::Csr { op: CsrOp::Rs, rd: Reg::A0, src: CsrSrc::Reg(Reg::Zero), csr: 0xf14 }
        ); // csrr a0, mhartid
        assert_eq!(decode(0x1050_0073).unwrap(), Inst::Wfi);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
        // OP-FP with quad fmt (0b11) is not implemented.
        let bad_fmt = Inst::FpArith { op: FpOp::Add, fmt: FpFmt::H, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A0 }
            .encode()
            | (0b01 << 25);
        assert!(decode(bad_fmt).is_err());
    }

    #[test]
    fn amoadd_roundtrip_example() {
        let inst = Inst::Amo { op: AmoOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        assert_eq!(decode(inst.encode()).unwrap(), inst);
    }
}
