//! The decoded instruction type and its operand-class enums.

use crate::Reg;

/// Branch comparison (`beq`..`bgeu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchOp {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Load width/sign (`lb`..`lhu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
}

impl LoadOp {
    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }
}

/// Store width (`sb`, `sh`, `sw`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
}

impl StoreOp {
    /// Access size in bytes.
    pub const fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }
}

/// Integer ALU operation (register or immediate form).
///
/// `Sub` is only valid in the register form; the assembler rejects
/// `OpImm { op: Sub, .. }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

/// RV32M multiply/divide operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MulDivOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// RV32A read-modify-write operation (`amoadd.w` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AmoOp {
    Swap,
    Add,
    Xor,
    And,
    Or,
    Min,
    Max,
    Minu,
    Maxu,
}

/// CSR access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
}

/// Source operand of a CSR instruction: a register (`csrrw`) or a 5-bit
/// zero-extended immediate (`csrrwi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form.
    Reg(Reg),
    /// Immediate form (`uimm[4:0]`).
    Imm(u8),
}

/// Scalar FP operand format under `zfinx`: single (`.s`) or half (`.h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpFmt {
    S,
    H,
}

/// Two-operand scalar FP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    SgnJ,
    SgnJN,
    SgnJX,
}

/// One-operand scalar FP operation (square root and conversions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnOp {
    /// `fsqrt.fmt`
    Sqrt,
    /// `fcvt.w.fmt` — FP to signed integer, round towards zero.
    CvtWFromFp,
    /// `fcvt.fmt.w` — signed integer to FP, RNE.
    CvtFpFromW,
    /// `fcvt.s.h` — widen half to single (exact).
    CvtSFromH,
    /// `fcvt.h.s` — narrow single to half, RNE.
    CvtHFromS,
}

/// Fused multiply-add family (`fmadd`..`fnmsub`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FmaOp {
    /// ` rs1*rs2 + rs3`
    Madd,
    /// ` rs1*rs2 - rs3`
    Msub,
    /// `-rs1*rs2 - rs3`
    Nmadd,
    /// `-rs1*rs2 + rs3`
    Nmsub,
}

/// FP comparison writing 0/1 to an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpCmpOp {
    Eq,
    Lt,
    Le,
}

/// SmallFloat/MiniFloat SIMD and PULP shuffle operations (custom-3 space).
///
/// Semantics are defined by `terasim_softfloat::ops` where applicable; see
/// the [`encoding`](crate::encoding) module for the bit layout. Operations
/// marked *accumulating* read `rd` as a third source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfOp {
    /// `vfadd.h` — lanewise 2×f16 add.
    AddH,
    /// `vfsub.h` — lanewise 2×f16 subtract.
    SubH,
    /// `vfmul.h` — lanewise 2×f16 multiply.
    MulH,
    /// `vfmac.h` — lanewise 2×f16 multiply-accumulate (accumulating).
    MacH,
    /// `vfdotpex.s.h` — widening 2×f16 dot product into an f32 accumulator
    /// (accumulating).
    DotpExSH,
    /// `vfndotpex.s.h` — as [`VfOp::DotpExSH`] with the second product
    /// negated (accumulating).
    NDotpExSH,
    /// `vfcdotpex.s.h` — complex f16 MAC with 32-bit internal precision
    /// (accumulating).
    CdotpExSH,
    /// `vfcdotpex.c.s.h` — conjugated complex f16 MAC, `rd += conj(rs1)*rs2`
    /// (accumulating).
    CdotpExCSH,
    /// `vfdotpex.h.b` — widening 4×f8 dot product into 2×f16 accumulators
    /// (accumulating).
    DotpExHB,
    /// `vfndotpex.h.b` — as [`VfOp::DotpExHB`] with the second product of
    /// each pair negated (accumulating).
    NDotpExHB,
    /// `vfcpka.h.s` — pack two f32 sources into 2×f16 (RNE).
    CpkAHS,
    /// `vfcvt.h.b.lo` — widen the low 2×f8 of `rs1` to 2×f16 (exact).
    CvtHBLo,
    /// `vfcvt.h.b.hi` — widen the high 2×f8 of `rs1` to 2×f16 (exact).
    CvtHBHi,
    /// `vfcvt.b.h` — narrow 2×f16 of `rs1` to 2×f8 in the low half (RNE).
    CvtBH,
    /// `pv.swap.h` — swap the two 16-bit halves of `rs1`.
    SwapH,
    /// `pv.swap.b` — swap the bytes within each 16-bit half of `rs1`.
    SwapB,
    /// `pv.cmac.b` — complex f8 MAC on the low 16 bits (accumulating).
    CmacB,
    /// `pv.cmac.c.b` — conjugated complex f8 MAC, `rd += conj(rs1)*rs2`
    /// (accumulating).
    CmacConjB,
}

impl VfOp {
    /// Returns `true` if the operation reads `rd` as an accumulator.
    pub const fn accumulates(self) -> bool {
        matches!(
            self,
            VfOp::MacH
                | VfOp::DotpExSH
                | VfOp::NDotpExSH
                | VfOp::CdotpExSH
                | VfOp::CdotpExCSH
                | VfOp::DotpExHB
                | VfOp::NDotpExHB
                | VfOp::CmacB
                | VfOp::CmacConjB
        )
    }

    /// Returns `true` if the operation ignores `rs2` (unary shuffles and
    /// conversions).
    pub const fn is_unary(self) -> bool {
        matches!(self, VfOp::CvtHBLo | VfOp::CvtHBHi | VfOp::CvtBH | VfOp::SwapH | VfOp::SwapB)
    }
}

/// Xpulpimg integer MAC and SIMD operations (custom-3 space, `funct3 = 1`).
///
/// Operations marked *accumulating* read `rd` as a third source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvOp {
    /// `pv.add.h` — lanewise 2×i16 wrapping add.
    AddH,
    /// `pv.add.b` — lanewise 4×i8 wrapping add.
    AddB,
    /// `pv.sub.h` — lanewise 2×i16 wrapping subtract.
    SubH,
    /// `pv.sub.b` — lanewise 4×i8 wrapping subtract.
    SubB,
    /// `p.mac` — integer multiply-accumulate, `rd += rs1 * rs2`
    /// (accumulating).
    Mac,
    /// `p.msu` — integer multiply-subtract, `rd -= rs1 * rs2`
    /// (accumulating).
    Msu,
    /// `pv.dotsp.h` — signed 2×i16 dot product into a 32-bit result.
    DotspH,
    /// `pv.sdotsp.h` — as [`PvOp::DotspH`], accumulating into `rd`.
    SdotspH,
}

impl PvOp {
    /// Returns `true` if the operation reads `rd` as an accumulator.
    pub const fn accumulates(self) -> bool {
        matches!(self, PvOp::Mac | PvOp::Msu | PvOp::SdotspH)
    }
}

/// A decoded Snitch instruction.
///
/// This is the unit both simulator backends execute and the output of
/// [`decode`](crate::decode). Offsets and immediates are stored
/// sign-extended; `Lui`/`Auipc` store the already-shifted 32-bit immediate.
///
/// # Examples
///
/// ```
/// use terasim_riscv::{decode, Inst, Reg};
///
/// // addi a0, a0, 1
/// let word = 0x0015_0513;
/// assert!(matches!(
///     decode(word)?,
///     Inst::OpImm { rd: Reg::A0, rs1: Reg::A0, imm: 1, .. }
/// ));
/// # Ok::<(), terasim_riscv::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // fields follow standard RISC-V operand naming
pub enum Inst {
    Lui {
        rd: Reg,
        imm: i32,
    },
    Auipc {
        rd: Reg,
        imm: i32,
    },
    Jal {
        rd: Reg,
        offset: i32,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Loads; `post_inc` selects the Xpulpimg post-increment form
    /// (`p.lw rd, offset(rs1!)`: address is `rs1`, then `rs1 += offset`).
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: i32,
        post_inc: bool,
    },
    /// Stores; `post_inc` as for loads.
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
        post_inc: bool,
    },
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    LrW {
        rd: Reg,
        rs1: Reg,
    },
    ScW {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Amo {
        op: AmoOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Csr {
        op: CsrOp,
        rd: Reg,
        src: CsrSrc,
        csr: u16,
    },
    FpArith {
        op: FpOp,
        fmt: FpFmt,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    FpUn {
        op: FpUnOp,
        fmt: FpFmt,
        rd: Reg,
        rs1: Reg,
    },
    FpFma {
        op: FmaOp,
        fmt: FpFmt,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        rs3: Reg,
    },
    FpCmp {
        op: FpCmpOp,
        fmt: FpFmt,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Vf {
        op: VfOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Pv {
        op: PvOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Fence,
    Ecall,
    Ebreak,
    Wfi,
}

impl Inst {
    /// The destination register, if the instruction writes one.
    ///
    /// `x0` destinations are reported as `None` (writes to `zero` are
    /// architectural no-ops and must not create scoreboard dependencies).
    pub fn dst(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::LrW { rd, .. }
            | Inst::ScW { rd, .. }
            | Inst::Amo { rd, .. }
            | Inst::Csr { rd, .. }
            | Inst::FpArith { rd, .. }
            | Inst::FpUn { rd, .. }
            | Inst::FpFma { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::Vf { rd, .. }
            | Inst::Pv { rd, .. } => rd,
            Inst::Branch { .. }
            | Inst::Store { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak
            | Inst::Wfi => return None,
        };
        (rd != Reg::Zero).then_some(rd)
    }

    /// The address-base register updated by a post-increment access, if any.
    pub fn post_inc_dst(&self) -> Option<Reg> {
        match *self {
            Inst::Load { rs1, post_inc: true, .. } | Inst::Store { rs1, post_inc: true, .. } => {
                (rs1 != Reg::Zero).then_some(rs1)
            }
            _ => None,
        }
    }

    /// Source registers read by the instruction (up to three), for RAW
    /// dependency tracking. Reads of `x0` are omitted.
    pub fn srcs(&self) -> impl Iterator<Item = Reg> {
        let mut regs = [None::<Reg>; 3];
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::OpImm { rs1, .. }
            | Inst::LrW { rs1, .. } => {
                regs[0] = Some(rs1);
            }
            Inst::Branch { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::Op { rs1, rs2, .. }
            | Inst::MulDiv { rs1, rs2, .. }
            | Inst::ScW { rs1, rs2, .. }
            | Inst::Amo { rs1, rs2, .. }
            | Inst::FpArith { rs1, rs2, .. }
            | Inst::FpCmp { rs1, rs2, .. } => {
                regs[0] = Some(rs1);
                regs[1] = Some(rs2);
            }
            Inst::Csr { src, .. } => {
                if let CsrSrc::Reg(rs1) = src {
                    regs[0] = Some(rs1);
                }
            }
            Inst::FpUn { rs1, .. } => regs[0] = Some(rs1),
            Inst::FpFma { rs1, rs2, rs3, .. } => {
                regs = [Some(rs1), Some(rs2), Some(rs3)];
            }
            Inst::Vf { op, rd, rs1, rs2 } => {
                regs[0] = Some(rs1);
                if !op.is_unary() {
                    regs[1] = Some(rs2);
                }
                if op.accumulates() {
                    regs[2] = Some(rd);
                }
            }
            Inst::Pv { op, rd, rs1, rs2 } => {
                regs[0] = Some(rs1);
                regs[1] = Some(rs2);
                if op.accumulates() {
                    regs[2] = Some(rd);
                }
            }
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak
            | Inst::Wfi => {}
        }
        regs.into_iter().flatten().filter(|&r| r != Reg::Zero)
    }

    /// Returns `true` for loads, stores and atomics (instructions that
    /// access data memory).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::LrW { .. } | Inst::ScW { .. } | Inst::Amo { .. }
        )
    }

    /// Returns `true` for control-flow instructions.
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_destination_is_hidden() {
        let nop = Inst::OpImm { op: AluOp::Add, rd: Reg::Zero, rs1: Reg::Zero, imm: 0 };
        assert_eq!(nop.dst(), None);
        assert_eq!(nop.srcs().count(), 0);
    }

    #[test]
    fn fma_reads_three_sources() {
        let fma = Inst::FpFma {
            op: FmaOp::Madd,
            fmt: FpFmt::H,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: Reg::A3,
        };
        let srcs: Vec<_> = fma.srcs().collect();
        assert_eq!(srcs, vec![Reg::A1, Reg::A2, Reg::A3]);
        assert_eq!(fma.dst(), Some(Reg::A0));
    }

    #[test]
    fn accumulating_vf_reads_rd() {
        let dotp = Inst::Vf { op: VfOp::DotpExSH, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
        let srcs: Vec<_> = dotp.srcs().collect();
        assert!(srcs.contains(&Reg::A0), "accumulator must be a RAW source");
        let swap = Inst::Vf { op: VfOp::SwapH, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::Zero };
        assert_eq!(swap.srcs().collect::<Vec<_>>(), vec![Reg::A1]);
    }

    #[test]
    fn post_increment_updates_base() {
        let load = Inst::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::A1, offset: 4, post_inc: true };
        assert_eq!(load.post_inc_dst(), Some(Reg::A1));
        let plain = Inst::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::A1, offset: 4, post_inc: false };
        assert_eq!(plain.post_inc_dst(), None);
    }
}
