//! ISS-executed kernels must be *bit-identical* to the native models.
//!
//! This is the load-bearing test of the whole reproduction: the BER
//! figures run the native models for Monte-Carlo volume, which is only
//! valid because this test pins them to the ISS (the paper's Banshee
//! "bit-true functional modeling").

use terasim_kernels::{data, native, MmseKernel, Precision, C64};
use terasim_phy::rng::Rng64;
use terasim_terapool::{FastSim, Topology};

/// Standard-normal sampler (Box-Muller).
fn randn(rng: &mut Rng64) -> f64 {
    let u1: f64 = rng.next_f64().max(1e-12);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn random_channel(rng: &mut Rng64, n: usize) -> Vec<C64> {
    let scale = 1.0 / (2.0 * n as f64).sqrt();
    (0..n * n).map(|_| (randn(rng) * scale, randn(rng) * scale)).collect()
}

fn random_symbols(rng: &mut Rng64, n: usize) -> Vec<C64> {
    // 16QAM-like alphabet, unit average power.
    let levels = [-3.0, -1.0, 1.0, 3.0];
    let norm = (10.0f64).sqrt().recip();
    (0..n).map(|_| (levels[rng.below(4)] * norm, levels[rng.below(4)] * norm)).collect()
}

fn run_case(precision: Precision, n: u32, seed: u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    let cores = 8u32;
    let mut topo = Topology::scaled(cores);
    let kernel = MmseKernel::new(n, precision).with_active_cores(cores);
    // Large MIMO sizes need deeper banks (capacity substitution, DESIGN.md).
    while kernel.layout(&topo).is_err() {
        topo.tile_spm_bytes *= 2;
    }
    let layout = kernel.layout(&topo).expect("fits");
    let image = kernel.build(&topo).expect("builds");
    let mut sim = FastSim::new(topo, &image).expect("translates");

    let mut problems = Vec::new();
    for p in 0..layout.problems {
        let h = random_channel(&mut rng, n as usize);
        let x = random_symbols(&mut rng, n as usize);
        // y = H x + small noise
        let mut y = vec![(0.0, 0.0); n as usize];
        for k in 0..n as usize {
            for i in 0..n as usize {
                let hv = h[k * n as usize + i];
                let xv = x[i];
                y[k].0 += hv.0 * xv.0 - hv.1 * xv.1;
                y[k].1 += hv.0 * xv.1 + hv.1 * xv.0;
            }
            y[k].0 += randn(&mut rng) * 0.01;
            y[k].1 += randn(&mut rng) * 0.01;
        }
        let sigma = 0.01;
        data::write_problem(sim.memory(), &layout, p, &h, &y, sigma);
        problems.push((h, y, sigma));
    }

    sim.run_all(2).expect("runs");

    for (p, (h, y, sigma)) in problems.iter().enumerate() {
        let iss = data::read_xhat(sim.memory(), &layout, p as u32);
        let nat = native::detect(precision, n as usize, h, y, *sigma);
        for i in 0..n as usize {
            assert_eq!(
                [iss[i][0].to_bits(), iss[i][1].to_bits()],
                [nat[i][0].to_bits(), nat[i][1].to_bits()],
                "{precision} n={n} problem {p} element {i}: ISS {:?} vs native {:?}",
                iss[i],
                nat[i]
            );
        }
    }
}

#[test]
fn bit_true_half16() {
    run_case(Precision::Half16, 4, 1);
    run_case(Precision::Half16, 8, 2);
}

#[test]
fn bit_true_wdotp16() {
    run_case(Precision::WDotp16, 4, 3);
    run_case(Precision::WDotp16, 8, 4);
}

#[test]
fn bit_true_cdotp16() {
    run_case(Precision::CDotp16, 4, 5);
    run_case(Precision::CDotp16, 16, 6);
}

#[test]
fn bit_true_quarter8() {
    run_case(Precision::Quarter8, 4, 7);
    run_case(Precision::Quarter8, 8, 8);
}

#[test]
fn bit_true_wdotp8() {
    run_case(Precision::WDotp8, 4, 9);
    run_case(Precision::WDotp8, 8, 10);
}

#[test]
fn bit_true_large_mimo() {
    // The paper's largest size, one precision per family (slower cases).
    run_case(Precision::CDotp16, 32, 11);
    run_case(Precision::WDotp8, 16, 12);
    run_case(Precision::Half16, 16, 13);
}

#[test]
fn detection_quality_tracks_reference() {
    // The 16-bit kernels should detect the same symbols as the f64
    // reference on a well-conditioned channel (qualitative check used by
    // the BER experiments).
    let mut rng = Rng64::seed_from_u64(42);
    let n = 4usize;
    let mut agree = 0;
    let mut total = 0;
    for _ in 0..50 {
        let h = random_channel(&mut rng, n);
        let x = random_symbols(&mut rng, n);
        let mut y = vec![(0.0, 0.0); n];
        for k in 0..n {
            for i in 0..n {
                let hv = h[k * n + i];
                y[k].0 += hv.0 * x[i].0 - hv.1 * x[i].1;
                y[k].1 += hv.0 * x[i].1 + hv.1 * x[i].0;
            }
        }
        let gold = native::detect_f64(n, &h, &y, 0.001);
        let fx = native::detect(Precision::CDotp16, n, &h, &y, 0.001);
        for i in 0..n {
            total += 1;
            if (fx[i][0].to_f64() - gold[i].0).abs() < 0.25 && (fx[i][1].to_f64() - gold[i].1).abs() < 0.25 {
                agree += 1;
            }
        }
    }
    assert!(
        agree as f64 >= 0.9 * total as f64,
        "16bCDotp diverged from the reference too often: {agree}/{total}"
    );
}
