//! Property-based tests of the kernel generator and native models.

use proptest::prelude::*;
use terasim_kernels::{data, native, MmseKernel, Precision, C64};
use terasim_terapool::Topology;

fn cplx_small() -> impl Strategy<Value = C64> {
    (-0.5f64..0.5, -0.5f64..0.5)
}

/// Identity-plus-perturbation channel (well conditioned, row-major).
fn channel(n: usize) -> impl Strategy<Value = Vec<C64>> {
    proptest::collection::vec((-0.25f64..0.25, -0.25f64..0.25), n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i].0 += 1.0;
        }
        v
    })
}

fn precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Half16),
        Just(Precision::WDotp16),
        Just(Precision::CDotp16),
        Just(Precision::Quarter8),
        Just(Precision::WDotp8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The native detector tracks the f64 reference within fixed-precision
    /// error bounds on well-conditioned channels (16-bit variants tight,
    /// 8-bit loose).
    #[test]
    fn native_tracks_reference(
        p in precision(),
        h in channel(4),
        x in proptest::collection::vec(cplx_small(), 4),
    ) {
        let n = 4;
        let mut y = vec![(0.0, 0.0); n];
        for k in 0..n {
            for i in 0..n {
                y[k].0 += h[k * n + i].0 * x[i].0 - h[k * n + i].1 * x[i].1;
                y[k].1 += h[k * n + i].0 * x[i].1 + h[k * n + i].1 * x[i].0;
            }
        }
        let gold = native::detect_f64(n, &h, &y, 0.01);
        let dut = native::detect(p, n, &h, &y, 0.01);
        // binary8 carries a 2-bit mantissa: its quantization error on the
        // Gram matrix is amplified by the solve, so its bound is loose —
        // the point is "tracks within fixed-precision error, never blows
        // up", which is exactly the Figure 9/10 story.
        let tol = match p {
            Precision::Half16 | Precision::WDotp16 | Precision::CDotp16 => 0.05,
            Precision::Quarter8 | Precision::WDotp8 => 1.0,
        };
        for (d, g) in dut.iter().zip(&gold) {
            prop_assert!(d[0].is_finite() && d[1].is_finite(), "{p}: non-finite result");
            prop_assert!(
                (d[0].to_f64() - g.0).abs() < tol && (d[1].to_f64() - g.1).abs() < tol,
                "{p}: ({}, {}) vs ({}, {})",
                d[0].to_f64(), d[1].to_f64(), g.0, g.1
            );
        }
    }

    /// The f64 reference's Cholesky-based solve satisfies the normal
    /// equations: (H^H H + sI) x̂ = H^H y.
    #[test]
    fn reference_satisfies_normal_equations(
        h in channel(4),
        y in proptest::collection::vec(cplx_small(), 4),
        sigma in 0.001f64..1.0,
    ) {
        let n = 4;
        let xhat = native::detect_f64(n, &h, &y, sigma);
        // Compute residual r = H^H y - (H^H H + sI) x̂ directly.
        let conj_mul = |a: C64, b: C64| (a.0 * b.0 + a.1 * b.1, a.0 * b.1 - a.1 * b.0);
        let mul = |a: C64, b: C64| (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0);
        for i in 0..n {
            let mut lhs = (sigma * xhat[i].0, sigma * xhat[i].1);
            let mut rhs = (0.0, 0.0);
            for k in 0..n {
                rhs.0 += conj_mul(h[k * n + i], y[k]).0;
                rhs.1 += conj_mul(h[k * n + i], y[k]).1;
                for j in 0..n {
                    let g = conj_mul(h[k * n + i], h[k * n + j]);
                    let t = mul(g, xhat[j]);
                    lhs.0 += t.0;
                    lhs.1 += t.1;
                }
            }
            prop_assert!((lhs.0 - rhs.0).abs() < 1e-8 && (lhs.1 - rhs.1).abs() < 1e-8,
                "normal equations violated at row {i}: {lhs:?} vs {rhs:?}");
        }
    }

    /// Layout address helpers never collide: H, y, sigma, x regions of all
    /// problems are disjoint.
    #[test]
    fn layout_regions_disjoint(
        n in prop_oneof![Just(4u32), Just(8u32)],
        p in precision(),
        ppc in 1u32..4,
    ) {
        let topo = Topology::scaled(16);
        let kernel = MmseKernel::new(n, p).with_problems_per_core(ppc).with_active_cores(16);
        let layout = kernel.layout(&topo).unwrap();
        let eb = p.element_bytes();
        // Sample addresses across problems and categories.
        let mut seen = std::collections::HashMap::new();
        for prob in 0..layout.problems {
            for k in 0..n {
                for i in 0..n {
                    let a = layout.h_addr(prob, k, i);
                    prop_assert!(seen.insert(a, ("h", prob)).is_none(), "collision at {a:#x}");
                    if eb == 4 { prop_assert!(seen.insert(a + 2, ("h2", prob)).is_none()); }
                }
                let a = layout.y_addr(prob, k);
                prop_assert!(seen.insert(a, ("y", prob)).is_none(), "collision at {a:#x}");
                let a = layout.x_addr(prob, k);
                prop_assert!(seen.insert(a, ("x", prob)).is_none(), "collision at {a:#x}");
                prop_assert!(seen.insert(a + 2, ("x2", prob)).is_none());
            }
            let a = layout.sigma_addr(prob);
            prop_assert!(seen.insert(a, ("s", prob)).is_none(), "collision at {a:#x}");
        }
    }

    /// Quantization helpers are monotone and respect signs.
    #[test]
    fn quantizers_monotone(x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(data::q16(lo).to_f64() <= data::q16(hi).to_f64());
        prop_assert!(data::q8(lo).to_f64() <= data::q8(hi).to_f64());
        prop_assert_eq!(data::q16(-x).to_bits(), (-data::q16(x)).to_bits());
    }

    /// The effective unroll factor always divides the problem size.
    #[test]
    fn unroll_clamp_is_sound(
        n in prop_oneof![Just(4u32), Just(8u32), Just(16u32), Just(32u32)],
        p in precision(),
        requested in 1u32..8,
    ) {
        let kernel = MmseKernel::new(n, p).with_unroll(requested);
        let u = kernel.effective_unroll();
        let epl = p.elements_per_load() as u32;
        prop_assert!(u >= 1 && u <= requested);
        prop_assert_eq!(n % (2 * u * epl), 0, "body of {} x 2 chains x {} must divide {}", u, epl, n);
    }
}
