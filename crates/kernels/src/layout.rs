//! Cluster-memory placement of MMSE operands (paper §IV, Figure 4).
//!
//! Inputs (`H`, `y`, `σ²`) and outputs (`x̂`) live in the *interleaved* L1
//! view: consecutive elements spread over different banks, so cores fetch
//! from many banks at once. Intermediates (`G`, `L`, `w`, reciprocal
//! diagonal) live in the *sequential* view: each core's scratch stays in
//! its own tile's banks. Because both views alias the same physical banks,
//! the layout splits each bank's offset space — interleaved data at the
//! bottom, per-core scratch at the top.

use core::fmt;

use terasim_terapool::Topology;

use crate::emit::MmseKernel;
use crate::Precision;

/// Error produced when a kernel configuration does not fit the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The interleaved operand area plus per-core scratch exceeds L1.
    Capacity {
        /// Bytes needed in the interleaved region.
        interleaved: u32,
        /// Bytes needed per tile for core scratch.
        scratch_per_tile: u32,
        /// Bytes available per tile.
        tile_bytes: u32,
    },
    /// More active cores were requested than the topology has.
    TooManyCores {
        /// Requested count.
        requested: u32,
        /// Available count.
        available: u32,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Capacity { interleaved, scratch_per_tile, tile_bytes } => write!(
                f,
                "operands do not fit L1: {interleaved} B interleaved + {scratch_per_tile} B/tile scratch > {tile_bytes} B/tile"
            ),
            LayoutError::TooManyCores { requested, available } => {
                write!(f, "{requested} active cores requested but the cluster has {available}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Resolved addresses of every operand region.
///
/// All `*_base`/`*_stride` pairs address the interleaved L1 view; the
/// `g/l/w/rdiag` offsets are relative to each core's sequential-view
/// scratch base ([`ProblemLayout::core_scratch_base`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemLayout {
    /// MIMO size `N` (the paper uses square `N×N` problems).
    pub n: u32,
    /// Kernel precision (fixes element sizes).
    pub precision: Precision,
    /// Total problems (`active_cores * problems_per_core`).
    pub problems: u32,
    /// Problems each active core solves back to back.
    pub problems_per_core: u32,
    /// Harts that participate.
    pub active_cores: u32,
    /// Barrier counter word (interleaved region).
    pub barrier_addr: u32,
    /// Channel matrices, column-major per problem.
    pub h_base: u32,
    /// Bytes between consecutive problems' `H`.
    pub h_stride: u32,
    /// Received vectors.
    pub y_base: u32,
    /// Bytes between consecutive problems' `y`.
    pub y_stride: u32,
    /// Noise powers (binary16, one per problem).
    pub sigma_base: u32,
    /// Bytes between consecutive problems' `σ²`.
    pub sigma_stride: u32,
    /// Detected symbols (packed binary16 complex).
    pub x_base: u32,
    /// Bytes between consecutive problems' `x̂`.
    pub x_stride: u32,
    /// Sequential-view byte offset where per-core scratch begins in each
    /// tile (keeps scratch rows clear of the interleaved area).
    pub seq_scratch_off: u32,
    /// Scratch bytes per core.
    pub core_scratch: u32,
    /// Offset of the `G` triangle inside core scratch.
    pub g_off: u32,
    /// Offset of the `L` triangle inside core scratch.
    pub l_off: u32,
    /// Offset of the work vector `w` (holds `z`, then `w`).
    pub w_off: u32,
    /// Offset of the reciprocal-diagonal vector.
    pub rdiag_off: u32,
}

impl ProblemLayout {
    pub(crate) fn resolve(kernel: &MmseKernel, topo: &Topology) -> Result<Self, LayoutError> {
        let n = kernel.n;
        let eb = kernel.precision.element_bytes();
        let active_cores = kernel.active_cores.unwrap_or(topo.num_cores());
        if active_cores > topo.num_cores() {
            return Err(LayoutError::TooManyCores { requested: active_cores, available: topo.num_cores() });
        }
        let problems = active_cores * kernel.problems_per_core;

        let align = |x: u32, a: u32| x.div_ceil(a) * a;
        let barrier_addr = Topology::L1_BASE;
        let h_base = barrier_addr + 64;
        // Ablation D4: bank-aligned strides put every problem's operands in
        // the same banks (maximal conflicts); default packs them densely so
        // the interleaved view spreads traffic (paper Figure 4).
        let row = topo.num_banks() * 4;
        let h_stride = if kernel.bank_aligned_inputs { align(n * n * eb, row) } else { n * n * eb };
        let y_base = align(h_base + problems * h_stride, 4);
        let y_stride = if kernel.bank_aligned_inputs { align(n * eb, row) } else { n * eb };
        let sigma_base = align(y_base + problems * y_stride, 4);
        let sigma_stride = 4;
        let x_base = align(sigma_base + problems * sigma_stride, 4);
        let x_stride = n * 4;
        let interleaved_end = x_base + problems * x_stride;

        // Scratch per core: G and L triangles (packed f16 complex), w, rdiag.
        let tri_bytes = n * (n + 1) / 2 * 4;
        let g_off = 0;
        let l_off = g_off + tri_bytes;
        let w_off = l_off + tri_bytes;
        let rdiag_off = w_off + n * 4;
        let core_scratch = align(rdiag_off + align(n * 2, 4), 8);

        // Bank-offset split: interleaved rows come first.
        let row_bytes = topo.banks_per_tile * 4; // one bank-offset row, per tile
        let int_rows = (interleaved_end / 4).div_ceil(topo.num_banks());
        let seq_scratch_off = int_rows * row_bytes;
        let scratch_per_tile = core_scratch * topo.cores_per_tile;
        if seq_scratch_off + scratch_per_tile > topo.tile_spm_bytes {
            return Err(LayoutError::Capacity {
                interleaved: interleaved_end,
                scratch_per_tile: seq_scratch_off + scratch_per_tile,
                tile_bytes: topo.tile_spm_bytes,
            });
        }

        Ok(Self {
            n,
            precision: kernel.precision,
            problems,
            problems_per_core: kernel.problems_per_core,
            active_cores,
            barrier_addr,
            h_base,
            h_stride,
            y_base,
            y_stride,
            sigma_base,
            sigma_stride,
            x_base,
            x_stride,
            seq_scratch_off,
            core_scratch,
            g_off,
            l_off,
            w_off,
            rdiag_off,
        })
    }

    /// Address of `H[k][i]` (row `k`, column `i`) of `problem` —
    /// column-major storage.
    pub fn h_addr(&self, problem: u32, k: u32, i: u32) -> u32 {
        debug_assert!(k < self.n && i < self.n && problem < self.problems);
        self.h_base + problem * self.h_stride + (i * self.n + k) * self.precision.element_bytes()
    }

    /// Address of `y[k]` of `problem`.
    pub fn y_addr(&self, problem: u32, k: u32) -> u32 {
        self.y_base + problem * self.y_stride + k * self.precision.element_bytes()
    }

    /// Address of `σ²` of `problem`.
    pub fn sigma_addr(&self, problem: u32) -> u32 {
        self.sigma_base + problem * self.sigma_stride
    }

    /// Address of `x̂[i]` of `problem` (packed binary16 complex).
    pub fn x_addr(&self, problem: u32, i: u32) -> u32 {
        self.x_base + problem * self.x_stride + i * 4
    }

    /// Sequential-view base address of `core`'s scratch area.
    pub fn core_scratch_base(&self, topo: &Topology, core: u32) -> u32 {
        let tile = topo.tile_of_core(core);
        let within = core % topo.cores_per_tile;
        Topology::SEQ_BASE + tile * Topology::SEQ_STRIDE + self.seq_scratch_off + within * self.core_scratch
    }

    /// Address of triangle entry `(i, j)` (`j <= i`) in `core`'s `G`.
    pub fn g_addr(&self, topo: &Topology, core: u32, i: u32, j: u32) -> u32 {
        debug_assert!(j <= i && i < self.n);
        self.core_scratch_base(topo, core) + self.g_off + (i * (i + 1) / 2 + j) * 4
    }

    /// Address of triangle entry `(i, j)` in `core`'s `L`.
    pub fn l_addr(&self, topo: &Topology, core: u32, i: u32, j: u32) -> u32 {
        debug_assert!(j <= i && i < self.n);
        self.core_scratch_base(topo, core) + self.l_off + (i * (i + 1) / 2 + j) * 4
    }

    /// First problem index handled by `core`.
    pub fn first_problem(&self, core: u32) -> u32 {
        core * self.problems_per_core
    }
}

#[cfg(test)]
mod tests {
    use crate::MmseKernel;

    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let topo = Topology::scaled(64);
        for precision in Precision::ALL {
            let kernel = MmseKernel::new(8, precision);
            let l = kernel.layout(&topo).unwrap();
            assert!(l.h_base >= l.barrier_addr + 4);
            assert!(l.y_base >= l.h_base + l.problems * l.h_stride);
            assert!(l.sigma_base >= l.y_base + l.problems * l.y_stride);
            assert!(l.x_base >= l.sigma_base + l.problems * l.sigma_stride);
        }
    }

    #[test]
    fn scratch_rows_clear_interleaved_rows() {
        let topo = Topology::scaled(64);
        let kernel = MmseKernel::new(8, Precision::CDotp16);
        let l = kernel.layout(&topo).unwrap();
        let int_end = l.x_base + l.problems * l.x_stride;
        // Physical row of the last interleaved word vs the first scratch word.
        let last_int_row = (int_end / 4 - 1) / topo.num_banks();
        let first_scratch_row = l.seq_scratch_off / 4 / topo.banks_per_tile;
        assert!(first_scratch_row > last_int_row);
        // And the scratch slots are valid L1 addresses.
        let base = l.core_scratch_base(&topo, 63);
        assert!(topo.l1_slot(base + l.core_scratch - 4).is_some());
    }

    #[test]
    fn capacity_error_when_too_big() {
        let topo = Topology::scaled(1024); // 4 MiB L1, 32 KiB tiles
        let kernel = MmseKernel::new(32, Precision::CDotp16);
        assert!(matches!(kernel.layout(&topo), Err(LayoutError::Capacity { .. })));
        // A deeper-bank configuration fits (capacity substitution, DESIGN.md).
        let big = Topology { tile_spm_bytes: 128 << 10, ..topo };
        assert!(kernel.layout(&big).is_ok());
    }

    #[test]
    fn address_helpers_are_consistent() {
        let topo = Topology::scaled(16);
        let kernel = MmseKernel::new(4, Precision::WDotp8).with_problems_per_core(2);
        let l = kernel.layout(&topo).unwrap();
        assert_eq!(l.problems, 32);
        // Column-major: consecutive k in one column are adjacent.
        assert_eq!(l.h_addr(1, 1, 0), l.h_addr(1, 0, 0) + 2);
        // Columns are n elements apart.
        assert_eq!(l.h_addr(0, 0, 1), l.h_addr(0, 0, 0) + 4 * 2);
        assert_eq!(l.first_problem(3), 6);
    }
}
