//! The five kernel arithmetic precisions (paper §IV).

use core::fmt;

/// Arithmetic precision of the MMSE kernel's Gram-matrix and
/// matched-filter stages (the triangular factorization and solves always
/// run in binary16, as in the paper: the 8-bit variants "cast the outputs
/// to 16b to solve the linear system in higher numerical precision").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// `16bHalf`: scalar `zhinx` binary16; real/imaginary parts are loaded
    /// and stored separately (twice the memory operations).
    Half16,
    /// `16bwDotp`: SmallFloat widening dot products with 32-bit
    /// accumulators; two `wDotp` and one shuffle per complex MAC.
    WDotp16,
    /// `16bCDotp`: the complex dot-product instruction, 32-bit internal
    /// precision, packed 16-bit accumulators; one instruction per MAC.
    CDotp16,
    /// `8bQuarter`: binary8 (E5M2) scalar complex MACs; outputs cast to binary16
    /// before the solve.
    Quarter8,
    /// `8bwDotp`: packed binary8 widening dot products with 16-bit
    /// accumulators; one `wDotp` + one shuffle per two complex MACs.
    WDotp8,
}

impl Precision {
    /// All precisions in the paper's presentation order.
    pub const ALL: [Precision; 5] =
        [Precision::Half16, Precision::WDotp16, Precision::CDotp16, Precision::Quarter8, Precision::WDotp8];

    /// The four precisions used in the cycle/runtime figures (Figures 5-8
    /// omit `8bQuarter`).
    pub const TIMED: [Precision; 4] =
        [Precision::Half16, Precision::WDotp16, Precision::CDotp16, Precision::WDotp8];

    /// Bytes per complex element of `H` and `y` in this precision.
    pub const fn element_bytes(self) -> u32 {
        match self {
            Precision::Half16 | Precision::WDotp16 | Precision::CDotp16 => 4,
            Precision::Quarter8 | Precision::WDotp8 => 2,
        }
    }

    /// Complex elements consumed per emitted load (packed 8-bit loads
    /// fetch two complexes per 32-bit word).
    pub const fn elements_per_load(self) -> usize {
        match self {
            Precision::WDotp8 => 2,
            _ => 1,
        }
    }

    /// The paper's name for the variant.
    pub const fn paper_name(self) -> &'static str {
        match self {
            Precision::Half16 => "16bHalf",
            Precision::WDotp16 => "16bwDotp",
            Precision::CDotp16 => "16bCDotp",
            Precision::Quarter8 => "8bQuarter",
            Precision::WDotp8 => "8bwDotp",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Precision::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, ["16bHalf", "16bwDotp", "16bCDotp", "8bQuarter", "8bwDotp"]);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(Precision::Half16.element_bytes(), 4);
        assert_eq!(Precision::WDotp8.element_bytes(), 2);
        assert_eq!(Precision::WDotp8.elements_per_load(), 2);
        assert_eq!(Precision::CDotp16.elements_per_load(), 1);
    }
}
