//! Code generation for the parallel MMSE kernel (paper §IV).
//!
//! The generated program is shared by every hart: each core reads
//! `mhartid`, derives its operand pointers and solves its batch of
//! subcarrier problems, then joins the cluster barrier (`amoadd` +
//! `wfi`/wake). The Gram-matrix and matched-filter loops use the selected
//! [`Precision`]'s instructions with two interleaved accumulation chains
//! (the paper's loop unrolling, which hides FPU and memory latency); the
//! Cholesky factorization and triangular solves run in scalar binary16.

use terasim_riscv::{csr, AsmError, Assembler, Image, Reg, Segment};
use terasim_terapool::Topology;

use crate::layout::{LayoutError, ProblemLayout};
use crate::Precision;

// Global register roles for the generated kernel.
const H: Reg = Reg::S0; // H base (current problem, column-major)
const Y: Reg = Reg::S1; // y base (current problem)
const X: Reg = Reg::S2; // x̂ base (current problem)
const G: Reg = Reg::S3; // Gram triangle (core scratch)
const L: Reg = Reg::S4; // Cholesky triangle (core scratch)
const W: Reg = Reg::S5; // work vector z/w (core scratch)
const SIG: Reg = Reg::S6; // prepared σ² (format depends on precision)
const RD: Reg = Reg::S7; // reciprocal-diagonal base (core scratch)
const SIGP: Reg = Reg::S8; // σ² load pointer (advances per problem)
const PCNT: Reg = Reg::S9; // problems remaining
const I: Reg = Reg::S10; // outer loop counter
const J: Reg = Reg::S11; // inner loop counter

/// Generator for the software-defined MMSE detector.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct MmseKernel {
    /// MIMO size `N` (4, 8, 16 or 32 in the paper).
    pub n: u32,
    /// Arithmetic precision of the Gram/matched-filter stages.
    pub precision: Precision,
    /// Subcarrier problems each core solves back to back (1 for the
    /// parallel experiment, `NSC / cores` for the Monte-Carlo batch).
    pub problems_per_core: u32,
    /// Harts that participate (`None` = all cores of the topology).
    pub active_cores: Option<u32>,
    /// Requested unroll factor of the dot-product loops (clamped so the
    /// unrolled body divides `N`).
    pub unroll: u32,
    /// Adversarial operand placement for the layout ablation (DESIGN.md
    /// D4): pads per-problem strides so every core's `H`/`y` start in the
    /// *same* banks, serializing the whole cluster on a few banks. The
    /// default (`false`) is the paper's Figure-4 interleaved layout.
    pub bank_aligned_inputs: bool,
}

impl MmseKernel {
    /// Creates a kernel for `n × n` MIMO in the given precision, one
    /// problem per core on all cores, with the paper's default unrolling.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two in `4..=32`.
    pub fn new(n: u32, precision: Precision) -> Self {
        assert!(n.is_power_of_two() && (4..=32).contains(&n), "n must be 4, 8, 16 or 32");
        Self { n, precision, problems_per_core: 1, active_cores: None, unroll: 2, bank_aligned_inputs: false }
    }

    /// Sets the number of problems each core solves (Monte-Carlo batching).
    pub fn with_problems_per_core(mut self, problems: u32) -> Self {
        assert!(problems >= 1);
        self.problems_per_core = problems;
        self
    }

    /// Restricts execution to the first `cores` harts.
    pub fn with_active_cores(mut self, cores: u32) -> Self {
        self.active_cores = Some(cores);
        self
    }

    /// Sets the requested dot-product unroll factor (ablation D3).
    pub fn with_unroll(mut self, unroll: u32) -> Self {
        assert!(unroll >= 1);
        self.unroll = unroll;
        self
    }

    /// Selects the adversarial bank-aligned operand placement (ablation
    /// D4); see the field documentation.
    pub fn with_bank_aligned_inputs(mut self, aligned: bool) -> Self {
        self.bank_aligned_inputs = aligned;
        self
    }

    /// Effective unroll factor after clamping to the problem size: the
    /// unrolled body consumes `2 * unroll * elements_per_load` elements
    /// and must divide `N`.
    pub fn effective_unroll(&self) -> u32 {
        let epl = self.precision.elements_per_load() as u32;
        let mut u = self.unroll;
        while u > 1 && !self.n.is_multiple_of(2 * u * epl) {
            u -= 1;
        }
        u.max(1)
    }

    /// Resolves the operand layout for `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] when the configuration exceeds L1 capacity
    /// or the core count.
    pub fn layout(&self, topo: &Topology) -> Result<ProblemLayout, LayoutError> {
        ProblemLayout::resolve(self, topo)
    }

    /// Generates the program image (text at [`Topology::L2_BASE`]).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] wrapping a [`LayoutError`] when the layout
    /// fails, or an assembly error (which would be a generator bug).
    pub fn build(&self, topo: &Topology) -> Result<Image, BuildError> {
        let layout = self.layout(topo)?;
        assert!(topo.cores_per_tile == 8, "the generated prologue hard-codes 8 cores per tile (TeraPool)");
        let mut a = Assembler::new(Topology::L2_BASE);
        self.emit_program(&mut a, &layout);
        let words = a.finish()?;
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &words));
        Ok(image)
    }

    fn emit_program(&self, a: &mut Assembler, l: &ProblemLayout) {
        let exit = a.new_label();
        let work = a.new_label();

        // ---- prologue: role discovery --------------------------------
        a.csrr(Reg::T0, csr::MHARTID);
        a.li(Reg::T1, l.active_cores as i32);
        a.bltu(Reg::T0, Reg::T1, work);
        a.j(exit); // inactive harts exit immediately (and skip the barrier)
        a.bind(work);

        // first problem = hart * problems_per_core
        a.li(Reg::T1, l.problems_per_core as i32);
        a.mul(Reg::T2, Reg::T0, Reg::T1);
        let ptr = |a: &mut Assembler, dst: Reg, base: u32, stride: u32| {
            a.li(Reg::T3, stride as i32);
            a.mul(Reg::T4, Reg::T2, Reg::T3);
            a.li(Reg::T5, base as i32);
            a.add(dst, Reg::T4, Reg::T5);
        };
        ptr(a, H, l.h_base, l.h_stride);
        ptr(a, Y, l.y_base, l.y_stride);
        ptr(a, X, l.x_base, l.x_stride);
        ptr(a, SIGP, l.sigma_base, l.sigma_stride);

        // scratch base = SEQ_BASE + tile*STRIDE + seq_off + within*core_scratch
        a.srli(Reg::T3, Reg::T0, 3); // tile (8 cores per tile)
        a.li(Reg::T4, Topology::SEQ_STRIDE as i32);
        a.mul(Reg::T3, Reg::T3, Reg::T4);
        a.li(Reg::T5, (Topology::SEQ_BASE + l.seq_scratch_off) as i32);
        a.add(Reg::T3, Reg::T3, Reg::T5);
        a.andi(Reg::T4, Reg::T0, 7);
        a.li(Reg::T6, l.core_scratch as i32);
        a.mul(Reg::T4, Reg::T4, Reg::T6);
        a.add(Reg::T3, Reg::T3, Reg::T4);
        let offset_into = |a: &mut Assembler, dst: Reg, off: u32| {
            a.li(Reg::T5, off as i32);
            a.add(dst, Reg::T3, Reg::T5);
        };
        offset_into(a, G, l.g_off);
        offset_into(a, L, l.l_off);
        offset_into(a, W, l.w_off);
        offset_into(a, RD, l.rdiag_off);

        a.li(PCNT, l.problems_per_core as i32);

        // ---- per-problem body -----------------------------------------
        let problem_top = a.new_label();
        a.bind(problem_top);
        self.emit_sigma_prep(a);
        self.emit_gram(a);
        self.emit_mvm(a);
        self.emit_cholesky(a);
        self.emit_forward(a);
        self.emit_backward(a);

        // advance to the next problem
        a.li(Reg::T0, l.h_stride as i32);
        a.add(H, H, Reg::T0);
        a.addi(Y, Y, l.y_stride as i32);
        a.addi(SIGP, SIGP, l.sigma_stride as i32);
        a.addi(X, X, l.x_stride as i32);
        a.addi(PCNT, PCNT, -1);
        a.bnez(PCNT, problem_top);

        // ---- barrier + exit -------------------------------------------
        let not_last = a.new_label();
        a.li(Reg::A0, l.barrier_addr as i32);
        a.li(Reg::A1, 1);
        a.amoadd_w(Reg::A2, Reg::A1, Reg::A0);
        a.li(Reg::A3, (l.active_cores - 1) as i32);
        a.bne(Reg::A2, Reg::A3, not_last);
        a.li(Reg::A4, Topology::CTRL_WAKE_ALL as i32);
        a.sw(Reg::A1, 0, Reg::A4);
        a.j(exit);
        a.bind(not_last);
        a.wfi();
        a.bind(exit);
        a.li(Reg::A0, 0);
        a.ecall();
    }

    /// Loads this problem's σ² and prepares [`SIG`] for the precision's
    /// diagonal update.
    fn emit_sigma_prep(&self, a: &mut Assembler) {
        a.lhu(Reg::T0, 0, SIGP);
        match self.precision {
            // Scalar binary16 add on the real part.
            Precision::Half16 => {
                a.mv(SIG, Reg::T0);
            }
            // The wide accumulator adds σ² in f32 before packing.
            Precision::WDotp16 => {
                a.fcvt_s_h(SIG, Reg::T0);
            }
            // Packed [σ², +0] added lanewise after packing.
            Precision::CDotp16 | Precision::Quarter8 | Precision::WDotp8 => {
                a.mv(SIG, Reg::T0);
            }
        }
    }

    /// One dot-product step of accumulation chain `chain` (0 or 1): loads
    /// the next elements of both streams (post-increment) and accumulates
    /// `conj(a)·b`.
    fn emit_cmac_step(&self, a: &mut Assembler, chain: usize) {
        let eb = self.precision.element_bytes() as i32;
        let (re, im) = if chain == 0 { (Reg::T0, Reg::T1) } else { (Reg::T2, Reg::T3) };
        match self.precision {
            Precision::Half16 => {
                a.p_lh(Reg::A2, 2, Reg::A0); // ar
                a.p_lh(Reg::A3, 2, Reg::A0); // ai
                a.p_lh(Reg::A4, 2, Reg::A1); // br
                a.p_lh(Reg::A5, 2, Reg::A1); // bi
                a.fmadd_h(re, Reg::A2, Reg::A4, re); // re += ar*br
                a.fmadd_h(re, Reg::A3, Reg::A5, re); // re += ai*bi
                a.fmadd_h(im, Reg::A2, Reg::A5, im); // im += ar*bi
                a.fnmsub_h(im, Reg::A3, Reg::A4, im); // im -= ai*br
            }
            Precision::WDotp16 => {
                a.p_lw(Reg::A2, eb, Reg::A0);
                a.p_lw(Reg::A3, eb, Reg::A1);
                a.pv_swap_h(Reg::A4, Reg::A3);
                a.vfdotpex_s_h(re, Reg::A2, Reg::A3); // re += ar*br + ai*bi
                a.vfndotpex_s_h(im, Reg::A2, Reg::A4); // im += ar*bi - ai*br
            }
            Precision::CDotp16 => {
                a.p_lw(Reg::A2, eb, Reg::A0);
                a.p_lw(Reg::A3, eb, Reg::A1);
                a.vfcdotpex_c_s_h(re, Reg::A2, Reg::A3);
            }
            Precision::Quarter8 => {
                a.p_lhu(Reg::A2, eb, Reg::A0);
                a.p_lhu(Reg::A3, eb, Reg::A1);
                a.pv_cmac_c_b(re, Reg::A2, Reg::A3);
            }
            Precision::WDotp8 => {
                a.p_lw(Reg::A2, 4, Reg::A0); // two packed complexes
                a.p_lw(Reg::A3, 4, Reg::A1);
                a.pv_swap_b(Reg::A4, Reg::A3);
                a.vfdotpex_h_b(re, Reg::A2, Reg::A3); // re pair += ar*br + ai*bi
                a.vfndotpex_h_b(im, Reg::A2, Reg::A4); // im pair += ar*bi - ai*br
            }
        }
    }

    /// Emits a full `conj(a)·b` dot product over `N` elements: both
    /// streams walked by post-increment from `a0`/`a1`, result packed
    /// binary16 `[re, im]` in `t0`. Uses `t0..t3`, `a2..a5`, `a6`.
    fn emit_dot(&self, a: &mut Assembler, diag: bool) {
        // Zero the accumulators.
        for r in [Reg::T0, Reg::T1, Reg::T2, Reg::T3] {
            a.mv(r, Reg::Zero);
        }
        let epl = self.precision.elements_per_load() as u32;
        let u = self.effective_unroll();
        let steps = 2 * u; // alternating chains
        let trips = self.n / (steps * epl);
        debug_assert!(trips >= 1 && trips * steps * epl == self.n);

        let k_loop = a.new_label();
        if trips > 1 {
            a.li(Reg::A6, trips as i32);
            a.bind(k_loop);
        }
        for s in 0..steps {
            self.emit_cmac_step(a, (s % 2) as usize);
        }
        if trips > 1 {
            a.addi(Reg::A6, Reg::A6, -1);
            a.bnez(Reg::A6, k_loop);
        }
        self.emit_dot_finish(a, diag);
    }

    /// Combines the two chains, applies σ² on diagonal entries, and packs
    /// the result into `t0` as `[im|re]` binary16.
    fn emit_dot_finish(&self, a: &mut Assembler, diag: bool) {
        let pack_t0_t1 = |a: &mut Assembler| {
            a.slli(Reg::T0, Reg::T0, 16);
            a.srli(Reg::T0, Reg::T0, 16);
            a.slli(Reg::T1, Reg::T1, 16);
            a.or(Reg::T0, Reg::T0, Reg::T1);
        };
        match self.precision {
            Precision::Half16 => {
                a.fadd_h(Reg::T0, Reg::T0, Reg::T2);
                a.fadd_h(Reg::T1, Reg::T1, Reg::T3);
                if diag {
                    a.fadd_h(Reg::T0, Reg::T0, SIG);
                }
                pack_t0_t1(a);
            }
            Precision::WDotp16 => {
                a.fadd_s(Reg::T0, Reg::T0, Reg::T2);
                a.fadd_s(Reg::T1, Reg::T1, Reg::T3);
                if diag {
                    a.fadd_s(Reg::T0, Reg::T0, SIG);
                }
                a.vfcpka_h_s(Reg::T0, Reg::T0, Reg::T1);
            }
            Precision::CDotp16 => {
                a.vfadd_h(Reg::T0, Reg::T0, Reg::T2);
                if diag {
                    a.vfadd_h(Reg::T0, Reg::T0, SIG);
                }
            }
            Precision::Quarter8 => {
                a.vfcvt_h_b_lo(Reg::T0, Reg::T0);
                a.vfcvt_h_b_lo(Reg::T2, Reg::T2);
                a.vfadd_h(Reg::T0, Reg::T0, Reg::T2);
                if diag {
                    a.vfadd_h(Reg::T0, Reg::T0, SIG);
                }
            }
            Precision::WDotp8 => {
                a.vfadd_h(Reg::T0, Reg::T0, Reg::T2); // re lane partials
                a.vfadd_h(Reg::T1, Reg::T1, Reg::T3); // im lane partials
                a.pv_swap_h(Reg::A2, Reg::T0);
                a.vfadd_h(Reg::T0, Reg::T0, Reg::A2); // horizontal re (both lanes)
                a.pv_swap_h(Reg::A2, Reg::T1);
                a.vfadd_h(Reg::T1, Reg::T1, Reg::A2); // horizontal im
                pack_t0_t1(a);
                if diag {
                    a.vfadd_h(Reg::T0, Reg::T0, SIG);
                }
            }
        }
    }

    /// Gram matrix: lower triangle of `G = H^H H + σ² I`, row-major packed
    /// binary16 in core scratch.
    fn emit_gram(&self, a: &mut Assembler) {
        let col = (self.n * self.precision.element_bytes()) as i32;
        a.mv(Reg::T4, H); // column i base
        a.mv(Reg::A7, G); // triangle store walker
        a.li(I, 0);
        let i_loop = a.new_label();
        a.bind(i_loop);
        {
            a.mv(Reg::T5, H); // column j base
            a.li(J, 0);
            let j_check = a.new_label();
            let diag = a.new_label();
            a.bind(j_check);
            a.beq(J, I, diag);
            {
                a.mv(Reg::A0, Reg::T4);
                a.mv(Reg::A1, Reg::T5);
                self.emit_dot(a, false);
                a.p_sw(Reg::T0, 4, Reg::A7);
                a.addi(Reg::T5, Reg::T5, col);
                a.addi(J, J, 1);
                a.j(j_check);
            }
            a.bind(diag);
            a.mv(Reg::A0, Reg::T4);
            a.mv(Reg::A1, Reg::T4);
            self.emit_dot(a, true);
            a.p_sw(Reg::T0, 4, Reg::A7);
        }
        a.addi(Reg::T4, Reg::T4, col);
        a.addi(I, I, 1);
        a.li(Reg::T6, self.n as i32);
        a.blt(I, Reg::T6, i_loop);
    }

    /// Matched filter: `z[i] = conj(H[:,i]) · y` into the work vector.
    fn emit_mvm(&self, a: &mut Assembler) {
        let col = (self.n * self.precision.element_bytes()) as i32;
        a.mv(Reg::T4, H);
        a.mv(Reg::A7, W);
        a.li(I, 0);
        let loop_top = a.new_label();
        a.bind(loop_top);
        a.mv(Reg::A0, Reg::T4);
        a.mv(Reg::A1, Y);
        self.emit_dot(a, false);
        a.p_sw(Reg::T0, 4, Reg::A7);
        a.addi(Reg::T4, Reg::T4, col);
        a.addi(I, I, 1);
        a.li(Reg::T6, self.n as i32);
        a.blt(I, Reg::T6, loop_top);
    }

    /// In-scratch Cholesky factorization `G = L L^H` in binary16, storing
    /// the reciprocal diagonal for the solves.
    fn emit_cholesky(&self, a: &mut Assembler) {
        let n = self.n as i32;
        a.mv(Reg::A0, G); // &G[j][j]
        a.mv(Reg::A2, L); // &L[j][0]
        a.mv(Reg::A3, RD); // rdiag walker
        a.li(I, 0);
        let chol_j = a.new_label();
        a.bind(chol_j);
        {
            // s = G[j][j].re - sum |L[j][k]|^2
            a.lh(Reg::T0, 0, Reg::A0);
            a.mv(Reg::A1, Reg::A2);
            let dks = a.new_label();
            a.beqz(I, dks);
            {
                a.mv(Reg::T5, I);
                let dk = a.new_label();
                a.bind(dk);
                a.p_lh(Reg::T1, 2, Reg::A1);
                a.p_lh(Reg::T2, 2, Reg::A1);
                a.fnmsub_h(Reg::T0, Reg::T1, Reg::T1, Reg::T0);
                a.fnmsub_h(Reg::T0, Reg::T2, Reg::T2, Reg::T0);
                a.addi(Reg::T5, Reg::T5, -1);
                a.bnez(Reg::T5, dk);
            }
            a.bind(dks);
            a.fsqrt_h(Reg::T3, Reg::T0);
            a.sh(Reg::T3, 0, Reg::A1); // L[j][j] = (d, 0)
            a.sh(Reg::Zero, 2, Reg::A1);
            a.li(Reg::T4, 0x3c00); // 1.0 in binary16
            a.fdiv_h(Reg::T4, Reg::T4, Reg::T3);
            a.p_sh(Reg::T4, 2, Reg::A3); // rdiag[j] = 1/d

            // i-loop: L[i][j] = (G[i][j] - sum L[i][k] conj(L[j][k])) / d
            let next_j = a.new_label();
            a.addi(J, I, 1);
            a.li(Reg::T6, n);
            a.beq(J, Reg::T6, next_j);
            {
                a.slli(Reg::T5, I, 2);
                a.addi(Reg::T5, Reg::T5, 4);
                a.add(Reg::A4, Reg::A0, Reg::T5); // &G[i][j]
                a.add(Reg::A5, Reg::A2, Reg::T5); // &L[i][0]
                let chol_i = a.new_label();
                a.bind(chol_i);
                a.lh(Reg::T0, 0, Reg::A4); // c.re
                a.lh(Reg::T1, 2, Reg::A4); // c.im
                a.mv(Reg::A6, Reg::A5);
                a.mv(Reg::A7, Reg::A2);
                let cks = a.new_label();
                a.beqz(I, cks);
                {
                    a.mv(Reg::T5, I);
                    let ck = a.new_label();
                    a.bind(ck);
                    a.p_lh(Reg::T2, 2, Reg::A6); // L[i][k].re
                    a.p_lh(Reg::T3, 2, Reg::A6); // L[i][k].im
                    a.p_lh(Reg::T4, 2, Reg::A7); // L[j][k].re
                    a.p_lh(Reg::T6, 2, Reg::A7); // L[j][k].im
                                                 // c -= L[i][k] * conj(L[j][k])
                    a.fnmsub_h(Reg::T0, Reg::T2, Reg::T4, Reg::T0);
                    a.fnmsub_h(Reg::T0, Reg::T3, Reg::T6, Reg::T0);
                    a.fnmsub_h(Reg::T1, Reg::T3, Reg::T4, Reg::T1);
                    a.fmadd_h(Reg::T1, Reg::T2, Reg::T6, Reg::T1);
                    a.addi(Reg::T5, Reg::T5, -1);
                    a.bnez(Reg::T5, ck);
                }
                a.bind(cks);
                a.lh(Reg::T4, -2, Reg::A3); // rdiag[j]
                a.fmul_h(Reg::T0, Reg::T0, Reg::T4);
                a.fmul_h(Reg::T1, Reg::T1, Reg::T4);
                a.sh(Reg::T0, 0, Reg::A6); // a6 landed on &L[i][j]
                a.sh(Reg::T1, 2, Reg::A6);
                a.slli(Reg::T5, J, 2);
                a.addi(Reg::T5, Reg::T5, 4);
                a.add(Reg::A4, Reg::A4, Reg::T5); // next row: += (i+1)*4
                a.add(Reg::A5, Reg::A5, Reg::T5);
                a.addi(J, J, 1);
                a.li(Reg::T6, n);
                a.bne(J, Reg::T6, chol_i);
            }
            a.bind(next_j);
            a.slli(Reg::T5, I, 2);
            a.addi(Reg::T6, Reg::T5, 8);
            a.add(Reg::A0, Reg::A0, Reg::T6); // &G[j+1][j+1]: += (j+2)*4
            a.addi(Reg::T6, Reg::T5, 4);
            a.add(Reg::A2, Reg::A2, Reg::T6); // &L[j+1][0]: += (j+1)*4
        }
        a.addi(I, I, 1);
        a.li(Reg::T6, n);
        a.bne(I, Reg::T6, chol_j);
    }

    /// Forward substitution `L w = z` in place over the work vector.
    fn emit_forward(&self, a: &mut Assembler) {
        let n = self.n as i32;
        a.mv(Reg::A3, W); // &w[i]
        a.mv(Reg::A1, L); // &L[i][0]
        a.mv(Reg::A2, RD);
        a.li(I, 0);
        let fwd_i = a.new_label();
        a.bind(fwd_i);
        a.lh(Reg::T0, 0, Reg::A3);
        a.lh(Reg::T1, 2, Reg::A3);
        a.mv(Reg::A6, Reg::A1);
        a.mv(Reg::A7, W);
        let fks = a.new_label();
        a.beqz(I, fks);
        {
            a.mv(Reg::T5, I);
            let fk = a.new_label();
            a.bind(fk);
            a.p_lh(Reg::T2, 2, Reg::A6); // L[i][k].re
            a.p_lh(Reg::T3, 2, Reg::A6); // L[i][k].im
            a.p_lh(Reg::T4, 2, Reg::A7); // w[k].re
            a.p_lh(Reg::T6, 2, Reg::A7); // w[k].im
                                         // c -= L[i][k] * w[k]
            a.fnmsub_h(Reg::T0, Reg::T2, Reg::T4, Reg::T0);
            a.fmadd_h(Reg::T0, Reg::T3, Reg::T6, Reg::T0);
            a.fnmsub_h(Reg::T1, Reg::T2, Reg::T6, Reg::T1);
            a.fnmsub_h(Reg::T1, Reg::T3, Reg::T4, Reg::T1);
            a.addi(Reg::T5, Reg::T5, -1);
            a.bnez(Reg::T5, fk);
        }
        a.bind(fks);
        a.p_lh(Reg::T4, 2, Reg::A2); // rdiag[i]
        a.fmul_h(Reg::T0, Reg::T0, Reg::T4);
        a.fmul_h(Reg::T1, Reg::T1, Reg::T4);
        a.sh(Reg::T0, 0, Reg::A3);
        a.sh(Reg::T1, 2, Reg::A3);
        a.addi(Reg::A3, Reg::A3, 4);
        a.slli(Reg::T5, I, 2);
        a.addi(Reg::T5, Reg::T5, 4);
        a.add(Reg::A1, Reg::A1, Reg::T5);
        a.addi(I, I, 1);
        a.li(Reg::T6, n);
        a.bne(I, Reg::T6, fwd_i);
    }

    /// Backward substitution `L^H x̂ = w`, writing `x̂` to the interleaved
    /// output region.
    fn emit_backward(&self, a: &mut Assembler) {
        let n = self.n as i32;
        a.li(Reg::T5, (n - 1) * 4);
        a.add(Reg::A3, W, Reg::T5); // &w[n-1]
        a.add(Reg::A4, X, Reg::T5); // &x̂[n-1]
        a.li(Reg::T5, (n - 1) * 2);
        a.add(Reg::A2, RD, Reg::T5); // &rdiag[n-1]
        a.li(I, n - 1);
        let bwd_i = a.new_label();
        a.bind(bwd_i);
        a.lh(Reg::T0, 0, Reg::A3);
        a.lh(Reg::T1, 2, Reg::A3);
        // L[k][i] column walker: offset tri(i+1)+i, increments (k+1)*4.
        a.addi(Reg::T5, I, 1);
        a.addi(Reg::T6, I, 2);
        a.mul(Reg::T5, Reg::T5, Reg::T6);
        a.srli(Reg::T5, Reg::T5, 1);
        a.add(Reg::T5, Reg::T5, I);
        a.slli(Reg::T5, Reg::T5, 2);
        a.add(Reg::A6, L, Reg::T5); // &L[i+1][i]
        a.slli(Reg::A7, Reg::T6, 2); // increment (i+2)*4
        a.addi(Reg::A5, Reg::A4, 4); // &x̂[i+1]
        a.li(Reg::T6, n - 1);
        a.sub(Reg::T5, Reg::T6, I); // trip count n-1-i
        let bks = a.new_label();
        a.beqz(Reg::T5, bks);
        {
            let bk = a.new_label();
            a.bind(bk);
            a.lh(Reg::T2, 0, Reg::A6); // L[k][i].re
            a.lh(Reg::T3, 2, Reg::A6); // L[k][i].im
            a.add(Reg::A6, Reg::A6, Reg::A7);
            a.addi(Reg::A7, Reg::A7, 4);
            a.p_lh(Reg::T4, 2, Reg::A5); // x̂[k].re
            a.p_lh(Reg::T6, 2, Reg::A5); // x̂[k].im
                                         // c -= conj(L[k][i]) * x̂[k]
            a.fnmsub_h(Reg::T0, Reg::T2, Reg::T4, Reg::T0);
            a.fnmsub_h(Reg::T0, Reg::T3, Reg::T6, Reg::T0);
            a.fnmsub_h(Reg::T1, Reg::T2, Reg::T6, Reg::T1);
            a.fmadd_h(Reg::T1, Reg::T3, Reg::T4, Reg::T1);
            a.addi(Reg::T5, Reg::T5, -1);
            a.bnez(Reg::T5, bk);
        }
        a.bind(bks);
        a.lh(Reg::T4, 0, Reg::A2);
        a.addi(Reg::A2, Reg::A2, -2);
        a.fmul_h(Reg::T0, Reg::T0, Reg::T4);
        a.fmul_h(Reg::T1, Reg::T1, Reg::T4);
        a.sh(Reg::T0, 0, Reg::A4);
        a.sh(Reg::T1, 2, Reg::A4);
        a.addi(Reg::A3, Reg::A3, -4);
        a.addi(Reg::A4, Reg::A4, -4);
        a.addi(I, I, -1);
        a.bge(I, Reg::Zero, bwd_i);
    }
}

/// Error produced by [`MmseKernel::build`].
#[derive(Debug)]
pub enum BuildError {
    /// The configuration does not fit the cluster.
    Layout(LayoutError),
    /// Code generation produced an invalid program (a generator bug).
    Asm(AsmError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Layout(e) => write!(f, "layout error: {e}"),
            BuildError::Asm(e) => write!(f, "assembly error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<LayoutError> for BuildError {
    fn from(e: LayoutError) -> Self {
        BuildError::Layout(e)
    }
}

impl From<AsmError> for BuildError {
    fn from(e: AsmError) -> Self {
        BuildError::Asm(e)
    }
}
