//! Host-side operand quantization, injection and result readback.
//!
//! The same quantization functions feed both the cluster memory (consumed
//! by the generated guest code) and the [`native`](crate::native) models,
//! so the two paths start from identical bits.

use terasim_softfloat::{F16, F8};
use terasim_terapool::ClusterMem;

use crate::layout::ProblemLayout;
use crate::{Precision, C64};

/// Quantizes a real to binary16 (single RNE rounding from `f64`).
pub fn q16(x: f64) -> F16 {
    F16::from_f64(x)
}

/// Quantizes a real to binary8 (single RNE rounding from `f64`).
pub fn q8(x: f64) -> F8 {
    F8::from_f64(x)
}

/// Packs a complex binary16 value as its memory word (`[im|re]`).
pub fn pack_c16(c: C64) -> u32 {
    u32::from(q16(c.0).to_bits()) | (u32::from(q16(c.1).to_bits()) << 16)
}

/// Packs a complex binary8 value as its memory halfword (`[im|re]`).
pub fn pack_c8(c: C64) -> u16 {
    u16::from(q8(c.0).to_bits()) | (u16::from(q8(c.1).to_bits()) << 8)
}

/// An `n × n` identity channel (useful for smoke tests: `x̂ ≈ y`).
pub fn identity_channel(n: usize) -> Vec<C64> {
    let mut h = vec![(0.0, 0.0); n * n];
    for i in 0..n {
        h[i * n + i] = (1.0, 0.0);
    }
    h
}

/// Writes one subcarrier problem's operands into cluster memory.
///
/// `h` is row-major `h[k*n + i]` = element `(row k, column i)`; the writer
/// transposes into the kernel's column-major storage. `y` has `n` entries;
/// `sigma` is the noise power σ².
///
/// # Panics
///
/// Panics if slice lengths do not match `layout.n` or `problem` is out of
/// range.
pub fn write_problem(
    mem: &ClusterMem,
    layout: &ProblemLayout,
    problem: u32,
    h: &[C64],
    y: &[C64],
    sigma: f64,
) {
    let n = layout.n;
    assert_eq!(h.len(), (n * n) as usize, "H must be n*n");
    assert_eq!(y.len(), n as usize, "y must be n");
    assert!(problem < layout.problems, "problem index out of range");

    match layout.precision {
        Precision::Half16 | Precision::WDotp16 | Precision::CDotp16 => {
            for k in 0..n {
                for i in 0..n {
                    let addr = layout.h_addr(problem, k, i);
                    mem.write_u32(addr, pack_c16(h[(k * n + i) as usize]));
                }
            }
            for k in 0..n {
                mem.write_u32(layout.y_addr(problem, k), pack_c16(y[k as usize]));
            }
        }
        Precision::Quarter8 | Precision::WDotp8 => {
            for k in 0..n {
                for i in 0..n {
                    let addr = layout.h_addr(problem, k, i);
                    mem.write_u16(addr, pack_c8(h[(k * n + i) as usize]));
                }
            }
            for k in 0..n {
                mem.write_u16(layout.y_addr(problem, k), pack_c8(y[k as usize]));
            }
        }
    }
    mem.write_u16(layout.sigma_addr(problem), q16(sigma).to_bits());
}

/// Reads back the detected symbol vector of one problem (packed binary16
/// complex, `[re, im]` per entry).
pub fn read_xhat(mem: &ClusterMem, layout: &ProblemLayout, problem: u32) -> Vec<[F16; 2]> {
    (0..layout.n)
        .map(|i| {
            let word = mem.read_u32(layout.x_addr(problem, i));
            [F16::from_bits(word as u16), F16::from_bits((word >> 16) as u16)]
        })
        .collect()
}

/// Reads back a Gram-triangle entry from a core's scratch (test support).
pub fn read_g(
    mem: &ClusterMem,
    topo: &terasim_terapool::Topology,
    layout: &ProblemLayout,
    core: u32,
    i: u32,
    j: u32,
) -> [F16; 2] {
    let word = mem.read_u32(layout.g_addr(topo, core, i, j));
    [F16::from_bits(word as u16), F16::from_bits((word >> 16) as u16)]
}

#[cfg(test)]
mod tests {
    use terasim_terapool::Topology;

    use super::*;
    use crate::MmseKernel;

    #[test]
    fn roundtrip_through_memory() {
        let topo = Topology::scaled(8);
        let kernel = MmseKernel::new(4, Precision::CDotp16).with_active_cores(2);
        let layout = kernel.layout(&topo).unwrap();
        let mem = ClusterMem::new(topo);
        let h = identity_channel(4);
        let y = vec![(0.5, -0.25); 4];
        write_problem(&mem, &layout, 1, &h, &y, 0.125);
        // H[0][0] of problem 1 is 1.0.
        assert_eq!(mem.read_u32(layout.h_addr(1, 0, 0)), pack_c16((1.0, 0.0)));
        // Column-major: H[1][0] sits 4 bytes after H[0][0] and is 0.
        assert_eq!(mem.read_u32(layout.h_addr(1, 1, 0)), 0);
        assert_eq!(mem.read_u16(layout.sigma_addr(1)), q16(0.125).to_bits());
    }

    #[test]
    fn quantizers_match_softfloat() {
        assert_eq!(pack_c16((1.0, -1.0)), 0xbc00_3c00);
        assert_eq!(pack_c8((1.0, -1.0)), 0xbc3c);
    }
}
