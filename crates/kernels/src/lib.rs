//! Software-defined MMSE detection on TeraPool (paper §IV).
//!
//! The paper implements the linear MMSE detector
//!
//! ```text
//! x̂ = (H^H H + σ² I)⁻¹ H^H y
//! ```
//!
//! on Snitch cores in five arithmetic precisions, decomposing the inverse
//! through a Cholesky factorization (`G = L L^H`) followed by two
//! triangular solves. This crate generates that guest software — the
//! replacement for the cross-compiled C kernels of the original flow — and
//! provides bit-exact *native* models of each precision:
//!
//! * [`Precision`] — the five kernel variants (`16bHalf`, `16bwDotp`,
//!   `16bCDotp`, `8bQuarter`, `8bwDotp`).
//! * [`MmseKernel`] — parameters (MIMO size, batch, unrolling) and the
//!   code generator producing a runnable [`Image`](terasim_riscv::Image).
//! * [`ProblemLayout`] — the cluster-memory placement of operands following
//!   the paper's Figure 4: inputs/outputs interleaved across banks,
//!   intermediates (`G`, `L`) in core-local sequential memory.
//! * [`data`] — host-side operand quantization/injection and result
//!   readback.
//! * [`native`] — pure-Rust models that mirror the generated code
//!   operation by operation, used to accelerate Monte-Carlo BER runs; an
//!   integration test asserts bit-equality against ISS execution.
//!
//! # Data convention
//!
//! The channel matrix is stored *column-major* (equivalently: the rows of
//! `H^H` are contiguous), so the Gram matrix and matched filter stream
//! unit-stride data through the SIMD dot-product units. Complex elements
//! pack `re` at the lower address (`[im|re]` in a little-endian word).
//!
//! # Examples
//!
//! Build and run a 4×4 MMSE on one simulated core:
//!
//! ```
//! use terasim_kernels::{data, MmseKernel, Precision};
//! use terasim_terapool::{FastSim, Topology};
//!
//! let topo = Topology::scaled(8);
//! let kernel = MmseKernel::new(4, Precision::CDotp16).with_active_cores(1);
//! let layout = kernel.layout(&topo)?;
//! let image = kernel.build(&topo)?;
//! let mut sim = FastSim::new(topo, &image)?;
//!
//! // Identity channel, unit signal: x̂ should recover y (up to sigma).
//! let h = data::identity_channel(4);
//! let y = vec![(1.0, 0.0), (-1.0, 0.0), (1.0, 0.0), (-1.0, 0.0)];
//! data::write_problem(sim.memory(), &layout, 0, &h, &y, 0.0);
//! sim.run_all(1)?;
//! let xhat = data::read_xhat(sim.memory(), &layout, 0);
//! assert!((xhat[0][0].to_f32() - 1.0).abs() < 0.01);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
mod emit;
mod layout;
pub mod native;
mod precision;

pub use emit::{BuildError, MmseKernel};
pub use layout::{LayoutError, ProblemLayout};
pub use precision::Precision;

/// A double-precision complex number as `(re, im)` — the host-side operand
/// type before quantization.
pub type C64 = (f64, f64);
