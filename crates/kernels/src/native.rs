//! Bit-true native models of the generated kernels.
//!
//! Each function here replays the *exact* operation order of the code
//! emitted by [`MmseKernel`](crate::MmseKernel) — same accumulation
//! chains, same rounding at every step — but as plain Rust over
//! `terasim-softfloat` values. This is how the framework runs
//! Monte-Carlo BER sweeps at full host speed while the ISS remains the
//! source of truth: `tests/bit_true.rs` asserts bit-equality between the
//! two paths on random problems.

use terasim_softfloat::{ops, F16, F8};

use crate::data::{q16, q8};
use crate::{Precision, C64};

/// Quantized operands of one problem, per precision.
#[derive(Debug, Clone)]
enum Quant {
    /// 16-bit element storage.
    H16 {
        /// Column-major `h[i*n + k]`.
        h: Vec<[F16; 2]>,
        /// Received vector.
        y: Vec<[F16; 2]>,
    },
    /// 8-bit element storage.
    H8 {
        /// Column-major `h[i*n + k]`.
        h: Vec<[F8; 2]>,
        /// Received vector.
        y: Vec<[F8; 2]>,
    },
}

fn quantize(precision: Precision, n: usize, h: &[C64], y: &[C64]) -> Quant {
    // h arrives row-major h[k*n+i]; store column-major like the kernel.
    match precision {
        Precision::Half16 | Precision::WDotp16 | Precision::CDotp16 => Quant::H16 {
            h: (0..n * n)
                .map(|idx| {
                    let (i, k) = (idx / n, idx % n);
                    let c = h[k * n + i];
                    [q16(c.0), q16(c.1)]
                })
                .collect(),
            y: y.iter().map(|c| [q16(c.0), q16(c.1)]).collect(),
        },
        Precision::Quarter8 | Precision::WDotp8 => Quant::H8 {
            h: (0..n * n)
                .map(|idx| {
                    let (i, k) = (idx / n, idx % n);
                    let c = h[k * n + i];
                    [q8(c.0), q8(c.1)]
                })
                .collect(),
            y: y.iter().map(|c| [q8(c.0), q8(c.1)]).collect(),
        },
    }
}

/// `fnmsub.h`: `-(a*b) + c` with one terminal rounding.
fn fnmsub(a: F16, b: F16, c: F16) -> F16 {
    F16::from_f64(-(a.to_f64() * b.to_f64()) + c.to_f64())
}

/// `fmadd.h`.
fn fmadd(a: F16, b: F16, c: F16) -> F16 {
    a.mul_add(b, c)
}

/// Mirrors `emit_dot`: `conj(a)·b` over `n` elements with two alternating
/// accumulation chains, plus the diagonal σ² update.
#[allow(clippy::too_many_arguments)] // mirrors the emitted kernel's operand list
fn dot_conj(
    precision: Precision,
    q: &Quant,
    n: usize,
    col_a: usize,
    b_is_y: bool,
    col_b: usize,
    sigma: F16,
    diag: bool,
) -> [F16; 2] {
    match (precision, q) {
        (Precision::Half16, Quant::H16 { h, y }) => {
            let mut acc = [[F16::ZERO; 2]; 2];
            for k in 0..n {
                let a = h[col_a * n + k];
                let b = if b_is_y { y[k] } else { h[col_b * n + k] };
                acc[k % 2] = ops::cmac_conj_h(acc[k % 2], a, b);
            }
            let mut re = acc[0][0] + acc[1][0];
            let im = acc[0][1] + acc[1][1];
            if diag {
                re = re + sigma;
            }
            [re, im]
        }
        (Precision::WDotp16, Quant::H16 { h, y }) => {
            let (mut re, mut im) = ([0f32; 2], [0f32; 2]);
            for k in 0..n {
                let a = h[col_a * n + k];
                let b = if b_is_y { y[k] } else { h[col_b * n + k] };
                let c = k % 2;
                re[c] = ops::vfdotpex_s_h(re[c], a, b);
                im[c] = ops::vfndotpex_s_h(im[c], a, ops::swap_h(b));
            }
            let mut re_s = re[0] + re[1];
            let im_s = im[0] + im[1];
            if diag {
                re_s += sigma.to_f32(); // fcvt.s.h is exact
            }
            [F16::from_f32(re_s), F16::from_f32(im_s)]
        }
        (Precision::CDotp16, Quant::H16 { h, y }) => {
            let mut acc = [[F16::ZERO; 2]; 2];
            for k in 0..n {
                let a = h[col_a * n + k];
                let b = if b_is_y { y[k] } else { h[col_b * n + k] };
                acc[k % 2] = ops::vfcdotpex_conj_s_h(acc[k % 2], a, b);
            }
            let mut out = [acc[0][0] + acc[1][0], acc[0][1] + acc[1][1]]; // vfadd.h
            if diag {
                out[0] = out[0] + sigma;
            }
            out
        }
        (Precision::Quarter8, Quant::H8 { h, y }) => {
            let mut acc = [[F8::ZERO; 2]; 2];
            for k in 0..n {
                let a = h[col_a * n + k];
                let b = if b_is_y { y[k] } else { h[col_b * n + k] };
                acc[k % 2] = ops::cmac_conj_b(acc[k % 2], a, b);
            }
            // vfcvt.h.b.lo on each chain, then vfadd.h.
            let c0 = [F16::from(acc[0][0]), F16::from(acc[0][1])];
            let c1 = [F16::from(acc[1][0]), F16::from(acc[1][1])];
            let mut out = [c0[0] + c1[0], c0[1] + c1[1]];
            if diag {
                out[0] = out[0] + sigma;
            }
            out
        }
        (Precision::WDotp8, Quant::H8 { h, y }) => {
            let mut re = [[F16::ZERO; 2]; 2];
            let mut im = [[F16::ZERO; 2]; 2];
            for s in 0..n / 2 {
                let (k0, k1) = (2 * s, 2 * s + 1);
                let a =
                    [h[col_a * n + k0][0], h[col_a * n + k0][1], h[col_a * n + k1][0], h[col_a * n + k1][1]];
                let bv0 = if b_is_y { y[k0] } else { h[col_b * n + k0] };
                let bv1 = if b_is_y { y[k1] } else { h[col_b * n + k1] };
                let b = [bv0[0], bv0[1], bv1[0], bv1[1]];
                let c = s % 2;
                re[c] = ops::vfdotpex_h_b(re[c], a, b);
                im[c] = ops::vfndotpex_h_b(im[c], a, ops::swap_b(b));
            }
            // vfadd.h across chains, then horizontal lane sum.
            let rep = [re[0][0] + re[1][0], re[0][1] + re[1][1]];
            let imp = [im[0][0] + im[1][0], im[0][1] + im[1][1]];
            let mut out = [rep[0] + rep[1], imp[0] + imp[1]];
            if diag {
                out[0] = out[0] + sigma;
            }
            out
        }
        _ => unreachable!("quantization matches precision"),
    }
}

/// Runs the full MMSE detection for one problem, mirroring the generated
/// guest code operation by operation.
///
/// `h` is row-major `h[k*n + i]`, `y` has `n` entries, `sigma` is σ².
/// Returns `x̂` as packed binary16 complex values, bit-identical to what
/// the ISS-executed kernel stores.
///
/// # Panics
///
/// Panics if slice lengths do not match `n`.
///
/// # Examples
///
/// ```
/// use terasim_kernels::{native, Precision};
///
/// let h = terasim_kernels::data::identity_channel(4);
/// let y = vec![(1.0, 0.0); 4];
/// let xhat = native::detect(Precision::CDotp16, 4, &h, &y, 0.0);
/// assert!((xhat[0][0].to_f32() - 1.0).abs() < 0.01);
/// ```
pub fn detect(precision: Precision, n: usize, h: &[C64], y: &[C64], sigma: f64) -> Vec<[F16; 2]> {
    assert_eq!(h.len(), n * n, "H must be n*n");
    assert_eq!(y.len(), n, "y must be n");
    let q = quantize(precision, n, h, y);
    let sigma16 = q16(sigma);

    // Gram lower triangle, row-major (like the guest scratch).
    let tri = |i: usize| i * (i + 1) / 2;
    let mut g = vec![[F16::ZERO; 2]; tri(n) + n];
    for i in 0..n {
        for j in 0..=i {
            g[tri(i) + j] = dot_conj(precision, &q, n, i, false, j, sigma16, i == j);
        }
    }
    // Matched filter z.
    let mut w: Vec<[F16; 2]> =
        (0..n).map(|i| dot_conj(precision, &q, n, i, true, 0, sigma16, false)).collect();

    // Cholesky in binary16 (exact emitted op order).
    let mut l = vec![[F16::ZERO; 2]; tri(n) + n];
    let mut rdiag = vec![F16::ZERO; n];
    let one = F16::ONE;
    for j in 0..n {
        let mut s = g[tri(j) + j][0];
        for k in 0..j {
            let ljk = l[tri(j) + k];
            s = fnmsub(ljk[0], ljk[0], s);
            s = fnmsub(ljk[1], ljk[1], s);
        }
        let d = s.sqrt();
        l[tri(j) + j] = [d, F16::ZERO];
        rdiag[j] = one / d;
        for i in (j + 1)..n {
            let mut c = g[tri(i) + j];
            for k in 0..j {
                let lik = l[tri(i) + k];
                let ljk = l[tri(j) + k];
                c[0] = fnmsub(lik[0], ljk[0], c[0]);
                c[0] = fnmsub(lik[1], ljk[1], c[0]);
                c[1] = fnmsub(lik[1], ljk[0], c[1]);
                c[1] = fmadd(lik[0], ljk[1], c[1]);
            }
            l[tri(i) + j] = [c[0] * rdiag[j], c[1] * rdiag[j]];
        }
    }

    // Forward substitution L w = z (in place).
    for i in 0..n {
        let mut c = w[i];
        for k in 0..i {
            let lik = l[tri(i) + k];
            let wk = w[k];
            c[0] = fnmsub(lik[0], wk[0], c[0]);
            c[0] = fmadd(lik[1], wk[1], c[0]);
            c[1] = fnmsub(lik[0], wk[1], c[1]);
            c[1] = fnmsub(lik[1], wk[0], c[1]);
        }
        w[i] = [c[0] * rdiag[i], c[1] * rdiag[i]];
    }

    // Backward substitution L^H x = w.
    let mut x = vec![[F16::ZERO; 2]; n];
    for i in (0..n).rev() {
        let mut c = w[i];
        for k in (i + 1)..n {
            let lki = l[tri(k) + i];
            let xk = x[k];
            c[0] = fnmsub(lki[0], xk[0], c[0]);
            c[0] = fnmsub(lki[1], xk[1], c[0]);
            c[1] = fnmsub(lki[0], xk[1], c[1]);
            c[1] = fmadd(lki[1], xk[0], c[1]);
        }
        x[i] = [c[0] * rdiag[i], c[1] * rdiag[i]];
    }
    x
}

/// Double-precision reference MMSE (the paper's "64bDouble" golden model):
/// a straightforward Cholesky solve in `f64` complex arithmetic.
///
/// # Panics
///
/// Panics if slice lengths do not match `n`.
pub fn detect_f64(n: usize, h: &[C64], y: &[C64], sigma: f64) -> Vec<C64> {
    assert_eq!(h.len(), n * n);
    assert_eq!(y.len(), n);
    let idx = |k: usize, i: usize| k * n + i;
    let cadd = |a: C64, b: C64| (a.0 + b.0, a.1 + b.1);
    let csub = |a: C64, b: C64| (a.0 - b.0, a.1 - b.1);
    let cmul = |a: C64, b: C64| (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0);
    let conj = |a: C64| (a.0, -a.1);

    // G = H^H H + sigma I ; z = H^H y
    let mut g = vec![(0.0, 0.0); n * n];
    let mut z = vec![(0.0, 0.0); n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = (0.0, 0.0);
            for k in 0..n {
                acc = cadd(acc, cmul(conj(h[idx(k, i)]), h[idx(k, j)]));
            }
            if i == j {
                acc.0 += sigma;
            }
            g[i * n + j] = acc;
        }
        let mut acc = (0.0, 0.0);
        for k in 0..n {
            acc = cadd(acc, cmul(conj(h[idx(k, i)]), y[k]));
        }
        z[i] = acc;
    }

    // Cholesky.
    let mut l = vec![(0.0, 0.0); n * n];
    for j in 0..n {
        let mut s = g[j * n + j].0;
        for k in 0..j {
            let v = l[j * n + k];
            s -= v.0 * v.0 + v.1 * v.1;
        }
        let d = s.sqrt();
        l[j * n + j] = (d, 0.0);
        for i in (j + 1)..n {
            let mut c = g[i * n + j];
            for k in 0..j {
                c = csub(c, cmul(l[i * n + k], conj(l[j * n + k])));
            }
            l[i * n + j] = (c.0 / d, c.1 / d);
        }
    }
    // Solves.
    let mut w = z;
    for i in 0..n {
        let mut c = w[i];
        for k in 0..i {
            c = csub(c, cmul(l[i * n + k], w[k]));
        }
        let d = l[i * n + i].0;
        w[i] = (c.0 / d, c.1 / d);
    }
    let mut x = vec![(0.0, 0.0); n];
    for i in (0..n).rev() {
        let mut c = w[i];
        for k in (i + 1)..n {
            c = csub(c, cmul(conj(l[k * n + i]), x[k]));
        }
        let d = l[i * n + i].0;
        x[i] = (c.0 / d, c.1 / d);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::identity_channel;

    #[test]
    fn identity_channel_recovers_input() {
        let n = 4;
        let h = identity_channel(n);
        let y: Vec<C64> = vec![(1.0, -1.0), (-1.0, 1.0), (0.5, 0.5), (-0.5, -0.5)];
        for precision in Precision::ALL {
            let x = detect(precision, n, &h, &y, 0.0);
            for (xi, yi) in x.iter().zip(&y) {
                assert!(
                    (xi[0].to_f64() - yi.0).abs() < 0.05 && (xi[1].to_f64() - yi.1).abs() < 0.05,
                    "{precision}: {xi:?} vs {yi:?}"
                );
            }
        }
    }

    #[test]
    fn f64_reference_is_exact_on_identity() {
        let n = 8;
        let h = identity_channel(n);
        let y: Vec<C64> = (0..n).map(|i| (i as f64 * 0.1 - 0.3, 0.2 - i as f64 * 0.05)).collect();
        let x = detect_f64(n, &h, &y, 0.0);
        for (xi, yi) in x.iter().zip(&y) {
            assert!((xi.0 - yi.0).abs() < 1e-12 && (xi.1 - yi.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sigma_regularizes() {
        // With large sigma, x̂ shrinks towards zero (MMSE behaviour).
        let n = 4;
        let h = identity_channel(n);
        let y = vec![(1.0, 0.0); n];
        let x0 = detect_f64(n, &h, &y, 0.0);
        let x9 = detect_f64(n, &h, &y, 9.0);
        assert!((x0[0].0 - 1.0).abs() < 1e-12);
        assert!((x9[0].0 - 0.1).abs() < 1e-12); // 1/(1+9)
    }

    #[test]
    fn native_tracks_f64_on_benign_channel() {
        // A well-conditioned random-ish channel: 16-bit variants should be
        // close to the f64 reference.
        let n = 4;
        let mut h = identity_channel(n);
        h[1] = (0.25, -0.125);
        h[4] = (-0.25, 0.0625);
        h[11] = (0.125, 0.25);
        let y = vec![(0.75, -0.5), (0.25, 0.5), (-0.75, 0.25), (0.5, 0.125)];
        let gold = detect_f64(n, &h, &y, 0.01);
        for precision in [Precision::Half16, Precision::WDotp16, Precision::CDotp16] {
            let x = detect(precision, n, &h, &y, 0.01);
            for (xi, gi) in x.iter().zip(&gold) {
                assert!((xi[0].to_f64() - gi.0).abs() < 0.05, "{precision}: {} vs {}", xi[0].to_f64(), gi.0);
            }
        }
    }
}
