//! Unit-level checks of the adaptive epoch coordinator's **grant/trim
//! protocol**: a sole-active domain earns cap-length extended grants
//! while its cores stay provably local, and the first deferred (cross
//! -domain) access inside a grant trims the window back to the next
//! base boundary — with results bit-identical to the fixed cadence and
//! the full-scan reference throughout.

use std::sync::Arc;

use terasim_iss::{EpochMode, RunConfig};
use terasim_riscv::{csr, Assembler, Image, Reg, Segment};
use terasim_terapool::{CycleSim, SimArtifacts, Topology};

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

fn arts_for(topo: Topology, image: &Image, epochs: EpochMode) -> Arc<SimArtifacts> {
    let rc = RunConfig { epochs, ..RunConfig::default() };
    SimArtifacts::build_with(topo, image, rc).unwrap()
}

/// A single active core on a 2-group topology alternates long pure-int
/// spins (sole-active ⇒ cap-length grants) with cross-group stores that
/// land mid-grant (⇒ trim). The telemetry must show both grant kinds,
/// and the run must stay bit-identical to fixed cadence and `run_naive`.
#[test]
fn sole_active_grants_extend_and_trim() {
    let topo = Topology::scaled(512);
    assert!(topo.num_domains() > 1, "topology must shard");
    // First word owned by a *group-1* bank: guaranteed cross-group for
    // core 0 (the interleaved view maps word `w` to bank `w % banks`).
    let remote = (4 * topo.banks_per_group()) as i32;
    let image = image_of(|a| {
        a.csrr(Reg::T0, csr::MHARTID);
        a.li(Reg::T2, 1);
        for round in 0..6i32 {
            // ~200 cycles of local-only work: comfortably inside one
            // cap-length grant, far past the 4-cycle base epoch.
            a.li(Reg::T1, 100);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T1, Reg::T1, -1);
            a.bnez(Reg::T1, top);
            // Cross-group AMO into a group-1 bank word, mid-grant.
            a.li(Reg::A1, remote + 4 * round);
            a.amoadd_w(Reg::A2, Reg::T2, Reg::A1);
        }
    });

    let adaptive = arts_for(topo, &image, EpochMode::Adaptive);
    let fixed = arts_for(topo, &image, EpochMode::Fixed);

    let mut sim_a = CycleSim::from_artifacts(Arc::clone(&adaptive));
    let ra = sim_a.run(1).unwrap();
    let report = sim_a.epoch_report();
    assert!(report.windows > 0, "no windows recorded");
    assert!(report.extended > 0, "sole-active spins earned no extended grants: {report:?}");
    assert!(report.trimmed > 0, "mid-grant cross traffic caused no trims: {report:?}");
    assert!(
        report.avg_epoch_len() > Topology::CROSS_GROUP_HOP as f64,
        "average window did not beat the base cadence: {report:?}"
    );

    let mut sim_f = CycleSim::from_artifacts(Arc::clone(&fixed));
    let rf = sim_f.run(1).unwrap();
    assert_eq!(sim_f.epoch_report().extended, 0, "fixed cadence must never extend");
    let mut sim_n = CycleSim::from_artifacts(fixed);
    let rn = sim_n.run_naive(1).unwrap();

    for (label, other) in [("fixed", &rf), ("naive", &rn)] {
        assert_eq!(ra.cycles, other.cycles, "{label}: makespan differs");
        assert_eq!(ra.per_core, other.per_core, "{label}: per-core stats differ");
        assert_eq!(ra.parked, other.parked, "{label}: parked set differs");
    }
    for round in 0..6u32 {
        let addr = remote as u32 + 4 * round;
        assert_eq!(sim_a.memory().read_u32(addr), 1, "round {round} store lost");
        assert_eq!(
            sim_a.memory().read_u32(addr),
            sim_f.memory().read_u32(addr),
            "round {round} differs from fixed"
        );
    }
}

/// Full-occupancy pure-int guests never defer, so the multi-active
/// horizon rule extends windows with zero trims — and the elision fast
/// path still counts every retired instruction.
#[test]
fn multi_active_horizon_extends_without_trims() {
    let topo = Topology::scaled(512);
    let cores = 512u32;
    let image = image_of(|a| {
        // Purely local: a long countdown, no memory traffic at all — the
        // reachability pass proves every PC local, so the multi-active
        // horizon rule can extend windows with nothing to defer.
        a.csrr(Reg::T0, csr::MHARTID);
        a.li(Reg::T1, 300);
        let top = a.new_label();
        a.bind(top);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, top);
    });
    let adaptive = arts_for(topo, &image, EpochMode::Adaptive);
    let mut sim = CycleSim::from_artifacts(adaptive);
    let result = sim.run(cores).unwrap();
    let report = sim.epoch_report();
    assert!(report.extended > 0, "local-only full-occupancy run earned no extended grants: {report:?}");
    assert!(report.extended_pct() > 50.0, "extension should dominate here: {report:?}");

    // The elided stretches must not drop retired-instruction counts:
    // every core runs the identical static program.
    let insts: Vec<u64> = result.per_core.iter().map(|s| s.instructions).collect();
    assert!(insts.iter().all(|&i| i == insts[0]), "uneven instruction counts: {insts:?}");
}
