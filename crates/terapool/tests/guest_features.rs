//! Guest-visible cluster features: DMA engine, control registers,
//! barriers — driven from real RISC-V programs on both backends.

use terasim_riscv::{Assembler, Image, Reg, Segment};
use terasim_terapool::{CycleSim, FastSim, Topology};

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

/// A guest program that DMAs a block from L2 to L1, then reads it back.
fn dma_program() -> Image {
    image_of(|a| {
        // Only hart 0 drives the DMA.
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        let skip = a.new_label();
        a.bnez(Reg::T0, skip);
        a.li(Reg::T1, Topology::CTRL_DMA_SRC as i32);
        a.li(Reg::T2, (Topology::L2_BASE + 0x4000) as i32);
        a.sw(Reg::T2, 0, Reg::T1);
        a.li(Reg::T1, Topology::CTRL_DMA_DST as i32);
        a.li(Reg::T2, 0x400);
        a.sw(Reg::T2, 0, Reg::T1);
        a.li(Reg::T1, Topology::CTRL_DMA_LEN as i32);
        a.li(Reg::T2, 32);
        a.sw(Reg::T2, 0, Reg::T1); // kicks off the transfer
                                   // Poll the busy register (completes synchronously in the model).
        let poll = a.new_label();
        a.bind(poll);
        a.li(Reg::T1, Topology::CTRL_DMA_BUSY as i32);
        a.lw(Reg::T3, 0, Reg::T1);
        a.bnez(Reg::T3, poll);
        // Read back the first transferred word into a visible location.
        a.lw(Reg::T4, 0x400, Reg::Zero);
        a.sw(Reg::T4, 0x500, Reg::Zero);
        a.bind(skip);
    })
}

#[test]
fn guest_driven_dma_fast_mode() {
    let topo = Topology::scaled(8);
    let mut sim = FastSim::new(topo, &dma_program()).unwrap();
    for i in 0..8u32 {
        sim.memory().write_u32(Topology::L2_BASE + 0x4000 + 4 * i, 0xd00d_0000 + i);
    }
    sim.run_all(2).unwrap();
    for i in 0..8u32 {
        assert_eq!(sim.memory().read_u32(0x400 + 4 * i), 0xd00d_0000 + i);
    }
    assert_eq!(sim.memory().read_u32(0x500), 0xd00d_0000);
}

#[test]
fn guest_driven_dma_cycle_mode() {
    let topo = Topology::scaled(8);
    let mut sim = CycleSim::new(topo, &dma_program()).unwrap();
    for i in 0..8u32 {
        sim.memory().write_u32(Topology::L2_BASE + 0x4000 + 4 * i, 0xbeef_0000 + i);
    }
    sim.run(8).unwrap();
    for i in 0..8u32 {
        assert_eq!(sim.memory().read_u32(0x400 + 4 * i), 0xbeef_0000 + i);
    }
}

/// Two barrier episodes in a row: the wake protocol must be reusable.
#[test]
fn double_barrier_round_trip() {
    let cores = 8u32;
    let image = image_of(|a| {
        let barrier = |a: &mut Assembler, addr: i32| {
            a.li(Reg::A1, addr);
            a.li(Reg::A2, 1);
            a.amoadd_w(Reg::A3, Reg::A2, Reg::A1);
            a.li(Reg::A4, (cores - 1) as i32);
            let last = a.new_label();
            let done = a.new_label();
            a.beq(Reg::A3, Reg::A4, last);
            a.wfi();
            a.j(done);
            a.bind(last);
            a.li(Reg::A5, Topology::CTRL_WAKE_ALL as i32);
            a.sw(Reg::A2, 0, Reg::A5);
            a.bind(done);
        };
        // Count arrivals per phase into separate words.
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        barrier(a, 0x40);
        // Phase 2 work: every core bumps a shared counter.
        a.li(Reg::T1, 0x80);
        a.li(Reg::T2, 1);
        a.amoadd_w(Reg::Zero, Reg::T2, Reg::T1);
        barrier(a, 0x44);
    });
    let topo = Topology::scaled(cores);

    let mut fast = FastSim::new(topo, &image).unwrap();
    let result = fast.run_all(2).unwrap();
    assert_eq!(fast.memory().read_u32(0x40), cores);
    assert_eq!(fast.memory().read_u32(0x44), cores);
    assert_eq!(fast.memory().read_u32(0x80), cores);
    let wfi: u64 = result.per_core.iter().map(|s| s.wfi_stalls).sum();
    assert!(wfi > 0, "someone must have waited");

    let mut cycle = CycleSim::new(topo, &image).unwrap();
    let cresult = cycle.run(cores).unwrap();
    assert_eq!(cycle.memory().read_u32(0x44), cores);
    assert_eq!(cycle.memory().read_u32(0x80), cores);
    assert!(cresult.per_core.iter().all(|s| s.done_at > 0));
}

/// The control region exposes the core count to guests.
#[test]
fn num_cores_register() {
    let image = image_of(|a| {
        a.li(Reg::T0, Topology::CTRL_NUM_CORES as i32);
        a.lw(Reg::T1, 0, Reg::T0);
        a.sw(Reg::T1, 0x100, Reg::Zero);
    });
    let topo = Topology::scaled(16);
    let mut sim = FastSim::new(topo, &image).unwrap();
    sim.run_cores(0..1, 1).unwrap();
    assert_eq!(sim.memory().read_u32(0x100), 16);
}
