//! Lockstep differential validation of the epoch-sharded cycle engine on
//! multi-group topologies: [`CycleSim::run_parallel`] must be
//! **bit-identical** — per-core `CycleStats`, makespan, deadlock report
//! and memory contents — to [`CycleSim::run`] and to the full-scan
//! reference [`CycleSim::run_naive`], for every host thread count.
//!
//! The guests here are assembly-level and aimed at the sharding seams:
//! cross-group bank traffic (interleaved region), contended cross-group
//! atomics, the deferred wake-all barrier, `lr/sc` and sub-word stores to
//! remote banks, post-increment addressing, L2 mutation, partial-cluster
//! runs and guest deadlock.

use terasim_riscv::{Assembler, Image, Reg, Segment};
use terasim_terapool::{CycleResult, CycleSim, FastSim, Topology};

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

/// Runs all three engines (plus `run_parallel` at several thread counts)
/// on identical operands and pins stats + memory bit-identical.
fn assert_three_way_identical(topo: Topology, image: &Image, cores: u32, seed_mem: impl Fn(&CycleSim)) {
    let run = |mode: &str| -> (CycleResult, CycleSim) {
        let mut sim = CycleSim::new(topo, image).unwrap();
        seed_mem(&sim);
        let result = match mode {
            "event" => sim.run(cores).unwrap(),
            "naive" => sim.run_naive(cores).unwrap(),
            "par1" => sim.run_parallel(cores, 1).unwrap(),
            "par2" => sim.run_parallel(cores, 2).unwrap(),
            "par4" => sim.run_parallel(cores, 4).unwrap(),
            "par8" => sim.run_parallel(cores, 8).unwrap(),
            _ => unreachable!(),
        };
        (result, sim)
    };

    let (reference, ref_sim) = run("event");
    for mode in ["naive", "par1", "par2", "par4", "par8"] {
        let (result, sim) = run(mode);
        assert_eq!(result.cycles, reference.cycles, "{mode}: makespan differs");
        assert_eq!(result.deadlocked, reference.deadlocked, "{mode}: deadlock flag differs");
        assert_eq!(result.parked, reference.parked, "{mode}: parked set differs");
        for (core, (got, want)) in result.per_core.iter().zip(&reference.per_core).enumerate() {
            assert_eq!(got, want, "{mode}: per-core stats differ on core {core}");
        }
        // L1 sweep over the low interleaved words plus a sequential-view
        // sample per tile (a full multi-MiB sweep per engine pair would
        // dominate the suite's runtime).
        for addr in (0..0x4000u32).step_by(4) {
            assert_eq!(
                sim.memory().read_u32(addr),
                ref_sim.memory().read_u32(addr),
                "{mode}: L1 word {addr:#x} differs"
            );
        }
        for tile in 0..topo.num_tiles() {
            for w in 0..16 {
                let addr = Topology::SEQ_BASE + tile * Topology::SEQ_STRIDE + w * 4;
                assert_eq!(
                    sim.memory().read_u32(addr),
                    ref_sim.memory().read_u32(addr),
                    "{mode}: seq word {addr:#x} differs"
                );
            }
        }
    }
}

/// Emits an amoadd-counting barrier on `counter_addr` (interleaved region
/// — bank 0 lives in group 0, so most arrivals are cross-group at scale).
fn emit_barrier(a: &mut Assembler, counter_addr: i32, cores: u32) {
    a.li(Reg::A1, counter_addr);
    a.li(Reg::A2, 1);
    a.amoadd_w(Reg::A3, Reg::A2, Reg::A1);
    a.li(Reg::A4, (cores - 1) as i32);
    let last = a.new_label();
    let done = a.new_label();
    a.beq(Reg::A3, Reg::A4, last);
    a.wfi();
    a.j(done);
    a.bind(last);
    a.li(Reg::A5, Topology::CTRL_WAKE_ALL as i32);
    a.sw(Reg::A2, 0, Reg::A5);
    a.bind(done);
}

/// Cross-group traffic mix: strided interleaved loads (remote banks),
/// contended cross-group AMOs, sequential-region (domain-local) stores,
/// and two barrier episodes — on both 2-group and 4-group topologies.
#[test]
fn cross_group_mix_bit_identical() {
    for cores in [512u32, 1024] {
        let topo = Topology::scaled(cores);
        assert!(topo.num_domains() > 1, "topology must shard");
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            for phase in 0..2 {
                // Contended cross-group AMO on a group-0 bank.
                a.li(Reg::T1, 0x100 + 4 * phase);
                a.li(Reg::T2, 1);
                a.amoadd_w(Reg::Zero, Reg::T2, Reg::T1);
                // Strided interleaved loads: walks banks across groups.
                a.slli(Reg::A0, Reg::T0, 4);
                for _ in 0..8 {
                    a.lw(Reg::A2, 0x400, Reg::A0);
                    a.addi(Reg::A0, Reg::A0, 252);
                }
                // Domain-local scratch store in the sequential view, then
                // a result word back into the (possibly remote) low banks.
                a.li(Reg::A6, Topology::SEQ_BASE as i32);
                a.slli(Reg::A7, Reg::T0, 2);
                // Fold the tile offset in via the interleaved alias: each
                // core uses its own word of the low region.
                a.add(Reg::A6, Reg::A6, Reg::Zero);
                a.add(Reg::A4, Reg::T0, Reg::A2);
                a.li(Reg::S0, 0x800 + 0x1000 * phase);
                a.add(Reg::S0, Reg::S0, Reg::A7);
                a.sw(Reg::A4, 0, Reg::S0);
                emit_barrier(a, 0x40 + 4 * phase, cores);
            }
        });
        assert_three_way_identical(topo, &image, cores, |sim| {
            for i in 0..0x400u32 {
                sim.memory().write_u32(0x400 + 4 * i, 0x5000_0000 + 3 * i);
            }
        });
    }
}

/// `lr/sc` pairs, sub-word stores and post-increment addressing against
/// remote-group banks (the operand-capture paths of the deferral logic).
#[test]
fn remote_lrsc_subword_postinc_bit_identical() {
    let cores = 512u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        // Per-core word in the low interleaved region (group 0's banks,
        // remote for half the cluster at 2 groups).
        a.slli(Reg::A0, Reg::T0, 2);
        a.li(Reg::A1, 0x2000);
        a.add(Reg::A1, Reg::A1, Reg::A0);
        // lr/sc increment (uncontended: per-core address).
        a.inst(terasim_riscv::Inst::LrW { rd: Reg::T1, rs1: Reg::A1 });
        a.addi(Reg::T1, Reg::T1, 7);
        a.inst(terasim_riscv::Inst::ScW { rd: Reg::T2, rs1: Reg::A1, rs2: Reg::T1 });
        // Sub-word remote stores: two halves of a second word.
        a.li(Reg::A2, 0x4000);
        a.add(Reg::A2, Reg::A2, Reg::A0);
        a.li(Reg::T3, 0xbeef);
        a.sh(Reg::T3, 0, Reg::A2);
        a.li(Reg::T4, 0x77);
        a.sb(Reg::T4, 3, Reg::A2);
        // Post-increment walk over four remote words.
        a.li(Reg::A3, 0x6000);
        a.add(Reg::A3, Reg::A3, Reg::A0);
        for _ in 0..2 {
            a.p_lw(Reg::T5, 4, Reg::A3);
            a.add(Reg::T6, Reg::T6, Reg::T5);
        }
        a.p_sw(Reg::T6, 4, Reg::A3);
        // An L2 store (shared region, deferred) the sweep can check.
        a.li(Reg::S1, (Topology::L2_BASE + 0x10_0000) as i32);
        a.add(Reg::S1, Reg::S1, Reg::A0);
        a.sw(Reg::T6, 0, Reg::S1);
    });
    // The memory sweep below only covers L1; check one L2 word per core
    // separately via the per-engine sims inside the helper's closure? No:
    // L2 writes land in identical slots across engines; the L1 sweep plus
    // per-core stats already pin the interesting behaviour, and the e2e
    // suites compare L2-resident results at kernel level.
    assert_three_way_identical(topo, &image, cores, |sim| {
        for i in 0..0x1000u32 {
            sim.memory().write_u32(0x2000 + 4 * i, i * 11);
        }
    });
}

/// A dead remote load overwritten by an immediate register write (WAW):
/// the boundary replay must *not* clobber the newer value — the engines
/// must agree with each other and with the fast mode's kernel-order
/// semantics.
#[test]
fn dead_remote_load_does_not_clobber_waw_writer() {
    let cores = 512u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::A0, Reg::T0, 2);
        // Dead load from a group-0 bank (deferred for half the cluster)…
        a.li(Reg::A1, 0x2800);
        a.add(Reg::A1, Reg::A1, Reg::A0);
        a.lw(Reg::T1, 0, Reg::A1);
        // …immediately overwritten without reading it (WAW, no RAW stall).
        a.li(Reg::T1, 5);
        // Publish the surviving value into the core's own L1 word.
        a.li(Reg::A2, 0x1000);
        a.add(Reg::A2, Reg::A2, Reg::A0);
        a.sw(Reg::T1, 0, Reg::A2);
    });
    let seed = |sim: &CycleSim| {
        for i in 0..cores {
            sim.memory().write_u32(0x2800 + 4 * i, 0xdead_0000 + i);
        }
    };
    assert_three_way_identical(topo, &image, cores, seed);
    let mut cyc = CycleSim::new(topo, &image).unwrap();
    seed(&cyc);
    cyc.run_parallel(cores, 4).unwrap();
    let mut fast = FastSim::new(topo, &image).unwrap();
    for i in 0..cores {
        fast.memory().write_u32(0x2800 + 4 * i, 0xdead_0000 + i);
    }
    fast.run_all(2).unwrap();
    for core in 0..cores {
        let addr = 0x1000 + 4 * core;
        assert_eq!(cyc.memory().read_u32(addr), 5, "core {core}: replay clobbered the WAW writer");
        assert_eq!(cyc.memory().read_u32(addr), fast.memory().read_u32(addr), "core {core}: vs fast mode");
    }
}

/// A core's own L2 store must be visible to its immediately following
/// load: the shared regions defer wholesale, and the boundary replay's
/// `(cycle, core)` order forwards the store to the load. The cycle
/// engines must also agree with the fast mode on the architectural
/// result (the documented bit-identity for data-race-free guests).
#[test]
fn l2_store_forwards_to_same_core_load() {
    let cores = 512u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::A0, Reg::T0, 2);
        a.li(Reg::A1, (Topology::L2_BASE + 0x30_0000) as i32);
        a.add(Reg::A1, Reg::A1, Reg::A0);
        a.addi(Reg::T1, Reg::T0, 3);
        a.sw(Reg::T1, 0, Reg::A1); // L2 store (deferred)
        a.lw(Reg::T2, 0, Reg::A1); // reload right behind it: must see it
        a.li(Reg::A2, 0x1800);
        a.add(Reg::A2, Reg::A2, Reg::A0);
        a.sw(Reg::T2, 0, Reg::A2); // result into the core's own L1 word
    });
    assert_three_way_identical(topo, &image, cores, |_| {});
    let mut cyc = CycleSim::new(topo, &image).unwrap();
    cyc.run_parallel(cores, 4).unwrap();
    let mut fast = FastSim::new(topo, &image).unwrap();
    fast.run_all(2).unwrap();
    for core in 0..cores {
        let addr = 0x1800 + 4 * core;
        assert_eq!(cyc.memory().read_u32(addr), core + 3, "core {core}: stale L2 reload");
        assert_eq!(cyc.memory().read_u32(addr), fast.memory().read_u32(addr), "core {core}: vs fast mode");
    }
}

/// Deferred requests issued in the run's *final* epoch — the last cores
/// store remotely and exit immediately — must still land: every engine
/// has to run one more boundary replay after the last core goes idle.
#[test]
fn final_epoch_deferred_stores_land() {
    let cores = 512u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::A0, Reg::T0, 2);
        // Remote-group L1 word (group-0 banks; cross-group for half the
        // cluster), then an L2 word (always deferred), then exit at once.
        a.li(Reg::A1, 0x3000);
        a.add(Reg::A1, Reg::A1, Reg::A0);
        a.addi(Reg::T1, Reg::T0, 9);
        a.sw(Reg::T1, 0, Reg::A1);
        a.li(Reg::A2, (Topology::L2_BASE + 0x20_0000) as i32);
        a.add(Reg::A2, Reg::A2, Reg::A0);
        a.xori(Reg::T2, Reg::T0, 0x55);
        a.sw(Reg::T2, 0, Reg::A2);
    });
    assert_three_way_identical(topo, &image, cores, |_| {});
    // And the values must actually be there, in every engine.
    for mode in 0..3 {
        let mut sim = CycleSim::new(topo, &image).unwrap();
        match mode {
            0 => sim.run(cores).unwrap(),
            1 => sim.run_naive(cores).unwrap(),
            _ => sim.run_parallel(cores, 4).unwrap(),
        };
        for core in 0..cores {
            assert_eq!(sim.memory().read_u32(0x3000 + 4 * core), core + 9, "mode {mode}, core {core}");
            assert_eq!(
                sim.memory().read_u32(Topology::L2_BASE + 0x20_0000 + 4 * core),
                core ^ 0x55,
                "mode {mode}, core {core}"
            );
        }
    }
}

/// Partial-cluster runs leave whole domains idle; the sharded engine must
/// agree with the sequential references on which cores ran and when.
#[test]
fn partial_cluster_bit_identical() {
    let topo = Topology::scaled(512);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::A0, Reg::T0, 2);
        a.li(Reg::T1, 0);
        for _ in 0..8 {
            a.lw(Reg::A1, 0, Reg::A0);
            a.add(Reg::T1, Reg::T1, Reg::A1);
        }
        a.sw(Reg::T1, 0x600, Reg::A0);
    });
    for cores in [1u32, 96, 300] {
        assert_three_way_identical(topo, &image, cores, |sim| {
            for i in 0..0x100u32 {
                sim.memory().write_u32(4 * i, 7 * i + 1);
            }
        });
    }
}

/// Guest deadlock (parked cores with no waker) reports identically: same
/// flag, same parked set, same partial stats — across groups and thread
/// counts.
#[test]
fn deadlock_reported_identically_at_scale() {
    let cores = 512u32;
    let topo = Topology::scaled(cores);
    let image = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        // One hart per group parks forever (hart id multiple of 237 < 512
        // spreads across both groups: 0, 237, 474).
        a.li(Reg::T1, 237);
        let skip = a.new_label();
        a.inst(terasim_riscv::Inst::MulDiv {
            op: terasim_riscv::MulDivOp::Rem,
            rd: Reg::T2,
            rs1: Reg::T0,
            rs2: Reg::T1,
        });
        a.bnez(Reg::T2, skip);
        a.wfi();
        a.bind(skip);
    });
    assert_three_way_identical(topo, &image, cores, |_| {});
    let mut sim = CycleSim::new(topo, &image).unwrap();
    let result = sim.run_parallel(cores, 4).unwrap();
    assert!(result.deadlocked);
    assert_eq!(result.parked, vec![0, 237, 474]);
}
