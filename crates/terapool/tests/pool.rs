//! Memory-pool edge cases: recycled arenas must be indistinguishable
//! from fresh allocations in every state a job can leave them in —
//! deadlocked (arbitrarily dirty, pending wakes), sub-word/AMO dirty
//! spans, reuse across the fast and cycle backends — and the pool must
//! reject arenas it cannot safely recycle.

use std::sync::Arc;

use terasim_riscv::{Assembler, Image, Reg, Segment};
use terasim_terapool::{ClusterMem, CycleSim, FastSim, MemPool, SimArtifacts, Topology};

fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
    let mut a = Assembler::new(Topology::L2_BASE);
    build(&mut a);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
    image
}

/// Every hart writes `100 + hart` to its own word and bumps one shared
/// counter — enough traffic to dirty scattered pages on both backends.
fn worker_image() -> Image {
    image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::T1, Reg::T0, 2);
        a.addi(Reg::T2, Reg::T0, 100);
        a.sw(Reg::T2, 0x400, Reg::T1);
        a.li(Reg::T3, 0x40);
        a.li(Reg::T4, 1);
        a.amoadd_w(Reg::Zero, Reg::T4, Reg::T3);
    })
}

#[test]
fn deadlocked_job_memory_recycles_clean() {
    // Hart 0 scribbles over L1 and L2, leaves a pending wake for hart 1
    // (which never consumes it because it parks first... no: hart 1 parks
    // with no waker), then parks itself -> guest deadlock. The arena goes
    // back to the pool dirty, mid-protocol; the next job must see a
    // perfectly fresh cluster.
    let deadlock = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        let park = a.new_label();
        a.bnez(Reg::T0, park);
        // Hart 0: dirty scattered locations, set EOC, then park forever.
        a.li(Reg::T1, 0x7777);
        a.sw(Reg::T1, 0x100, Reg::Zero);
        a.li(Reg::T2, (Topology::L2_BASE + 0x8000) as i32);
        a.sw(Reg::T1, 0, Reg::T2);
        a.li(Reg::T2, Topology::CTRL_EOC as i32);
        a.li(Reg::T3, 5);
        a.sw(Reg::T3, 0, Reg::T2);
        a.bind(park);
        a.wfi();
    });
    let arts = SimArtifacts::build(Topology::scaled(8), &deadlock).unwrap();
    let pool = MemPool::new(Arc::clone(&arts));

    {
        let mut sim = CycleSim::from_pool(&pool);
        let result = sim.run(8).unwrap();
        assert!(result.deadlocked, "the guest must deadlock");
        assert_eq!(sim.memory().read_u32(0x100), 0x7777, "memory returned dirty");
        assert_eq!(sim.memory().eoc(), 5);
    }
    assert_eq!(pool.parked(), 1, "the deadlocked job's arena is back in the pool");

    // Recycle into a fresh-state check: the dirty words, EOC and wake
    // state must all be reset, the image intact.
    let mem = pool.acquire();
    assert_eq!(pool.stats().recycled, 1);
    for addr in [0x100, Topology::L2_BASE + 0x8000] {
        assert_eq!(mem.read_u32(addr), 0, "{addr:#x} survived recycling");
    }
    assert_eq!(mem.eoc(), 0);
    for core in 0..8 {
        assert!(!mem.wake_pending(core), "stale wake bit survived recycling");
    }
    assert_eq!(
        mem.read_u32(Topology::L2_BASE),
        arts.fresh_memory().read_u32(Topology::L2_BASE),
        "image must be re-applied"
    );
}

#[test]
fn topology_mismatch_is_rejected() {
    let arts = SimArtifacts::build(Topology::scaled(8), &worker_image()).unwrap();
    let pool = MemPool::new(arts);
    let foreign = ClusterMem::new(Topology::scaled(32));
    assert!(!pool.release(foreign), "a 32-core arena must not enter an 8-core pool");
    assert_eq!(pool.parked(), 0);
    assert_eq!(pool.stats().rejected, 1);
    // And the pool still issues correct arenas.
    assert_eq!(pool.acquire().topology().num_cores(), 8);
}

#[test]
fn pool_reuse_across_fast_and_cycle_backends() {
    // One scenario, one pool; a fast job dirties the arena, then a cycle
    // job recycles it (and vice versa). Both must match never-pooled
    // reference runs bit-exactly.
    let image = worker_image();
    let topo = Topology::scaled(8);
    let arts = SimArtifacts::build(topo, &image).unwrap();
    let pool = MemPool::new(Arc::clone(&arts));

    let mut fast_ref = FastSim::new(topo, &image).unwrap();
    let fast_ref_result = fast_ref.run_all(1).unwrap();
    let mut cycle_ref = CycleSim::new(topo, &image).unwrap();
    let cycle_ref_result = cycle_ref.run(8).unwrap();

    for round in 0..2 {
        {
            let mut fast = FastSim::from_pool(&pool);
            let r = fast.run_all(1).unwrap();
            assert_eq!(r.per_core, fast_ref_result.per_core, "round {round}: fast stats diverged");
            for core in 0..8u32 {
                assert_eq!(
                    fast.memory().read_u32(0x400 + 4 * core),
                    fast_ref.memory().read_u32(0x400 + 4 * core),
                    "round {round}: fast memory diverged"
                );
            }
        }
        {
            let mut cycle = CycleSim::from_pool(&pool);
            let r = cycle.run(8).unwrap();
            assert_eq!(r.per_core, cycle_ref_result.per_core, "round {round}: cycle stats diverged");
            assert_eq!(r.cycles, cycle_ref_result.cycles);
            assert_eq!(cycle.memory().read_u32(0x40), cycle_ref.memory().read_u32(0x40));
        }
    }
    let stats = pool.stats();
    assert_eq!(stats.fresh, 1, "one allocation serves all four jobs");
    assert_eq!(stats.recycled, 3, "fast→cycle→fast→cycle all recycled");
}

#[test]
fn subword_and_amo_dirty_spans_reset_exactly() {
    // Guest traffic made of sub-word stores and AMOs at page-straddling
    // addresses: the dirty tracking must catch read-modify-write spans
    // just like full-word stores, and the reset must restore them all.
    let subword = image_of(|a| {
        a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
        a.slli(Reg::T1, Reg::T0, 1);
        // Byte store at an odd offset, halfword at offset 2 mod 4.
        a.li(Reg::T2, 0x5a);
        a.sb(Reg::T2, 0x101, Reg::T1);
        a.li(Reg::T3, 0x1234);
        a.sh(Reg::T3, 0x202, Reg::T1);
        // AMO on a word 4 KiB up (a different dirty page of the bank
        // array for most harts).
        a.li(Reg::T4, 0x1000);
        a.add(Reg::T4, Reg::T4, Reg::T1);
        a.andi(Reg::T4, Reg::T4, !3);
        a.li(Reg::T5, 1);
        a.amoadd_w(Reg::Zero, Reg::T5, Reg::T4);
    });
    let topo = Topology::scaled(8);
    let arts = SimArtifacts::build(topo, &subword).unwrap();
    let pool = MemPool::new(Arc::clone(&arts));

    // Reference: fresh-memory run.
    let mut reference = FastSim::from_artifacts(Arc::clone(&arts));
    reference.run_all(2).unwrap();

    // First pooled job dirties; second must match the fresh reference.
    {
        let mut first = FastSim::from_pool(&pool);
        first.run_all(2).unwrap();
    }
    let mut second = FastSim::from_pool(&pool);
    second.run_all(2).unwrap();
    assert_eq!(pool.stats().recycled, 1);
    for addr in (0x100..0x240).step_by(4).chain((0x1000..0x1020).step_by(4)) {
        assert_eq!(
            second.memory().read_u32(addr),
            reference.memory().read_u32(addr),
            "recycled run diverged from fresh at {addr:#x}"
        );
    }

    // Host-side sub-word writes (operand-setup path) reset too.
    let mem = pool.acquire();
    mem.write_u16(0x301, 0);
    mem.write_u16(0x302, 0xbeef);
    assert!(pool.release(mem));
    let clean = pool.acquire();
    assert_eq!(clean.read_u32(0x300), 0, "host u16 write survived recycling");
}
