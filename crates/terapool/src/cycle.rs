//! The cycle-accurate mode — this project's stand-in for RTL simulation.
//!
//! A single-threaded, cycle-stepped model of the whole cluster with the
//! micro-architectural effects the fast mode deliberately omits (paper §V-B):
//!
//! * **Bank conflicts**: each scratchpad bank services one request per
//!   cycle; concurrent requests arbitrate in core-id order (`stall-lsu`).
//! * **Shared tile ports**: the 8 cores of a tile share one outbound port
//!   to the cluster interconnect (paper §II), serializing remote requests —
//!   the dominant contention the fast mode's 9-cycle assumption absorbs.
//! * **NUMA pipeline stages** at subgroup/group/cluster boundaries: a load
//!   takes `1 + 2·hops` cycles without contention, up to the paper's 9.
//! * **Atomics serialized at the bank** (the barrier hot spot).
//! * **Shared per-tile I$** with line refills from L2 (`stall-ins`).
//! * **Non-pipelined FP divide/sqrt** unit back-pressure (`stall-acc`).
//! * **RAW dependencies** via per-register ready times (`stall-raw`).
//! * **`wfi` sleep** until the barrier wake (`stall-wfi`).
//!
//! Architectural execution reuses the exact same [`Cpu`] semantics as the
//! fast mode, so the two backends produce bit-identical memory contents —
//! only timing differs. One deliberate approximation is documented on
//! [`CycleSim::run`]: values are read at issue time while timing uses the
//! grant time, which is exact for data-race-free guests like the MMSE
//! workload.
//!
//! # Scheduling
//!
//! Two schedulers drive the same per-instruction model:
//!
//! * [`CycleSim::run`] — the **event-driven** engine: a double-buffered
//!   ready bitmap for the dominant issue-again-next-cycle case backed by a
//!   calendar-wheel queue for multi-cycle wakes, so an event step touches
//!   only the cores that can actually issue. Parked (`wfi`) cores leave
//!   the queue entirely and are re-queued through the memory's wake
//!   notification channel ([`ClusterMem::wake_epoch`]), never polled. The
//!   hot path additionally runs from the pre-lowered micro-op table
//!   ([`terasim_iss::uop`]: operand indices, timing metadata and a direct
//!   kernel pointer per instruction, resolved once at load), shift-based
//!   bank decoding, a tile-pair hop table, and primes the memory view
//!   with the bank decode so the kernel never re-derives it.
//! * [`CycleSim::run_naive`] — the original full-scan scheduler, retained
//!   verbatim as the semantic reference: every core context is rescanned
//!   on every event step. The `differential` integration test pins the two
//!   engines to bit-identical [`CycleStats`] and memory contents.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use terasim_iss::uop::UopProgram;
use terasim_iss::{Cpu, InstClass, LatencyModel, Memory, Outcome, Program, Trap, NO_REG};
use terasim_riscv::{Image, Inst};

use crate::mem::{ClusterMem, CoreMem, TurboMem};
use crate::topology::{L1Decode, Topology};

/// Per-core counters of the cycle-accurate run, matching the Figure 8
/// breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Retired instructions (each occupies one issue cycle).
    pub instructions: u64,
    /// Cycles lost to read-after-write dependencies.
    pub stall_raw: u64,
    /// Cycles lost to interconnect/bank contention.
    pub stall_lsu: u64,
    /// Cycles lost to I$ refills.
    pub stall_ins: u64,
    /// Cycles lost to full functional-unit pipelines (div/sqrt busy).
    pub stall_acc: u64,
    /// Cycles idling in `wfi` at synchronization barriers.
    pub stall_wfi: u64,
    /// Cycle at which the core finished (`ecall`).
    pub done_at: u64,
}

impl CycleStats {
    /// Total accounted cycles (instructions + all stall classes).
    pub fn total(&self) -> u64 {
        self.instructions + self.stall_raw + self.stall_lsu + self.stall_ins + self.stall_acc + self.stall_wfi
    }
}

/// Result of a cycle-accurate cluster run.
#[derive(Debug, Clone)]
pub struct CycleResult {
    /// Per-core counters.
    pub per_core: Vec<CycleStats>,
    /// Makespan: the cycle the last core finished.
    pub cycles: u64,
    /// `true` if the run ended in a guest deadlock: the listed cores were
    /// parked in `wfi` with nobody left to wake them. The per-core stats
    /// are then partial (an RTL run would hang here).
    pub deadlocked: bool,
    /// Hart ids still parked when the run ended (empty on a clean finish).
    pub parked: Vec<u32>,
}

impl CycleResult {
    /// Sums the per-core counters (for cluster-level breakdowns).
    pub fn aggregate(&self) -> CycleStats {
        let mut acc = CycleStats::default();
        for s in &self.per_core {
            acc.instructions += s.instructions;
            acc.stall_raw += s.stall_raw;
            acc.stall_lsu += s.stall_lsu;
            acc.stall_ins += s.stall_ins;
            acc.stall_acc += s.stall_acc;
            acc.stall_wfi += s.stall_wfi;
            acc.done_at = acc.done_at.max(s.done_at);
        }
        acc
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Ready,
    Parked,
    Done,
}

/// Outstanding-request capacity of the Snitch LSU; a full queue
/// back-pressures issue (`stall-lsu`).
const LSU_DEPTH: usize = 4;

struct CoreCtx<M> {
    cpu: Cpu,
    mem: M,
    reg_ready: [u64; 32],
    wake_at: u64,
    parked_at: u64,
    fpu_busy_until: u64,
    /// Completion times of in-flight memory requests (one per LSU slot).
    lsu_free: [u64; LSU_DEPTH],
    state: CoreState,
    stats: CycleStats,
    /// Cached `topo.tile_of_core` (hot-path index).
    tile: u32,
}

/// Direct-mapped, per-tile shared instruction cache model (the seed
/// implementation, kept for the naive reference scheduler).
struct ICache {
    line: u32,
    sets: Vec<u32>,
}

impl ICache {
    fn new(bytes: u32, line: u32) -> Self {
        Self { line, sets: vec![u32::MAX; (bytes / line) as usize] }
    }

    /// Returns `true` on hit; installs the line on miss.
    fn access(&mut self, pc: u32) -> bool {
        let line_addr = pc / self.line;
        let idx = (line_addr as usize) % self.sets.len();
        if self.sets[idx] == line_addr {
            true
        } else {
            self.sets[idx] = line_addr;
            false
        }
    }
}

/// [`ICache`] with identical hit/miss behaviour, optimized for the event
/// engine: shift/mask indexing (line size and set count are powers of two
/// on every TeraPool configuration) and a last-line memo — the last line
/// touched is always resident in a direct-mapped cache, so the common
/// straight-line case skips the set lookup entirely.
struct FastICache {
    /// `Some((log2(line), sets - 1))` when line size and set count are
    /// powers of two (true for every TeraPool configuration): branch-free
    /// shift/mask indexing. `None` falls back to the div/mod path so
    /// custom geometries keep working like the naive [`ICache`].
    shift: Option<(u32, usize)>,
    line: u32,
    sets: Vec<u32>,
    last_line: u32,
}

impl FastICache {
    fn new(bytes: u32, line: u32) -> Self {
        let sets = (bytes / line) as usize;
        let shift =
            (line.is_power_of_two() && sets.is_power_of_two()).then(|| (line.trailing_zeros(), sets - 1));
        Self { shift, line, sets: vec![u32::MAX; sets], last_line: u32::MAX }
    }

    /// Returns `true` on hit; installs the line on miss.
    #[inline]
    fn access(&mut self, pc: u32) -> bool {
        let line_addr = match self.shift {
            Some((shift, _)) => pc >> shift,
            None => pc / self.line,
        };
        if line_addr == self.last_line {
            return true;
        }
        let idx = match self.shift {
            Some((_, mask)) => line_addr as usize & mask,
            None => line_addr as usize % self.sets.len(),
        };
        self.last_line = line_addr;
        if self.sets[idx] == line_addr {
            true
        } else {
            self.sets[idx] = line_addr;
            false
        }
    }
}

/// Hot-path lookup tables derived from the topology and program: the
/// fully lowered micro-op table (kernel pointers + operand records +
/// timing metadata, resolved once at load — see [`terasim_iss::uop`])
/// plus the topology-derived hop table and shift-based bank decode.
struct RunTables {
    uops: UopProgram<TurboMem>,
    /// `request_latency` for every (core tile, bank tile) pair.
    hops: Vec<u8>,
    num_tiles: u32,
    /// Shared shift-based L1 decode (bit-identical to `Topology::l1_slot`).
    decode: L1Decode,
}

impl RunTables {
    fn new(topo: Topology, program: &Program, latency: &LatencyModel) -> Self {
        let uops = UopProgram::lower(program, latency);

        let num_tiles = topo.num_tiles();
        let mut hops = vec![0u8; (num_tiles * num_tiles) as usize];
        for ct in 0..num_tiles {
            for bt in 0..num_tiles {
                let hop = if ct == bt {
                    0
                } else if topo.subgroup_of_tile(ct) == topo.subgroup_of_tile(bt) {
                    1
                } else if topo.group_of_tile(ct) == topo.group_of_tile(bt) {
                    2
                } else {
                    4
                };
                hops[(ct * num_tiles + bt) as usize] = hop;
            }
        }

        Self { uops, hops, num_tiles, decode: L1Decode::new(topo) }
    }

    #[inline]
    fn hop(&self, core_tile: u32, bank_tile: u32) -> u64 {
        u64::from(self.hops[(core_tile * self.num_tiles + bank_tile) as usize])
    }

    /// Bit-identical to [`Topology::l1_slot`], using shifts when possible.
    #[inline]
    fn l1_slot(&self, addr: u32) -> Option<(u32, u32)> {
        self.decode.l1_slot(addr)
    }

    /// Tile hosting `bank` (shift-based when possible).
    #[inline]
    fn tile_of_bank(&self, bank: u32) -> u32 {
        self.decode.tile_of_bank(bank)
    }
}

/// Wheel size in one-cycle slots (power of two; covers every short
/// latency in the model — longer delays take the overflow heap).
const WHEEL_SLOTS: u64 = 256;
const WHEEL_MASK: u64 = WHEEL_SLOTS - 1;

/// The event engine's ready queue: a calendar wheel of [`WHEEL_SLOTS`]
/// one-cycle slots, each a core-id bitmap (iteration yields ascending
/// ids — the naive scan's issue order — with O(1) insertion). Each
/// non-parked, non-done core has exactly one live entry. Wake times
/// beyond the wheel horizon (rare: deep bank-contention queues) overflow
/// into a heap and migrate back as time advances.
struct Wheel {
    /// `WHEEL_SLOTS × words` bitmap words.
    slots: Vec<u64>,
    /// Queued-core count per slot.
    counts: Vec<u32>,
    /// Total cores queued in the wheel.
    pending: u32,
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// Bitmap words per slot (`⌈cores / 64⌉`).
    words: usize,
}

impl Wheel {
    fn new(cores: u32) -> Self {
        let words = (cores as usize).div_ceil(64);
        Self {
            slots: vec![0; WHEEL_SLOTS as usize * words],
            counts: vec![0; WHEEL_SLOTS as usize],
            pending: 0,
            overflow: BinaryHeap::new(),
            words,
        }
    }

    /// Queues `core` to issue at cycle `at` (`at ≥ now`).
    #[inline]
    fn push(&mut self, now: u64, at: u64, core: u32) {
        if at - now < WHEEL_SLOTS {
            let slot = (at & WHEEL_MASK) as usize;
            self.slots[slot * self.words + (core / 64) as usize] |= 1u64 << (core % 64);
            self.counts[slot] += 1;
            self.pending += 1;
        } else {
            self.overflow.push(Reverse((at, core)));
        }
    }

    /// Moves overflow entries inside the `[now, now + WHEEL_SLOTS)` horizon
    /// into the wheel.
    fn migrate(&mut self, now: u64) {
        while let Some(&Reverse((at, core))) = self.overflow.peek() {
            if at >= now + WHEEL_SLOTS {
                break;
            }
            self.overflow.pop();
            self.push(now, at, core);
        }
    }

    /// Empties the slot for cycle `now`, OR-ing its core bitmap into
    /// `cur`. No-op (and no memory traffic) when the slot is empty.
    fn drain_slot_into(&mut self, now: u64, cur: &mut [u64]) {
        let slot = (now & WHEEL_MASK) as usize;
        let count = self.counts[slot];
        if count == 0 {
            return;
        }
        self.pending -= count;
        self.counts[slot] = 0;
        for (w, s) in cur.iter_mut().enumerate() {
            *s |= std::mem::take(&mut self.slots[slot * self.words + w]);
        }
    }
}

/// The cycle-accurate cluster simulator.
pub struct CycleSim {
    topo: Topology,
    program: Arc<Program>,
    mem: ClusterMem,
    latency: LatencyModel,
    /// I$ refill penalty (L2 line fetch over AXI).
    pub icache_refill: u64,
    /// Instruction budget per core (safety net).
    pub max_instructions: u64,
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("cores", &self.topo.num_cores())
            .field("text_insts", &self.program.len())
            .finish()
    }
}

impl CycleSim {
    /// Builds a simulator: translates the image and loads all segments.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the image's text cannot be decoded.
    pub fn new(topo: Topology, image: &Image) -> Result<Self, terasim_iss::TranslateError> {
        let program = Arc::new(Program::translate(image)?);
        let mem = ClusterMem::new(topo);
        mem.load_image(image);
        Ok(Self {
            topo,
            program,
            mem,
            latency: LatencyModel::default(),
            icache_refill: 25,
            max_instructions: u64::MAX,
        })
    }

    /// The shared cluster memory.
    pub fn memory(&self) -> &ClusterMem {
        &self.mem
    }

    /// The cluster geometry.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    fn make_ctxs<M: Memory>(&self, cores: u32, view: impl Fn(u32) -> M) -> Vec<CoreCtx<M>> {
        (0..cores)
            .map(|core| {
                let mut cpu = Cpu::new(core);
                cpu.set_pc(self.program.entry());
                CoreCtx {
                    cpu,
                    mem: view(core),
                    reg_ready: [0; 32],
                    wake_at: 0,
                    lsu_free: [0; LSU_DEPTH],
                    parked_at: 0,
                    fpu_busy_until: 0,
                    state: CoreState::Ready,
                    stats: CycleStats::default(),
                    tile: self.topo.tile_of_core(core),
                }
            })
            .collect()
    }

    fn result_of<M>(ctxs: &[CoreCtx<M>]) -> CycleResult {
        let per_core: Vec<CycleStats> = ctxs.iter().map(|c| c.stats).collect();
        let cycles = per_core.iter().map(|s| s.done_at).max().unwrap_or(0);
        let parked: Vec<u32> =
            ctxs.iter().filter(|c| c.state == CoreState::Parked).map(|c| c.cpu.hart_id()).collect();
        CycleResult { per_core, cycles, deadlocked: !parked.is_empty(), parked }
    }

    /// Runs harts `0..cores` to completion with the event-driven scheduler.
    ///
    /// Within a cycle, cores issue in core-id order (the RTL's round-robin
    /// arbitration collapsed to a fixed priority — deterministic and fair
    /// enough at our level of abstraction). Loads read memory at issue time
    /// but their *timing* uses the bank grant time; for data-race-free
    /// guests the two are indistinguishable.
    ///
    /// Only cores whose `wake_at` has arrived are touched on an event step:
    /// a calendar-wheel ready queue keyed on `(wake_at, core)` replays the
    /// naive scan's exact issue order, and parked cores re-enter the queue
    /// through the memory wake channel instead of being polled. Produces
    /// bit-identical [`CycleStats`] and memory contents to
    /// [`CycleSim::run_naive`].
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the topology's core count.
    pub fn run(&mut self, cores: u32) -> Result<CycleResult, Trap> {
        assert!(cores <= self.topo.num_cores(), "core count out of range");
        let mut ctxs = self.make_ctxs(cores, |core| self.mem.turbo_view(core));
        let tables = RunTables::new(self.topo, &self.program, &self.latency);
        let mut icaches: Vec<FastICache> = (0..self.topo.num_tiles())
            .map(|_| FastICache::new(self.topo.icache_bytes, self.topo.icache_line))
            .collect();
        let mut bank_free: Vec<u64> = vec![0; self.topo.num_banks() as usize];
        let mut port_free: Vec<u64> = vec![0; self.topo.num_tiles() as usize];

        let mut wheel = Wheel::new(cores);
        let words = wheel.words;
        // Double-buffered ready bitmaps: `cur` holds the cores issuing at
        // `now`, `nxt` collects the dominant wake-next-cycle case with one
        // OR instead of a full wheel round trip; only wakes two or more
        // cycles out take the wheel.
        let mut cur: Vec<u64> = vec![0; words];
        let mut nxt: Vec<u64> = vec![0; words];
        let mut nxt_count: u32 = 0;
        let mut parked: Vec<u32> = Vec::new();
        let mut now: u64 = 0;
        for core in 0..cores {
            cur[(core / 64) as usize] |= 1u64 << (core % 64); // all issue at cycle 0
        }
        let mut seen_epoch = self.mem.wake_epoch();

        loop {
            // Process every core scheduled for `now`, in ascending id.
            let mut min_waker: Option<u32> = None;
            for w in 0..words {
                let mut bits = std::mem::take(&mut cur[w]);
                while bits != 0 {
                    let bit = bits & bits.wrapping_neg();
                    let core = (w * 64) as u32 + bits.trailing_zeros();
                    bits ^= bit;
                    let ctx = &mut ctxs[core as usize];
                    let did_mem =
                        self.issue_fast(ctx, &tables, &mut icaches, &mut bank_free, &mut port_free, now)?;
                    match ctx.state {
                        CoreState::Ready => {
                            // `.max(now + 1)` mirrors the naive scan's
                            // `next_event.max(now + 1)`: a degenerate model
                            // (e.g. `icache_refill == 0`) may leave
                            // `wake_at == now`, which must retry next
                            // cycle, not re-enter the current one.
                            let wake = ctx.wake_at.max(now + 1);
                            if wake == now + 1 {
                                nxt[w] |= bit;
                                nxt_count += 1;
                            } else {
                                wheel.push(now, wake, core);
                            }
                        }
                        CoreState::Parked => parked.push(core),
                        CoreState::Done => {}
                    }
                    // Wake-all publications can only happen inside a
                    // memory-class instruction (a store to the control
                    // region), so the epoch check is gated on `did_mem`.
                    if did_mem && min_waker.is_none() && self.mem.wake_epoch() != seen_epoch {
                        min_waker = Some(core);
                    }
                }
            }

            // Wake delivery. The naive scan observes a pending wake when
            // its single pass reaches the parked core: cores *after* the
            // waker see it in the same pass (cycle `now`), cores *before*
            // it one pass later (`now + 1`). Replay exactly that.
            if let Some(waker) = min_waker {
                seen_epoch = self.mem.wake_epoch();
                parked.retain(|&core| {
                    if !self.mem.wake_pending(core) {
                        return true;
                    }
                    let _ = self.mem.take_wake(core);
                    let ctx = &mut ctxs[core as usize];
                    let observed = if core > waker { now } else { now + 1 };
                    ctx.stats.stall_wfi += observed.saturating_sub(ctx.parked_at);
                    ctx.state = CoreState::Ready;
                    ctx.wake_at = observed + 1;
                    wheel.push(now, ctx.wake_at, core);
                    false
                });
            }

            // Advance to the next cycle with work.
            if nxt_count > 0 {
                now += 1;
                std::mem::swap(&mut cur, &mut nxt);
                nxt_count = 0;
                wheel.migrate(now);
                wheel.drain_slot_into(now, &mut cur);
                continue;
            }
            // Nothing due next cycle: the nearest work lives in the wheel
            // (or beyond its horizon in the overflow heap).
            wheel.migrate(now);
            if wheel.pending == 0 {
                match wheel.overflow.peek() {
                    Some(&Reverse((at, _))) => {
                        now = at;
                        wheel.migrate(now);
                    }
                    // Wheel and overflow empty: all cores are done, or
                    // only parked cores remain (guest deadlock, surfaced
                    // via `CycleResult::deadlocked`).
                    None => break,
                }
            } else {
                now += 1;
            }
            while wheel.counts[(now & WHEEL_MASK) as usize] == 0 {
                now += 1;
            }
            wheel.drain_slot_into(now, &mut cur);
        }

        Ok(Self::result_of(&ctxs))
    }

    /// Runs harts `0..cores` with the original full-scan scheduler.
    ///
    /// Retained as the semantic baseline: every event step rescans every
    /// core context, exactly as the seed engine did. Use [`CycleSim::run`]
    /// for anything but differential validation and speedup measurement.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the topology's core count.
    pub fn run_naive(&mut self, cores: u32) -> Result<CycleResult, Trap> {
        assert!(cores <= self.topo.num_cores(), "core count out of range");
        let mut ctxs = self.make_ctxs(cores, |core| self.mem.core_view(core));
        let mut icaches: Vec<ICache> = (0..self.topo.num_tiles())
            .map(|_| ICache::new(self.topo.icache_bytes, self.topo.icache_line))
            .collect();
        let mut bank_free: Vec<u64> = vec![0; self.topo.num_banks() as usize];
        let mut port_free: Vec<u64> = vec![0; self.topo.num_tiles() as usize];

        let mut now: u64 = 0;
        loop {
            let mut alive = false;
            let mut next_event = u64::MAX;

            for ctx in ctxs.iter_mut() {
                match ctx.state {
                    CoreState::Done => continue,
                    CoreState::Parked => {
                        alive = true;
                        if self.mem.wake_pending(ctx.cpu.hart_id()) {
                            let _ = self.mem.take_wake(ctx.cpu.hart_id());
                            ctx.stats.stall_wfi += now.saturating_sub(ctx.parked_at);
                            ctx.state = CoreState::Ready;
                            ctx.wake_at = now + 1;
                            next_event = next_event.min(ctx.wake_at);
                        }
                        continue;
                    }
                    CoreState::Ready => {}
                }
                alive = true;
                if ctx.wake_at > now {
                    next_event = next_event.min(ctx.wake_at);
                    continue;
                }

                self.issue_one(ctx, &mut icaches, &mut bank_free, &mut port_free, now)?;
                next_event = next_event.min(ctx.wake_at.max(now + 1));
            }

            if !alive {
                break;
            }
            if next_event == u64::MAX {
                // Only parked cores remain and nobody will wake them:
                // guest deadlock; report what we have.
                break;
            }
            now = next_event.max(now + 1);
        }

        Ok(Self::result_of(&ctxs))
    }

    /// Attempts to issue one instruction on `ctx` at cycle `now`; updates
    /// `wake_at` to the next cycle the core can act. (Reference path used
    /// by [`CycleSim::run_naive`].)
    fn issue_one(
        &self,
        ctx: &mut CoreCtx<CoreMem>,
        icaches: &mut [ICache],
        bank_free: &mut [u64],
        port_free: &mut [u64],
        now: u64,
    ) -> Result<(), Trap> {
        if ctx.stats.instructions >= self.max_instructions {
            ctx.state = CoreState::Done;
            ctx.stats.done_at = now;
            return Ok(());
        }

        let pc = ctx.cpu.pc();
        let inst = self.program.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let core = ctx.cpu.hart_id();
        let tile = self.topo.tile_of_core(core) as usize;

        // 1. Instruction fetch through the shared tile I$.
        if !icaches[tile].access(pc) {
            ctx.stats.stall_ins += self.icache_refill;
            ctx.wake_at = now + self.icache_refill;
            return Ok(());
        }

        // 2. RAW: wait for source operands.
        let mut ready_at = now;
        for src in inst.srcs() {
            ready_at = ready_at.max(ctx.reg_ready[src.index()]);
        }
        if ready_at > now {
            ctx.stats.stall_raw += ready_at - now;
            ctx.wake_at = ready_at;
            return Ok(());
        }

        // 3. Structural hazard: the iterative div/sqrt unit is not
        // pipelined; FP-class ops wait while it drains.
        let class = InstClass::of(&inst);
        let uses_fpu =
            matches!(class, InstClass::Fp | InstClass::FpDivSqrt | InstClass::Simd | InstClass::Dotp);
        if uses_fpu && ctx.fpu_busy_until > now {
            ctx.stats.stall_acc += ctx.fpu_busy_until - now;
            ctx.wake_at = ctx.fpu_busy_until;
            return Ok(());
        }

        // 4. Memory: arbitrate for the target bank.
        let mut result_latency = u64::from(self.latency.result_latency(class));
        if inst.is_mem() {
            // A full LSU queue back-pressures issue.
            let (slot, slot_free) =
                ctx.lsu_free.iter().copied().enumerate().min_by_key(|&(_, t)| t).expect("LSU has slots");
            if slot_free > now {
                ctx.stats.stall_lsu += slot_free - now;
                ctx.wake_at = slot_free;
                return Ok(());
            }
            let addr = effective_address(&ctx.cpu, &inst);
            if let Some((bank, _)) = self.topo.l1_slot(addr & !3) {
                let hop = u64::from(self.topo.request_latency(core, bank));
                // Remote requests serialize on the tile's shared outbound
                // port (one request per cycle per tile, paper §II).
                let depart = if hop > 0 {
                    let port = tile;
                    let d = now.max(port_free[port]);
                    port_free[port] = d + 1;
                    d
                } else {
                    now
                };
                let arrive = depart + hop;
                let busy = if matches!(class, InstClass::Amo) { 2 } else { 1 };
                let grant = arrive.max(bank_free[bank as usize]);
                bank_free[bank as usize] = grant + busy;
                let contention = grant - (now + hop);
                ctx.stats.stall_lsu += contention;
                // Response returns after the bank access + the way back.
                result_latency = (grant + busy - now) + hop;
            } else {
                // L2/ctrl over AXI: fixed latency, no contention model.
                result_latency = 16;
            }
            ctx.lsu_free[slot] = now + result_latency;
        }

        // 5. Architectural execution.
        let outcome = ctx.cpu.execute(inst, &mut ctx.mem)?;
        ctx.stats.instructions += 1;
        ctx.cpu.set_mcycle(now);

        if let Some(rd) = inst.dst() {
            ctx.reg_ready[rd.index()] = now + result_latency;
        }
        if let Some(base) = inst.post_inc_dst() {
            ctx.reg_ready[base.index()] = now + 1;
        }
        if uses_fpu && matches!(class, InstClass::FpDivSqrt) {
            ctx.fpu_busy_until = now + u64::from(self.latency.result_latency(class));
        }

        ctx.wake_at = now + 1;
        if inst.is_control_flow() && ctx.cpu.pc() != pc.wrapping_add(4) {
            ctx.wake_at = now + 1 + u64::from(self.latency.taken_branch_penalty);
            // Fetch bubbles are charged to stall-ins? No: the paper folds
            // branch penalties into the instruction stream; we keep them as
            // issue gaps (they appear in no stall class, matching Snitch's
            // minimal frontend).
        }

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                ctx.state = CoreState::Done;
                ctx.stats.done_at = now + 1;
            }
            Outcome::Wfi => {
                if self.mem.take_wake(core) {
                    // Wake already pending: fall through immediately.
                } else {
                    ctx.state = CoreState::Parked;
                    ctx.parked_at = now + 1;
                    ctx.wake_at = u64::MAX;
                }
            }
        }
        Ok(())
    }

    /// Hot-path issue used by the event-driven engine: identical semantics
    /// to [`CycleSim::issue_one`], running from the pre-lowered micro-op
    /// table (operands, metadata and a direct kernel pointer resolved once
    /// at load — no per-issue field extraction or nested matching), the
    /// tile-pair hop table and shift-based bank decoding.
    /// Returns `true` when a memory-class instruction *executed* (the
    /// only case in which a wake-all can have been published).
    #[inline]
    fn issue_fast(
        &self,
        ctx: &mut CoreCtx<TurboMem>,
        tables: &RunTables,
        icaches: &mut [FastICache],
        bank_free: &mut [u64],
        port_free: &mut [u64],
        now: u64,
    ) -> Result<bool, Trap> {
        if ctx.stats.instructions >= self.max_instructions {
            ctx.state = CoreState::Done;
            ctx.stats.done_at = now;
            return Ok(false);
        }

        let pc = ctx.cpu.pc();
        let lu = tables.uops.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let meta = &lu.meta;
        let tile = ctx.tile as usize;

        // 1. Instruction fetch through the shared tile I$.
        if !icaches[tile].access(pc) {
            ctx.stats.stall_ins += self.icache_refill;
            ctx.wake_at = now + self.icache_refill;
            return Ok(false);
        }

        // 2. RAW: wait for source operands. Unused `srcs` entries are
        // pre-padded with `x0` (always ready at 0), so the three loads are
        // branchless.
        let ready_at = now
            .max(ctx.reg_ready[(meta.srcs[0] & 31) as usize])
            .max(ctx.reg_ready[(meta.srcs[1] & 31) as usize])
            .max(ctx.reg_ready[(meta.srcs[2] & 31) as usize]);
        if ready_at > now {
            ctx.stats.stall_raw += ready_at - now;
            ctx.wake_at = ready_at;
            return Ok(false);
        }

        // 3. Structural hazard: non-pipelined div/sqrt unit.
        if meta.uses_fpu && ctx.fpu_busy_until > now {
            ctx.stats.stall_acc += ctx.fpu_busy_until - now;
            ctx.wake_at = ctx.fpu_busy_until;
            return Ok(false);
        }

        // 4. Memory: arbitrate for the target bank.
        let mut result_latency = meta.result_lat;
        if meta.is_mem {
            // First-minimum slot, identical tie-break to `min_by_key`,
            // evaluated as a branchless reduction tree. The tree is
            // written out for the current queue depth; widen it (or
            // revert to the scan in `issue_one`) if the depth changes.
            const { assert!(LSU_DEPTH == 4, "reduction tree below is written for 4 LSU slots") };
            let q = &ctx.lsu_free;
            let (a, b) = if q[1] < q[0] { (1usize, q[1]) } else { (0usize, q[0]) };
            let (c, d) = if q[3] < q[2] { (3usize, q[3]) } else { (2usize, q[2]) };
            let (slot, slot_free) = if d < b { (c, d) } else { (a, b) };
            if slot_free > now {
                ctx.stats.stall_lsu += slot_free - now;
                ctx.wake_at = slot_free;
                return Ok(false);
            }
            let base = ctx.cpu.reg(terasim_riscv::Reg::from_num(u32::from(meta.ea_base) & 31));
            let addr = if meta.ea_no_offset { base } else { base.wrapping_add(meta.ea_offset as u32) };
            if let Some((bank, off)) = tables.l1_slot(addr & !3) {
                // Hand the kernel the decode we just did (one-entry memo).
                ctx.mem.prime(addr & !3, bank, off);
                let hop = tables.hop(ctx.tile, tables.tile_of_bank(bank));
                let depart = if hop > 0 {
                    let d = now.max(port_free[tile]);
                    port_free[tile] = d + 1;
                    d
                } else {
                    now
                };
                let arrive = depart + hop;
                let busy = if meta.is_amo { 2 } else { 1 };
                let grant = arrive.max(bank_free[bank as usize]);
                bank_free[bank as usize] = grant + busy;
                ctx.stats.stall_lsu += grant - (now + hop);
                result_latency = (grant + busy - now) + hop;
            } else {
                result_latency = 16;
            }
            ctx.lsu_free[slot] = now + result_latency;
        }

        // 5. Architectural execution through the lowered kernel.
        let outcome = (lu.exec)(&mut ctx.cpu, lu.uop, &mut ctx.mem)?;
        ctx.stats.instructions += 1;
        ctx.cpu.set_mcycle(now);

        if meta.dst != NO_REG {
            ctx.reg_ready[meta.dst as usize] = now + result_latency;
        }
        if meta.post_inc != NO_REG {
            ctx.reg_ready[meta.post_inc as usize] = now + 1;
        }
        if meta.is_div_sqrt {
            ctx.fpu_busy_until = now + meta.result_lat;
        }

        ctx.wake_at = now + 1;
        if meta.is_control_flow && ctx.cpu.pc() != pc.wrapping_add(4) {
            ctx.wake_at = now + 1 + u64::from(self.latency.taken_branch_penalty);
        }

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                ctx.state = CoreState::Done;
                ctx.stats.done_at = now + 1;
            }
            Outcome::Wfi => {
                if self.mem.take_wake(ctx.cpu.hart_id()) {
                    // Wake already pending: fall through immediately.
                } else {
                    ctx.state = CoreState::Parked;
                    ctx.parked_at = now + 1;
                    ctx.wake_at = u64::MAX;
                }
            }
        }
        Ok(meta.is_mem)
    }
}

fn effective_address(cpu: &Cpu, inst: &Inst) -> u32 {
    match *inst {
        Inst::Load { rs1, offset, post_inc, .. } => {
            let base = cpu.reg(rs1);
            if post_inc {
                base
            } else {
                base.wrapping_add(offset as u32)
            }
        }
        Inst::Store { rs1, offset, post_inc, .. } => {
            let base = cpu.reg(rs1);
            if post_inc {
                base
            } else {
                base.wrapping_add(offset as u32)
            }
        }
        Inst::LrW { rs1, .. } | Inst::ScW { rs1, .. } | Inst::Amo { rs1, .. } => cpu.reg(rs1),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    use super::*;

    fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
        let mut a = Assembler::new(Topology::L2_BASE);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        image
    }

    #[test]
    fn single_core_completes() {
        let image = image_of(|a| {
            a.li(Reg::T0, 5);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(1).unwrap();
        assert_eq!(result.per_core[0].instructions, 12);
        assert!(result.cycles > 12, "cycles include stalls and penalties");
        assert!(!result.deadlocked);
        assert!(result.parked.is_empty());
    }

    #[test]
    fn bank_conflicts_cost_cycles() {
        // All 8 cores hammer the same interleaved word -> bank conflicts.
        let conflict = image_of(|a| {
            a.li(Reg::A1, 0x0);
            for _ in 0..16 {
                a.lw(Reg::A0, 0, Reg::A1);
            }
        });
        // Each core reads its own word in its own bank (stride 4 = next bank).
        let spread = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::A1, Reg::T0, 2);
            for _ in 0..16 {
                a.lw(Reg::A0, 0, Reg::A1);
            }
        });
        let topo = Topology::scaled(8);
        let mut sim_c = CycleSim::new(topo, &conflict).unwrap();
        let mut sim_s = CycleSim::new(topo, &spread).unwrap();
        let rc = sim_c.run(8).unwrap();
        let rs = sim_s.run(8).unwrap();
        let lsu_c = rc.aggregate().stall_lsu;
        let lsu_s = rs.aggregate().stall_lsu;
        assert!(lsu_c > lsu_s, "conflicting accesses must stall more ({lsu_c} vs {lsu_s})");
        assert!(rc.cycles > rs.cycles);
    }

    #[test]
    fn icache_misses_are_counted() {
        let image = image_of(|a| {
            for _ in 0..64 {
                a.nop();
            }
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(1).unwrap();
        // 65 instructions over 32-byte lines: ~9 lines.
        let ins = result.per_core[0].stall_ins;
        assert!(ins >= 8 * sim.icache_refill, "stall_ins = {ins}");
    }

    #[test]
    fn results_match_fast_mode() {
        // Same guest on both backends must produce identical memory.
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::T1, Reg::T0, 2);
            a.addi(Reg::T2, Reg::T0, 100);
            a.sw(Reg::T2, 0x400, Reg::T1);
        });
        let topo = Topology::scaled(8);
        let mut cyc = CycleSim::new(topo, &image).unwrap();
        cyc.run(8).unwrap();
        let mut fast = crate::FastSim::new(topo, &image).unwrap();
        fast.run_all(2).unwrap();
        for core in 0..8u32 {
            let addr = 0x400 + core * 4;
            assert_eq!(cyc.memory().read_u32(addr), fast.memory().read_u32(addr));
            assert_eq!(cyc.memory().read_u32(addr), 100 + core);
        }
    }

    fn barrier_image(cores: u32) -> Image {
        // amoadd-counting barrier: the last arrival wakes everyone.
        image_of(|a| {
            a.li(Reg::A1, 0x10); // barrier counter in L1
            a.li(Reg::T1, 1);
            a.amoadd_w(Reg::T0, Reg::T1, Reg::A1);
            a.li(Reg::T2, (cores - 1) as i32);
            let last = a.new_label();
            a.beq(Reg::T0, Reg::T2, last);
            a.wfi();
            let done = a.new_label();
            a.j(done);
            a.bind(last);
            a.li(Reg::T3, Topology::CTRL_WAKE_ALL as i32);
            a.sw(Reg::T1, 0, Reg::T3);
            a.bind(done);
        })
    }

    #[test]
    fn wfi_barrier_wakes_all() {
        let mut sim = CycleSim::new(Topology::scaled(8), &barrier_image(8)).unwrap();
        let result = sim.run(8).unwrap();
        assert_eq!(sim.memory().read_u32(0x10), 8, "all cores arrived");
        let wfi: u64 = result.per_core.iter().map(|s| s.stall_wfi).sum();
        assert!(wfi > 0, "early arrivals idled in wfi");
        assert!(result.per_core.iter().all(|s| s.done_at > 0), "all cores finished");
        assert!(!result.deadlocked);
    }

    #[test]
    fn event_and_naive_schedulers_agree_on_barrier_program() {
        let topo = Topology::scaled(8);
        let mut a = CycleSim::new(topo, &barrier_image(8)).unwrap();
        let mut b = CycleSim::new(topo, &barrier_image(8)).unwrap();
        let event = a.run(8).unwrap();
        let naive = b.run_naive(8).unwrap();
        assert_eq!(event.per_core, naive.per_core, "bit-identical per-core stats");
        assert_eq!(event.cycles, naive.cycles);
        assert_eq!(a.memory().read_u32(0x10), b.memory().read_u32(0x10));
    }

    #[test]
    fn zero_refill_latency_engines_agree() {
        // Degenerate model: `icache_refill == 0` leaves `wake_at == now`
        // on a miss. The event engine must retry next cycle exactly like
        // the naive scan instead of mis-scheduling the core a full wheel
        // revolution into the future.
        let image = image_of(|a| {
            for _ in 0..256 {
                a.nop();
            }
        });
        let topo = Topology::scaled(8);
        let mut event = CycleSim::new(topo, &image).unwrap();
        let mut naive = CycleSim::new(topo, &image).unwrap();
        event.icache_refill = 0;
        naive.icache_refill = 0;
        let re = event.run(8).unwrap();
        let rn = naive.run_naive(8).unwrap();
        assert_eq!(re.per_core, rn.per_core);
        assert_eq!(re.cycles, rn.cycles);
    }

    #[test]
    fn deadlock_is_surfaced() {
        // Everyone parks; nobody ever wakes them.
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            let skip = a.new_label();
            a.bnez(Reg::T0, skip);
            a.wfi(); // hart 0 sleeps forever
            a.bind(skip);
        });
        let topo = Topology::scaled(8);
        for naive in [false, true] {
            let mut sim = CycleSim::new(topo, &image).unwrap();
            let result = if naive { sim.run_naive(8).unwrap() } else { sim.run(8).unwrap() };
            assert!(result.deadlocked, "naive={naive}: wfi with no waker must deadlock");
            assert_eq!(result.parked, vec![0], "naive={naive}");
            // The other seven harts finished cleanly.
            assert_eq!(result.per_core.iter().filter(|s| s.done_at > 0).count(), 7);
        }
    }
}
