//! The cycle-accurate mode — this project's stand-in for RTL simulation.
//!
//! A single-threaded, cycle-stepped model of the whole cluster with the
//! micro-architectural effects the fast mode deliberately omits (paper §V-B):
//!
//! * **Bank conflicts**: each scratchpad bank services one request per
//!   cycle; concurrent requests arbitrate in core-id order (`stall-lsu`).
//! * **Shared tile ports**: the 8 cores of a tile share one outbound port
//!   to the cluster interconnect (paper §II), serializing remote requests —
//!   the dominant contention the fast mode's 9-cycle assumption absorbs.
//! * **NUMA pipeline stages** at subgroup/group/cluster boundaries: a load
//!   takes `1 + 2·hops` cycles without contention, up to the paper's 9.
//! * **Atomics serialized at the bank** (the barrier hot spot).
//! * **Shared per-tile I$** with line refills from L2 (`stall-ins`).
//! * **Non-pipelined FP divide/sqrt** unit back-pressure (`stall-acc`).
//! * **RAW dependencies** via per-register ready times (`stall-raw`).
//! * **`wfi` sleep** until the barrier wake (`stall-wfi`).
//!
//! Architectural execution reuses the exact same [`Cpu`] semantics as the
//! fast mode, so the two backends produce bit-identical memory contents —
//! only timing differs. One deliberate approximation is documented on
//! [`CycleSim::run`]: values are read at issue time while timing uses the
//! grant time, which is exact for data-race-free guests like the MMSE
//! workload.

use std::sync::Arc;

use terasim_iss::{Cpu, InstClass, LatencyModel, Outcome, Program, Trap};
use terasim_riscv::{Image, Inst};

use crate::mem::{ClusterMem, CoreMem};
use crate::topology::Topology;

/// Per-core counters of the cycle-accurate run, matching the Figure 8
/// breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleStats {
    /// Retired instructions (each occupies one issue cycle).
    pub instructions: u64,
    /// Cycles lost to read-after-write dependencies.
    pub stall_raw: u64,
    /// Cycles lost to interconnect/bank contention.
    pub stall_lsu: u64,
    /// Cycles lost to I$ refills.
    pub stall_ins: u64,
    /// Cycles lost to full functional-unit pipelines (div/sqrt busy).
    pub stall_acc: u64,
    /// Cycles idling in `wfi` at synchronization barriers.
    pub stall_wfi: u64,
    /// Cycle at which the core finished (`ecall`).
    pub done_at: u64,
}

impl CycleStats {
    /// Total accounted cycles (instructions + all stall classes).
    pub fn total(&self) -> u64 {
        self.instructions + self.stall_raw + self.stall_lsu + self.stall_ins + self.stall_acc + self.stall_wfi
    }
}

/// Result of a cycle-accurate cluster run.
#[derive(Debug, Clone)]
pub struct CycleResult {
    /// Per-core counters.
    pub per_core: Vec<CycleStats>,
    /// Makespan: the cycle the last core finished.
    pub cycles: u64,
}

impl CycleResult {
    /// Sums the per-core counters (for cluster-level breakdowns).
    pub fn aggregate(&self) -> CycleStats {
        let mut acc = CycleStats::default();
        for s in &self.per_core {
            acc.instructions += s.instructions;
            acc.stall_raw += s.stall_raw;
            acc.stall_lsu += s.stall_lsu;
            acc.stall_ins += s.stall_ins;
            acc.stall_acc += s.stall_acc;
            acc.stall_wfi += s.stall_wfi;
            acc.done_at = acc.done_at.max(s.done_at);
        }
        acc
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Ready,
    Parked,
    Done,
}

/// Outstanding-request capacity of the Snitch LSU; a full queue
/// back-pressures issue (`stall-lsu`).
const LSU_DEPTH: usize = 4;

struct CoreCtx {
    cpu: Cpu,
    mem: CoreMem,
    reg_ready: [u64; 32],
    wake_at: u64,
    parked_at: u64,
    fpu_busy_until: u64,
    /// Completion times of in-flight memory requests (one per LSU slot).
    lsu_free: [u64; LSU_DEPTH],
    state: CoreState,
    stats: CycleStats,
}

/// Direct-mapped, per-tile shared instruction cache model.
struct ICache {
    line: u32,
    sets: Vec<u32>,
}

impl ICache {
    fn new(bytes: u32, line: u32) -> Self {
        Self { line, sets: vec![u32::MAX; (bytes / line) as usize] }
    }

    /// Returns `true` on hit; installs the line on miss.
    fn access(&mut self, pc: u32) -> bool {
        let line_addr = pc / self.line;
        let idx = (line_addr as usize) % self.sets.len();
        if self.sets[idx] == line_addr {
            true
        } else {
            self.sets[idx] = line_addr;
            false
        }
    }
}

/// The cycle-accurate cluster simulator.
pub struct CycleSim {
    topo: Topology,
    program: Arc<Program>,
    mem: ClusterMem,
    latency: LatencyModel,
    /// I$ refill penalty (L2 line fetch over AXI).
    pub icache_refill: u64,
    /// Instruction budget per core (safety net).
    pub max_instructions: u64,
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("cores", &self.topo.num_cores())
            .field("text_insts", &self.program.len())
            .finish()
    }
}

impl CycleSim {
    /// Builds a simulator: translates the image and loads all segments.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the image's text cannot be decoded.
    pub fn new(topo: Topology, image: &Image) -> Result<Self, terasim_iss::TranslateError> {
        let program = Arc::new(Program::translate(image)?);
        let mem = ClusterMem::new(topo);
        mem.load_image(image);
        Ok(Self {
            topo,
            program,
            mem,
            latency: LatencyModel::default(),
            icache_refill: 25,
            max_instructions: u64::MAX,
        })
    }

    /// The shared cluster memory.
    pub fn memory(&self) -> &ClusterMem {
        &self.mem
    }

    /// The cluster geometry.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Runs harts `0..cores` to completion, cycle by cycle.
    ///
    /// Within a cycle, cores issue in core-id order (the RTL's round-robin
    /// arbitration collapsed to a fixed priority — deterministic and fair
    /// enough at our level of abstraction). Loads read memory at issue time
    /// but their *timing* uses the bank grant time; for data-race-free
    /// guests the two are indistinguishable.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the topology's core count.
    pub fn run(&mut self, cores: u32) -> Result<CycleResult, Trap> {
        assert!(cores <= self.topo.num_cores(), "core count out of range");
        let mut ctxs: Vec<CoreCtx> = (0..cores)
            .map(|core| {
                let mut cpu = Cpu::new(core);
                cpu.set_pc(self.program.entry());
                CoreCtx {
                    cpu,
                    mem: self.mem.core_view(core),
                    reg_ready: [0; 32],
                    wake_at: 0,
                    lsu_free: [0; LSU_DEPTH],
                    parked_at: 0,
                    fpu_busy_until: 0,
                    state: CoreState::Ready,
                    stats: CycleStats::default(),
                }
            })
            .collect();
        let mut icaches: Vec<ICache> =
            (0..self.topo.num_tiles()).map(|_| ICache::new(self.topo.icache_bytes, self.topo.icache_line)).collect();
        let mut bank_free: Vec<u64> = vec![0; self.topo.num_banks() as usize];
        let mut port_free: Vec<u64> = vec![0; self.topo.num_tiles() as usize];

        let mut now: u64 = 0;
        loop {
            let mut alive = false;
            let mut next_event = u64::MAX;

            for ctx in ctxs.iter_mut() {
                match ctx.state {
                    CoreState::Done => continue,
                    CoreState::Parked => {
                        alive = true;
                        if self.mem.wake_pending(ctx.cpu.hart_id()) {
                            let _ = self.mem.take_wake(ctx.cpu.hart_id());
                            ctx.stats.stall_wfi += now.saturating_sub(ctx.parked_at);
                            ctx.state = CoreState::Ready;
                            ctx.wake_at = now + 1;
                            next_event = next_event.min(ctx.wake_at);
                        }
                        continue;
                    }
                    CoreState::Ready => {}
                }
                alive = true;
                if ctx.wake_at > now {
                    next_event = next_event.min(ctx.wake_at);
                    continue;
                }

                self.issue_one(ctx, &mut icaches, &mut bank_free, &mut port_free, now)?;
                next_event = next_event.min(ctx.wake_at.max(now + 1));
            }

            if !alive {
                break;
            }
            if next_event == u64::MAX {
                // Only parked cores remain and nobody will wake them:
                // guest deadlock; report what we have.
                break;
            }
            now = next_event.max(now + 1);
        }

        let per_core: Vec<CycleStats> = ctxs.iter().map(|c| c.stats).collect();
        let cycles = per_core.iter().map(|s| s.done_at).max().unwrap_or(0);
        Ok(CycleResult { per_core, cycles })
    }

    /// Attempts to issue one instruction on `ctx` at cycle `now`; updates
    /// `wake_at` to the next cycle the core can act.
    fn issue_one(
        &self,
        ctx: &mut CoreCtx,
        icaches: &mut [ICache],
        bank_free: &mut [u64],
        port_free: &mut [u64],
        now: u64,
    ) -> Result<(), Trap> {
        if ctx.stats.instructions >= self.max_instructions {
            ctx.state = CoreState::Done;
            ctx.stats.done_at = now;
            return Ok(());
        }

        let pc = ctx.cpu.pc();
        let inst = self.program.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let core = ctx.cpu.hart_id();
        let tile = self.topo.tile_of_core(core) as usize;

        // 1. Instruction fetch through the shared tile I$.
        if !icaches[tile].access(pc) {
            ctx.stats.stall_ins += self.icache_refill;
            ctx.wake_at = now + self.icache_refill;
            return Ok(());
        }

        // 2. RAW: wait for source operands.
        let mut ready_at = now;
        for src in inst.srcs() {
            ready_at = ready_at.max(ctx.reg_ready[src.index()]);
        }
        if ready_at > now {
            ctx.stats.stall_raw += ready_at - now;
            ctx.wake_at = ready_at;
            return Ok(());
        }

        // 3. Structural hazard: the iterative div/sqrt unit is not
        // pipelined; FP-class ops wait while it drains.
        let class = InstClass::of(&inst);
        let uses_fpu = matches!(
            class,
            InstClass::Fp | InstClass::FpDivSqrt | InstClass::Simd | InstClass::Dotp
        );
        if uses_fpu && ctx.fpu_busy_until > now {
            ctx.stats.stall_acc += ctx.fpu_busy_until - now;
            ctx.wake_at = ctx.fpu_busy_until;
            return Ok(());
        }

        // 4. Memory: arbitrate for the target bank.
        let mut result_latency = u64::from(self.latency.result_latency(class));
        if inst.is_mem() {
            // A full LSU queue back-pressures issue.
            let (slot, slot_free) = ctx
                .lsu_free
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, t)| t)
                .expect("LSU has slots");
            if slot_free > now {
                ctx.stats.stall_lsu += slot_free - now;
                ctx.wake_at = slot_free;
                return Ok(());
            }
            let addr = effective_address(&ctx.cpu, &inst);
            if let Some((bank, _)) = self.topo.l1_slot(addr & !3) {
                let hop = u64::from(self.topo.request_latency(core, bank));
                // Remote requests serialize on the tile's shared outbound
                // port (one request per cycle per tile, paper §II).
                let depart = if hop > 0 {
                    let port = tile;
                    let d = now.max(port_free[port]);
                    port_free[port] = d + 1;
                    d
                } else {
                    now
                };
                let arrive = depart + hop;
                let busy = if matches!(class, InstClass::Amo) { 2 } else { 1 };
                let grant = arrive.max(bank_free[bank as usize]);
                bank_free[bank as usize] = grant + busy;
                let contention = grant - (now + hop);
                ctx.stats.stall_lsu += contention;
                // Response returns after the bank access + the way back.
                result_latency = (grant + busy - now) + hop;
            } else {
                // L2/ctrl over AXI: fixed latency, no contention model.
                result_latency = 16;
            }
            ctx.lsu_free[slot] = now + result_latency;
        }

        // 5. Architectural execution.
        let outcome = ctx.cpu.execute(inst, &mut ctx.mem)?;
        ctx.stats.instructions += 1;
        ctx.cpu.set_mcycle(now);

        if let Some(rd) = inst.dst() {
            ctx.reg_ready[rd.index()] = now + result_latency;
        }
        if let Some(base) = inst.post_inc_dst() {
            ctx.reg_ready[base.index()] = now + 1;
        }
        if uses_fpu && matches!(class, InstClass::FpDivSqrt) {
            ctx.fpu_busy_until = now + u64::from(self.latency.result_latency(class));
        }

        ctx.wake_at = now + 1;
        if inst.is_control_flow() && ctx.cpu.pc() != pc.wrapping_add(4) {
            ctx.wake_at = now + 1 + u64::from(self.latency.taken_branch_penalty);
            // Fetch bubbles are charged to stall-ins? No: the paper folds
            // branch penalties into the instruction stream; we keep them as
            // issue gaps (they appear in no stall class, matching Snitch's
            // minimal frontend).
        }

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                ctx.state = CoreState::Done;
                ctx.stats.done_at = now + 1;
            }
            Outcome::Wfi => {
                if self.mem.take_wake(core) {
                    // Wake already pending: fall through immediately.
                } else {
                    ctx.state = CoreState::Parked;
                    ctx.parked_at = now + 1;
                    ctx.wake_at = u64::MAX;
                }
            }
        }
        Ok(())
    }
}

fn effective_address(cpu: &Cpu, inst: &Inst) -> u32 {
    match *inst {
        Inst::Load { rs1, offset, post_inc, .. } => {
            let base = cpu.reg(rs1);
            if post_inc {
                base
            } else {
                base.wrapping_add(offset as u32)
            }
        }
        Inst::Store { rs1, offset, post_inc, .. } => {
            let base = cpu.reg(rs1);
            if post_inc {
                base
            } else {
                base.wrapping_add(offset as u32)
            }
        }
        Inst::LrW { rs1, .. } | Inst::ScW { rs1, .. } | Inst::Amo { rs1, .. } => cpu.reg(rs1),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    use super::*;

    fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
        let mut a = Assembler::new(Topology::L2_BASE);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        image
    }

    #[test]
    fn single_core_completes() {
        let image = image_of(|a| {
            a.li(Reg::T0, 5);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(1).unwrap();
        assert_eq!(result.per_core[0].instructions, 12);
        assert!(result.cycles > 12, "cycles include stalls and penalties");
    }

    #[test]
    fn bank_conflicts_cost_cycles() {
        // All 8 cores hammer the same interleaved word -> bank conflicts.
        let conflict = image_of(|a| {
            a.li(Reg::A1, 0x0);
            for _ in 0..16 {
                a.lw(Reg::A0, 0, Reg::A1);
            }
        });
        // Each core reads its own word in its own bank (stride 4 = next bank).
        let spread = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::A1, Reg::T0, 2);
            for _ in 0..16 {
                a.lw(Reg::A0, 0, Reg::A1);
            }
        });
        let topo = Topology::scaled(8);
        let mut sim_c = CycleSim::new(topo, &conflict).unwrap();
        let mut sim_s = CycleSim::new(topo, &spread).unwrap();
        let rc = sim_c.run(8).unwrap();
        let rs = sim_s.run(8).unwrap();
        let lsu_c = rc.aggregate().stall_lsu;
        let lsu_s = rs.aggregate().stall_lsu;
        assert!(lsu_c > lsu_s, "conflicting accesses must stall more ({lsu_c} vs {lsu_s})");
        assert!(rc.cycles > rs.cycles);
    }

    #[test]
    fn icache_misses_are_counted() {
        let image = image_of(|a| {
            for _ in 0..64 {
                a.nop();
            }
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(1).unwrap();
        // 65 instructions over 32-byte lines: ~9 lines.
        let ins = result.per_core[0].stall_ins;
        assert!(ins >= 8 * sim.icache_refill, "stall_ins = {ins}");
    }

    #[test]
    fn results_match_fast_mode() {
        // Same guest on both backends must produce identical memory.
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::T1, Reg::T0, 2);
            a.addi(Reg::T2, Reg::T0, 100);
            a.sw(Reg::T2, 0x400, Reg::T1);
        });
        let topo = Topology::scaled(8);
        let mut cyc = CycleSim::new(topo, &image).unwrap();
        cyc.run(8).unwrap();
        let mut fast = crate::FastSim::new(topo, &image).unwrap();
        fast.run_all(2).unwrap();
        for core in 0..8u32 {
            let addr = 0x400 + core * 4;
            assert_eq!(cyc.memory().read_u32(addr), fast.memory().read_u32(addr));
            assert_eq!(cyc.memory().read_u32(addr), 100 + core);
        }
    }

    #[test]
    fn wfi_barrier_wakes_all() {
        // amoadd-counting barrier: the last arrival wakes everyone.
        let image = image_of(|a| {
            a.li(Reg::A1, 0x10); // barrier counter in L1
            a.li(Reg::T1, 1);
            a.amoadd_w(Reg::T0, Reg::T1, Reg::A1);
            a.li(Reg::T2, 7); // N-1 for 8 cores
            let last = a.new_label();
            a.beq(Reg::T0, Reg::T2, last);
            a.wfi();
            let done = a.new_label();
            a.j(done);
            a.bind(last);
            a.li(Reg::T3, Topology::CTRL_WAKE_ALL as i32);
            a.sw(Reg::T1, 0, Reg::T3);
            a.bind(done);
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(8).unwrap();
        assert_eq!(sim.memory().read_u32(0x10), 8, "all cores arrived");
        let wfi: u64 = result.per_core.iter().map(|s| s.stall_wfi).sum();
        assert!(wfi > 0, "early arrivals idled in wfi");
        assert!(result.per_core.iter().all(|s| s.done_at > 0), "all cores finished");
    }
}
