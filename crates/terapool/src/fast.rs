//! The Banshee-style fast mode: parallel per-hart emulation with
//! cooperative barrier parking.
//!
//! Each hart runs to completion (or to a `wfi` barrier park) with the
//! static-latency scoreboard of [`terasim-iss`]. Harts are distributed over
//! host threads; because barrier arrival *parks* instead of spinning, any
//! host thread count is deadlock-free. Barrier idle time is accounted as
//! the paper's `stall-wfi`: when a barrier releases, every parked hart's
//! local clock advances to the release time.

use std::sync::Arc;

use terasim_iss::uop::UopProgram;
use terasim_iss::{
    resume_lowered, resume_profiled, resume_spmd, Cpu, FusedProgram, FusionMode, FusionProfile, Lane,
    Program, RunConfig, RunStats, Scoreboard, StopReason, Trap,
};
use terasim_riscv::Image;

use crate::artifacts::SimArtifacts;
use crate::cancel::CancelToken;
use crate::mem::{ClusterMem, CoreMem};
use crate::pool::MemPool;
use crate::topology::Topology;

/// Aggregate result of a fast-mode cluster run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-hart statistics, indexed by position in the simulated core
    /// range. `stats.wfi_stalls` carries barrier idle time.
    pub per_core: Vec<RunStats>,
    /// Cluster makespan estimate: the slowest hart's cycle count.
    pub cycles: u64,
    /// The run ended with harts parked in `wfi` and no wake pending —
    /// a guest deadlock. Statistics are the partial state at the hang
    /// (an RTL run would spin here forever).
    pub deadlocked: bool,
    /// Harts still parked when the run ended (deadlock diagnostics).
    pub parked: Vec<u32>,
    /// The run was abandoned at a scheduling-round boundary because its
    /// [`CancelToken`] was raised; statistics are partial.
    pub cancelled: bool,
}

impl ClusterResult {
    /// Total retired instructions across the cluster.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|s| s.retired).sum()
    }

    /// Whether any hart stopped because it hit the configured
    /// [`RunConfig::max_instructions`](terasim_iss::RunConfig) budget
    /// rather than exiting cleanly.
    pub fn budget_exhausted(&self) -> bool {
        self.per_core.iter().any(|s| s.stop == StopReason::Budget)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HartState {
    Runnable,
    Parked,
    Done,
}

struct Hart {
    cpu: Cpu,
    mem: CoreMem,
    sb: Scoreboard,
    stats: RunStats,
    state: HartState,
}

fn state_of(stop: StopReason) -> HartState {
    match stop {
        StopReason::Exit { .. } | StopReason::Budget => HartState::Done,
        StopReason::Wfi => HartState::Parked,
    }
}

/// How a scheduling round executes its runnable harts.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Per-hart unfused interpretation (`FusionMode::Off`).
    Unfused,
    /// Fused superinstruction dispatch with SPMD convergence: harts of a
    /// chunk that sit on the same PC stream execute in lockstep, one
    /// dispatch amortized across the group (`FusionMode::On`).
    Spmd,
    /// Unfused execution order with fusion-coverage instrumentation
    /// (bench reporting only).
    Profiled,
}

/// The fast (Banshee-equivalent) cluster simulator.
///
/// A `FastSim` is *per-job mutable state* — a private [`ClusterMem`] and a
/// run configuration — over a shared immutable [`SimArtifacts`] set
/// (decoded program, lowered micro-op table, initial image). Build the
/// artifacts once per scenario and instantiate one `FastSim` per job with
/// [`FastSim::from_artifacts`]; the convenience constructor
/// [`FastSim::new`] builds a single-use artifact set internally.
///
/// # Examples
///
/// See the [crate-level example](crate) and [`SimArtifacts`].
pub struct FastSim {
    arts: Arc<SimArtifacts>,
    /// Privately re-lowered table when [`set_config`](Self::set_config)
    /// departs from the artifacts' latency model (lazily, on the first
    /// run, so reconfiguring never pays for a table it discards).
    local_table: Option<Arc<UopProgram<CoreMem>>>,
    /// Job-private fused table, mirroring `local_table`.
    local_fused: Option<Arc<FusedProgram<CoreMem>>>,
    /// Always `Some` until drop, where a pooled job's arena is *taken*
    /// and handed back to the pool by value — ownership transfers, so the
    /// parked handle is immediately recyclable (never aliased by this
    /// simulator's own dying field).
    mem: Option<ClusterMem>,
    config: RunConfig,
    /// The pool this job's memory returns to on drop (pooled jobs only —
    /// see [`FastSim::from_pool`]).
    pool: Option<Arc<MemPool>>,
    /// Cooperative cancellation flag, polled between scheduling rounds.
    cancel: Option<CancelToken>,
    /// Set when a run was cancelled mid-flight: the arena holds partial
    /// writes from an abandoned job, so drop quarantines instead of
    /// releasing.
    tainted: bool,
}

impl std::fmt::Debug for FastSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastSim")
            .field("cores", &self.arts.topology().num_cores())
            .field("text_insts", &self.arts.program().len())
            .finish()
    }
}

impl FastSim {
    /// Builds a simulator: translates the image and loads all segments
    /// (a single-use artifact set; batch drivers build one
    /// [`SimArtifacts`] and use [`FastSim::from_artifacts`] per job).
    ///
    /// # Errors
    ///
    /// Returns the translation error if the image's text cannot be decoded.
    pub fn new(topo: Topology, image: &Image) -> Result<Self, terasim_iss::TranslateError> {
        Ok(Self::from_artifacts(SimArtifacts::build(topo, image)?))
    }

    /// Instantiates one job over a shared artifact set: fresh per-job
    /// memory (image loaded), run configuration taken from
    /// [`SimArtifacts::fast_config`], micro-op table shared.
    pub fn from_artifacts(arts: Arc<SimArtifacts>) -> Self {
        let mem = arts.fresh_memory();
        Self::with_memory(arts, mem)
    }

    /// Instantiates one job drawing its cluster memory from a recycling
    /// [`MemPool`] (over the pool's own artifact set). The memory arrives
    /// in the exact fresh state and **returns to the pool when the
    /// simulator drops**, so a batch lane pays the 20 MiB arena's
    /// allocation at most once.
    pub fn from_pool(pool: &Arc<MemPool>) -> Self {
        let mem = pool.acquire();
        let mut sim = Self::with_memory(Arc::clone(pool.artifacts()), mem);
        sim.pool = Some(Arc::clone(pool));
        sim
    }

    fn with_memory(arts: Arc<SimArtifacts>, mem: ClusterMem) -> Self {
        let config = arts.fast_config().clone();
        Self {
            arts,
            local_table: None,
            local_fused: None,
            mem: Some(mem),
            config,
            pool: None,
            cancel: None,
            tainted: false,
        }
    }

    /// The job's cluster memory (present from construction to drop).
    fn mem(&self) -> &ClusterMem {
        self.mem.as_ref().expect("cluster memory present until drop")
    }

    /// Replaces the run configuration (latency model, budgets). If the new
    /// latency model differs from the artifacts' table, a private table is
    /// re-lowered on the next run; otherwise the shared table keeps being
    /// used.
    pub fn set_config(&mut self, config: RunConfig) {
        self.local_table = None;
        self.local_fused = None;
        self.config = config;
    }

    /// Attaches a cooperative [`CancelToken`], polled between scheduling
    /// rounds: when raised, the run returns its partial result with
    /// [`ClusterResult::cancelled`] set and the job's memory is
    /// quarantined rather than recycled on drop.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// The shared artifact set this job runs over.
    pub fn artifacts(&self) -> &Arc<SimArtifacts> {
        &self.arts
    }

    /// The job-private cluster memory (for operand setup and result
    /// readback).
    pub fn memory(&self) -> &ClusterMem {
        self.mem()
    }

    /// The cluster geometry.
    pub fn topology(&self) -> Topology {
        self.arts.topology()
    }

    /// The translated program.
    pub fn program(&self) -> &Program {
        self.arts.program()
    }

    /// The micro-op table for the current configuration: the artifacts'
    /// shared table when the latency models agree, a job-private lowering
    /// otherwise (cached across runs).
    fn table(&mut self) -> Arc<UopProgram<CoreMem>> {
        if let Some(table) = &self.local_table {
            return Arc::clone(table);
        }
        // Compare against the artifacts' configuration (the model the
        // shared table is lowered under, by construction) *before*
        // touching it, so a mismatching job never forces the lazy shared
        // lowering it would immediately reject.
        if self.arts.fast_config().latency == self.config.latency {
            let shared = self.arts.fast_table();
            debug_assert_eq!(*shared.latency_model(), self.config.latency);
            return Arc::clone(shared);
        }
        let table = Arc::new(UopProgram::lower(self.arts.program(), &self.config.latency));
        self.local_table = Some(Arc::clone(&table));
        table
    }

    /// The fused superinstruction table for the current configuration,
    /// mirroring [`table`](Self::table): the artifacts' shared fused table
    /// when the latency models agree, a job-private build otherwise.
    fn fused(&mut self) -> Arc<FusedProgram<CoreMem>> {
        if let Some(fused) = &self.local_fused {
            return Arc::clone(fused);
        }
        if self.arts.fast_config().latency == self.config.latency {
            return Arc::clone(self.arts.fast_fused());
        }
        let table = self.table();
        let fused = Arc::new(FusedProgram::build(self.arts.program(), &table));
        self.local_fused = Some(Arc::clone(&fused));
        fused
    }

    /// Runs every hart to completion using `host_threads` worker threads.
    ///
    /// Harts that execute `wfi` park until another hart stores to the
    /// wake-all control register (the TeraPool barrier protocol); parked
    /// harts consume pending wakes and continue. The run ends when all
    /// harts exit via `ecall` (or no progress is possible).
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    pub fn run_all(&mut self, host_threads: usize) -> Result<ClusterResult, Trap> {
        self.run_cores(0..self.arts.topology().num_cores(), host_threads)
    }

    /// Runs a contiguous subset of harts (single-core and batching
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    ///
    /// # Panics
    ///
    /// Panics if `host_threads == 0` or the range exceeds the core count.
    pub fn run_cores(
        &mut self,
        cores: std::ops::Range<u32>,
        host_threads: usize,
    ) -> Result<ClusterResult, Trap> {
        let engine = match self.config.fusion {
            FusionMode::On => Engine::Spmd,
            FusionMode::Off => Engine::Unfused,
        };
        let mut prof = FusionProfile::default();
        self.run_cores_with(cores, host_threads, engine, &mut prof)
    }

    /// As [`run_all`](Self::run_all), additionally recording the dynamic
    /// fusion profile (adjacent uop-pair histogram and fused-dispatch
    /// coverage) merged across all harts. Executes in unfused order with
    /// instrumentation — meant for bench reporting (`mips
    /// --fusion-report`), not for timed runs.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    pub fn run_all_profiled(&mut self, host_threads: usize) -> Result<(ClusterResult, FusionProfile), Trap> {
        self.run_cores_profiled(0..self.arts.topology().num_cores(), host_threads)
    }

    /// As [`run_all_profiled`](Self::run_all_profiled) over a contiguous
    /// subset of harts.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    pub fn run_cores_profiled(
        &mut self,
        cores: std::ops::Range<u32>,
        host_threads: usize,
    ) -> Result<(ClusterResult, FusionProfile), Trap> {
        let mut prof = FusionProfile::default();
        let result = self.run_cores_with(cores, host_threads, Engine::Profiled, &mut prof)?;
        Ok((result, prof))
    }

    fn run_cores_with(
        &mut self,
        cores: std::ops::Range<u32>,
        host_threads: usize,
        engine: Engine,
        profile: &mut FusionProfile,
    ) -> Result<ClusterResult, Trap> {
        assert!(host_threads > 0, "need at least one host thread");
        assert!(cores.end <= self.arts.topology().num_cores(), "core range out of bounds");

        let entry = self.arts.program().entry();
        let mut harts: Vec<Hart> = cores
            .map(|core| {
                let mut cpu = Cpu::new(core);
                cpu.set_pc(entry);
                Hart {
                    cpu,
                    mem: self.mem().core_view(core),
                    sb: Scoreboard::new(),
                    stats: RunStats::default(),
                    state: HartState::Runnable,
                }
            })
            .collect();

        // Round-based cooperative scheduling: run every runnable hart until
        // it exits or parks, then release barriers. Because parked harts
        // yield their host thread, any thread count is deadlock-free.
        let mut deadlocked = false;
        let mut cancelled = false;
        loop {
            // Safe point: abandon the job between rounds if its token was
            // raised. Checked only here — never inside the hart resume
            // loop — so an uncancelled run pays nothing per instruction.
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.tainted = true;
                cancelled = true;
                break;
            }
            {
                let mut runnable: Vec<&mut Hart> =
                    harts.iter_mut().filter(|h| h.state == HartState::Runnable).collect();
                if runnable.is_empty() {
                    break;
                }
                let table = match engine {
                    Engine::Unfused => Some(self.table()),
                    Engine::Spmd | Engine::Profiled => None,
                };
                let fused = match engine {
                    Engine::Unfused => None,
                    Engine::Spmd | Engine::Profiled => Some(self.fused()),
                };
                let config = &self.config;
                let chunk = runnable.len().div_ceil(host_threads).max(1);
                let first_trap = std::thread::scope(|s| {
                    let mut handles = Vec::new();
                    for batch in runnable.chunks_mut(chunk) {
                        let table = table.clone();
                        let fused = fused.clone();
                        handles.push(s.spawn(move || -> Result<FusionProfile, Trap> {
                            let mut prof = FusionProfile::default();
                            match engine {
                                Engine::Unfused => {
                                    let table = table.as_ref().expect("unfused table present");
                                    for hart in batch.iter_mut() {
                                        let stop = resume_lowered(
                                            &mut hart.cpu,
                                            table,
                                            &mut hart.mem,
                                            config,
                                            &mut hart.sb,
                                            &mut hart.stats,
                                        )?;
                                        hart.state = state_of(stop);
                                    }
                                }
                                Engine::Spmd => {
                                    // Converged lanes of this chunk run in
                                    // lockstep over the fused table; lanes
                                    // that diverge continue per-core.
                                    let fused = fused.as_ref().expect("fused table present");
                                    let mut lanes: Vec<Lane<'_, CoreMem>> = batch
                                        .iter_mut()
                                        .map(|h| Lane {
                                            cpu: &mut h.cpu,
                                            mem: &mut h.mem,
                                            sb: &mut h.sb,
                                            stats: &mut h.stats,
                                        })
                                        .collect();
                                    let stops = resume_spmd(&mut lanes, fused, config)?;
                                    drop(lanes);
                                    for (hart, stop) in batch.iter_mut().zip(stops) {
                                        hart.state = state_of(stop);
                                    }
                                }
                                Engine::Profiled => {
                                    let fused = fused.as_ref().expect("fused table present");
                                    for hart in batch.iter_mut() {
                                        let stop = resume_profiled(
                                            &mut hart.cpu,
                                            fused,
                                            &mut hart.mem,
                                            config,
                                            &mut hart.sb,
                                            &mut hart.stats,
                                            &mut prof,
                                        )?;
                                        hart.state = state_of(stop);
                                    }
                                }
                            }
                            Ok(prof)
                        }));
                    }
                    let mut first: Option<Trap> = None;
                    for h in handles {
                        match h.join().expect("simulation thread panicked") {
                            Ok(p) => profile.merge(&p),
                            Err(trap) => {
                                first.get_or_insert(trap);
                            }
                        }
                    }
                    first
                });
                if let Some(trap) = first_trap {
                    return Err(trap);
                }
            }

            // Barrier release: wake parked harts that have a pending wake.
            // The release time is the latest hart clock (the releaser was
            // the last arrival); idle time becomes stall-wfi.
            let release_time = harts.iter().map(|h| h.sb.cycles()).max().unwrap_or(0);
            let mut woke_any = false;
            for hart in harts.iter_mut() {
                if hart.state == HartState::Parked && self.mem().take_wake(hart.cpu.hart_id()) {
                    let idle = hart.sb.advance_to(release_time);
                    hart.stats.wfi_stalls += idle;
                    hart.stats.est_cycles = hart.sb.cycles();
                    hart.state = HartState::Runnable;
                    woke_any = true;
                }
            }
            if !woke_any && harts.iter().any(|h| h.state == HartState::Parked) {
                // Guest deadlock: no runnable harts and nobody issued a
                // wake. Report partial results (an RTL run would hang here).
                deadlocked = true;
                break;
            }
        }

        let per_core: Vec<RunStats> = harts.iter().map(|h| h.stats.clone()).collect();
        let cycles = per_core.iter().map(|s| s.est_cycles).max().unwrap_or(0);
        let parked: Vec<u32> =
            harts.iter().filter(|h| h.state == HartState::Parked).map(|h| h.cpu.hart_id()).collect();
        Ok(ClusterResult { per_core, cycles, deadlocked, parked, cancelled })
    }
}

impl Drop for FastSim {
    /// Pooled jobs return their (possibly dirty — deadlocks included)
    /// cluster memory for recycling; the pool resets it on reuse. The
    /// arena is moved out by value, so the parked handle is unique the
    /// moment it lands in the pool — a concurrent acquire on another
    /// lane can recycle it immediately.
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            if let Some(mem) = self.mem.take() {
                // A cancelled run, or a drop during a panic unwind (the
                // job closure died with the simulator live), quarantines
                // the arena: its contents were abandoned mid-write and
                // are not trusted even for a dirty-page reset.
                if self.tainted || std::thread::panicking() {
                    pool.quarantine(mem);
                } else {
                    let _ = pool.release(mem);
                }
            }
        }
    }
}
