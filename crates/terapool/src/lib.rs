//! A simulatable model of the TeraPool-SDR many-core cluster (paper §II).
//!
//! TeraPool is the largest shared-memory RISC-V cluster in the open
//! literature: 1024 Snitch cores organised as 8 cores per **Tile** (32 KiB
//! of scratchpad in word-interleaved banks, 1-cycle access, 4 KiB shared
//! I$), 8 Tiles per **SubGroup**, 4 SubGroups per **Group** and 4 Groups
//! per cluster — 128 Tiles and 4 MiB of L1 in total, glued by hierarchical
//! crossbars with pipeline stages at each boundary (≤ 9 cycles without
//! contention). An AXI port and a DMA engine move data from L2.
//!
//! The crate offers the two simulation backends the paper compares:
//!
//! * [`FastSim`] — the Banshee-style mode: every hart executes
//!   independently (parallelizable over host threads) with the static
//!   timing model of `terasim-iss`; barriers park harts cooperatively.
//! * [`CycleSim`] — the QuestaSim stand-in: a cycle-stepped model with
//!   per-bank arbitration, NUMA pipeline latencies, shared-I$ refills, a
//!   non-pipelined FP divide/sqrt unit and `wfi` sleep — the reference
//!   timing the paper's Figures 7–8 are measured against. Scheduling is
//!   event-driven (a calendar-wheel ready queue keyed on per-core wake
//!   cycles), and on multi-group topologies the engine **shards by
//!   group**: each group is an independent arbitration domain advancing
//!   in lockstep epochs, with cross-group traffic exchanged through
//!   mailboxes at epoch boundaries ([`CycleSim::run_parallel`] runs the
//!   domains on host threads; results are bit-identical at every thread
//!   count). The original full-scan scheduler is retained as
//!   [`CycleSim::run_naive`] and pinned bit-identical by the workspace's
//!   differential tests.
//!
//! Both backends execute the *same* pre-decoded program through the same
//! [`Cpu`](terasim_iss::Cpu) semantics, so results are bit-identical and
//! only timing differs.
//!
//! # Artifacts vs. jobs
//!
//! Construction is split into two layers (see [`SimArtifacts`]):
//! everything immutable — decoded program, lowered micro-op tables,
//! topology maps, the initial memory image — lives in a shared
//! `Arc<SimArtifacts>` built once per scenario, while `FastSim`/`CycleSim`
//! are thin per-job mutable state (private [`ClusterMem`], scoreboards,
//! scheduler queues) instantiated from it via `from_artifacts`. The
//! plain `new(topo, &image)` constructors build a single-use artifact set
//! internally, so one-shot use reads exactly as before; batch drivers
//! (e.g. `terasim::serve::BatchRunner`) share one set across hundreds of
//! jobs and skip the per-run rebuild entirely. The remaining per-job
//! fixed cost — allocating the private `ClusterMem` — is removed by the
//! recycling [`MemPool`]: simulators built with `from_pool` return their
//! arena on drop, and the next job gets it back reset (only the dirty
//! footprint is re-zeroed), bit-identical to a fresh allocation.
//!
//! # Examples
//!
//! ```
//! use terasim_terapool::{FastSim, Topology};
//! use terasim_riscv::{Assembler, Image, Reg, Segment};
//!
//! // Every core writes its hart id to L1 and exits.
//! let topo = Topology::scaled(16);
//! let mut a = Assembler::new(Topology::L2_BASE);
//! a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
//! a.slli(Reg::T1, Reg::T0, 2);
//! a.sw(Reg::T0, 0, Reg::T1);
//! a.ecall();
//! let mut image = Image::new(Topology::L2_BASE);
//! image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish()?));
//!
//! let mut sim = FastSim::new(topo, &image)?;
//! let result = sim.run_all(1)?;
//! assert_eq!(result.per_core.len(), 16);
//! assert_eq!(sim.memory().read_u32(4 * 7), 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod artifacts;
mod cancel;
mod cycle;
mod fast;
mod mem;
mod pool;
mod topology;

pub use artifacts::SimArtifacts;
pub use cancel::CancelToken;
pub use cycle::{CycleResult, CycleSim, CycleStats, EpochReport};
pub use fast::{ClusterResult, FastSim};
pub use mem::{ClusterMem, CoreMem};
pub use pool::{MemPool, PoolStats};
pub use topology::Topology;
