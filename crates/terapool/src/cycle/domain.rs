//! The per-domain half of the epoch-sharded cycle engine: one
//! event-driven scheduler ([`DomainEngine`]) per topology *group*, owning
//! that group's cores, tile I$ models, bank/port reservation books and
//! ready queue ([`Wheel`]). A domain simulates one epoch at a time with
//! no synchronization; everything that crosses its boundary goes through
//! the [`XRequest`] outbox, which the coordinator ([`super::epoch`])
//! replays between epochs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use terasim_iss::Trap;

use crate::mem::{ClusterMem, DomainBanks, XRequest};

use super::reach::ReachMap;
use super::{CoreCtx, CoreState, CycleSim, Defer, FastICache, RunTables, TurboMem};

/// Wheel size in one-cycle slots (power of two; covers every short
/// latency in the model — longer delays take the overflow heap).
pub(super) const WHEEL_SLOTS: u64 = 256;
pub(super) const WHEEL_MASK: u64 = WHEEL_SLOTS - 1;

/// The event engines' ready queue: a calendar wheel of [`WHEEL_SLOTS`]
/// one-cycle slots, each a core-id bitmap (iteration yields ascending
/// ids — the naive scan's issue order — with O(1) insertion). Each
/// non-parked, non-done core has exactly one live entry. Wake times
/// beyond the wheel horizon (rare: deep bank-contention queues) overflow
/// into a heap and migrate back as time advances.
pub(super) struct Wheel {
    /// `WHEEL_SLOTS × words` bitmap words.
    slots: Vec<u64>,
    /// Queued-core count per slot.
    counts: Vec<u32>,
    /// Total cores queued in the wheel.
    pub(super) pending: u32,
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// Bitmap words per slot (`⌈cores / 64⌉`).
    pub(super) words: usize,
}

impl Wheel {
    pub(super) fn new(cores: u32) -> Self {
        let words = (cores as usize).div_ceil(64);
        Self {
            slots: vec![0; WHEEL_SLOTS as usize * words],
            counts: vec![0; WHEEL_SLOTS as usize],
            pending: 0,
            overflow: BinaryHeap::new(),
            words,
        }
    }

    /// Queues `core` to issue at cycle `at` (`at ≥ now`).
    #[inline]
    pub(super) fn push(&mut self, now: u64, at: u64, core: u32) {
        if at - now < WHEEL_SLOTS {
            let slot = (at & WHEEL_MASK) as usize;
            self.slots[slot * self.words + (core / 64) as usize] |= 1u64 << (core % 64);
            self.counts[slot] += 1;
            self.pending += 1;
        } else {
            self.overflow.push(Reverse((at, core)));
        }
    }

    /// Moves overflow entries inside the `[now, now + WHEEL_SLOTS)` horizon
    /// into the wheel.
    pub(super) fn migrate(&mut self, now: u64) {
        while let Some(&Reverse((at, core))) = self.overflow.peek() {
            if at >= now + WHEEL_SLOTS {
                break;
            }
            self.overflow.pop();
            self.push(now, at, core);
        }
    }

    /// Earliest wake time queued in the overflow heap.
    pub(super) fn next_overflow(&self) -> Option<u64> {
        self.overflow.peek().map(|&Reverse((at, _))| at)
    }

    /// Whether the slot for cycle `at` is empty.
    #[inline]
    pub(super) fn slot_empty(&self, at: u64) -> bool {
        self.counts[(at & WHEEL_MASK) as usize] == 0
    }

    /// Empties the slot for cycle `now`, OR-ing its core bitmap into
    /// `cur`. No-op (and no memory traffic) when the slot is empty.
    pub(super) fn drain_slot_into(&mut self, now: u64, cur: &mut [u64]) {
        let slot = (now & WHEEL_MASK) as usize;
        let count = self.counts[slot];
        if count == 0 {
            return;
        }
        self.pending -= count;
        self.counts[slot] = 0;
        for (w, s) in cur.iter_mut().enumerate() {
            *s |= std::mem::take(&mut self.slots[slot * self.words + w]);
        }
    }
}

/// One arbitration domain of the epoch-sharded engine: the event-driven
/// scheduler of [`CycleSim::run`], scoped to the cores, tiles and banks
/// of a single topology group. All indices below `core_base`-relative
/// state (`ctxs`, wheel bitmaps, `parked`) are *local* core ids; the
/// [`DomainBanks`] translate global tile/bank ids.
pub(super) struct DomainEngine {
    /// The group this domain simulates.
    pub(super) domain: u32,
    /// First global core id of the domain.
    pub(super) core_base: u32,
    /// Per-core contexts (local index).
    pub(super) ctxs: Vec<CoreCtx<TurboMem>>,
    /// Per-tile shared instruction caches (local index).
    pub(super) icaches: Vec<FastICache>,
    /// This domain's bank/port reservation books.
    pub(super) banks: DomainBanks,
    /// Locally parked (`wfi`) cores, woken only at epoch boundaries.
    pub(super) parked: Vec<u32>,
    /// Deferred cross-domain requests issued this epoch, in
    /// `(cycle, core)` order by construction of the event loop.
    pub(super) outbox: Vec<XRequest>,
    /// First trap raised by this domain, tagged `(cycle, core)` so the
    /// coordinator can abort the run with the globally *earliest* trap —
    /// the same one the sequential full scan would hit first.
    pub(super) trap: Option<(u64, u32, Trap)>,
    /// Static reachability map — present when the run uses adaptive
    /// epoch scheduling, absent on fixed cadence (no horizon tracking,
    /// no elision, the retained reference behaviour).
    reach: Option<Arc<ReachMap>>,
    /// Lower bound on the first cycle at which any of this domain's
    /// *ready* cores could issue a possibly-remote uop, refreshed in the
    /// [`Self::run_epoch`] epilogue and amended by wake delivery. The
    /// coordinator may extend a multi-active epoch up to the minimum of
    /// these bounds without any domain deferring a request into it.
    horizon: u64,
    wheel: Wheel,
    cur: Vec<u64>,
    nxt: Vec<u64>,
    nxt_count: u32,
    now: u64,
    /// `false` until the first epoch ran: the initial ready set (all
    /// cores at cycle 0) is pre-seeded in `cur`, not in the wheel.
    paused: bool,
}

/// Per-window scheduling options the coordinator hands each
/// [`DomainEngine::run_epoch`] call.
pub(super) struct WindowOpts {
    /// Base epoch length (the fixed-cadence grid unit).
    pub(super) epoch: u64,
    /// Extended window: the quiescent-stretch slim issue path may be
    /// used for provably-local single-cycle uops.
    pub(super) elide: bool,
    /// Sole-active window: on the first deferred request, trim the
    /// window end back to the request's base-cadence boundary so the
    /// replay happens exactly where the fixed cadence would have put it.
    pub(super) trim: bool,
}

impl DomainEngine {
    /// Builds the engine for `domain`, covering the intersection of the
    /// run's core range `0..cores` with the group's cores (possibly
    /// empty for partial-cluster runs).
    pub(super) fn new(sim: &CycleSim, domain: u32, cores: u32, reach: Option<Arc<ReachMap>>) -> Self {
        let topo = sim.topology();
        let lo = (domain * topo.cores_per_group()).min(cores);
        let hi = ((domain + 1) * topo.cores_per_group()).min(cores);
        let ctxs: Vec<CoreCtx<TurboMem>> = (lo..hi).map(|core| sim.make_ctx(core)).collect();
        let n = hi - lo;
        let wheel = Wheel::new(n.max(1));
        let words = wheel.words;
        let mut cur = vec![0u64; words];
        for local in 0..n {
            cur[(local / 64) as usize] |= 1u64 << (local % 64); // all issue at cycle 0
        }
        Self {
            domain,
            core_base: lo,
            ctxs,
            icaches: (0..topo.tiles_per_group())
                .map(|_| FastICache::new(topo.icache_bytes, topo.icache_line))
                .collect(),
            banks: DomainBanks::for_domain(topo, domain),
            parked: Vec::new(),
            outbox: Vec::new(),
            trap: None,
            reach,
            horizon: 0,
            wheel,
            nxt: vec![0u64; words],
            cur,
            nxt_count: 0,
            now: 0,
            paused: false,
        }
    }

    /// Simulates the window `[start, end)`: processes every queued event
    /// of this domain's cores in that window, deferring cross-domain
    /// accesses into the outbox, then parks exactly at the boundary.
    /// Returns the boundary actually reached — `end`, unless a
    /// sole-active window ([`WindowOpts::trim`]) was trimmed back by a
    /// deferred request.
    ///
    /// On a trap the error is recorded in `self.trap`; the coordinator
    /// aborts the run deterministically at the boundary.
    pub(super) fn run_epoch(
        &mut self,
        sim: &CycleSim,
        tables: &RunTables,
        start: u64,
        mut end: u64,
        opts: &WindowOpts,
    ) -> u64 {
        debug_assert!(start < end && self.now <= start);
        if self.trap.is_some() {
            return self.now;
        }
        if self.paused {
            // Resume: pull the cores due exactly at `start` (the
            // coordinator guarantees no event lies before it).
            self.now = start;
            self.wheel.migrate(start);
            self.wheel.drain_slot_into(start, &mut self.cur);
        }

        loop {
            // Process every core scheduled for `self.now`, in ascending
            // local id — which is ascending global id within the domain.
            for w in 0..self.cur.len() {
                let mut bits = std::mem::take(&mut self.cur[w]);
                while bits != 0 {
                    let bit = bits & bits.wrapping_neg();
                    let local = (w * 64) as u32 + bits.trailing_zeros();
                    bits ^= bit;
                    let ctx = &mut self.ctxs[local as usize];
                    let mut defer =
                        Defer { domain: self.domain, topo: sim.topology(), outbox: &mut self.outbox };
                    let issued = if opts.elide {
                        sim.issue_quiescent(
                            ctx,
                            tables,
                            &mut self.icaches,
                            &mut self.banks,
                            self.now,
                            Some(&mut defer),
                        )
                    } else {
                        sim.issue_fast(
                            ctx,
                            tables,
                            &mut self.icaches,
                            &mut self.banks,
                            self.now,
                            Some(&mut defer),
                        )
                    };
                    if let Err(trap) = issued {
                        self.trap = Some((self.now, self.core_base + local, trap));
                        return self.now;
                    }
                    match ctx.state {
                        CoreState::Ready => {
                            let wake = ctx.wake_at.max(self.now + 1);
                            if wake == self.now + 1 {
                                self.nxt[w] |= bit;
                                self.nxt_count += 1;
                            } else {
                                self.wheel.push(self.now, wake, local);
                            }
                        }
                        CoreState::Parked => self.parked.push(local),
                        CoreState::Done => {}
                    }
                    // No mid-epoch wake check: wake-all publications go
                    // through the (deferred) control-region store, so the
                    // wake channel can only move at epoch boundaries.
                }
            }

            // Sole-active trim: a deferred request must be replayed at
            // the same base-cadence boundary the fixed cadence would
            // use, so the first one shrinks the window back to its
            // issue cycle's boundary. (Multi-active extended windows
            // never defer — the coordinator's horizon guarantees it.)
            if opts.trim && !self.outbox.is_empty() {
                end = end.min(self.now / opts.epoch * opts.epoch + opts.epoch);
            }

            // Advance to the next cycle with work, clamped to the epoch.
            if self.nxt_count > 0 {
                if self.now + 1 >= end {
                    // Work due in the next epoch: spill it into the wheel
                    // so the paused state lives entirely there.
                    for w in 0..self.nxt.len() {
                        let mut bits = std::mem::take(&mut self.nxt[w]);
                        while bits != 0 {
                            let local = (w * 64) as u32 + bits.trailing_zeros();
                            bits &= bits - 1;
                            self.wheel.push(self.now, self.now + 1, local);
                        }
                    }
                    self.nxt_count = 0;
                    break;
                }
                self.now += 1;
                std::mem::swap(&mut self.cur, &mut self.nxt);
                self.nxt_count = 0;
                self.wheel.migrate(self.now);
                self.wheel.drain_slot_into(self.now, &mut self.cur);
                continue;
            }
            // Nothing due next cycle: the nearest work lives in the wheel
            // (or beyond its horizon in the overflow heap).
            self.wheel.migrate(self.now);
            if self.wheel.pending == 0 {
                match self.wheel.next_overflow() {
                    Some(at) if at < end => {
                        self.now = at;
                        self.wheel.migrate(at);
                    }
                    // No work left before the boundary.
                    _ => break,
                }
            } else {
                self.now += 1;
            }
            let mut t = self.now;
            while t < end && self.wheel.slot_empty(t) {
                t += 1;
            }
            if t >= end {
                break;
            }
            self.now = t;
            self.wheel.drain_slot_into(t, &mut self.cur);
        }

        self.now = end;
        self.paused = true;
        self.refresh_horizon(end, opts.epoch);
        end
    }

    /// Parks the engine at `end` without simulating anything: the
    /// coordinator proved this domain has no event before `end` (the
    /// idle half of a sole-active window). State other than the clock is
    /// untouched, so the stored horizon stays valid.
    pub(super) fn skip_to(&mut self, end: u64) {
        debug_assert!(self.now <= end && self.nxt_count == 0);
        self.now = end;
        self.paused = true;
    }

    /// The coordinator's view of this domain's remote-issue horizon
    /// (`u64::MAX` on fixed-cadence runs — never consulted there).
    pub(super) fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Recomputes the remote-issue horizon after a window ending at
    /// `end`: the minimum over ready cores of `wake_at + dist(pc)` —
    /// each issue takes at least one cycle, so a core due at `wake_at`
    /// whose nearest statically-reachable memory access is `dist`
    /// instructions away cannot defer anything before that sum. The scan
    /// exits early once the running minimum is too close for any
    /// extension to be granted (an extension must gain at least one
    /// whole epoch past the next base window, and the next window starts
    /// no earlier than `end`).
    fn refresh_horizon(&mut self, end: u64, epoch: u64) {
        let Some(reach) = &self.reach else { return };
        let floor = end + 2 * epoch;
        let mut h = u64::MAX;
        for ctx in &self.ctxs {
            if ctx.state != CoreState::Ready {
                continue;
            }
            let hc = ctx.wake_at.saturating_add(reach.dist(ctx.cpu.pc()));
            if hc < h {
                h = hc;
                // Strictly below the grant threshold: no extension can
                // be granted off this value, so the partial minimum is
                // safe to publish without finishing the scan.
                if h < floor {
                    break;
                }
            }
        }
        self.horizon = h;
    }

    /// The earliest cycle (`≥ from`, the boundary just reached) at which
    /// this domain has a queued event, or `u64::MAX` when idle. Parked
    /// cores are not events — they wait on the wake channel.
    pub(super) fn next_event(&self, from: u64) -> u64 {
        debug_assert_eq!(self.nxt_count, 0, "next_event on an un-parked engine");
        let mut best = self.wheel.next_overflow().unwrap_or(u64::MAX);
        if self.wheel.pending > 0 {
            let mut t = from;
            while self.wheel.slot_empty(t) {
                t += 1;
                debug_assert!(t < from + WHEEL_SLOTS, "wheel entry outside its horizon");
            }
            best = best.min(t);
        }
        best
    }

    /// Delivers pending barrier wakes to this domain's parked cores at
    /// the epoch boundary `at` (the cycle the next epoch starts): the
    /// sleeper observes the wake at `at` and can issue from `at + 1`.
    pub(super) fn deliver_wakes(&mut self, mem: &ClusterMem, at: u64) {
        let mut parked = std::mem::take(&mut self.parked);
        parked.retain(|&local| {
            let core = self.core_base + local;
            if !mem.wake_pending(core) {
                return true;
            }
            let _ = mem.take_wake(core);
            let ctx = &mut self.ctxs[local as usize];
            ctx.stats.stall_wfi += at.saturating_sub(ctx.parked_at);
            ctx.state = CoreState::Ready;
            ctx.wake_at = at + 1;
            // A woken core re-enters the horizon: it can issue from
            // `at + 1` and its nearest memory access is `dist(pc)`
            // instructions downstream of the `wfi`.
            if let Some(reach) = &self.reach {
                self.horizon = self.horizon.min((at + 1).saturating_add(reach.dist(ctx.cpu.pc())));
            }
            self.wheel.push(at, at + 1, local);
            false
        });
        self.parked = parked;
    }
}
