//! The epoch coordinator of the sharded cycle engine: lockstep epoch
//! drivers (serial and multi-threaded), the boundary replay of deferred
//! cross-domain requests, barrier-wake delivery, and the global
//! termination / fast-forward decision.
//!
//! # Protocol
//!
//! Each epoch `[T, T + L)` (with `L = Topology::epoch_len()`, the minimum
//! cross-group latency) has two phases:
//!
//! 1. **Phase** — every [`DomainEngine`] simulates its own group with no
//!    synchronization, deferring anything cross-domain into its outbox.
//!    With multiple host threads, domains run concurrently; this is sound
//!    because a domain only touches its own banks/ports/I$/cores — the
//!    shared L2/control regions are never accessed within an epoch.
//! 2. **Boundary** — a single thread merges all outboxes, replays them in
//!    global `(issue cycle, core id)` order (bank grants, architectural
//!    effects, writebacks, scoreboard corrections), delivers barrier
//!    wakes, and picks the next epoch — fast-forwarding over empty ones.
//!
//! Both phases are deterministic functions of the simulation state alone,
//! so the result is bit-identical for every host thread count; the serial
//! driver and [`CycleSim::run_naive`]'s full-scan epoch loop implement
//! the same semantics and are pinned against it by the workspace's
//! `parallel`/`differential` integration tests.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use terasim_iss::{EpochMode, MemOp, Memory, Trap, NO_REG};
use terasim_riscv::Reg;

use super::domain::{DomainEngine, WindowOpts, WHEEL_SLOTS};
use super::{CoreCtx, CycleResult, CycleSim};
use crate::mem::XRequest;

/// Extension cap in base epochs. Equal to one wheel revolution at the
/// standard 4-cycle epoch — the slot scan is only aliasing-free within
/// one revolution — and small enough to bound the latency of the
/// boundary-polled cancellation check.
const MAX_EXTEND_EPOCHS: u64 = 64;

/// Computes the bank grant of one replayed request against the target
/// bank's reservation book and returns
/// `(total result latency, contention cycles)`.
///
/// The request *arrives* at `depart + hop`; because the epoch is no
/// longer than the minimum cross-group hop, the arrival never lies
/// before the boundary at which it is applied, so grants stay causal.
fn grant(x: &XRequest, bank_free: &mut u64) -> (u64, u64) {
    let arrive = x.depart + u64::from(x.hop);
    let busy = if matches!(x.op, MemOp::Amo(_)) { 2 } else { 1 };
    let granted = arrive.max(*bank_free);
    *bank_free = granted + busy;
    ((granted + busy - x.cycle) + u64::from(x.hop), granted - (x.cycle + u64::from(x.hop)))
}

/// Applies the deferred architectural effect and scoreboard correction of
/// one replayed request to its issuing core.
///
/// `granted` is `None` for L2/control targets (fixed 16-cycle latency,
/// settled exactly at issue — only the memory side effect was deferred).
///
/// # Errors
///
/// Returns the [`Trap`] the access raises (attributed to the deferred
/// instruction's PC), exactly as the kernel would have at issue.
fn complete<M: Memory>(x: &XRequest, ctx: &mut CoreCtx<M>, granted: Option<(u64, u64)>) -> Result<(), Trap> {
    // The replay rewrites scoreboard entries behind the slim path's
    // cached bound; force the next quiescent issue to rescan.
    ctx.hazard_until = u64::MAX;
    // WAW guard: touch rd (value and scoreboard) only while this request
    // is still rd's last writer — a later same-epoch writer wins, exactly
    // as it would against the kernel's issue-time write.
    let owns_rd = x.rd != NO_REG && ctx.reg_wseq[x.rd as usize] == x.wseq;
    if let Some((result_latency, contention)) = granted {
        ctx.stats.stall_lsu += contention;
        ctx.lsu_free[x.slot as usize] = x.cycle + result_latency;
        if owns_rd {
            ctx.reg_ready[x.rd as usize] = x.cycle + result_latency;
        }
    }
    let merr = |err| Trap::Mem { pc: x.pc, err };
    match x.op {
        MemOp::Load { size, signed } => {
            let raw = ctx.mem.load(x.addr, u32::from(size)).map_err(merr)?;
            let value = match (size, signed) {
                (1, true) => raw as u8 as i8 as i32 as u32,
                (2, true) => raw as u16 as i16 as i32 as u32,
                _ => raw,
            };
            if owns_rd {
                ctx.cpu.set_reg(Reg::from_num(u32::from(x.rd) & 31), value);
            }
        }
        MemOp::LoadReserved => {
            // The reservation was taken at issue; only the data returns.
            let raw = ctx.mem.load(x.addr, 4).map_err(merr)?;
            if owns_rd {
                ctx.cpu.set_reg(Reg::from_num(u32::from(x.rd) & 31), raw);
            }
        }
        MemOp::Store { size } => ctx.mem.store(x.addr, u32::from(size), x.value).map_err(merr)?,
        MemOp::StoreConditional => {
            // Success was decided (and rd written) against the issue-time
            // reservation; a failed sc still made the bank round trip.
            if x.sc_success {
                ctx.mem.store(x.addr, 4, x.value).map_err(merr)?;
            }
        }
        MemOp::Amo(op) => {
            let old = ctx.mem.amo(op, x.addr, x.value).map_err(merr)?;
            if owns_rd {
                ctx.cpu.set_reg(Reg::from_num(u32::from(x.rd) & 31), old);
            }
        }
        MemOp::None => unreachable!("only memory operations are deferred"),
    }
    Ok(())
}

/// Runs one epoch boundary: merges and replays every domain's outbox in
/// global `(cycle, core)` order, then delivers barrier wakes at `end`.
///
/// # Errors
///
/// Returns the first replayed trap (deterministic: replay order is a
/// pure function of the simulation).
fn boundary(
    sim: &CycleSim,
    domains: &mut [&mut DomainEngine],
    scratch: &mut Vec<XRequest>,
    end: u64,
) -> Result<(), Trap> {
    let topo = sim.topology();
    scratch.clear();
    for d in domains.iter_mut() {
        scratch.append(&mut d.outbox);
    }
    // Each domain's outbox is already (cycle, core)-ordered; the stable
    // sort is effectively a k-way merge. Keys are unique (a core issues
    // at most one memory op per cycle).
    scratch.sort_by_key(|x| (x.cycle, x.core));
    let cores_per_group = topo.cores_per_group();
    for x in scratch.iter() {
        let granted = if x.bank != u32::MAX {
            let target = topo.domain_of_bank(x.bank) as usize;
            let slot = domains[target].banks.local_bank(x.bank);
            Some(grant(x, &mut domains[target].banks.bank_free[slot]))
        } else {
            None
        };
        let source = (x.core / cores_per_group) as usize;
        let local = (x.core % cores_per_group) as usize;
        complete(x, &mut domains[source].ctxs[local], granted)?;
    }
    for d in domains.iter_mut() {
        d.deliver_wakes(sim.memory(), end);
    }
    Ok(())
}

/// One scheduling window granted by [`decide`]: the interval every
/// domain (or the sole active one) simulates before the next boundary.
/// Base windows are exactly one epoch; adaptive runs may grant longer
/// ones when the quiescence predicate proves no cross-domain traffic can
/// be issued inside them.
struct Window {
    start: u64,
    /// Granted boundary (grid-aligned). A sole-active domain may trim
    /// the window back at run time; the boundary actually reached is
    /// what [`DomainEngine::run_epoch`] returns.
    end: u64,
    /// `Some(d)`: only domain `d` has any event before `end`; it runs
    /// alone with trim-on-defer while the rest fast-forward.
    sole: Option<usize>,
    /// Extended grant: the quiescent-stretch slim issue path is allowed.
    extended: bool,
}

/// Coordinator decision taken at a boundary: cooperative cancellation
/// first (the epoch just simulated is abandoned un-replayed — the result
/// is partial either way), then the first trap in global
/// `(issue cycle, core id)` order — the one the sequential full scan
/// would hit first, domains being independent within an epoch — then
/// replay-order traps, then termination, then the next window.
enum Verdict {
    Stop(Option<Trap>),
    /// The job's [`CancelToken`](crate::CancelToken) was raised: stop at
    /// this boundary and report the partial result as cancelled.
    Cancel,
    Run(Window),
}

fn decide(
    sim: &CycleSim,
    domains: &mut [&mut DomainEngine],
    scratch: &mut Vec<XRequest>,
    end: u64,
    epoch: u64,
    adaptive: bool,
) -> Verdict {
    if sim.cancel_requested() {
        return Verdict::Cancel;
    }
    if let Some((_, _, trap)) =
        domains.iter().filter_map(|d| d.trap).min_by_key(|&(cycle, core, _)| (cycle, core))
    {
        return Verdict::Stop(Some(trap));
    }
    if let Err(trap) = boundary(sim, domains, scratch, end) {
        return Verdict::Stop(Some(trap));
    }
    // First and second-smallest next-event times (and who owns the
    // first), plus the global remote-issue horizon.
    let mut first = u64::MAX;
    let mut first_dom = 0usize;
    let mut second = u64::MAX;
    let mut horizon = u64::MAX;
    for (i, d) in domains.iter().enumerate() {
        let ne = d.next_event(end);
        if ne < first {
            second = first;
            first = ne;
            first_dom = i;
        } else if ne < second {
            second = ne;
        }
        horizon = horizon.min(d.horizon());
    }
    if first == u64::MAX {
        // Every core is done or parked with no wake in flight: finished
        // (or guest deadlock, surfaced via `CycleResult::deadlocked`).
        return Verdict::Stop(None);
    }
    // Fast-forward over empty epochs (barrier sleeps, long refills):
    // boundaries stay on the absolute epoch grid.
    let start = first / epoch * epoch;
    let base_end = start + epoch;
    if adaptive {
        let cap = start + (WHEEL_SLOTS / epoch).clamp(1, MAX_EXTEND_EPOCHS) * epoch;
        // Sole-active: every other domain's first event lies at or
        // beyond an epoch boundary the sole domain cannot outrun — it
        // trims itself back to the fixed-cadence boundary on its first
        // deferred request, so nothing it does can create an event for
        // the others before they resume.
        let end_sole = if second == u64::MAX { cap } else { (second / epoch * epoch).min(cap) };
        // Multi-active: no ready core of any domain can issue a
        // possibly-remote uop before the static horizon, so every
        // boundary up to it is replay-empty and wake-silent.
        let end_multi = if horizon == u64::MAX { cap } else { (horizon / epoch * epoch).min(cap) };
        if end_sole > base_end && end_sole >= end_multi {
            return Verdict::Run(Window { start, end: end_sole, sole: Some(first_dom), extended: true });
        }
        if end_multi > base_end {
            return Verdict::Run(Window { start, end: end_multi, sole: None, extended: true });
        }
    }
    Verdict::Run(Window { start, end: base_end, sole: None, extended: false })
}

fn collect_result(domains: Vec<DomainEngine>) -> CycleResult {
    let ctxs: Vec<CoreCtx<super::TurboMem>> = domains.into_iter().flat_map(|d| d.ctxs).collect();
    CycleSim::result_of(&ctxs)
}

/// Drives the sharded engine to completion.
///
/// `threads == 1` runs the domains round-robin on the calling thread;
/// larger counts distribute domains over that many host threads with a
/// spin barrier between phases. Results are bit-identical either way.
pub(super) fn run_sharded(sim: &CycleSim, cores: u32, threads: usize) -> Result<CycleResult, Trap> {
    let topo = sim.topology();
    let ndom = topo.num_domains();
    debug_assert!(ndom > 1, "single-domain topologies use the plain event engine");
    // The lowered tables are part of the shared artifact set: built once
    // per scenario, shared by every domain worker (and every job of a
    // batch) read-only.
    let tables = sim.arts.cycle_tables();
    let epoch = topo.epoch_len();
    let adaptive = sim.arts.fast_config().epochs == EpochMode::Adaptive;
    let reach = adaptive.then(|| Arc::clone(sim.arts.reach()));
    let mut domains: Vec<DomainEngine> =
        (0..ndom).map(|d| DomainEngine::new(sim, d, cores, reach.clone())).collect();
    let threads = threads.clamp(1, ndom as usize);

    if threads == 1 {
        let mut scratch = Vec::new();
        let mut win = Window { start: 0, end: epoch, sole: None, extended: false };
        let mut cancelled = false;
        loop {
            let opts = WindowOpts { epoch, elide: win.extended, trim: win.sole.is_some() };
            let end = match win.sole {
                Some(s) => {
                    let actual = domains[s].run_epoch(sim, tables, win.start, win.end, &opts);
                    if domains[s].trap.is_none() {
                        for (i, d) in domains.iter_mut().enumerate() {
                            if i != s {
                                d.skip_to(actual);
                            }
                        }
                    }
                    actual
                }
                None => {
                    for d in domains.iter_mut() {
                        d.run_epoch(sim, tables, win.start, win.end, &opts);
                    }
                    win.end
                }
            };
            sim.epoch_counters.record(
                win.end - win.start > epoch,
                win.sole.is_some() && end < win.end,
                end - win.start,
            );
            let mut refs: Vec<&mut DomainEngine> = domains.iter_mut().collect();
            match decide(sim, &mut refs, &mut scratch, end, epoch, adaptive) {
                Verdict::Stop(Some(trap)) => return Err(trap),
                Verdict::Stop(None) => break,
                Verdict::Cancel => {
                    cancelled = true;
                    break;
                }
                Verdict::Run(next) => win = next,
            }
        }
        let mut res = collect_result(domains);
        res.cancelled = cancelled;
        return Ok(res);
    }

    // Threaded driver: domains live in mutexes; a worker locks only its
    // own domains during a phase (uncontended), and the coordinator
    // (worker 0) locks all of them between the two barriers.
    let slots: Vec<Mutex<DomainEngine>> = domains.into_iter().map(Mutex::new).collect();
    let barrier = SpinBarrier::new(threads);
    let stop = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);
    let next_start = AtomicU64::new(0);
    let next_end = AtomicU64::new(epoch);
    // `usize::MAX` encodes "no sole domain" (multi-active window).
    let next_sole = AtomicUsize::new(usize::MAX);
    let next_extended = AtomicBool::new(false);
    let outcome: Mutex<Option<Trap>> = Mutex::new(None);

    std::thread::scope(|scope| {
        let worker = |t: usize| {
            let slots = &slots;
            let barrier = &barrier;
            let stop = &stop;
            let cancelled = &cancelled;
            let next_start = &next_start;
            let next_end = &next_end;
            let next_sole = &next_sole;
            let next_extended = &next_extended;
            let outcome = &outcome;
            move || {
                let _poison = PoisonOnPanic(barrier);
                let mut scratch = Vec::new();
                let mut win = Window { start: 0, end: epoch, sole: None, extended: false };
                loop {
                    let opts = WindowOpts { epoch, elide: win.extended, trim: win.sole.is_some() };
                    let mut end = win.end;
                    match win.sole {
                        // A sole-active window runs entirely on worker 0:
                        // one domain simulates, the idle rest only have
                        // their clocks advanced to the boundary actually
                        // reached (known only after the run).
                        Some(s) => {
                            if t == 0 {
                                let mut engine = slots[s].lock().expect("domain lock");
                                end = engine.run_epoch(sim, tables, win.start, win.end, &opts);
                                let trapped = engine.trap.is_some();
                                drop(engine);
                                if !trapped {
                                    for (d, m) in slots.iter().enumerate() {
                                        if d != s {
                                            m.lock().expect("domain lock").skip_to(end);
                                        }
                                    }
                                }
                            }
                        }
                        None => {
                            for d in (t..slots.len()).step_by(threads) {
                                let mut engine = slots[d].lock().expect("domain lock");
                                engine.run_epoch(sim, tables, win.start, win.end, &opts);
                            }
                        }
                    }
                    barrier.wait();
                    if t == 0 {
                        sim.epoch_counters.record(
                            win.end - win.start > epoch,
                            win.sole.is_some() && end < win.end,
                            end - win.start,
                        );
                        let mut guards: Vec<_> =
                            slots.iter().map(|m| m.lock().expect("domain lock")).collect();
                        let mut refs: Vec<&mut DomainEngine> = guards.iter_mut().map(|g| &mut **g).collect();
                        match decide(sim, &mut refs, &mut scratch, end, epoch, adaptive) {
                            Verdict::Stop(trap) => {
                                *outcome.lock().expect("outcome lock") = trap;
                                stop.store(true, Ordering::Release);
                            }
                            Verdict::Cancel => {
                                cancelled.store(true, Ordering::Release);
                                stop.store(true, Ordering::Release);
                            }
                            Verdict::Run(next) => {
                                next_start.store(next.start, Ordering::Release);
                                next_end.store(next.end, Ordering::Release);
                                next_sole.store(next.sole.unwrap_or(usize::MAX), Ordering::Release);
                                next_extended.store(next.extended, Ordering::Release);
                            }
                        }
                    }
                    barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let sole = next_sole.load(Ordering::Acquire);
                    win = Window {
                        start: next_start.load(Ordering::Acquire),
                        end: next_end.load(Ordering::Acquire),
                        sole: (sole != usize::MAX).then_some(sole),
                        extended: next_extended.load(Ordering::Acquire),
                    };
                }
            }
        };
        let mut handles = Vec::new();
        for t in 1..threads {
            handles.push(scope.spawn(worker(t)));
        }
        worker(0)();
        for h in handles {
            h.join().expect("domain worker panicked");
        }
    });

    if let Some(trap) = outcome.into_inner().expect("outcome lock") {
        return Err(trap);
    }
    let domains: Vec<DomainEngine> =
        slots.into_iter().map(|m| m.into_inner().expect("domain lock")).collect();
    let mut res = collect_result(domains);
    res.cancelled = cancelled.load(Ordering::Acquire);
    Ok(res)
}

/// A sense-reversing spin barrier for the per-epoch phase handoff.
///
/// Epochs are only a few simulated cycles, so the handoff latency sits on
/// the critical path; spinning (with a yield fallback so oversubscribed
/// hosts — e.g. single-core CI runners — still make progress) beats a
/// futex round trip by an order of magnitude.
///
/// The barrier is **poisonable**: a worker that unwinds (a panic or
/// `debug_assert` anywhere in its epoch loop) poisons it on the way out
/// ([`PoisonOnPanic`]), and every spinner escapes by panicking instead of
/// waiting forever — the thread scope then joins all workers and
/// propagates the original panic rather than hanging the run.
struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if self.poisoned.load(Ordering::Acquire) {
                    panic!("a sibling domain worker panicked; aborting the sharded run");
                }
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Poisons the barrier when its worker unwinds, so no sibling spins
/// forever on a phase that will never complete.
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}
