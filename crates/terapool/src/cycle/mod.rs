//! The cycle-accurate mode — this project's stand-in for RTL simulation.
//!
//! A cycle-stepped model of the whole cluster with the
//! micro-architectural effects the fast mode deliberately omits (paper §V-B):
//!
//! * **Bank conflicts**: each scratchpad bank services one request per
//!   cycle; concurrent requests arbitrate in core-id order (`stall-lsu`).
//! * **Shared tile ports**: the 8 cores of a tile share one outbound port
//!   to the cluster interconnect (paper §II), serializing remote requests —
//!   the dominant contention the fast mode's 9-cycle assumption absorbs.
//! * **NUMA pipeline stages** at subgroup/group/cluster boundaries: a load
//!   takes `1 + 2·hops` cycles without contention, up to the paper's 9.
//! * **Atomics serialized at the bank** (the barrier hot spot).
//! * **Shared per-tile I$** with line refills from L2 (`stall-ins`).
//! * **Non-pipelined FP divide/sqrt** unit back-pressure (`stall-acc`).
//! * **RAW dependencies** via per-register ready times (`stall-raw`).
//! * **`wfi` sleep** until the barrier wake (`stall-wfi`).
//!
//! Architectural execution reuses the exact same [`Cpu`] semantics as the
//! fast mode, so the two backends produce bit-identical memory contents —
//! only timing differs. One deliberate approximation is documented on
//! [`CycleSim::run`]: values are read at issue time while timing uses the
//! grant time, which is exact for data-race-free guests like the MMSE
//! workload.
//!
//! # Scheduling
//!
//! Three schedulers drive the same per-instruction model:
//!
//! * [`CycleSim::run`] — the **event-driven** engine: a double-buffered
//!   ready bitmap for the dominant issue-again-next-cycle case backed by a
//!   calendar-wheel queue for multi-cycle wakes, so an event step touches
//!   only the cores that can actually issue. Parked (`wfi`) cores leave
//!   the queue entirely and are re-queued through the memory's wake
//!   notification channel ([`ClusterMem::wake_epoch`]), never polled. The
//!   hot path additionally runs from the pre-lowered micro-op table
//!   ([`terasim_iss::uop`]: operand indices, timing metadata and a direct
//!   kernel pointer per instruction, resolved once at load), shift-based
//!   bank decoding, a tile-pair hop table, and primes the memory view
//!   with the bank decode so the kernel never re-derives it.
//! * [`CycleSim::run_parallel`] — the **epoch-sharded** engine: each
//!   *group* of the topology is an independent arbitration domain
//!   ([`domain::DomainEngine`], one event-driven engine per group) and
//!   domains advance in lockstep epochs sized to the minimum cross-group
//!   latency ([`Topology::CROSS_GROUP_HOP`]). Intra-group traffic — the
//!   common case by construction of the tile-local sequential address
//!   map — is simulated entirely inside a domain with no synchronization;
//!   cross-group accesses are deferred into per-domain mailboxes that an
//!   epoch coordinator ([`epoch`]) replays at each boundary in global
//!   `(issue cycle, core id)` order. Results are bit-identical for every
//!   host thread count, including 1.
//! * [`CycleSim::run_naive`] — the full-scan scheduler, retained as the
//!   semantic reference: every core context is rescanned on every event
//!   step. The `differential`/`parallel` integration tests pin all three
//!   engines to bit-identical [`CycleStats`] and memory contents.
//!
//! # The epoch-deferred model (multi-group topologies)
//!
//! On topologies with more than one group, **all** schedulers implement
//! the same *epoch-deferred* semantics so they stay mutually
//! bit-identical while the sharded engine runs groups concurrently:
//!
//! * Time is divided into epochs of [`Topology::epoch_len`] cycles (the
//!   minimum one-way cross-group hop, 4).
//! * A memory access whose target bank lies in another group captures its
//!   operands at issue, claims its LSU slot and tile port immediately,
//!   and is *deferred*: the bank grant, the architectural effect and the
//!   destination writeback happen at the next epoch boundary, replayed in
//!   global `(issue cycle, core id)` order. Until then the issuing core's
//!   scoreboard carries a **lower bound** on the completion time; the
//!   bound is at least the uncontended cross-group round trip (≥ 9
//!   cycles), which exceeds the epoch length, so the boundary always
//!   corrects it before any dependent instruction can observe it.
//! * L2/control-region accesses (shared by every group) are deferred the
//!   same way — loads included, so a core's own deferred store forwards
//!   to its later load through the boundary replay's `(cycle, core)`
//!   order, and in particular the barrier wake-all register, so `wfi`
//!   wake-ups are delivered at epoch boundaries. Nothing mutates those
//!   regions inside an epoch.
//!
//! On single-group topologies every access is domain-local, nothing is
//! ever deferred, and the engines behave exactly as before.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use terasim_iss::uop::UopProgram;
use terasim_iss::{Cpu, InstClass, LatencyModel, MemOp, Memory, Outcome, Program, Trap, UopMeta, NO_REG};
use terasim_riscv::{Image, Inst, Reg};

use crate::artifacts::SimArtifacts;
use crate::cancel::CancelToken;
use crate::mem::{ClusterMem, CoreMem, DomainBanks, TurboMem, XRequest};
use crate::pool::MemPool;
use crate::topology::{L1Decode, Topology};

mod domain;
mod epoch;
mod reach;

use domain::Wheel;
pub(crate) use reach::ReachMap;

/// Per-core counters of the cycle-accurate run, matching the Figure 8
/// breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Retired instructions (each occupies one issue cycle).
    pub instructions: u64,
    /// Cycles lost to read-after-write dependencies.
    pub stall_raw: u64,
    /// Cycles lost to interconnect/bank contention.
    pub stall_lsu: u64,
    /// Cycles lost to I$ refills.
    pub stall_ins: u64,
    /// Cycles lost to full functional-unit pipelines (div/sqrt busy).
    pub stall_acc: u64,
    /// Cycles idling in `wfi` at synchronization barriers.
    pub stall_wfi: u64,
    /// Cycle at which the core finished (`ecall`).
    pub done_at: u64,
}

impl CycleStats {
    /// Total accounted cycles (instructions + all stall classes).
    pub fn total(&self) -> u64 {
        self.instructions + self.stall_raw + self.stall_lsu + self.stall_ins + self.stall_acc + self.stall_wfi
    }

    /// Adds another core's counters into this accumulator (`done_at`
    /// takes the max: the aggregate finishes when its last core does).
    pub fn accumulate(&mut self, other: &CycleStats) {
        self.instructions += other.instructions;
        self.stall_raw += other.stall_raw;
        self.stall_lsu += other.stall_lsu;
        self.stall_ins += other.stall_ins;
        self.stall_acc += other.stall_acc;
        self.stall_wfi += other.stall_wfi;
        self.done_at = self.done_at.max(other.done_at);
    }
}

/// Result of a cycle-accurate cluster run.
#[derive(Debug, Clone)]
pub struct CycleResult {
    /// Per-core counters.
    pub per_core: Vec<CycleStats>,
    /// Makespan: the cycle the last core finished.
    pub cycles: u64,
    /// `true` if the run ended in a guest deadlock: the listed cores were
    /// parked in `wfi` with nobody left to wake them. The per-core stats
    /// are then partial (an RTL run would hang here).
    pub deadlocked: bool,
    /// Hart ids still parked when the run ended (empty on a clean finish).
    pub parked: Vec<u32>,
    /// Hart ids stopped by the [`CycleSim::max_instructions`] safety net
    /// rather than a clean guest exit (empty when no budget tripped).
    pub budgeted: Vec<u32>,
    /// The run was abandoned at a safe point (event step or epoch
    /// boundary) because its [`CancelToken`](crate::CancelToken) was
    /// raised; statistics are partial.
    pub cancelled: bool,
}

impl CycleResult {
    /// Sums the per-core counters (for cluster-level breakdowns).
    pub fn aggregate(&self) -> CycleStats {
        let mut acc = CycleStats::default();
        for s in &self.per_core {
            acc.accumulate(s);
        }
        acc
    }

    /// Sums the per-core counters within each *group* of `topo` — the
    /// sharded engine's arbitration domains — for per-domain breakdowns.
    /// Groups with no simulated core (partial runs) report zeros.
    pub fn aggregate_groups(&self, topo: &Topology) -> Vec<CycleStats> {
        let per_group = topo.cores_per_group() as usize;
        let mut out = vec![CycleStats::default(); topo.num_domains() as usize];
        for (core, s) in self.per_core.iter().enumerate() {
            out[core / per_group].accumulate(s);
        }
        out
    }
}

/// Scheduling telemetry of the most recent sharded run: how often the
/// adaptive coordinator extended or trimmed its windows and how much
/// simulated time they covered. A side channel on [`CycleSim`] rather
/// than a [`CycleResult`] field, so results stay directly comparable
/// across engines and epoch modes (the bit-identity contract).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochReport {
    /// Scheduling windows driven (each ends in one boundary replay).
    pub windows: u64,
    /// Windows granted longer than one base epoch.
    pub extended: u64,
    /// Sole-active windows trimmed back by a deferred request before
    /// their granted boundary.
    pub trimmed: u64,
    /// Simulated cycles covered by all windows together.
    pub cycles: u64,
}

impl EpochReport {
    /// Mean simulated cycles per window — the base epoch length
    /// (`Topology::epoch_len`) when nothing was ever extended, larger
    /// when the quiescence predicate fired.
    pub fn avg_epoch_len(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.cycles as f64 / self.windows as f64
        }
    }

    /// Percentage of windows that were extended grants.
    pub fn extended_pct(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            100.0 * self.extended as f64 / self.windows as f64
        }
    }
}

/// Interior-mutable accumulator behind [`EpochReport`]: the coordinator
/// records through a `&CycleSim`, so the counters are atomics (only the
/// deciding worker ever writes; relaxed ordering suffices because the
/// snapshot is taken after the run joins).
#[derive(Debug, Default)]
struct EpochCounters {
    windows: AtomicU64,
    extended: AtomicU64,
    trimmed: AtomicU64,
    cycles: AtomicU64,
}

impl EpochCounters {
    fn reset(&self) {
        self.windows.store(0, Ordering::Relaxed);
        self.extended.store(0, Ordering::Relaxed);
        self.trimmed.store(0, Ordering::Relaxed);
        self.cycles.store(0, Ordering::Relaxed);
    }

    fn record(&self, extended: bool, trimmed: bool, span: u64) {
        self.windows.fetch_add(1, Ordering::Relaxed);
        self.extended.fetch_add(u64::from(extended), Ordering::Relaxed);
        self.trimmed.fetch_add(u64::from(trimmed), Ordering::Relaxed);
        self.cycles.fetch_add(span, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EpochReport {
        EpochReport {
            windows: self.windows.load(Ordering::Relaxed),
            extended: self.extended.load(Ordering::Relaxed),
            trimmed: self.trimmed.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Ready,
    Parked,
    Done,
}

/// Outstanding-request capacity of the Snitch LSU; a full queue
/// back-pressures issue (`stall-lsu`).
const LSU_DEPTH: usize = 4;

struct CoreCtx<M> {
    cpu: Cpu,
    mem: M,
    reg_ready: [u64; 32],
    /// Per-register architectural write counters: bumped on every issued
    /// destination/post-increment write. A deferred access captures the
    /// counter of its destination at issue; the boundary replay writes
    /// the register back only if the counter is unchanged, so a later
    /// same-epoch writer (a WAW over a dead load — legal, if pointless)
    /// is never clobbered by the replay.
    reg_wseq: [u64; 32],
    wake_at: u64,
    parked_at: u64,
    fpu_busy_until: u64,
    /// Completion times of in-flight memory requests (one per LSU slot).
    lsu_free: [u64; LSU_DEPTH],
    state: CoreState,
    stats: CycleStats,
    /// Upper bound on every hazard the quiescent-stretch slim path skips
    /// checking (`reg_ready`, `lsu_free`, `fpu_busy_until`): while it is
    /// `≤ now`, an elidable uop provably stalls for `+0` cycles on every
    /// class and the full checks can be skipped. `u64::MAX` means
    /// "unknown — rescan lazily" and is set wherever the full issue path
    /// or the boundary replay rewrites scoreboard state.
    hazard_until: u64,
    /// Cached `topo.tile_of_core` (hot-path index).
    tile: u32,
    /// The core was stopped by the `max_instructions` safety net (set in
    /// the budget branch that already guards every issue).
    budget_hit: bool,
}

impl<M> CoreCtx<M> {
    /// Records the architectural register writes of the instruction that
    /// just issued (destination and post-increment base, [`NO_REG`]
    /// ignored) in the WAW counters.
    #[inline]
    fn note_reg_writes(&mut self, dst: u8, post_inc: u8) {
        if dst != NO_REG {
            self.reg_wseq[dst as usize] += 1;
        }
        if post_inc != NO_REG {
            self.reg_wseq[post_inc as usize] += 1;
        }
    }
}

/// Direct-mapped, per-tile shared instruction cache model (the seed
/// implementation, kept for the naive reference scheduler).
struct ICache {
    line: u32,
    sets: Vec<u32>,
}

impl ICache {
    fn new(bytes: u32, line: u32) -> Self {
        Self { line, sets: vec![u32::MAX; (bytes / line) as usize] }
    }

    /// Returns `true` on hit; installs the line on miss.
    fn access(&mut self, pc: u32) -> bool {
        let line_addr = pc / self.line;
        let idx = (line_addr as usize) % self.sets.len();
        if self.sets[idx] == line_addr {
            true
        } else {
            self.sets[idx] = line_addr;
            false
        }
    }
}

/// [`ICache`] with identical hit/miss behaviour, optimized for the event
/// engine: shift/mask indexing (line size and set count are powers of two
/// on every TeraPool configuration) and a last-line memo — the last line
/// touched is always resident in a direct-mapped cache, so the common
/// straight-line case skips the set lookup entirely.
struct FastICache {
    /// `Some((log2(line), sets - 1))` when line size and set count are
    /// powers of two (true for every TeraPool configuration): branch-free
    /// shift/mask indexing. `None` falls back to the div/mod path so
    /// custom geometries keep working like the naive [`ICache`].
    shift: Option<(u32, usize)>,
    line: u32,
    sets: Vec<u32>,
    last_line: u32,
}

impl FastICache {
    fn new(bytes: u32, line: u32) -> Self {
        let sets = (bytes / line) as usize;
        let shift =
            (line.is_power_of_two() && sets.is_power_of_two()).then(|| (line.trailing_zeros(), sets - 1));
        Self { shift, line, sets: vec![u32::MAX; sets], last_line: u32::MAX }
    }

    /// Returns `true` on hit; installs the line on miss.
    #[inline]
    fn access(&mut self, pc: u32) -> bool {
        let line_addr = match self.shift {
            Some((shift, _)) => pc >> shift,
            None => pc / self.line,
        };
        if line_addr == self.last_line {
            return true;
        }
        let idx = match self.shift {
            Some((_, mask)) => line_addr as usize & mask,
            None => line_addr as usize % self.sets.len(),
        };
        self.last_line = line_addr;
        if self.sets[idx] == line_addr {
            true
        } else {
            self.sets[idx] = line_addr;
            false
        }
    }
}

/// Hot-path lookup tables derived from the topology and program: the
/// fully lowered micro-op table (kernel pointers + operand records +
/// timing metadata, resolved once at load — see [`terasim_iss::uop`])
/// plus the topology-derived hop table and shift-based bank decode.
///
/// Immutable after construction and shared read-only by every engine (and
/// every job of a batch) through [`SimArtifacts::cycle_tables`].
pub(crate) struct RunTables {
    uops: UopProgram<TurboMem>,
    /// `request_latency` for every (core tile, bank tile) pair.
    hops: Vec<u8>,
    num_tiles: u32,
    /// Shared shift-based L1 decode (bit-identical to `Topology::l1_slot`).
    decode: L1Decode,
}

impl RunTables {
    pub(crate) fn new(topo: Topology, program: &Program, latency: &LatencyModel) -> Self {
        let uops = UopProgram::lower(program, latency);

        let num_tiles = topo.num_tiles();
        let mut hops = vec![0u8; (num_tiles * num_tiles) as usize];
        for ct in 0..num_tiles {
            for bt in 0..num_tiles {
                let hop = if ct == bt {
                    0
                } else if topo.subgroup_of_tile(ct) == topo.subgroup_of_tile(bt) {
                    1
                } else if topo.group_of_tile(ct) == topo.group_of_tile(bt) {
                    2
                } else {
                    Topology::CROSS_GROUP_HOP as u8
                };
                hops[(ct * num_tiles + bt) as usize] = hop;
            }
        }

        Self { uops, hops, num_tiles, decode: L1Decode::new(topo) }
    }

    #[inline]
    fn hop(&self, core_tile: u32, bank_tile: u32) -> u64 {
        u64::from(self.hops[(core_tile * self.num_tiles + bank_tile) as usize])
    }

    /// Bit-identical to [`Topology::l1_slot`], using shifts when possible.
    #[inline]
    fn l1_slot(&self, addr: u32) -> Option<(u32, u32)> {
        self.decode.l1_slot(addr)
    }

    /// Tile hosting `bank` (shift-based when possible).
    #[inline]
    fn tile_of_bank(&self, bank: u32) -> u32 {
        self.decode.tile_of_bank(bank)
    }
}

/// Deferral context of the epoch-deferred model: present whenever the
/// topology has more than one domain (group). The issue paths route any
/// access leaving `domain` — a remote-group bank, or a mutation of the
/// shared L2/control regions — into `outbox` instead of executing it.
struct Defer<'a> {
    /// Domain the issuing core belongs to.
    domain: u32,
    topo: Topology,
    /// The domain's cross-domain request queue for the current epoch.
    outbox: &'a mut Vec<XRequest>,
}

/// Completes issue of a *deferred* memory instruction: captures operands,
/// applies the issue-time architectural effects the kernel would have
/// applied before/after the access itself (post-increment writeback,
/// `sc.w` resolution against the hart-local reservation, the `lr.w`
/// reservation, retire + scoreboard), and queues the [`XRequest`] whose
/// replay at the epoch boundary performs the access, the destination
/// writeback and the grant-time scoreboard correction.
///
/// `result_latency` is the issue-time completion estimate: exact for
/// L2/control targets (fixed 16 cycles), a lower bound for remote banks
/// (the uncontended round trip) that the boundary replay corrects before
/// any dependent instruction can observe it.
#[allow(clippy::too_many_arguments)]
fn defer_issue<M: Memory>(
    ctx: &mut CoreCtx<M>,
    op: MemOp,
    dst: u8,
    post_inc: u8,
    value_reg: u8,
    base: u32,
    ea_offset: i32,
    pc: u32,
    addr: u32,
    now: u64,
    result_latency: u64,
    slot: usize,
    bank: u32,
    depart: u64,
    hop: u8,
    outbox: &mut Vec<XRequest>,
) {
    // The kernel writes rd before the post-increment base; when they
    // alias, the base update wins — encode that by suppressing the
    // deferred writeback (the replayed load still runs for its trap and
    // bank-timing effects).
    let rd = if post_inc != NO_REG && dst == post_inc { NO_REG } else { dst };
    // Operand capture happens before any register update below, so
    // `value` is exact even when the value register aliases the base.
    let mut value = 0u32;
    let mut sc_success = false;
    match op {
        MemOp::Load { .. } => {}
        MemOp::LoadReserved => ctx.cpu.set_reservation(Some(addr)),
        MemOp::Store { .. } => value = ctx.cpu.reg(Reg::from_num(u32::from(value_reg) & 31)),
        MemOp::StoreConditional => {
            value = ctx.cpu.reg(Reg::from_num(u32::from(value_reg) & 31));
            sc_success = ctx.cpu.reservation() == Some(addr);
            ctx.cpu.set_reg(Reg::from_num(u32::from(dst) & 31), u32::from(!sc_success));
            ctx.cpu.set_reservation(None);
            // rd got its value at issue; keep it for the scoreboard
            // correction only — the replay never writes it back.
        }
        MemOp::Amo(_) => value = ctx.cpu.reg(Reg::from_num(u32::from(value_reg) & 31)),
        MemOp::None => unreachable!("only memory operations are deferred"),
    }
    if post_inc != NO_REG {
        ctx.cpu.set_reg(Reg::from_num(u32::from(post_inc) & 31), base.wrapping_add(ea_offset as u32));
    }
    // Bump the WAW counters for this op's own (logical) writes, then
    // capture rd's counter: the replay writes rd back only while it is
    // still the last writer — a later same-epoch writer wins, exactly as
    // it would against the kernel's issue-time write.
    ctx.note_reg_writes(dst, post_inc);
    let wseq = if rd != NO_REG { ctx.reg_wseq[rd as usize] } else { 0 };
    outbox.push(XRequest {
        cycle: now,
        depart,
        core: ctx.cpu.hart_id(),
        pc,
        addr,
        value,
        bank,
        op,
        rd,
        wseq,
        slot: slot as u8,
        hop,
        sc_success,
    });

    // Issue-time epilogue, mirroring the kernel path: retire, count,
    // scoreboard (lower-bound or exact latency), next-cycle wake. Memory
    // instructions never redirect the PC and always continue.
    ctx.cpu.retire_fallthrough();
    ctx.stats.instructions += 1;
    ctx.cpu.set_mcycle(now);
    if dst != NO_REG {
        ctx.reg_ready[dst as usize] = now + result_latency;
    }
    if post_inc != NO_REG {
        ctx.reg_ready[post_inc as usize] = now + 1;
    }
    // In-flight request: force the slim path to rescan (and, until the
    // boundary replay corrects `lsu_free`, refuse) before eliding.
    ctx.hazard_until = u64::MAX;
    ctx.wake_at = now + 1;
}

/// The cycle-accurate cluster simulator.
///
/// A `CycleSim` is *per-job mutable state* — a private [`ClusterMem`] and
/// the per-run knobs below — over a shared immutable [`SimArtifacts`] set
/// (decoded program, lowered micro-op/hop/bank-decode tables, initial
/// image). Build the artifacts once per scenario and instantiate one
/// `CycleSim` per job with [`CycleSim::from_artifacts`]; the convenience
/// constructor [`CycleSim::new`] builds a single-use artifact set
/// internally.
pub struct CycleSim {
    arts: Arc<SimArtifacts>,
    /// Always `Some` until drop, where a pooled job's arena is *taken*
    /// and handed back to the pool by value — ownership transfers, so the
    /// parked handle is immediately recyclable.
    mem: Option<ClusterMem>,
    /// I$ refill penalty (L2 line fetch over AXI).
    pub icache_refill: u64,
    /// Instruction budget per core (safety net).
    pub max_instructions: u64,
    /// The pool this job's memory returns to on drop (pooled jobs only —
    /// see [`CycleSim::from_pool`]).
    pool: Option<Arc<MemPool>>,
    /// Cooperative cancellation flag, polled at event steps and epoch
    /// boundaries.
    cancel: Option<CancelToken>,
    /// Set when a run was cancelled mid-flight: the arena holds partial
    /// writes from an abandoned job, so drop quarantines instead of
    /// releasing.
    tainted: bool,
    /// Scheduling telemetry of the most recent sharded run (reset at the
    /// start of each one) — see [`CycleSim::epoch_report`].
    epoch_counters: EpochCounters,
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("cores", &self.arts.topology().num_cores())
            .field("text_insts", &self.arts.program().len())
            .finish()
    }
}

impl CycleSim {
    /// Builds a simulator: translates the image and loads all segments
    /// (a single-use artifact set; batch drivers build one
    /// [`SimArtifacts`] and use [`CycleSim::from_artifacts`] per job).
    ///
    /// # Errors
    ///
    /// Returns the translation error if the image's text cannot be decoded.
    pub fn new(topo: Topology, image: &Image) -> Result<Self, terasim_iss::TranslateError> {
        Ok(Self::from_artifacts(SimArtifacts::build(topo, image)?))
    }

    /// Instantiates one job over a shared artifact set: fresh per-job
    /// memory (image loaded), shared lowered tables.
    pub fn from_artifacts(arts: Arc<SimArtifacts>) -> Self {
        let mem = arts.fresh_memory();
        Self::with_memory(arts, mem)
    }

    /// Instantiates one job drawing its cluster memory from a recycling
    /// [`MemPool`] (over the pool's own artifact set). The memory arrives
    /// in the exact fresh state and returns to the pool when the
    /// simulator drops — deadlocked or trapped runs included; the pool
    /// resets the arena on reuse.
    pub fn from_pool(pool: &Arc<MemPool>) -> Self {
        let mem = pool.acquire();
        let mut sim = Self::with_memory(Arc::clone(pool.artifacts()), mem);
        sim.pool = Some(Arc::clone(pool));
        sim
    }

    fn with_memory(arts: Arc<SimArtifacts>, mem: ClusterMem) -> Self {
        Self {
            arts,
            mem: Some(mem),
            icache_refill: 25,
            max_instructions: u64::MAX,
            pool: None,
            cancel: None,
            tainted: false,
            epoch_counters: EpochCounters::default(),
        }
    }

    /// Attaches a cooperative [`CancelToken`], polled at event steps and
    /// epoch boundaries: when raised, the run returns its partial result
    /// with [`CycleResult::cancelled`] set and the job's memory is
    /// quarantined rather than recycled on drop.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Whether this job's cancel token (if any) has been raised (the
    /// sharded engine polls this at epoch boundaries).
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The job's cluster memory (present from construction to drop).
    fn mem(&self) -> &ClusterMem {
        self.mem.as_ref().expect("cluster memory present until drop")
    }

    /// The shared artifact set this job runs over.
    pub fn artifacts(&self) -> &Arc<SimArtifacts> {
        &self.arts
    }

    /// The job-private cluster memory.
    pub fn memory(&self) -> &ClusterMem {
        self.mem()
    }

    /// The cluster geometry.
    pub fn topology(&self) -> Topology {
        self.arts.topology()
    }

    /// The translated program.
    pub fn program(&self) -> &Program {
        self.arts.program()
    }

    /// The cycle-engine latency model (part of the shared artifacts).
    fn latency(&self) -> &LatencyModel {
        self.arts.cycle_latency()
    }

    fn fresh_ctx<M: Memory>(&self, core: u32, mem: M) -> CoreCtx<M> {
        let mut cpu = Cpu::new(core);
        cpu.set_pc(self.arts.program().entry());
        CoreCtx {
            cpu,
            mem,
            reg_ready: [0; 32],
            reg_wseq: [0; 32],
            wake_at: 0,
            lsu_free: [0; LSU_DEPTH],
            parked_at: 0,
            fpu_busy_until: 0,
            state: CoreState::Ready,
            stats: CycleStats::default(),
            hazard_until: 0,
            tile: self.arts.topology().tile_of_core(core),
            budget_hit: false,
        }
    }

    /// One core context on the engine-fast memory view (used per domain
    /// by the sharded engine).
    fn make_ctx(&self, core: u32) -> CoreCtx<TurboMem> {
        self.fresh_ctx(core, self.mem().turbo_view(core))
    }

    fn make_ctxs<M: Memory>(&self, cores: u32, view: impl Fn(u32) -> M) -> Vec<CoreCtx<M>> {
        (0..cores).map(|core| self.fresh_ctx(core, view(core))).collect()
    }

    fn result_of<M>(ctxs: &[CoreCtx<M>]) -> CycleResult {
        let per_core: Vec<CycleStats> = ctxs.iter().map(|c| c.stats).collect();
        let cycles = per_core.iter().map(|s| s.done_at).max().unwrap_or(0);
        let parked: Vec<u32> =
            ctxs.iter().filter(|c| c.state == CoreState::Parked).map(|c| c.cpu.hart_id()).collect();
        let budgeted: Vec<u32> = ctxs.iter().filter(|c| c.budget_hit).map(|c| c.cpu.hart_id()).collect();
        CycleResult { per_core, cycles, deadlocked: !parked.is_empty(), parked, budgeted, cancelled: false }
    }

    /// Runs harts `0..cores` to completion with the event-driven scheduler.
    ///
    /// Within a cycle, cores issue in core-id order (the RTL's round-robin
    /// arbitration collapsed to a fixed priority — deterministic and fair
    /// enough at our level of abstraction). Loads read memory at issue time
    /// but their *timing* uses the bank grant time; for data-race-free
    /// guests the two are indistinguishable.
    ///
    /// Only cores whose `wake_at` has arrived are touched on an event step:
    /// a calendar-wheel ready queue keyed on `(wake_at, core)` replays the
    /// naive scan's exact issue order, and parked cores re-enter the queue
    /// through the memory wake channel instead of being polled. Produces
    /// bit-identical [`CycleStats`] and memory contents to
    /// [`CycleSim::run_naive`].
    ///
    /// On multi-group topologies this runs the epoch-sharded engine on
    /// the calling thread (see [`CycleSim::run_parallel`] and the
    /// module-level *epoch-deferred model* notes); results stay
    /// bit-identical to `run_parallel` at every thread count and to
    /// `run_naive`.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the topology's core count.
    pub fn run(&mut self, cores: u32) -> Result<CycleResult, Trap> {
        let topo = self.arts.topology();
        assert!(cores <= topo.num_cores(), "core count out of range");
        if topo.num_domains() > 1 {
            return self.run_sharded(cores, 1);
        }
        let mut ctxs = self.make_ctxs(cores, |core| self.mem().turbo_view(core));
        let tables = self.arts.cycle_tables();
        let mut icaches: Vec<FastICache> =
            (0..topo.num_tiles()).map(|_| FastICache::new(topo.icache_bytes, topo.icache_line)).collect();
        let mut banks = DomainBanks::whole_cluster(topo);

        let mut wheel = Wheel::new(cores);
        let words = wheel.words;
        // Double-buffered ready bitmaps: `cur` holds the cores issuing at
        // `now`, `nxt` collects the dominant wake-next-cycle case with one
        // OR instead of a full wheel round trip; only wakes two or more
        // cycles out take the wheel.
        let mut cur: Vec<u64> = vec![0; words];
        let mut nxt: Vec<u64> = vec![0; words];
        let mut nxt_count: u32 = 0;
        let mut parked: Vec<u32> = Vec::new();
        let mut now: u64 = 0;
        for core in 0..cores {
            cur[(core / 64) as usize] |= 1u64 << (core % 64); // all issue at cycle 0
        }
        let mut seen_epoch = self.mem().wake_epoch();
        let mut cancelled = false;

        loop {
            // Safe point: abandon the job between event steps if its token
            // was raised (untaken `None` branch when no token is attached,
            // so the uncancelled hot path pays one predictable test per
            // event step, not per instruction).
            if self.cancel_requested() {
                cancelled = true;
                break;
            }
            // Process every core scheduled for `now`, in ascending id.
            let mut min_waker: Option<u32> = None;
            for w in 0..words {
                let mut bits = std::mem::take(&mut cur[w]);
                while bits != 0 {
                    let bit = bits & bits.wrapping_neg();
                    let core = (w * 64) as u32 + bits.trailing_zeros();
                    bits ^= bit;
                    let ctx = &mut ctxs[core as usize];
                    let did_mem = self.issue_fast(ctx, tables, &mut icaches, &mut banks, now, None)?;
                    match ctx.state {
                        CoreState::Ready => {
                            // `.max(now + 1)` mirrors the naive scan's
                            // `next_event.max(now + 1)`: a degenerate model
                            // (e.g. `icache_refill == 0`) may leave
                            // `wake_at == now`, which must retry next
                            // cycle, not re-enter the current one.
                            let wake = ctx.wake_at.max(now + 1);
                            if wake == now + 1 {
                                nxt[w] |= bit;
                                nxt_count += 1;
                            } else {
                                wheel.push(now, wake, core);
                            }
                        }
                        CoreState::Parked => parked.push(core),
                        CoreState::Done => {}
                    }
                    // Wake-all publications can only happen inside a
                    // memory-class instruction (a store to the control
                    // region), so the epoch check is gated on `did_mem`.
                    if did_mem && min_waker.is_none() && self.mem().wake_epoch() != seen_epoch {
                        min_waker = Some(core);
                    }
                }
            }

            // Wake delivery. The naive scan observes a pending wake when
            // its single pass reaches the parked core: cores *after* the
            // waker see it in the same pass (cycle `now`), cores *before*
            // it one pass later (`now + 1`). Replay exactly that.
            if let Some(waker) = min_waker {
                seen_epoch = self.mem().wake_epoch();
                parked.retain(|&core| {
                    if !self.mem().wake_pending(core) {
                        return true;
                    }
                    let _ = self.mem().take_wake(core);
                    let ctx = &mut ctxs[core as usize];
                    let observed = if core > waker { now } else { now + 1 };
                    ctx.stats.stall_wfi += observed.saturating_sub(ctx.parked_at);
                    ctx.state = CoreState::Ready;
                    ctx.wake_at = observed + 1;
                    wheel.push(now, ctx.wake_at, core);
                    false
                });
            }

            // Advance to the next cycle with work.
            if nxt_count > 0 {
                now += 1;
                std::mem::swap(&mut cur, &mut nxt);
                nxt_count = 0;
                wheel.migrate(now);
                wheel.drain_slot_into(now, &mut cur);
                continue;
            }
            // Nothing due next cycle: the nearest work lives in the wheel
            // (or beyond its horizon in the overflow heap).
            wheel.migrate(now);
            if wheel.pending == 0 {
                match wheel.next_overflow() {
                    Some(at) => {
                        now = at;
                        wheel.migrate(now);
                    }
                    // Wheel and overflow empty: all cores are done, or
                    // only parked cores remain (guest deadlock, surfaced
                    // via `CycleResult::deadlocked`).
                    None => break,
                }
            } else {
                now += 1;
            }
            while wheel.slot_empty(now) {
                now += 1;
            }
            wheel.drain_slot_into(now, &mut cur);
        }

        if cancelled {
            self.tainted = true;
        }
        let mut res = Self::result_of(&ctxs);
        res.cancelled = cancelled;
        Ok(res)
    }

    /// Runs the epoch-sharded engine, tainting this job if the run was
    /// cancelled (the sharded driver only sees `&CycleSim`).
    fn run_sharded(&mut self, cores: u32, threads: usize) -> Result<CycleResult, Trap> {
        self.epoch_counters.reset();
        let res = epoch::run_sharded(self, cores, threads)?;
        if res.cancelled {
            self.tainted = true;
        }
        Ok(res)
    }

    /// Scheduling telemetry of the most recent sharded run
    /// ([`CycleSim::run_parallel`], or [`CycleSim::run`] on multi-group
    /// topologies): window counts, extension/trim tallies and cycle
    /// coverage. All-zero before the first sharded run; a fixed-cadence
    /// run ([`terasim_iss::EpochMode::Fixed`]) reports every window as a
    /// plain base epoch. [`CycleSim::run_naive`] keeps its own epoch
    /// loop and does not touch the report.
    pub fn epoch_report(&self) -> EpochReport {
        self.epoch_counters.snapshot()
    }

    /// Runs harts `0..cores` with the epoch-sharded engine, distributing
    /// the topology's arbitration domains (one per group) over up to
    /// `threads` host threads.
    ///
    /// Domains advance in lockstep epochs sized to the minimum
    /// cross-group latency; intra-group traffic is simulated with no
    /// synchronization and cross-group accesses are exchanged at epoch
    /// boundaries (module-level docs). The result — per-core
    /// [`CycleStats`], makespan, deadlock report and memory contents — is
    /// **bit-identical for every `threads` value** and to [`CycleSim::run`]
    /// and [`CycleSim::run_naive`], because the schedule inside an epoch
    /// never depends on thread interleaving.
    ///
    /// `threads` is clamped to `1..=num_domains`; on single-group
    /// topologies there is nothing to shard and the event-driven engine
    /// runs on the calling thread.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart (deterministic:
    /// global `(issue cycle, core id)` order, then replay order — the
    /// same trap the sequential full scan reports).
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the topology's core count.
    pub fn run_parallel(&mut self, cores: u32, threads: usize) -> Result<CycleResult, Trap> {
        assert!(cores <= self.arts.topology().num_cores(), "core count out of range");
        if self.arts.topology().num_domains() == 1 {
            return self.run(cores);
        }
        self.run_sharded(cores, threads.max(1))
    }

    /// Runs harts `0..cores` with the original full-scan scheduler.
    ///
    /// Retained as the semantic baseline: every event step rescans every
    /// core context, exactly as the seed engine did (on multi-group
    /// topologies the scan is epoch-clamped so it implements the same
    /// epoch-deferred model as the other engines, with its own
    /// independent boundary replay). Use [`CycleSim::run`] for anything
    /// but differential validation and speedup measurement.
    ///
    /// # Errors
    ///
    /// Returns the first [`Trap`] raised by any hart.
    ///
    /// # Panics
    ///
    /// Panics if `cores` exceeds the topology's core count.
    pub fn run_naive(&mut self, cores: u32) -> Result<CycleResult, Trap> {
        let topo = self.arts.topology();
        assert!(cores <= topo.num_cores(), "core count out of range");
        if topo.num_domains() > 1 {
            return self.run_naive_epochs(cores);
        }
        let mut ctxs = self.make_ctxs(cores, |core| self.mem().core_view(core));
        let mut icaches: Vec<ICache> =
            (0..topo.num_tiles()).map(|_| ICache::new(topo.icache_bytes, topo.icache_line)).collect();
        let mut banks = DomainBanks::whole_cluster(topo);

        let mut now: u64 = 0;
        let mut cancelled = false;
        loop {
            // Safe point: abandon the job between scan passes on a raised
            // cancel token.
            if self.cancel_requested() {
                cancelled = true;
                break;
            }
            let mut alive = false;
            let mut next_event = u64::MAX;

            for ctx in ctxs.iter_mut() {
                match ctx.state {
                    CoreState::Done => continue,
                    CoreState::Parked => {
                        alive = true;
                        if self.mem().wake_pending(ctx.cpu.hart_id()) {
                            let _ = self.mem().take_wake(ctx.cpu.hart_id());
                            ctx.stats.stall_wfi += now.saturating_sub(ctx.parked_at);
                            ctx.state = CoreState::Ready;
                            ctx.wake_at = now + 1;
                            next_event = next_event.min(ctx.wake_at);
                        }
                        continue;
                    }
                    CoreState::Ready => {}
                }
                alive = true;
                if ctx.wake_at > now {
                    next_event = next_event.min(ctx.wake_at);
                    continue;
                }

                self.issue_one(ctx, &mut icaches, &mut banks, now, None)?;
                next_event = next_event.min(ctx.wake_at.max(now + 1));
            }

            if !alive {
                break;
            }
            if next_event == u64::MAX {
                // Only parked cores remain and nobody will wake them:
                // guest deadlock; report what we have.
                break;
            }
            now = next_event.max(now + 1);
        }

        if cancelled {
            self.tainted = true;
        }
        let mut res = Self::result_of(&ctxs);
        res.cancelled = cancelled;
        Ok(res)
    }

    /// The full-scan reference scheduler under the epoch-deferred model
    /// (multi-group topologies): the seed scan loop, clamped to lockstep
    /// epochs, with its **own** boundary replay — independent of the
    /// sharded engine's coordinator — so the differential tests exercise
    /// two separate implementations of the deferred semantics.
    fn run_naive_epochs(&mut self, cores: u32) -> Result<CycleResult, Trap> {
        let topo = self.arts.topology();
        let mut ctxs = self.make_ctxs(cores, |core| self.mem().core_view(core));
        let mut icaches: Vec<ICache> =
            (0..topo.num_tiles()).map(|_| ICache::new(topo.icache_bytes, topo.icache_line)).collect();
        let mut banks = DomainBanks::whole_cluster(topo);
        let epoch = topo.epoch_len();
        let mut mailbox: Vec<XRequest> = Vec::new();

        let mut now: u64 = 0;
        let mut epoch_end = epoch;
        let mut cancelled = false;
        loop {
            // Safe point: abandon the job between scan passes on a raised
            // cancel token (the deferred mailbox is simply dropped — the
            // result is partial either way).
            if self.cancel_requested() {
                cancelled = true;
                break;
            }
            // Scan passes within the epoch; cross-domain accesses defer
            // into the mailbox (in (cycle, core) order by construction of
            // the cycle-major, core-minor scan).
            let mut alive = false;
            let mut next_event = u64::MAX;
            for ctx in ctxs.iter_mut() {
                match ctx.state {
                    CoreState::Done => continue,
                    // Parked cores wake only at epoch boundaries: the
                    // wake-all register is a (deferred) control store, so
                    // the wake bits cannot move mid-epoch.
                    CoreState::Parked => {
                        alive = true;
                        continue;
                    }
                    CoreState::Ready => {}
                }
                alive = true;
                if ctx.wake_at > now {
                    next_event = next_event.min(ctx.wake_at);
                    continue;
                }
                let mut defer =
                    Defer { domain: topo.domain_of_core(ctx.cpu.hart_id()), topo, outbox: &mut mailbox };
                self.issue_one(ctx, &mut icaches, &mut banks, now, Some(&mut defer))?;
                next_event = next_event.min(ctx.wake_at.max(now + 1));
            }
            if !alive && mailbox.is_empty() {
                break;
            }
            if alive {
                let next = next_event.max(now + 1);
                if next < epoch_end {
                    now = next;
                    continue;
                }
            }
            // (The last retiring pass always has `alive == true`, so a
            // non-empty mailbox normally reaches the boundary below; the
            // guard above keeps that true even for degenerate schedules.)

            // Epoch boundary: replay the mailbox in (cycle, core) order
            // against the global reservation books, then deliver wakes.
            mailbox.sort_by_key(|x| (x.cycle, x.core));
            for x in mailbox.drain(..) {
                let granted = (x.bank != u32::MAX).then(|| {
                    let arrive = x.depart + u64::from(x.hop);
                    let busy = if matches!(x.op, MemOp::Amo(_)) { 2 } else { 1 };
                    let slot = banks.local_bank(x.bank);
                    let grant = arrive.max(banks.bank_free[slot]);
                    banks.bank_free[slot] = grant + busy;
                    ((grant + busy - x.cycle) + u64::from(x.hop), grant - (x.cycle + u64::from(x.hop)))
                });
                let ctx = &mut ctxs[x.core as usize];
                // WAW guard, mirroring the coordinator's replay: rd is
                // only touched while this request is still its last
                // writer (see `CoreCtx::reg_wseq`).
                let owns_rd = x.rd != NO_REG && ctx.reg_wseq[x.rd as usize] == x.wseq;
                if let Some((result_latency, contention)) = granted {
                    ctx.stats.stall_lsu += contention;
                    ctx.lsu_free[x.slot as usize] = x.cycle + result_latency;
                    if owns_rd {
                        ctx.reg_ready[x.rd as usize] = x.cycle + result_latency;
                    }
                }
                let merr = |err| Trap::Mem { pc: x.pc, err };
                match x.op {
                    MemOp::Load { size, signed } => {
                        let raw = ctx.mem.load(x.addr, u32::from(size)).map_err(merr)?;
                        let value = match (size, signed) {
                            (1, true) => raw as u8 as i8 as i32 as u32,
                            (2, true) => raw as u16 as i16 as i32 as u32,
                            _ => raw,
                        };
                        if owns_rd {
                            ctx.cpu.set_reg(Reg::from_num(u32::from(x.rd) & 31), value);
                        }
                    }
                    MemOp::LoadReserved => {
                        let raw = ctx.mem.load(x.addr, 4).map_err(merr)?;
                        if owns_rd {
                            ctx.cpu.set_reg(Reg::from_num(u32::from(x.rd) & 31), raw);
                        }
                    }
                    MemOp::Store { size } => ctx.mem.store(x.addr, u32::from(size), x.value).map_err(merr)?,
                    MemOp::StoreConditional => {
                        if x.sc_success {
                            ctx.mem.store(x.addr, 4, x.value).map_err(merr)?;
                        }
                    }
                    MemOp::Amo(op) => {
                        let old = ctx.mem.amo(op, x.addr, x.value).map_err(merr)?;
                        if owns_rd {
                            ctx.cpu.set_reg(Reg::from_num(u32::from(x.rd) & 31), old);
                        }
                    }
                    MemOp::None => unreachable!("only memory operations are deferred"),
                }
            }
            for ctx in ctxs.iter_mut() {
                if ctx.state == CoreState::Parked && self.mem().wake_pending(ctx.cpu.hart_id()) {
                    let _ = self.mem().take_wake(ctx.cpu.hart_id());
                    ctx.stats.stall_wfi += epoch_end.saturating_sub(ctx.parked_at);
                    ctx.state = CoreState::Ready;
                    ctx.wake_at = epoch_end + 1;
                }
            }

            // Resume at the earliest ready event, fast-forwarding over
            // empty epochs (boundaries stay on the absolute grid).
            let resume = ctxs
                .iter()
                .filter(|c| c.state == CoreState::Ready)
                .map(|c| c.wake_at)
                .min()
                .unwrap_or(u64::MAX);
            if resume == u64::MAX {
                // Every core done, or parked with no wake in flight.
                break;
            }
            now = resume.max(epoch_end);
            epoch_end = now / epoch * epoch + epoch;
        }

        if cancelled {
            self.tainted = true;
        }
        let mut res = Self::result_of(&ctxs);
        res.cancelled = cancelled;
        Ok(res)
    }

    /// Attempts to issue one instruction on `ctx` at cycle `now`; updates
    /// `wake_at` to the next cycle the core can act. (Reference path used
    /// by [`CycleSim::run_naive`].)
    ///
    /// With `defer` present (multi-group topologies), accesses leaving
    /// the issuing core's domain are deferred to the epoch boundary
    /// instead of executing — see the module-level *epoch-deferred model*
    /// notes and [`defer_issue`].
    fn issue_one(
        &self,
        ctx: &mut CoreCtx<CoreMem>,
        icaches: &mut [ICache],
        banks: &mut DomainBanks,
        now: u64,
        defer: Option<&mut Defer>,
    ) -> Result<(), Trap> {
        if ctx.stats.instructions >= self.max_instructions {
            ctx.state = CoreState::Done;
            ctx.budget_hit = true;
            ctx.stats.done_at = now;
            return Ok(());
        }

        let pc = ctx.cpu.pc();
        let inst = self.arts.program().fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let core = ctx.cpu.hart_id();
        let tile = banks.local_tile(ctx.tile);

        // 1. Instruction fetch through the shared tile I$.
        if !icaches[tile].access(pc) {
            ctx.stats.stall_ins += self.icache_refill;
            ctx.wake_at = now + self.icache_refill;
            return Ok(());
        }

        // 2. RAW: wait for source operands.
        let mut ready_at = now;
        for src in inst.srcs() {
            ready_at = ready_at.max(ctx.reg_ready[src.index()]);
        }
        if ready_at > now {
            ctx.stats.stall_raw += ready_at - now;
            ctx.wake_at = ready_at;
            return Ok(());
        }

        // 3. Structural hazard: the iterative div/sqrt unit is not
        // pipelined; FP-class ops wait while it drains.
        let class = InstClass::of(&inst);
        let uses_fpu =
            matches!(class, InstClass::Fp | InstClass::FpDivSqrt | InstClass::Simd | InstClass::Dotp);
        if uses_fpu && ctx.fpu_busy_until > now {
            ctx.stats.stall_acc += ctx.fpu_busy_until - now;
            ctx.wake_at = ctx.fpu_busy_until;
            return Ok(());
        }

        // 4. Memory: arbitrate for the target bank.
        let mut result_latency = u64::from(self.latency().result_latency(class));
        if inst.is_mem() {
            // A full LSU queue back-pressures issue.
            let (slot, slot_free) =
                ctx.lsu_free.iter().copied().enumerate().min_by_key(|&(_, t)| t).expect("LSU has slots");
            if slot_free > now {
                ctx.stats.stall_lsu += slot_free - now;
                ctx.wake_at = slot_free;
                return Ok(());
            }
            let addr = effective_address(&ctx.cpu, &inst);
            let l1 = self.arts.topology().l1_slot(addr & !3);
            if let Some(df) = defer {
                let meta = UopMeta::of(&inst, self.latency());
                let remote_bank = match l1 {
                    Some((bank, _)) if self.arts.topology().domain_of_bank(bank) != df.domain => Some(bank),
                    _ => None,
                };
                // Everything outside L1 (L2, control region) is shared by
                // all groups: defer loads too, so a core's own deferred
                // store is visible to its later load (same boundary,
                // earlier (cycle, core) key) and cross-core order stays
                // deterministic.
                if remote_bank.is_some() || l1.is_none() {
                    let value_reg = match inst {
                        Inst::Store { rs2, .. } | Inst::ScW { rs2, .. } | Inst::Amo { rs2, .. } => {
                            rs2.index() as u8
                        }
                        _ => 0,
                    };
                    let base = ctx.cpu.reg(Reg::from_num(u32::from(meta.ea_base) & 31));
                    let (bank, depart, hop) = match remote_bank {
                        Some(bank) => {
                            let hop = self.arts.topology().request_latency(core, bank);
                            let depart = now.max(banks.port_free[tile]);
                            banks.port_free[tile] = depart + 1;
                            let busy: u64 = if matches!(class, InstClass::Amo) { 2 } else { 1 };
                            result_latency = (depart + u64::from(hop) + busy - now) + u64::from(hop);
                            (bank, depart, hop as u8)
                        }
                        // Shared L2/ctrl mutation: latency exact at issue.
                        None => {
                            result_latency = 16;
                            (u32::MAX, now, 0)
                        }
                    };
                    ctx.lsu_free[slot] = now + result_latency;
                    defer_issue(
                        ctx,
                        meta.mem,
                        meta.dst,
                        meta.post_inc,
                        value_reg,
                        base,
                        meta.ea_offset,
                        pc,
                        addr,
                        now,
                        result_latency,
                        slot,
                        bank,
                        depart,
                        hop,
                        df.outbox,
                    );
                    return Ok(());
                }
            }
            if let Some((bank, _)) = l1 {
                let hop = u64::from(self.arts.topology().request_latency(core, bank));
                // Remote requests serialize on the tile's shared outbound
                // port (one request per cycle per tile, paper §II).
                let depart = if hop > 0 {
                    let d = now.max(banks.port_free[tile]);
                    banks.port_free[tile] = d + 1;
                    d
                } else {
                    now
                };
                let arrive = depart + hop;
                let busy = if matches!(class, InstClass::Amo) { 2 } else { 1 };
                let b = banks.local_bank(bank);
                let grant = arrive.max(banks.bank_free[b]);
                banks.bank_free[b] = grant + busy;
                let contention = grant - (now + hop);
                ctx.stats.stall_lsu += contention;
                // Response returns after the bank access + the way back.
                result_latency = (grant + busy - now) + hop;
            } else {
                // L2/ctrl over AXI: fixed latency, no contention model.
                result_latency = 16;
            }
            ctx.lsu_free[slot] = now + result_latency;
        }

        // 5. Architectural execution.
        let outcome = ctx.cpu.execute(inst, &mut ctx.mem)?;
        ctx.stats.instructions += 1;
        ctx.cpu.set_mcycle(now);

        if let Some(rd) = inst.dst() {
            ctx.reg_ready[rd.index()] = now + result_latency;
            ctx.reg_wseq[rd.index()] += 1;
        }
        if let Some(base) = inst.post_inc_dst() {
            ctx.reg_ready[base.index()] = now + 1;
            ctx.reg_wseq[base.index()] += 1;
        }
        if uses_fpu && matches!(class, InstClass::FpDivSqrt) {
            ctx.fpu_busy_until = now + u64::from(self.latency().result_latency(class));
        }

        ctx.wake_at = now + 1;
        if inst.is_control_flow() && ctx.cpu.pc() != pc.wrapping_add(4) {
            ctx.wake_at = now + 1 + u64::from(self.latency().taken_branch_penalty);
            // Fetch bubbles are charged to stall-ins? No: the paper folds
            // branch penalties into the instruction stream; we keep them as
            // issue gaps (they appear in no stall class, matching Snitch's
            // minimal frontend).
        }

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                ctx.state = CoreState::Done;
                ctx.stats.done_at = now + 1;
            }
            Outcome::Wfi => {
                if self.mem().take_wake(core) {
                    // Wake already pending: fall through immediately.
                } else {
                    ctx.state = CoreState::Parked;
                    ctx.parked_at = now + 1;
                    ctx.wake_at = u64::MAX;
                }
            }
        }
        Ok(())
    }

    /// Hot-path issue used by the event-driven engines: identical
    /// semantics to [`CycleSim::issue_one`], running from the pre-lowered
    /// micro-op table (operands, metadata and a direct kernel pointer
    /// resolved once at load — no per-issue field extraction or nested
    /// matching), the tile-pair hop table and shift-based bank decoding.
    ///
    /// With `defer` present (the per-domain engines of the sharded
    /// scheduler), accesses leaving the issuing core's domain are
    /// deferred to the epoch boundary instead of executing.
    ///
    /// Returns `true` when a memory-class instruction *executed* (the
    /// only case in which a wake-all can have been published).
    #[inline]
    fn issue_fast(
        &self,
        ctx: &mut CoreCtx<TurboMem>,
        tables: &RunTables,
        icaches: &mut [FastICache],
        banks: &mut DomainBanks,
        now: u64,
        defer: Option<&mut Defer>,
    ) -> Result<bool, Trap> {
        if ctx.stats.instructions >= self.max_instructions {
            ctx.state = CoreState::Done;
            ctx.budget_hit = true;
            ctx.stats.done_at = now;
            return Ok(false);
        }

        let pc = ctx.cpu.pc();
        let lu = tables.uops.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let meta = &lu.meta;
        let tile = banks.local_tile(ctx.tile);

        // 1. Instruction fetch through the shared tile I$.
        if !icaches[tile].access(pc) {
            ctx.stats.stall_ins += self.icache_refill;
            ctx.wake_at = now + self.icache_refill;
            return Ok(false);
        }

        // 2. RAW: wait for source operands. Unused `srcs` entries are
        // pre-padded with `x0` (always ready at 0), so the three loads are
        // branchless.
        let ready_at = now
            .max(ctx.reg_ready[(meta.srcs[0] & 31) as usize])
            .max(ctx.reg_ready[(meta.srcs[1] & 31) as usize])
            .max(ctx.reg_ready[(meta.srcs[2] & 31) as usize]);
        if ready_at > now {
            ctx.stats.stall_raw += ready_at - now;
            ctx.wake_at = ready_at;
            return Ok(false);
        }

        // 3. Structural hazard: non-pipelined div/sqrt unit.
        if meta.uses_fpu && ctx.fpu_busy_until > now {
            ctx.stats.stall_acc += ctx.fpu_busy_until - now;
            ctx.wake_at = ctx.fpu_busy_until;
            return Ok(false);
        }

        // 4. Memory: arbitrate for the target bank.
        let mut result_latency = meta.result_lat;
        if meta.is_mem {
            // First-minimum slot, identical tie-break to `min_by_key`,
            // evaluated as a branchless reduction tree. The tree is
            // written out for the current queue depth; widen it (or
            // revert to the scan in `issue_one`) if the depth changes.
            const { assert!(LSU_DEPTH == 4, "reduction tree below is written for 4 LSU slots") };
            let q = &ctx.lsu_free;
            let (a, b) = if q[1] < q[0] { (1usize, q[1]) } else { (0usize, q[0]) };
            let (c, d) = if q[3] < q[2] { (3usize, q[3]) } else { (2usize, q[2]) };
            let (slot, slot_free) = if d < b { (c, d) } else { (a, b) };
            if slot_free > now {
                ctx.stats.stall_lsu += slot_free - now;
                ctx.wake_at = slot_free;
                return Ok(false);
            }
            let base = ctx.cpu.reg(Reg::from_num(u32::from(meta.ea_base) & 31));
            let addr = if meta.ea_no_offset { base } else { base.wrapping_add(meta.ea_offset as u32) };
            let l1 = tables.l1_slot(addr & !3);
            if let Some(df) = defer {
                let remote_bank = match l1 {
                    Some((bank, _)) if df.topo.domain_of_bank(bank) != df.domain => Some(bank),
                    _ => None,
                };
                // L2/ctrl accesses (loads included) are shared by all
                // groups and defer wholesale — see `issue_one`.
                if remote_bank.is_some() || l1.is_none() {
                    let (bank, depart, hop) = match remote_bank {
                        Some(bank) => {
                            let hop = tables.hop(ctx.tile, tables.tile_of_bank(bank));
                            let depart = now.max(banks.port_free[tile]);
                            banks.port_free[tile] = depart + 1;
                            let busy: u64 = if meta.is_amo { 2 } else { 1 };
                            result_latency = (depart + hop + busy - now) + hop;
                            (bank, depart, hop as u8)
                        }
                        // Shared L2/ctrl mutation: latency exact at issue.
                        None => {
                            result_latency = 16;
                            (u32::MAX, now, 0)
                        }
                    };
                    ctx.lsu_free[slot] = now + result_latency;
                    defer_issue(
                        ctx,
                        meta.mem,
                        meta.dst,
                        meta.post_inc,
                        lu.uop.rs2,
                        base,
                        meta.ea_offset,
                        pc,
                        addr,
                        now,
                        result_latency,
                        slot,
                        bank,
                        depart,
                        hop,
                        df.outbox,
                    );
                    return Ok(true);
                }
            }
            if let Some((bank, off)) = l1 {
                // Hand the kernel the decode we just did (one-entry memo).
                ctx.mem.prime(addr & !3, bank, off);
                let hop = tables.hop(ctx.tile, tables.tile_of_bank(bank));
                let depart = if hop > 0 {
                    let d = now.max(banks.port_free[tile]);
                    banks.port_free[tile] = d + 1;
                    d
                } else {
                    now
                };
                let arrive = depart + hop;
                let busy = if meta.is_amo { 2 } else { 1 };
                let b = banks.local_bank(bank);
                let grant = arrive.max(banks.bank_free[b]);
                banks.bank_free[b] = grant + busy;
                ctx.stats.stall_lsu += grant - (now + hop);
                result_latency = (grant + busy - now) + hop;
            } else {
                result_latency = 16;
            }
            ctx.lsu_free[slot] = now + result_latency;
        }

        // 5. Architectural execution through the lowered kernel.
        let outcome = (lu.exec)(&mut ctx.cpu, lu.uop, &mut ctx.mem)?;
        ctx.stats.instructions += 1;
        ctx.cpu.set_mcycle(now);

        if meta.dst != NO_REG {
            ctx.reg_ready[meta.dst as usize] = now + result_latency;
        }
        if meta.post_inc != NO_REG {
            ctx.reg_ready[meta.post_inc as usize] = now + 1;
        }
        ctx.note_reg_writes(meta.dst, meta.post_inc);
        if meta.is_div_sqrt {
            ctx.fpu_busy_until = now + meta.result_lat;
        }
        // Scoreboard rewritten: the slim path must rescan before eliding.
        ctx.hazard_until = u64::MAX;

        ctx.wake_at = now + 1;
        if meta.is_control_flow && ctx.cpu.pc() != pc.wrapping_add(4) {
            ctx.wake_at = now + 1 + u64::from(self.latency().taken_branch_penalty);
        }

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                ctx.state = CoreState::Done;
                ctx.stats.done_at = now + 1;
            }
            Outcome::Wfi => {
                if self.mem().take_wake(ctx.cpu.hart_id()) {
                    // Wake already pending: fall through immediately.
                } else {
                    ctx.state = CoreState::Parked;
                    ctx.parked_at = now + 1;
                    ctx.wake_at = u64::MAX;
                }
            }
        }
        Ok(meta.is_mem)
    }

    /// The quiescent-stretch issue path, used inside *extended* windows
    /// (the coordinator has already proven no possibly-remote uop can
    /// issue there). Provably-local single-cycle uops
    /// ([`UopMeta::elide_ok`]) skip the RAW/FPU/LSU hazard checks and the
    /// scoreboard writes of [`CycleSim::issue_fast`] — each of which
    /// provably contributes `+0` to every stall counter while
    /// [`CoreCtx::hazard_until`] has passed — and reconstruct the exact
    /// same statistics and architectural state. Everything else (memory,
    /// FPU, multi-cycle results, a live hazard bound) delegates to the
    /// full path, including local-L1 traffic inside sole-active windows.
    fn issue_quiescent(
        &self,
        ctx: &mut CoreCtx<TurboMem>,
        tables: &RunTables,
        icaches: &mut [FastICache],
        banks: &mut DomainBanks,
        now: u64,
        defer: Option<&mut Defer>,
    ) -> Result<bool, Trap> {
        if ctx.stats.instructions >= self.max_instructions {
            ctx.state = CoreState::Done;
            ctx.budget_hit = true;
            ctx.stats.done_at = now;
            return Ok(false);
        }

        let pc = ctx.cpu.pc();
        let lu = tables.uops.fetch(pc).ok_or(Trap::IllegalFetch { pc })?;
        let meta = &lu.meta;
        if !meta.elide_ok {
            return self.issue_fast(ctx, tables, icaches, banks, now, defer);
        }
        if ctx.hazard_until == u64::MAX {
            // Lazy rescan after the full path or the boundary replay
            // touched the scoreboard: cache an upper bound over every
            // hazard the slim path skips. An in-flight deferred request
            // keeps its `lsu_free` lower bound beyond the (trimmed)
            // window end, so elision stays off until the replay corrects
            // it — the bound is conservative exactly where it must be.
            let mut h = ctx.fpu_busy_until;
            for &r in &ctx.reg_ready {
                h = h.max(r);
            }
            for &l in &ctx.lsu_free {
                h = h.max(l);
            }
            ctx.hazard_until = h;
        }
        if ctx.hazard_until > now {
            return self.issue_fast(ctx, tables, icaches, banks, now, defer);
        }

        // Fetch through the shared tile I$ — refills are real stalls and
        // are counted exactly as on the full path.
        let tile = banks.local_tile(ctx.tile);
        if !icaches[tile].access(pc) {
            ctx.stats.stall_ins += self.icache_refill;
            ctx.wake_at = now + self.icache_refill;
            return Ok(false);
        }

        // All hazard checks elided (`+0` stalls by the bound above):
        // execute, retire, and keep the WAW counters exact — the
        // boundary replay's write-back guard depends on them. The
        // skipped `reg_ready` writes are sound: a `result_lat ≤ 1` value
        // is ready by `now + 1`, and no later issue can observe a stale
        // entry as anything but "ready in the past".
        let outcome = (lu.exec)(&mut ctx.cpu, lu.uop, &mut ctx.mem)?;
        ctx.stats.instructions += 1;
        ctx.cpu.set_mcycle(now);
        ctx.note_reg_writes(meta.dst, meta.post_inc);
        ctx.hazard_until = now + 1;

        ctx.wake_at = now + 1;
        if meta.is_control_flow && ctx.cpu.pc() != pc.wrapping_add(4) {
            ctx.wake_at = now + 1 + u64::from(self.latency().taken_branch_penalty);
        }

        match outcome {
            Outcome::Continue => {}
            Outcome::Exit { .. } => {
                ctx.state = CoreState::Done;
                ctx.stats.done_at = now + 1;
            }
            Outcome::Wfi => {
                if self.mem().take_wake(ctx.cpu.hart_id()) {
                    // Wake already pending: fall through immediately.
                } else {
                    ctx.state = CoreState::Parked;
                    ctx.parked_at = now + 1;
                    ctx.wake_at = u64::MAX;
                }
            }
        }
        Ok(false)
    }
}

impl Drop for CycleSim {
    /// Pooled jobs return their (possibly dirty — deadlocks included)
    /// cluster memory for recycling; the pool resets it on reuse. The
    /// arena is moved out by value, so the parked handle is unique the
    /// moment it lands in the pool — a concurrent acquire on another
    /// lane can recycle it immediately.
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            if let Some(mem) = self.mem.take() {
                // A cancelled run, or a drop during a panic unwind (the
                // job closure died with the simulator live), quarantines
                // the arena: its contents were abandoned mid-write and
                // are not trusted even for a dirty-page reset.
                if self.tainted || std::thread::panicking() {
                    pool.quarantine(mem);
                } else {
                    let _ = pool.release(mem);
                }
            }
        }
    }
}

fn effective_address(cpu: &Cpu, inst: &Inst) -> u32 {
    match *inst {
        Inst::Load { rs1, offset, post_inc, .. } => {
            let base = cpu.reg(rs1);
            if post_inc {
                base
            } else {
                base.wrapping_add(offset as u32)
            }
        }
        Inst::Store { rs1, offset, post_inc, .. } => {
            let base = cpu.reg(rs1);
            if post_inc {
                base
            } else {
                base.wrapping_add(offset as u32)
            }
        }
        Inst::LrW { rs1, .. } | Inst::ScW { rs1, .. } | Inst::Amo { rs1, .. } => cpu.reg(rs1),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    use super::*;

    fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
        let mut a = Assembler::new(Topology::L2_BASE);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        image
    }

    #[test]
    fn single_core_completes() {
        let image = image_of(|a| {
            a.li(Reg::T0, 5);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(1).unwrap();
        assert_eq!(result.per_core[0].instructions, 12);
        assert!(result.cycles > 12, "cycles include stalls and penalties");
        assert!(!result.deadlocked);
        assert!(result.parked.is_empty());
    }

    #[test]
    fn bank_conflicts_cost_cycles() {
        // All 8 cores hammer the same interleaved word -> bank conflicts.
        let conflict = image_of(|a| {
            a.li(Reg::A1, 0x0);
            for _ in 0..16 {
                a.lw(Reg::A0, 0, Reg::A1);
            }
        });
        // Each core reads its own word in its own bank (stride 4 = next bank).
        let spread = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::A1, Reg::T0, 2);
            for _ in 0..16 {
                a.lw(Reg::A0, 0, Reg::A1);
            }
        });
        let topo = Topology::scaled(8);
        let mut sim_c = CycleSim::new(topo, &conflict).unwrap();
        let mut sim_s = CycleSim::new(topo, &spread).unwrap();
        let rc = sim_c.run(8).unwrap();
        let rs = sim_s.run(8).unwrap();
        let lsu_c = rc.aggregate().stall_lsu;
        let lsu_s = rs.aggregate().stall_lsu;
        assert!(lsu_c > lsu_s, "conflicting accesses must stall more ({lsu_c} vs {lsu_s})");
        assert!(rc.cycles > rs.cycles);
    }

    #[test]
    fn icache_misses_are_counted() {
        let image = image_of(|a| {
            for _ in 0..64 {
                a.nop();
            }
        });
        let mut sim = CycleSim::new(Topology::scaled(8), &image).unwrap();
        let result = sim.run(1).unwrap();
        // 65 instructions over 32-byte lines: ~9 lines.
        let ins = result.per_core[0].stall_ins;
        assert!(ins >= 8 * sim.icache_refill, "stall_ins = {ins}");
    }

    #[test]
    fn results_match_fast_mode() {
        // Same guest on both backends must produce identical memory.
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::T1, Reg::T0, 2);
            a.addi(Reg::T2, Reg::T0, 100);
            a.sw(Reg::T2, 0x400, Reg::T1);
        });
        let topo = Topology::scaled(8);
        let mut cyc = CycleSim::new(topo, &image).unwrap();
        cyc.run(8).unwrap();
        let mut fast = crate::FastSim::new(topo, &image).unwrap();
        fast.run_all(2).unwrap();
        for core in 0..8u32 {
            let addr = 0x400 + core * 4;
            assert_eq!(cyc.memory().read_u32(addr), fast.memory().read_u32(addr));
            assert_eq!(cyc.memory().read_u32(addr), 100 + core);
        }
    }

    fn barrier_image(cores: u32) -> Image {
        // amoadd-counting barrier: the last arrival wakes everyone.
        image_of(|a| {
            a.li(Reg::A1, 0x10); // barrier counter in L1
            a.li(Reg::T1, 1);
            a.amoadd_w(Reg::T0, Reg::T1, Reg::A1);
            a.li(Reg::T2, (cores - 1) as i32);
            let last = a.new_label();
            a.beq(Reg::T0, Reg::T2, last);
            a.wfi();
            let done = a.new_label();
            a.j(done);
            a.bind(last);
            a.li(Reg::T3, Topology::CTRL_WAKE_ALL as i32);
            a.sw(Reg::T1, 0, Reg::T3);
            a.bind(done);
        })
    }

    #[test]
    fn wfi_barrier_wakes_all() {
        let mut sim = CycleSim::new(Topology::scaled(8), &barrier_image(8)).unwrap();
        let result = sim.run(8).unwrap();
        assert_eq!(sim.memory().read_u32(0x10), 8, "all cores arrived");
        let wfi: u64 = result.per_core.iter().map(|s| s.stall_wfi).sum();
        assert!(wfi > 0, "early arrivals idled in wfi");
        assert!(result.per_core.iter().all(|s| s.done_at > 0), "all cores finished");
        assert!(!result.deadlocked);
    }

    #[test]
    fn event_and_naive_schedulers_agree_on_barrier_program() {
        let topo = Topology::scaled(8);
        let mut a = CycleSim::new(topo, &barrier_image(8)).unwrap();
        let mut b = CycleSim::new(topo, &barrier_image(8)).unwrap();
        let event = a.run(8).unwrap();
        let naive = b.run_naive(8).unwrap();
        assert_eq!(event.per_core, naive.per_core, "bit-identical per-core stats");
        assert_eq!(event.cycles, naive.cycles);
        assert_eq!(a.memory().read_u32(0x10), b.memory().read_u32(0x10));
    }

    #[test]
    fn zero_refill_latency_engines_agree() {
        // Degenerate model: `icache_refill == 0` leaves `wake_at == now`
        // on a miss. The event engine must retry next cycle exactly like
        // the naive scan instead of mis-scheduling the core a full wheel
        // revolution into the future.
        let image = image_of(|a| {
            for _ in 0..256 {
                a.nop();
            }
        });
        let topo = Topology::scaled(8);
        let mut event = CycleSim::new(topo, &image).unwrap();
        let mut naive = CycleSim::new(topo, &image).unwrap();
        event.icache_refill = 0;
        naive.icache_refill = 0;
        let re = event.run(8).unwrap();
        let rn = naive.run_naive(8).unwrap();
        assert_eq!(re.per_core, rn.per_core);
        assert_eq!(re.cycles, rn.cycles);
    }

    #[test]
    fn deadlock_is_surfaced() {
        // Everyone parks; nobody ever wakes them.
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            let skip = a.new_label();
            a.bnez(Reg::T0, skip);
            a.wfi(); // hart 0 sleeps forever
            a.bind(skip);
        });
        let topo = Topology::scaled(8);
        for naive in [false, true] {
            let mut sim = CycleSim::new(topo, &image).unwrap();
            let result = if naive { sim.run_naive(8).unwrap() } else { sim.run(8).unwrap() };
            assert!(result.deadlocked, "naive={naive}: wfi with no waker must deadlock");
            assert_eq!(result.parked, vec![0], "naive={naive}");
            // The other seven harts finished cleanly.
            assert_eq!(result.per_core.iter().filter(|s| s.done_at > 0).count(), 7);
        }
    }

    #[test]
    fn per_group_aggregation_partitions_the_cluster() {
        let topo = Topology::scaled(8);
        let mut sim = CycleSim::new(topo, &barrier_image(8)).unwrap();
        let result = sim.run(8).unwrap();
        let groups = result.aggregate_groups(&topo);
        assert_eq!(groups.len(), topo.num_domains() as usize);
        let mut sum = CycleStats::default();
        for g in &groups {
            sum.accumulate(g);
        }
        assert_eq!(sum, result.aggregate(), "group partition must cover every core exactly once");
    }
}
