//! Static local-only reachability over the decoded program.
//!
//! The adaptive epoch coordinator may only extend an epoch while no core
//! can issue a *possibly-remote* uop (any data-memory access — the static
//! pass cannot know whether a register-based address lands in the local
//! group, a remote group, the L2, or the control region, so every
//! `is_mem` uop counts). This pass computes, for every PC, a lower bound
//! on the number of instructions a core starting at that PC must issue
//! before its first possibly-remote issue. Because every issue consumes
//! at least one cycle, a core that becomes runnable at cycle `w` with
//! `dist(pc) = d` cannot issue remote traffic before cycle `w + d` —
//! the bound the coordinator turns into a safe extension horizon.
//!
//! The distance is the shortest path to any memory instruction over the
//! static control-flow graph:
//!
//! - a memory instruction has distance 0;
//! - `jal` follows its target, `branch` both arms, everything
//!   straight-line falls through to `pc + 4`;
//! - `jalr` has dynamic successors, so it conservatively assumes the
//!   very next instruction could be remote (distance 1);
//! - edges leaving the decoded text (fallthrough off the end, jump
//!   targets outside) are treated like `jalr` targets: unknown, so the
//!   instruction gets distance 1;
//! - `wfi`, `ecall` and `ebreak` terminate the stream (the core parks,
//!   exits, or traps before issuing anything further) — a PC that can
//!   only reach terminators keeps the infinite distance
//!   [`ReachMap::LOCAL_INF`].
//!
//! Distances are exact shortest paths (multi-source BFS on the reversed
//! CFG), capped at `u16::MAX - 1`; the cap only matters for programs
//! whose nearest memory access is further than any extension the
//! coordinator would grant anyway.

use terasim_iss::Program;
use terasim_riscv::Inst;

/// Sentinel distance: no possibly-remote uop is reachable from this PC.
const INF: u16 = u16::MAX;

/// Per-PC lower bounds on instructions-until-possibly-remote-issue.
///
/// Built once per [`super::super::SimArtifacts`](crate::SimArtifacts)
/// and shared by every domain engine (and, through the artifact cache,
/// every daemon job on the same scenario).
#[derive(Debug)]
pub struct ReachMap {
    text_base: u32,
    dist: Vec<u16>,
}

impl ReachMap {
    /// Distance reported for PCs that can never reach a memory access
    /// (or that leave the decoded text — fetching there traps, which
    /// also never produces remote traffic).
    pub const LOCAL_INF: u64 = u64::MAX;

    /// Runs the static pass over the decoded program.
    pub fn build(program: &Program) -> Self {
        let n = program.len();
        let base = program.text_base();
        let inst_at = |idx: usize| program.fetch(base.wrapping_add((idx * 4) as u32));
        // Forward successor sets as indices; `None` marks an unknown
        // successor (jalr target or an edge leaving the text).
        let index_of = |pc: u32| -> Option<usize> {
            let idx = (pc.wrapping_sub(base) / 4) as usize;
            (pc.is_multiple_of(4) && idx < n).then_some(idx)
        };

        let mut dist = vec![INF; n];
        // Seed the BFS frontier with distance-0 nodes (memory accesses)
        // and distance-1 nodes (unknown successors).
        let mut frontier: Vec<usize> = Vec::new();
        let mut next: Vec<usize> = Vec::new();
        for (idx, d) in dist.iter_mut().enumerate() {
            let Some(inst) = inst_at(idx) else { continue };
            if inst.is_mem() {
                *d = 0;
                frontier.push(idx);
            }
        }
        // Reverse adjacency: predecessors of every node, derived from the
        // forward successor relation in one pass.
        let mut pred_heads = vec![usize::MAX; n];
        let mut pred_links: Vec<(usize, usize)> = Vec::new(); // (pred, next link)
        let link = |preds: &mut Vec<(usize, usize)>, heads: &mut Vec<usize>, from: usize, to: usize| {
            preds.push((from, heads[to]));
            heads[to] = preds.len() - 1;
        };
        for (idx, d) in dist.iter_mut().enumerate() {
            let Some(inst) = inst_at(idx) else { continue };
            let pc = base.wrapping_add((idx * 4) as u32);
            let mut unknown = false;
            let mut add = |target: Option<usize>, unknown: &mut bool| match target {
                Some(t) => link(&mut pred_links, &mut pred_heads, idx, t),
                None => *unknown = true,
            };
            match inst {
                Inst::Wfi | Inst::Ecall | Inst::Ebreak => {}
                Inst::Jal { offset, .. } => {
                    add(index_of(pc.wrapping_add(offset as u32)), &mut unknown);
                }
                Inst::Jalr { .. } => unknown = true,
                Inst::Branch { offset, .. } => {
                    add(index_of(pc.wrapping_add(offset as u32)), &mut unknown);
                    add(index_of(pc.wrapping_add(4)), &mut unknown);
                }
                _ => add(index_of(pc.wrapping_add(4)), &mut unknown),
            }
            if unknown && *d > 1 {
                *d = 1;
                next.push(idx);
            }
        }

        // Multi-source BFS on the reversed CFG, one distance band at a
        // time: `frontier` holds band `d`, `next` band `d + 1`.
        let mut d = 0u16;
        while !frontier.is_empty() || !next.is_empty() {
            for &node in &frontier {
                if dist[node] != d {
                    continue; // superseded by a tighter unknown-successor seed
                }
                let nd = d.saturating_add(1).min(INF - 1);
                let mut cursor = pred_heads[node];
                while cursor != usize::MAX {
                    let (pred, next_link) = pred_links[cursor];
                    cursor = next_link;
                    if dist[pred] > nd {
                        dist[pred] = nd;
                        next.push(pred);
                    }
                }
            }
            frontier = std::mem::take(&mut next);
            d += 1;
        }

        Self { text_base: base, dist }
    }

    /// Lower bound on the number of instructions a core at `pc` issues
    /// before its first possibly-remote uop. [`Self::LOCAL_INF`] when no
    /// memory access is statically reachable.
    #[inline]
    pub fn dist(&self, pc: u32) -> u64 {
        if !pc.is_multiple_of(4) {
            return Self::LOCAL_INF; // fetch traps before anything issues
        }
        let idx = (pc.wrapping_sub(self.text_base) / 4) as usize;
        match self.dist.get(idx) {
            Some(&INF) | None => Self::LOCAL_INF,
            Some(&d) => u64::from(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    fn program_of(build: impl FnOnce(&mut Assembler)) -> Program {
        let mut a = Assembler::new(0x8000_0000);
        build(&mut a);
        let mut image = Image::new(0x8000_0000);
        image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
        Program::translate(&image).unwrap()
    }

    #[test]
    fn straight_line_distances_count_down_to_the_load() {
        let p = program_of(|a| {
            a.li(Reg::A0, 1); // may take 2 insts (li can expand); measure below
            a.lw(Reg::A1, 0, Reg::A0);
            a.ecall();
        });
        let base = p.text_base();
        // Find the load and check each earlier pc counts down to it.
        let load_idx = (0..p.len())
            .find(|&i| p.fetch(base + (i * 4) as u32).unwrap().is_mem())
            .expect("guest contains a load");
        let map = ReachMap::build(&p);
        for i in 0..load_idx {
            assert_eq!(map.dist(base + (i * 4) as u32), (load_idx - i) as u64);
        }
        assert_eq!(map.dist(base + (load_idx * 4) as u32), 0);
    }

    #[test]
    fn pure_compute_loop_is_local_forever() {
        let p = program_of(|a| {
            a.li(Reg::A0, 0);
            a.li(Reg::T0, 10);
            let top = a.new_label();
            a.bind(top);
            a.add(Reg::A0, Reg::A0, Reg::T0);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.ecall();
        });
        let map = ReachMap::build(&p);
        for i in 0..p.len() {
            assert_eq!(map.dist(p.text_base() + (i * 4) as u32), ReachMap::LOCAL_INF);
        }
    }

    #[test]
    fn loop_with_a_store_bounds_every_iteration_point() {
        let p = program_of(|a| {
            a.li(Reg::A0, 0x1000);
            let top = a.new_label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, 1);
            a.sw(Reg::T0, 0, Reg::A0);
            a.bnez(Reg::T0, top);
            a.ecall();
        });
        let map = ReachMap::build(&p);
        let base = p.text_base();
        for i in 0..p.len() {
            let inst = p.fetch(base + (i * 4) as u32).unwrap();
            let d = map.dist(base + (i * 4) as u32);
            if inst.is_mem() {
                assert_eq!(d, 0);
            } else if !matches!(inst, Inst::Ecall) {
                assert!((1..8).contains(&d), "pc {i} distance {d}");
            }
        }
    }

    #[test]
    fn jalr_assumes_the_worst_about_its_target() {
        let p = program_of(|a| {
            a.li(Reg::T0, 0x7fff_0000);
            a.inst(Inst::Jalr { rd: Reg::Ra, rs1: Reg::T0, offset: 0 });
            a.ecall();
        });
        let map = ReachMap::build(&p);
        let base = p.text_base();
        let jalr_idx = (0..p.len())
            .find(|&i| matches!(p.fetch(base + (i * 4) as u32), Some(Inst::Jalr { .. })))
            .unwrap();
        assert_eq!(map.dist(base + (jalr_idx * 4) as u32), 1);
    }

    #[test]
    fn misaligned_and_out_of_text_pcs_are_local() {
        let p = program_of(|a| {
            a.ecall();
        });
        let map = ReachMap::build(&p);
        assert_eq!(map.dist(p.text_base() + 2), ReachMap::LOCAL_INF);
        assert_eq!(map.dist(p.text_base() + (p.len() * 4) as u32), ReachMap::LOCAL_INF);
        assert_eq!(map.dist(0), ReachMap::LOCAL_INF);
    }
}
