//! A recycling pool of per-job cluster memories.
//!
//! After the artifact/job split, the dominant per-job fixed cost of batch
//! serving is the private [`ClusterMem`]: a fresh 20 MiB arena (16 MiB L2
//! plus the L1 banks) costs an mmap/munmap round trip of ~1–2 ms per job
//! on a typical host — which swamps small fast-mode jobs entirely. A
//! [`MemPool`] removes that cost by handing arenas back out instead of
//! re-mapping: returning a job's memory parks it on a free list, and the
//! next [`acquire`](MemPool::acquire) *resets* it — re-zeroing **only the
//! dirty footprint** tracked at write time (see [`ClusterMem`]'s 4 KiB
//! dirty pages) and re-applying the scenario's initial image — instead of
//! allocating.
//!
//! A reset arena is indistinguishable from a fresh one, so pooled runs
//! are bit-identical to fresh-memory runs; the workspace's `pool`
//! integration tests pin this across backends, worker counts and
//! deadlocked (arbitrarily dirty) jobs.
//!
//! The pool is tied to one [`SimArtifacts`] set: every arena it issues
//! has that scenario's topology and image. Returning a memory of any
//! other topology is rejected ([`release`](MemPool::release) returns
//! `false`), and a returned handle that is still aliased by a live view
//! is quietly discarded at acquire time rather than recycled — recycling
//! an arena another job can still see would alias their memory.
//!
//! # Examples
//!
//! ```
//! use terasim_terapool::{FastSim, MemPool, SimArtifacts, Topology};
//! use terasim_riscv::{Assembler, Image, Reg, Segment};
//!
//! let mut a = Assembler::new(Topology::L2_BASE);
//! a.li(Reg::T0, 42);
//! a.sw(Reg::T0, 0x40, Reg::Zero);
//! a.ecall();
//! let mut image = Image::new(Topology::L2_BASE);
//! image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish()?));
//!
//! let arts = SimArtifacts::build(Topology::scaled(8), &image)?;
//! let pool = MemPool::new(arts);
//! for _ in 0..3 {
//!     // Drops return the arena; after the first job the pool recycles.
//!     let mut sim = FastSim::from_pool(&pool);
//!     sim.run_cores(0..1, 1)?;
//!     assert_eq!(sim.memory().read_u32(0x40), 42);
//! }
//! assert_eq!(pool.stats().recycled, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::artifacts::SimArtifacts;
use crate::mem::ClusterMem;

/// Activity counters of a [`MemPool`] (observability and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions that allocated a fresh arena (free list empty).
    pub fresh: u64,
    /// Acquisitions served by resetting a recycled arena.
    pub recycled: u64,
    /// Returned arenas discarded at acquire because a live view still
    /// aliased them (the job leaked a [`ClusterMem`] clone).
    pub discarded: u64,
    /// Returns rejected outright (topology mismatch with the pool's
    /// artifact set).
    pub rejected: u64,
    /// Arenas surrendered by faulted jobs (panic or cancellation) via
    /// [`MemPool::quarantine`]: dropped outright, never recycled.
    pub quarantined: u64,
    /// Parked arenas dropped by [`MemPool::trim`] — the serving tier's
    /// eviction hook for pools whose scenario went cold.
    pub trimmed: u64,
}

impl PoolStats {
    /// Accumulates `other` into `self`, field by field. Long-lived
    /// serving tiers use this to carry a retiring pool's accounting —
    /// quarantines included — into an aggregate that outlives the pool
    /// itself (e.g. across artifact-cache evictions).
    pub fn merge(&mut self, other: &PoolStats) {
        self.fresh += other.fresh;
        self.recycled += other.recycled;
        self.discarded += other.discarded;
        self.rejected += other.rejected;
        self.quarantined += other.quarantined;
        self.trimmed += other.trimmed;
    }
}

/// A recycling pool of per-job [`ClusterMem`] arenas over one shared
/// [`SimArtifacts`] set. See the module docs.
#[derive(Debug)]
pub struct MemPool {
    arts: Arc<SimArtifacts>,
    /// LIFO free list: the most recently returned arena is the hottest
    /// (page-table and cache residency) and is handed out first.
    free: Mutex<Vec<ClusterMem>>,
    fresh: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    rejected: AtomicU64,
    quarantined: AtomicU64,
    trimmed: AtomicU64,
}

/// Locks the free list, recovering from poisoning. The list holds plain
/// owned arenas — no invariant a mid-panic writer could have broken — and
/// `release`/`quarantine` run from `Drop` during unwinding, where a
/// poison panic would be a panic-in-panic abort.
fn free_list(free: &Mutex<Vec<ClusterMem>>) -> std::sync::MutexGuard<'_, Vec<ClusterMem>> {
    free.lock().unwrap_or_else(|e| e.into_inner())
}

impl MemPool {
    /// Creates an empty pool issuing memories for `arts`' scenario.
    ///
    /// Returned in an [`Arc`] because that is how every consumer uses it:
    /// the pool is shared between the batch driver and the jobs whose
    /// simulators return their memory on drop.
    pub fn new(arts: Arc<SimArtifacts>) -> Arc<Self> {
        Arc::new(Self {
            arts,
            free: Mutex::new(Vec::new()),
            fresh: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            trimmed: AtomicU64::new(0),
        })
    }

    /// The artifact set this pool issues memories for.
    pub fn artifacts(&self) -> &Arc<SimArtifacts> {
        &self.arts
    }

    /// Hands out a cluster memory in the exact fresh state (all-zero plus
    /// the scenario image): a recycled arena reset via its dirty page set
    /// when one is available, a new allocation otherwise. Returned
    /// handles that are still aliased by a live view are discarded, never
    /// recycled.
    pub fn acquire(&self) -> ClusterMem {
        loop {
            let candidate = free_list(&self.free).pop();
            match candidate {
                Some(mem) if mem.is_unique() => {
                    self.arts.reset_memory(&mem);
                    self.recycled.fetch_add(1, Ordering::Relaxed);
                    return mem;
                }
                Some(_) => {
                    // Still aliased: dropping our handle leaves the arena
                    // to whoever kept a view; it never re-enters the pool.
                    self.discarded.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.fresh.fetch_add(1, Ordering::Relaxed);
                    return self.arts.fresh_memory();
                }
            }
        }
    }

    /// Returns an arena for recycling. Accepts only memories of the
    /// pool's own topology (any [`acquire`](Self::acquire)d handle
    /// qualifies); a mismatched topology is rejected — the arena has the
    /// wrong geometry for this scenario — and `false` is returned, with
    /// the memory simply dropped.
    ///
    /// The arena may be arbitrarily dirty (a deadlocked or trapped job's
    /// memory is fine): the reset happens at the next acquire.
    pub fn release(&self, mem: ClusterMem) -> bool {
        if mem.topology() != self.arts.topology() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        free_list(&self.free).push(mem);
        true
    }

    /// Surrenders an arena from a faulted job (panic mid-run, cooperative
    /// cancellation): the memory is dropped on the spot and **never**
    /// re-enters the free list. A faulted job's arena may have been
    /// abandoned mid-write, so even a dirty-page reset is not trusted —
    /// the next acquire allocates fresh instead.
    pub fn quarantine(&self, mem: ClusterMem) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        drop(mem);
    }

    /// Pre-allocates `n` fresh arenas onto the free list, so the first
    /// `n` jobs of a cold scenario pay a dirty-page reset (~free on a
    /// clean arena) instead of a 20 MiB allocation. A long-lived serving
    /// tier warms the pool of a newly admitted scenario off the request
    /// path; batch drivers that already overlap allocation with work
    /// don't need it.
    pub fn warm(&self, n: usize) {
        for _ in 0..n {
            self.fresh.fetch_add(1, Ordering::Relaxed);
            let mem = self.arts.fresh_memory();
            free_list(&self.free).push(mem);
        }
    }

    /// Drops parked arenas until at most `keep` remain, returning how
    /// many were dropped (recorded as [`PoolStats::trimmed`]). This is
    /// the eviction hook for cross-request serving: a pool whose
    /// scenario has gone cold gives its memory back to the host without
    /// touching arenas currently out with jobs — those still return (or
    /// quarantine) through the normal drop path.
    pub fn trim(&self, keep: usize) -> usize {
        let dropped: Vec<ClusterMem> = {
            let mut free = free_list(&self.free);
            let excess = free.len().saturating_sub(keep);
            // The free list is LIFO-hot at the tail: trim from the front
            // (the coldest arenas) so the hottest survivors keep serving.
            free.drain(..excess).collect()
        };
        self.trimmed.fetch_add(dropped.len() as u64, Ordering::Relaxed);
        dropped.len()
    }

    /// Arenas currently parked on the free list.
    pub fn parked(&self) -> usize {
        free_list(&self.free).len()
    }

    /// Snapshot of the pool's activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.fresh.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            trimmed: self.trimmed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use terasim_riscv::{Assembler, Image, Reg, Segment};

    fn artifacts(cores: u32) -> Arc<SimArtifacts> {
        let mut a = Assembler::new(Topology::L2_BASE);
        a.li(Reg::T0, 7);
        a.sw(Reg::T0, 0x20, Reg::Zero);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        SimArtifacts::build(Topology::scaled(cores), &image).unwrap()
    }

    #[test]
    fn acquire_recycles_and_resets() {
        let arts = artifacts(8);
        let pool = MemPool::new(Arc::clone(&arts));
        let mem = pool.acquire();
        mem.write_u32(0x100, 0xdead_beef);
        assert!(pool.release(mem));
        assert_eq!(pool.parked(), 1);
        let again = pool.acquire();
        assert_eq!(again.read_u32(0x100), 0, "recycled arena must be reset");
        // The image is re-applied: text word 0 is the fresh `li`.
        assert_eq!(again.read_u32(Topology::L2_BASE), arts.fresh_memory().read_u32(Topology::L2_BASE));
        assert_eq!(pool.stats(), PoolStats { fresh: 1, recycled: 1, ..PoolStats::default() });
    }

    #[test]
    fn mismatched_topology_is_rejected() {
        let pool = MemPool::new(artifacts(8));
        let foreign = ClusterMem::new(Topology::scaled(16));
        assert!(!pool.release(foreign), "foreign topology must be rejected");
        assert_eq!(pool.parked(), 0);
        assert_eq!(pool.stats().rejected, 1);
        // The pool still serves correct memories afterwards.
        assert_eq!(pool.acquire().topology(), Topology::scaled(8));
    }

    #[test]
    fn quarantined_arenas_never_reenter_the_pool() {
        let pool = MemPool::new(artifacts(8));
        let mem = pool.acquire();
        mem.write_u32(0x100, 0xbad);
        pool.quarantine(mem);
        assert_eq!(pool.parked(), 0, "quarantined arena must not park");
        assert_eq!(pool.stats().quarantined, 1);
        // The next acquire allocates fresh rather than recycling.
        let next = pool.acquire();
        assert_eq!(next.read_u32(0x100), 0);
        assert_eq!(pool.stats().fresh, 2);
    }

    #[test]
    fn free_list_survives_poisoning() {
        let pool = MemPool::new(artifacts(8));
        let mem = pool.acquire();
        // Poison the free-list mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pool.free.lock().unwrap();
            panic!("poison the pool lock");
        }));
        assert!(pool.free.is_poisoned());
        // Release and acquire must recover instead of cascading.
        assert!(pool.release(mem));
        assert_eq!(pool.parked(), 1);
        assert_eq!(pool.acquire().read_u32(0x100), 0);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn warm_preallocates_and_trim_evicts() {
        let pool = MemPool::new(artifacts(8));
        pool.warm(3);
        assert_eq!(pool.parked(), 3);
        assert_eq!(pool.stats().fresh, 3);
        // Warmed arenas serve acquires as recycles (reset is a no-op on a
        // clean arena) — no further allocation.
        let mem = pool.acquire();
        assert_eq!(pool.stats(), PoolStats { fresh: 3, recycled: 1, ..PoolStats::default() });
        assert!(pool.release(mem));
        assert_eq!(pool.parked(), 3);
        // Trim drops down to `keep`, counting what it dropped ...
        assert_eq!(pool.trim(1), 2);
        assert_eq!(pool.parked(), 1);
        assert_eq!(pool.stats().trimmed, 2);
        // ... and trimming below an already-short list is a no-op.
        assert_eq!(pool.trim(4), 0);
        assert_eq!(pool.parked(), 1);
    }

    #[test]
    fn stats_merge_accumulates_every_field() {
        let mut total = PoolStats { fresh: 1, recycled: 2, ..PoolStats::default() };
        total.merge(&PoolStats {
            fresh: 10,
            recycled: 20,
            discarded: 30,
            rejected: 40,
            quarantined: 50,
            trimmed: 60,
        });
        assert_eq!(
            total,
            PoolStats { fresh: 11, recycled: 22, discarded: 30, rejected: 40, quarantined: 50, trimmed: 60 }
        );
    }

    #[test]
    fn aliased_returns_are_discarded_not_recycled() {
        let pool = MemPool::new(artifacts(8));
        let mem = pool.acquire();
        let leak = mem.clone();
        assert!(pool.release(mem));
        // The live clone makes the parked arena unrecyclable; acquire
        // must discard it and allocate fresh instead of aliasing `leak`.
        let fresh = pool.acquire();
        leak.write_u32(0x40, 1);
        assert_eq!(fresh.read_u32(0x40), 0, "acquired arena must not alias the leaked handle");
        let stats = pool.stats();
        assert_eq!((stats.discarded, stats.recycled), (1, 0));
    }
}
