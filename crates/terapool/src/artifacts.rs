//! Shared immutable simulation artifacts.
//!
//! Everything a cluster simulation needs that does *not* change while it
//! runs — the decoded program, the lowered micro-op tables, the topology
//! lookup tables and the initial memory image — is collected here in one
//! [`SimArtifacts`] value, built **once** per scenario and shared across
//! any number of jobs through an [`Arc`]. The simulators
//! ([`FastSim`](crate::FastSim), [`CycleSim`](crate::CycleSim)) are then
//! thin *per-job mutable state* — a fresh [`ClusterMem`], scoreboards and
//! scheduler queues — instantiated from the shared artifacts via
//! `from_artifacts`.
//!
//! The split is what makes batched serving cheap: a BER curve or figure
//! sweep runs hundreds of independent cluster simulations of the *same*
//! guest, and before this layer every one of them re-decoded the text,
//! re-lowered the micro-op table and re-derived the topology maps. Those
//! costs are now paid once per scenario, amortized across the batch (the
//! `mips --jobs` bench records the win), and the artifact set is `Sync`,
//! so concurrent jobs on different host threads share one allocation.
//!
//! Tables are lowered **lazily** (first use, [`OnceLock`]): a scenario
//! that only ever drives one backend never pays for the other's table,
//! exactly as the pre-split constructors behaved.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use terasim_terapool::{FastSim, SimArtifacts, Topology};
//! use terasim_riscv::{Assembler, Image, Reg, Segment};
//!
//! let topo = Topology::scaled(8);
//! let mut a = Assembler::new(Topology::L2_BASE);
//! a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
//! a.slli(Reg::T1, Reg::T0, 2);
//! a.sw(Reg::T0, 0, Reg::T1);
//! a.ecall();
//! let mut image = Image::new(Topology::L2_BASE);
//! image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish()?));
//!
//! // Build the immutable artifacts once ...
//! let arts = SimArtifacts::build(topo, &image)?;
//! // ... then instantiate as many independent jobs from them as needed.
//! for _ in 0..3 {
//!     let mut sim = FastSim::from_artifacts(Arc::clone(&arts));
//!     sim.run_all(1)?;
//!     assert_eq!(sim.memory().read_u32(4 * 7), 7);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::{Arc, OnceLock};

use terasim_iss::uop::UopProgram;
use terasim_iss::{EpochMode, FusedProgram, FusionMode, LatencyModel, Program, RunConfig, TranslateError};
use terasim_riscv::Image;

use crate::cycle::{ReachMap, RunTables};
use crate::mem::{ClusterMem, CoreMem};
use crate::topology::Topology;

/// The immutable artifact set of one simulation scenario: everything
/// derived from `(topology, image)` that every job of the scenario
/// shares. See the module docs for the job/artifact split.
pub struct SimArtifacts {
    topo: Topology,
    program: Arc<Program>,
    image: Image,
    /// Default run configuration of fast-mode jobs; its latency model is
    /// the one the shared fast table is lowered under.
    fast_config: RunConfig,
    /// Cycle-engine latency model (the reference timing is part of the
    /// scenario, not of a job).
    cycle_latency: LatencyModel,
    /// Lowered table for the fast mode's per-core memory view.
    fast_table: OnceLock<Arc<UopProgram<CoreMem>>>,
    /// Fused superinstruction table derived from `fast_table` (lowered on
    /// first fusion-enabled run; shared across jobs and, through the
    /// daemon's artifact cache, across requests).
    fast_fused: OnceLock<Arc<FusedProgram<CoreMem>>>,
    /// Lowered table + hop/bank-decode tables for the cycle engines.
    cycle_tables: OnceLock<RunTables>,
    /// Static local-only reachability map (adaptive epoch scheduling).
    /// Built on the first adaptive sharded run; shared across jobs and,
    /// through the daemon's artifact cache, across requests.
    reach: OnceLock<Arc<ReachMap>>,
}

impl std::fmt::Debug for SimArtifacts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArtifacts")
            .field("cores", &self.topo.num_cores())
            .field("text_insts", &self.program.len())
            .field("fast_table", &self.fast_table.get().is_some())
            .field("cycle_tables", &self.cycle_tables.get().is_some())
            .finish()
    }
}

// Jobs on different host threads share one artifact set; the lowered
// tables hold only plain function pointers and POD records (asserted in
// `terasim_iss::uop`), so the whole set is immutable-after-init shared
// state. This assertion turns any future interior mutability into a
// compile error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimArtifacts>();
};

impl SimArtifacts {
    /// Builds the artifact set for `topo` and `image` with the default
    /// fast-mode run configuration: translates the text once and snapshots
    /// the image for per-job memory initialization. Micro-op tables are
    /// lowered lazily on first use.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the image's text cannot be
    /// decoded.
    pub fn build(topo: Topology, image: &Image) -> Result<Arc<Self>, TranslateError> {
        Self::build_with(topo, image, RunConfig::default())
    }

    /// As [`build`](Self::build) with an explicit fast-mode run
    /// configuration — the shared fast table is lowered under
    /// `fast_config.latency`, and
    /// [`FastSim::from_artifacts`](crate::FastSim::from_artifacts)
    /// starts jobs with this configuration.
    ///
    /// # Errors
    ///
    /// Returns the translation error if the image's text cannot be
    /// decoded.
    pub fn build_with(
        topo: Topology,
        image: &Image,
        fast_config: RunConfig,
    ) -> Result<Arc<Self>, TranslateError> {
        let program = Arc::new(Program::translate(image)?);
        Ok(Arc::new(Self {
            topo,
            program,
            image: image.clone(),
            fast_config,
            cycle_latency: LatencyModel::default(),
            fast_table: OnceLock::new(),
            fast_fused: OnceLock::new(),
            cycle_tables: OnceLock::new(),
            reach: OnceLock::new(),
        }))
    }

    /// The cluster geometry.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The translated program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The default run configuration of fast-mode jobs.
    pub fn fast_config(&self) -> &RunConfig {
        &self.fast_config
    }

    /// The scenario's initial memory image (what every fresh or recycled
    /// job memory starts loaded with). Lets callers verify that
    /// independently built artifacts describe the same scenario before
    /// sharing a pool between them.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// A stable 64-bit digest of the scenario's identity: the topology
    /// geometry, the complete memory image (entry point plus every
    /// segment's base and bytes) and the timing configuration (fast-mode
    /// [`RunConfig`] and cycle latency model). Two artifact sets with
    /// equal digests are interchangeable — jobs built from either produce
    /// bit-identical results — which is what lets a serving tier key an
    /// artifact cache on the digest and hand cached artifacts to requests
    /// that arrived with their own freshly described scenario.
    ///
    /// The hash is FNV-1a over a fixed field order: stable across
    /// processes and runs (unlike `std`'s `DefaultHasher`), so digests
    /// can be logged, compared across restarts, and recorded in reports.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut put = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        let t = &self.topo;
        for field in [
            t.cores_per_tile,
            t.tiles_per_subgroup,
            t.subgroups_per_group,
            t.groups,
            t.tile_spm_bytes,
            t.banks_per_tile,
            t.icache_bytes,
            t.icache_line,
        ] {
            put(&field.to_le_bytes());
        }
        put(&self.image.entry().to_le_bytes());
        for seg in self.image.segments() {
            put(&seg.base.to_le_bytes());
            put(&(seg.bytes.len() as u64).to_le_bytes());
            put(&seg.bytes);
        }
        let rc = &self.fast_config;
        put(&rc.max_instructions.to_le_bytes());
        put(&[u8::from(rc.per_address_latency)]);
        put(&[u8::from(rc.fusion == FusionMode::On)]);
        put(&[u8::from(rc.epochs == EpochMode::Adaptive)]);
        for lat in [&rc.latency, &self.cycle_latency] {
            for field in [
                lat.alu,
                lat.mul,
                lat.div,
                lat.load,
                lat.amo,
                lat.fp,
                lat.fp_div_sqrt,
                lat.simd,
                lat.dotp,
                lat.taken_branch_penalty,
            ] {
                put(&field.to_le_bytes());
            }
        }
        h
    }

    /// Allocates a fresh per-job cluster memory with the scenario's image
    /// loaded — the mutable half every job owns privately. Batch drivers
    /// that serve many small jobs should recycle these through a
    /// [`MemPool`](crate::MemPool) instead of allocating per job.
    pub fn fresh_memory(&self) -> ClusterMem {
        let mem = ClusterMem::new(self.topo);
        mem.load_image(&self.image);
        mem
    }

    /// Returns a previously issued memory to the exact
    /// [`fresh_memory`](Self::fresh_memory) state: re-zeroes the dirty
    /// footprint (tracked at write time) and re-applies the scenario
    /// image. The pooled counterpart of `fresh_memory` — callers reach it
    /// through [`MemPool::acquire`](crate::MemPool::acquire).
    pub(crate) fn reset_memory(&self, mem: &ClusterMem) {
        mem.reset();
        mem.load_image(&self.image);
    }

    /// The shared fast-mode micro-op table (lowered on first use under
    /// `fast_config.latency`).
    pub(crate) fn fast_table(&self) -> &Arc<UopProgram<CoreMem>> {
        self.fast_table.get_or_init(|| Arc::new(UopProgram::lower(&self.program, &self.fast_config.latency)))
    }

    /// The shared fused superinstruction table (built on first use from
    /// the shared fast table — results are bit-identical to the unfused
    /// table, so fusion-on and fusion-off jobs can share one artifact
    /// set).
    pub(crate) fn fast_fused(&self) -> &Arc<FusedProgram<CoreMem>> {
        self.fast_fused.get_or_init(|| Arc::new(FusedProgram::build(&self.program, self.fast_table())))
    }

    /// The shared cycle-engine tables (lowered on first use under the
    /// scenario's cycle latency model).
    pub(crate) fn cycle_tables(&self) -> &RunTables {
        self.cycle_tables.get_or_init(|| RunTables::new(self.topo, &self.program, &self.cycle_latency))
    }

    /// The cycle-engine latency model.
    pub(crate) fn cycle_latency(&self) -> &LatencyModel {
        &self.cycle_latency
    }

    /// The shared static reachability map (built on first use; one CFG
    /// pass over the decoded text, amortized like the lowered tables).
    pub(crate) fn reach(&self) -> &Arc<ReachMap> {
        self.reach.get_or_init(|| Arc::new(ReachMap::build(&self.program)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CycleSim, FastSim};
    use terasim_riscv::{Assembler, Reg, Segment};

    fn image_of(build: impl FnOnce(&mut Assembler)) -> Image {
        let mut a = Assembler::new(Topology::L2_BASE);
        build(&mut a);
        a.ecall();
        let mut image = Image::new(Topology::L2_BASE);
        image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().unwrap()));
        image
    }

    #[test]
    fn jobs_from_shared_artifacts_are_independent() {
        // Each job owns its memory: runs never observe each other.
        let image = image_of(|a| {
            a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
            a.slli(Reg::T1, Reg::T0, 2);
            a.addi(Reg::T0, Reg::T0, 1);
            a.sw(Reg::T0, 0x40, Reg::T1);
        });
        let arts = SimArtifacts::build(Topology::scaled(8), &image).unwrap();
        let mut sims: Vec<FastSim> = (0..3).map(|_| FastSim::from_artifacts(Arc::clone(&arts))).collect();
        for sim in &mut sims {
            sim.run_all(1).unwrap();
        }
        for sim in &sims {
            for core in 0..8u32 {
                assert_eq!(sim.memory().read_u32(0x40 + 4 * core), core + 1);
            }
        }
        // The table was lowered exactly once and is shared.
        assert!(arts.fast_table.get().is_some());
    }

    #[test]
    fn shared_artifacts_match_per_run_construction() {
        let image = image_of(|a| {
            a.li(Reg::T0, 40);
            a.addi(Reg::T0, Reg::T0, 2);
            a.sw(Reg::T0, 0x20, Reg::Zero);
        });
        let topo = Topology::scaled(8);
        let arts = SimArtifacts::build(topo, &image).unwrap();

        let mut fresh = CycleSim::new(topo, &image).unwrap();
        let mut shared = CycleSim::from_artifacts(Arc::clone(&arts));
        let a = fresh.run(8).unwrap();
        let b = shared.run(8).unwrap();
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(fresh.memory().read_u32(0x20), shared.memory().read_u32(0x20));
    }

    #[test]
    fn digest_separates_scenarios_and_is_stable() {
        let image_a = image_of(|a| {
            a.li(Reg::T0, 1);
        });
        let image_b = image_of(|a| {
            a.li(Reg::T0, 2);
        });
        let arts_a = SimArtifacts::build(Topology::scaled(8), &image_a).unwrap();
        let arts_b = SimArtifacts::build(Topology::scaled(8), &image_b).unwrap();
        // Independently built artifact sets of the same scenario agree;
        // any differing input — image, topology, timing config — does not.
        assert_eq!(arts_a.digest(), SimArtifacts::build(Topology::scaled(8), &image_a).unwrap().digest());
        assert_ne!(arts_a.digest(), arts_b.digest());
        assert_ne!(arts_a.digest(), SimArtifacts::build(Topology::scaled(16), &image_a).unwrap().digest());
        let mut rc = RunConfig::default();
        rc.latency.load = 1;
        assert_ne!(
            arts_a.digest(),
            SimArtifacts::build_with(Topology::scaled(8), &image_a, rc).unwrap().digest()
        );
    }

    #[test]
    fn tables_are_lazy() {
        let image = image_of(|a| {
            a.nop();
        });
        let arts = SimArtifacts::build(Topology::scaled(8), &image).unwrap();
        assert!(arts.fast_table.get().is_none());
        assert!(arts.cycle_tables.get().is_none());
        let _ = CycleSim::from_artifacts(Arc::clone(&arts));
        // Construction alone lowers nothing; the first run does.
        assert!(arts.cycle_tables.get().is_none());
    }
}
