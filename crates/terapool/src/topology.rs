//! Cluster geometry, address map and NUMA latency table.

/// Geometry and address-map parameters of a TeraPool-style cluster.
///
/// The full configuration ([`Topology::terapool`]) matches the paper: 1024
/// cores, 128 tiles, 4 MiB L1. Scaled-down configurations
/// ([`Topology::scaled`]) keep the hierarchy shape (8 cores/tile, then
/// tiles → subgroups → groups) so contention behaviour stays
/// representative while experiments fit small hosts.
///
/// # Address map
///
/// | Region | Base | Contents |
/// |---|---|---|
/// | L1 interleaved | `0x0000_0000` | word-interleaved across *all* banks of the cluster |
/// | L1 sequential  | `0x1000_0000` + tile·stride | the same physical banks, tile-local view |
/// | Control        | `0x4000_0000` | EOC, barrier wake, DMA registers |
/// | L2             | `0x8000_0000` | text, read-only data, DMA source |
///
/// The dual L1 view mirrors MemPool/TeraPool: vectors in the interleaved
/// region spread consecutive words over different banks (paper §IV), while
/// per-core matrices in the sequential region stay in the owning tile's
/// banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Snitch cores per tile (8 in TeraPool).
    pub cores_per_tile: u32,
    /// Tiles per subgroup (8).
    pub tiles_per_subgroup: u32,
    /// Subgroups per group (4).
    pub subgroups_per_group: u32,
    /// Groups per cluster (4).
    pub groups: u32,
    /// Scratchpad bytes per tile (32 KiB).
    pub tile_spm_bytes: u32,
    /// Banks per tile (32: 4 per core, as in MemPool).
    pub banks_per_tile: u32,
    /// Shared instruction-cache bytes per tile (4 KiB).
    pub icache_bytes: u32,
    /// I$ line size in bytes.
    pub icache_line: u32,
}

impl Topology {
    /// Base address of the word-interleaved L1 view.
    pub const L1_BASE: u32 = 0x0000_0000;
    /// Base address of the sequential (tile-local) L1 view.
    pub const SEQ_BASE: u32 = 0x1000_0000;
    /// Per-tile stride in the sequential view (1 MiB: a power of two ≥ any
    /// tile SPM size we model, including capacity-deepened configurations).
    pub const SEQ_STRIDE: u32 = 0x10_0000;
    /// Base address of the control region.
    pub const CTRL_BASE: u32 = 0x4000_0000;
    /// End-of-computation register (write = report exit).
    pub const CTRL_EOC: u32 = Self::CTRL_BASE;
    /// Read-only register holding the core count.
    pub const CTRL_NUM_CORES: u32 = Self::CTRL_BASE + 0x4;
    /// Barrier wake register: a store wakes every other hart in `wfi`.
    pub const CTRL_WAKE_ALL: u32 = Self::CTRL_BASE + 0x8;
    /// DMA source-address register.
    pub const CTRL_DMA_SRC: u32 = Self::CTRL_BASE + 0x10;
    /// DMA destination-address register.
    pub const CTRL_DMA_DST: u32 = Self::CTRL_BASE + 0x14;
    /// DMA length register (bytes); writing it starts the transfer.
    pub const CTRL_DMA_LEN: u32 = Self::CTRL_BASE + 0x18;
    /// DMA status register (0 = idle).
    pub const CTRL_DMA_BUSY: u32 = Self::CTRL_BASE + 0x1c;
    /// Size of the control region.
    pub const CTRL_SIZE: u32 = 0x100;
    /// Base address of L2.
    pub const L2_BASE: u32 = 0x8000_0000;
    /// Modelled L2 size (16 MiB).
    pub const L2_SIZE: u32 = 16 << 20;

    /// The paper's full 1024-core cluster.
    pub fn terapool() -> Self {
        Self {
            cores_per_tile: 8,
            tiles_per_subgroup: 8,
            subgroups_per_group: 4,
            groups: 4,
            tile_spm_bytes: 32 << 10,
            banks_per_tile: 32,
            icache_bytes: 4 << 10,
            icache_line: 32,
        }
    }

    /// A scaled cluster with `cores` cores (must be a multiple of 8 and a
    /// power of two ≥ 8), shrinking groups first, then subgroups, then
    /// tiles, so small configurations remain hierarchical.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a power of two multiple of 8 or exceeds
    /// 1024.
    pub fn scaled(cores: u32) -> Self {
        assert!(
            cores.is_power_of_two() && (8..=1024).contains(&cores),
            "cores must be a power of two in 8..=1024"
        );
        let mut topo = Self::terapool();
        let mut have = topo.num_cores();
        while have > cores {
            if topo.groups > 1 {
                topo.groups /= 2;
            } else if topo.subgroups_per_group > 1 {
                topo.subgroups_per_group /= 2;
            } else {
                topo.tiles_per_subgroup /= 2;
            }
            have = topo.num_cores();
        }
        topo
    }

    /// One-way pipeline hop cost of a request that crosses a group
    /// boundary — the cluster-level crossbar stages of the paper's
    /// hierarchy, and the *minimum* latency by which one group can affect
    /// another. The epoch-sharded cycle engine sizes its lockstep epochs
    /// to this value: effects a group publishes in one epoch cannot be
    /// observable in another group before the next epoch begins.
    pub const CROSS_GROUP_HOP: u32 = 4;

    /// Total core count.
    pub fn num_cores(&self) -> u32 {
        self.cores_per_tile * self.num_tiles()
    }

    /// Number of independent arbitration domains the cycle engine can
    /// shard into — one per group. Everything a core arbitrates for
    /// *within* an epoch (its tile's I$ and outbound port, the banks it
    /// can reach in fewer than [`Self::CROSS_GROUP_HOP`] cycles) belongs
    /// to exactly one group, which is what makes the group the natural
    /// sharding boundary.
    pub fn num_domains(&self) -> u32 {
        self.groups
    }

    /// Tiles per group.
    pub fn tiles_per_group(&self) -> u32 {
        self.tiles_per_subgroup * self.subgroups_per_group
    }

    /// Cores per group.
    pub fn cores_per_group(&self) -> u32 {
        self.cores_per_tile * self.tiles_per_group()
    }

    /// Banks per group.
    pub fn banks_per_group(&self) -> u32 {
        self.banks_per_tile * self.tiles_per_group()
    }

    /// Arbitration domain (group index) owning a core.
    pub fn domain_of_core(&self, core: u32) -> u32 {
        core / self.cores_per_group()
    }

    /// Arbitration domain (group index) owning a bank.
    pub fn domain_of_bank(&self, bank: u32) -> u32 {
        bank / self.banks_per_group()
    }

    /// Epoch length (cycles) of the sharded cycle engine: the minimum
    /// cross-group latency, so deferred cross-group effects applied at an
    /// epoch boundary are never applied *after* their arrival time.
    pub fn epoch_len(&self) -> u64 {
        u64::from(Self::CROSS_GROUP_HOP)
    }

    /// Total tile count.
    pub fn num_tiles(&self) -> u32 {
        self.tiles_per_subgroup * self.subgroups_per_group * self.groups
    }

    /// Total bank count.
    pub fn num_banks(&self) -> u32 {
        self.banks_per_tile * self.num_tiles()
    }

    /// Total L1 bytes.
    pub fn l1_bytes(&self) -> u32 {
        self.tile_spm_bytes * self.num_tiles()
    }

    /// Tile index of a core.
    pub fn tile_of_core(&self, core: u32) -> u32 {
        core / self.cores_per_tile
    }

    /// Subgroup index (global) of a tile.
    pub fn subgroup_of_tile(&self, tile: u32) -> u32 {
        tile / self.tiles_per_subgroup
    }

    /// Group index of a tile.
    pub fn group_of_tile(&self, tile: u32) -> u32 {
        self.subgroup_of_tile(tile) / self.subgroups_per_group
    }

    /// Maps an L1 address (either view) to `(bank, word-offset-in-bank)`,
    /// or `None` if the address is outside L1.
    ///
    /// Interleaved view: consecutive words rotate over all banks of the
    /// cluster. Sequential view: consecutive words rotate over the banks of
    /// one tile only.
    pub fn l1_slot(&self, addr: u32) -> Option<(u32, u32)> {
        let word = |a: u32| a / 4;
        if addr < Self::L1_BASE + self.l1_bytes() {
            let w = word(addr - Self::L1_BASE);
            return Some((w % self.num_banks(), w / self.num_banks()));
        }
        if addr >= Self::SEQ_BASE {
            let off = addr - Self::SEQ_BASE;
            let tile = off / Self::SEQ_STRIDE;
            let within = off % Self::SEQ_STRIDE;
            if tile < self.num_tiles() && within < self.tile_spm_bytes {
                let w = word(within);
                let bank = tile * self.banks_per_tile + w % self.banks_per_tile;
                return Some((bank, w / self.banks_per_tile));
            }
        }
        None
    }

    /// Words per bank.
    pub fn bank_words(&self) -> u32 {
        self.tile_spm_bytes / 4 / self.banks_per_tile
    }

    /// Tile that physically hosts a bank.
    pub fn tile_of_bank(&self, bank: u32) -> u32 {
        bank / self.banks_per_tile
    }

    /// One-way request latency (cycles) from a core to a bank, without
    /// contention: 0 extra inside the tile, plus pipeline stages at the
    /// subgroup, group and cluster boundaries. The round trip for a remote
    /// group access is the paper's "less than 9 cycles without
    /// contentions".
    pub fn request_latency(&self, core: u32, bank: u32) -> u32 {
        let (ct, bt) = (self.tile_of_core(core), self.tile_of_bank(bank));
        if ct == bt {
            0
        } else if self.subgroup_of_tile(ct) == self.subgroup_of_tile(bt) {
            1
        } else if self.group_of_tile(ct) == self.group_of_tile(bt) {
            2
        } else {
            Self::CROSS_GROUP_HOP
        }
    }

    /// The largest non-contended L1 access latency of this topology — the
    /// paper's conservative uniform choice for the fast timing model
    /// (9 cycles on full TeraPool, smaller for scaled clusters).
    pub fn max_access_latency(&self) -> u32 {
        let max_hop = if self.groups > 1 {
            Self::CROSS_GROUP_HOP
        } else if self.subgroups_per_group > 1 {
            2
        } else if self.tiles_per_subgroup > 1 {
            1
        } else {
            0
        };
        1 + 2 * max_hop
    }

    /// Total non-contended load-to-use latency (request + bank access +
    /// response): 1 inside the tile, up to 9 across groups — the values the
    /// paper quotes.
    pub fn access_latency(&self, core: u32, addr: u32) -> u32 {
        match self.l1_slot(addr) {
            Some((bank, _)) => {
                let hop = self.request_latency(core, bank);
                1 + 2 * hop
            }
            // L2 / ctrl accesses cross the AXI port.
            None => 16,
        }
    }
}

/// Shift-based decomposition of [`Topology::l1_slot`] for the cycle
/// engine's hot paths — **bit-identical** results, built once per run.
///
/// This is the single shared implementation used by both the event
/// engine's bank arbitration and its fast memory view; when a geometry
/// divisor is not a power of two (possible only for hand-built
/// topologies), every method falls back to the division path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct L1Decode {
    topo: Topology,
    fast: Option<L1Shifts>,
}

#[derive(Debug, Clone, Copy)]
struct L1Shifts {
    l1_bytes: u32,
    banks_mask: u32,
    banks_shift: u32,
    bank_words_shift: u32,
    bpt_mask: u32,
    bpt_shift: u32,
}

impl L1Decode {
    pub(crate) fn new(topo: Topology) -> Self {
        let fast = (topo.num_banks().is_power_of_two()
            && topo.banks_per_tile.is_power_of_two()
            && topo.bank_words().is_power_of_two())
        .then(|| L1Shifts {
            l1_bytes: topo.l1_bytes(),
            banks_mask: topo.num_banks() - 1,
            banks_shift: topo.num_banks().trailing_zeros(),
            bank_words_shift: topo.bank_words().trailing_zeros(),
            bpt_mask: topo.banks_per_tile - 1,
            bpt_shift: topo.banks_per_tile.trailing_zeros(),
        });
        Self { topo, fast }
    }

    /// Bit-identical to [`Topology::l1_slot`].
    #[inline]
    pub(crate) fn l1_slot(&self, addr: u32) -> Option<(u32, u32)> {
        let Some(fast) = &self.fast else {
            return self.topo.l1_slot(addr);
        };
        if addr < Topology::L1_BASE + fast.l1_bytes {
            let w = (addr - Topology::L1_BASE) >> 2;
            return Some((w & fast.banks_mask, w >> fast.banks_shift));
        }
        if addr >= Topology::SEQ_BASE {
            let off = addr - Topology::SEQ_BASE;
            let tile = off / Topology::SEQ_STRIDE;
            let within = off % Topology::SEQ_STRIDE;
            if tile < self.topo.num_tiles() && within < self.topo.tile_spm_bytes {
                let w = within >> 2;
                let bank = tile * self.topo.banks_per_tile + (w & fast.bpt_mask);
                return Some((bank, w >> fast.bpt_shift));
            }
        }
        None
    }

    /// Physical word index of a slot (`bank * bank_words + off`).
    #[inline]
    pub(crate) fn phys_index(&self, bank: u32, off: u32) -> usize {
        match &self.fast {
            Some(fast) => ((bank << fast.bank_words_shift) | off) as usize,
            None => (bank * self.topo.bank_words() + off) as usize,
        }
    }

    /// Bit-identical to [`Topology::tile_of_bank`].
    #[inline]
    pub(crate) fn tile_of_bank(&self, bank: u32) -> u32 {
        match &self.fast {
            Some(fast) => bank >> fast.bpt_shift,
            None => self.topo.tile_of_bank(bank),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_decode_matches_reference_everywhere() {
        for topo in [Topology::scaled(8), Topology::scaled(64), Topology::terapool()] {
            let decode = L1Decode::new(topo);
            let probe = |addr: u32| {
                assert_eq!(decode.l1_slot(addr), topo.l1_slot(addr), "{addr:#010x}");
                if let Some((bank, off)) = topo.l1_slot(addr) {
                    assert_eq!(decode.phys_index(bank, off) as u32, bank * topo.bank_words() + off);
                    assert_eq!(decode.tile_of_bank(bank), topo.tile_of_bank(bank));
                }
            };
            for addr in (0..topo.l1_bytes().min(1 << 16)).step_by(4) {
                probe(addr);
                probe(Topology::SEQ_BASE + addr);
            }
            probe(topo.l1_bytes());
            probe(Topology::SEQ_BASE + topo.tile_spm_bytes);
            probe(Topology::L2_BASE);
        }
    }

    #[test]
    fn full_terapool_counts() {
        let t = Topology::terapool();
        assert_eq!(t.num_cores(), 1024);
        assert_eq!(t.num_tiles(), 128);
        assert_eq!(t.num_banks(), 4096);
        assert_eq!(t.l1_bytes(), 4 << 20);
    }

    #[test]
    fn scaled_configs_keep_shape() {
        for cores in [8, 16, 64, 256, 1024] {
            let t = Topology::scaled(cores);
            assert_eq!(t.num_cores(), cores, "scaled({cores})");
            assert_eq!(t.cores_per_tile, 8);
        }
        assert_eq!(Topology::scaled(256).groups, 1);
    }

    #[test]
    fn interleaved_addresses_rotate_banks() {
        let t = Topology::terapool();
        let (b0, o0) = t.l1_slot(0x0).unwrap();
        let (b1, o1) = t.l1_slot(0x4).unwrap();
        assert_eq!((b0, o0), (0, 0));
        assert_eq!((b1, o1), (1, 0));
        // Wrap-around to the same bank, next word.
        let (bw, ow) = t.l1_slot(4 * t.num_banks()).unwrap();
        assert_eq!((bw, ow), (0, 1));
    }

    #[test]
    fn sequential_addresses_stay_in_tile() {
        let t = Topology::terapool();
        for w in 0..64 {
            let (bank, _) = t.l1_slot(Topology::SEQ_BASE + Topology::SEQ_STRIDE * 3 + w * 4).unwrap();
            assert_eq!(t.tile_of_bank(bank), 3);
        }
        // Out of the SPM window within the stride.
        assert_eq!(t.l1_slot(Topology::SEQ_BASE + t.tile_spm_bytes), None);
    }

    #[test]
    fn latency_hierarchy_is_monotone() {
        let t = Topology::terapool();
        // Core 0 (tile 0): in-tile bank, same subgroup, same group, remote group.
        let in_tile = t.access_latency(0, Topology::SEQ_BASE);
        let subgroup = t.access_latency(0, Topology::SEQ_BASE + Topology::SEQ_STRIDE);
        let group = t.access_latency(0, Topology::SEQ_BASE + Topology::SEQ_STRIDE * 8);
        let remote = t.access_latency(0, Topology::SEQ_BASE + Topology::SEQ_STRIDE * 64);
        assert_eq!(in_tile, 1, "1-cycle scratchpad inside the tile");
        assert!(in_tile < subgroup && subgroup < group && group < remote);
        assert_eq!(remote, 9, "worst non-contended access is 9 cycles");
        assert_eq!(t.max_access_latency(), 9);
        assert_eq!(Topology::scaled(8).max_access_latency(), 1, "single tile is all-local");
        assert_eq!(Topology::scaled(64).max_access_latency(), 3);
    }

    #[test]
    fn every_l1_address_maps_to_exactly_one_slot() {
        let t = Topology::scaled(16);
        let mut seen = std::collections::HashSet::new();
        for addr in (0..t.l1_bytes()).step_by(4) {
            let slot = t.l1_slot(addr).unwrap();
            assert!(seen.insert(slot), "slot collision at {addr:#x}");
            assert!(slot.0 < t.num_banks());
            assert!(slot.1 < t.bank_words());
        }
        assert_eq!(seen.len(), (t.l1_bytes() / 4) as usize);
    }

    #[test]
    fn domain_mapping_follows_groups() {
        let t = Topology::terapool();
        assert_eq!(t.num_domains(), 4);
        assert_eq!(t.cores_per_group(), 256);
        assert_eq!(t.banks_per_group(), 1024);
        for core in [0, 255, 256, 1023] {
            assert_eq!(t.domain_of_core(core), t.group_of_tile(t.tile_of_core(core)), "core {core}");
        }
        for bank in [0, 1023, 1024, 4095] {
            assert_eq!(t.domain_of_bank(bank), t.group_of_tile(t.tile_of_bank(bank)), "bank {bank}");
        }
        assert_eq!(Topology::scaled(64).num_domains(), 1);
        assert_eq!(Topology::scaled(512).num_domains(), 2);
        assert_eq!(Topology::scaled(1024).num_domains(), 4);
        assert_eq!(t.epoch_len(), u64::from(Topology::CROSS_GROUP_HOP));
    }

    #[test]
    fn sequential_view_aliases_interleaved_banks() {
        // Both views must agree on the physical bank set (full coverage, no
        // out-of-range slots).
        let t = Topology::scaled(8);
        for tile in 0..t.num_tiles() {
            for w in 0..(t.tile_spm_bytes / 4) {
                let addr = Topology::SEQ_BASE + tile * Topology::SEQ_STRIDE + w * 4;
                let (bank, off) = t.l1_slot(addr).unwrap();
                assert_eq!(t.tile_of_bank(bank), tile);
                assert!(off < t.bank_words());
            }
        }
    }
}
