//! Cooperative cancellation of in-flight simulations.
//!
//! A [`CancelToken`] is a cheap cloneable flag shared between a batch
//! driver and the jobs it runs. The simulators poll it only at *safe
//! points* — the fast mode between scheduling rounds, the cycle engines
//! between event steps and at epoch boundaries — so cancellation never
//! interrupts an instruction mid-issue and never perturbs the results of
//! runs that complete before the flag is raised. A cancelled run returns
//! its partial result with the `cancelled` flag set
//! ([`ClusterResult::cancelled`](crate::ClusterResult),
//! [`CycleResult::cancelled`](crate::CycleResult)); callers must treat
//! such results as untrusted partial state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag, polled cooperatively by the simulators.
///
/// Clones observe the same flag; once raised it never resets. The default
/// token is un-cancelled.
///
/// # Examples
///
/// ```
/// use terasim_terapool::CancelToken;
///
/// let token = CancelToken::new();
/// let view = token.clone();
/// assert!(!view.is_cancelled());
/// token.cancel();
/// assert!(view.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; takes effect at every holder's next
    /// safe point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
